#!/usr/bin/env bash
# Tier-1 verification: hermetic offline build, full test suite, a repro
# smoke run, and a guard that no external registry dependency has crept
# back into any manifest or the lockfile.
#
# The workspace builds with zero external crates by design (see
# DESIGN.md §3); everything lives in crates/substrate. Run this from the
# repo root before merging.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release --offline"
cargo build --release --offline

echo "== cargo test -q --workspace --offline"
cargo test -q --workspace --offline

echo "== cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== repro smoke (T1)"
out=$(cargo run --release --offline -q -p fcm-bench --bin repro -- t1)
echo "$out" | grep -q "Table 1" || {
    echo "FAIL: repro t1 did not render Table 1" >&2
    exit 1
}

echo "== repro smoke (E14 recovery policy sweep)"
e14_a=$(cargo run --release --offline -q -p fcm-bench --bin repro -- --quick e14)
echo "$e14_a" | grep -q "E14 node-failure recovery policy sweep" || {
    echo "FAIL: repro e14 did not render the policy sweep" >&2
    exit 1
}
echo "$e14_a" | grep -q "failover+shedding" || {
    echo "FAIL: repro e14 is missing the shedding policy rows" >&2
    exit 1
}
# Determinism: two same-seed runs must be byte-identical. The `# `
# lines are wall-clock telemetry — the one intentionally
# non-deterministic part of the output — so strip them first.
e14_b=$(cargo run --release --offline -q -p fcm-bench --bin repro -- --quick e14)
if [ "$(echo "$e14_a" | grep -v '^# ')" != "$(echo "$e14_b" | grep -v '^# ')" ]; then
    echo "FAIL: repro e14 is not deterministic across same-seed runs" >&2
    exit 1
fi

echo "== parallel sweep determinism (E1 + E14, 1 thread vs 4)"
# The SweepDriver contract: cell RNG streams are split per cell, so the
# experiment tables must be byte-identical whatever FCM_SWEEP_THREADS is.
sweep_seq=$(FCM_SWEEP_THREADS=1 cargo run --release --offline -q -p fcm-bench --bin repro -- --quick e1 e14 | grep -v '^# ')
sweep_par=$(FCM_SWEEP_THREADS=4 cargo run --release --offline -q -p fcm-bench --bin repro -- --quick e1 e14 | grep -v '^# ')
if [ "$sweep_seq" != "$sweep_par" ]; then
    echo "FAIL: parallel sweep output differs from sequential" >&2
    exit 1
fi

echo "== sparse engine determinism + oracle (E15, 1 thread vs 4)"
# The sparse sweep prints only deterministic quantities, so the table
# must be byte-identical whatever FCM_SWEEP_THREADS is; and every
# n <= 512 cell must carry the sparse-vs-dense bitwise oracle verdict.
e15_seq=$(FCM_SWEEP_THREADS=1 cargo run --release --offline -q -p fcm-bench --bin repro -- --quick e15 | grep -v '^# ')
e15_par=$(FCM_SWEEP_THREADS=4 cargo run --release --offline -q -p fcm-bench --bin repro -- --quick e15 | grep -v '^# ')
if [ "$e15_seq" != "$e15_par" ]; then
    echo "FAIL: parallel e15 sweep output differs from sequential" >&2
    exit 1
fi
if ! printf '%s\n' "$e15_seq" | grep -q 'bitwise-equal'; then
    echo "FAIL: e15 ran no sparse-vs-dense oracle cell" >&2
    exit 1
fi

echo "== repro rejects unknown experiment ids"
if cargo run --release --offline -q -p fcm-bench --bin repro -- e99 2>/dev/null; then
    echo "FAIL: repro accepted an unknown experiment id" >&2
    exit 1
fi

echo "== repro rejects unknown flags"
if cargo run --release --offline -q -p fcm-bench --bin repro -- --obsout x 2>/dev/null; then
    echo "FAIL: repro accepted an unknown flag" >&2
    exit 1
fi

echo "== observability: tables byte-identical obs on vs off (E1)"
# The observation contract (DESIGN.md §Observability): enabling span
# tracing and metrics must not change a single table byte. The obs log
# itself goes to a repo-internal scratch path.
mkdir -p target/verify
obs_off=$(cargo run --release --offline -q -p fcm-bench --bin repro -- --quick e1 | grep -v '^# ')
obs_on=$(cargo run --release --offline -q -p fcm-bench --bin repro -- --quick e1 --obs-out target/verify/obs_e1.jsonl | grep -v '^# ')
if [ "$obs_off" != "$obs_on" ]; then
    echo "FAIL: E1 output differs with observability enabled" >&2
    exit 1
fi

echo "== observability: obsview renders the event log"
view=$(cargo run --release --offline -q -p fcm-bench --bin obsview -- target/verify/obs_e1.jsonl)
echo "$view" | grep -q "span tree" || {
    echo "FAIL: obsview did not render a span tree" >&2
    exit 1
}
echo "$view" | grep -q "eval.sweep.cell" || {
    echo "FAIL: obsview is missing the sweep cell spans" >&2
    exit 1
}
if cargo run --release --offline -q -p fcm-bench --bin obsview -- scripts/verify.sh 2>/dev/null; then
    echo "FAIL: obsview accepted a non-JSONL file" >&2
    exit 1
fi

echo "== static analysis: repro --check over every experiment id"
# The pre-flight gate: every committed workload model must be clean of
# error diagnostics before any experiment driver will touch it.
cargo run --release --offline -q -p fcm-bench --bin repro -- --check > target/verify/check_all.txt
grep -q "paper: 0 error" target/verify/check_all.txt || {
    echo "FAIL: repro --check did not report a clean paper model" >&2
    exit 1
}
grep -q "avionics: 0 error" target/verify/check_all.txt || {
    echo "FAIL: repro --check did not report a clean avionics model" >&2
    exit 1
}

echo "== static analysis: checktool JSON schema + determinism"
set +e
FCM_SWEEP_THREADS=1 cargo run --release --offline -q -p fcm-bench --bin checktool -- --json > target/verify/check_seq.json
seq_rc=$?
FCM_SWEEP_THREADS=4 cargo run --release --offline -q -p fcm-bench --bin checktool -- --json > target/verify/check_par.json
par_rc=$?
set -e
if [ "$seq_rc" -ne 0 ] || [ "$par_rc" -ne 0 ]; then
    echo "FAIL: checktool found errors in a committed workload model" >&2
    exit 1
fi
grep -q '"schema": "fcm-check/v1"' target/verify/check_seq.json || {
    echo "FAIL: checktool JSON is missing the schema tag" >&2
    exit 1
}
if ! cmp -s target/verify/check_seq.json target/verify/check_par.json; then
    echo "FAIL: checktool output differs across FCM_SWEEP_THREADS" >&2
    exit 1
fi

echo "== contracts: emit -> check round trip is clean + thread-count determinism"
# The synthesized set is the tightest passing one, so re-checking the
# model against its own emitted contracts must be clean (C017–C022
# armed); and the contract-bearing report must be byte-identical
# whatever FCM_SWEEP_THREADS says.
cargo run --release --offline -q -p fcm-bench --bin checktool -- avionics --emit-contracts \
    > target/verify/avionics.contracts.json
grep -q '"schema": "fcm-contracts/v1"' target/verify/avionics.contracts.json || {
    echo "FAIL: --emit-contracts did not print an fcm-contracts/v1 document" >&2
    exit 1
}
FCM_SWEEP_THREADS=1 cargo run --release --offline -q -p fcm-bench --bin checktool -- \
    avionics --contracts target/verify/avionics.contracts.json --json \
    > target/verify/contracts_seq.json
FCM_SWEEP_THREADS=4 cargo run --release --offline -q -p fcm-bench --bin checktool -- \
    avionics --contracts target/verify/avionics.contracts.json --json \
    > target/verify/contracts_par.json
if ! cmp -s target/verify/contracts_seq.json target/verify/contracts_par.json; then
    echo "FAIL: contract-bearing report differs across FCM_SWEEP_THREADS" >&2
    exit 1
fi

echo "== contracts: a violated guarantee is caught (exit 1, C017)"
# Zero out every guarantee: each FCM's actual row sum now exceeds it.
sed 's/"guarantee": [0-9.eE+-]*/"guarantee": 0.0/' \
    target/verify/avionics.contracts.json > target/verify/broken.contracts.json
set +e
cargo run --release --offline -q -p fcm-bench --bin checktool -- \
    avionics --contracts target/verify/broken.contracts.json \
    > target/verify/contracts_broken.txt
contracts_rc=$?
set -e
if [ "$contracts_rc" -ne 1 ]; then
    echo "FAIL: broken contracts exited $contracts_rc, expected 1" >&2
    exit 1
fi
grep -q "C017" target/verify/contracts_broken.txt || {
    echo "FAIL: broken contracts did not trip the guarantee check" >&2
    exit 1
}

echo "== static analysis: the broken model is caught (exit 1)"
set +e
cargo run --release --offline -q -p fcm-bench --bin checktool -- --broken-e14 > target/verify/check_broken.txt
broken_rc=$?
set -e
if [ "$broken_rc" -ne 1 ]; then
    echo "FAIL: checktool --broken-e14 exited $broken_rc, expected 1" >&2
    exit 1
fi
grep -q "C012" target/verify/check_broken.txt || {
    echo "FAIL: the broken model did not trip the anti-affinity check" >&2
    exit 1
}

echo "== archived repro_output.txt is not stale (T1 section)"
# PR 3 shipped a stale archive once; this guard re-runs T1 and diffs it
# against the committed file (minus `# ` wall-clock telemetry lines).
t1_archived=$(awk '/^=== T1 /{f=1} f && /^=== / && !/^=== T1 /{exit} f' repro_output.txt | grep -v '^# \|^$')
t1_fresh=$(cargo run --release --offline -q -p fcm-bench --bin repro -- t1 | grep -v '^# \|^$')
if [ "$t1_archived" != "$t1_fresh" ]; then
    echo "FAIL: repro_output.txt T1 section is stale — regenerate with" >&2
    echo "      cargo run --release -p fcm-bench --bin repro > repro_output.txt" >&2
    exit 1
fi

serve_bin=target/release/fcm-serve
servegen_bin=target/release/servegen

# Waits for the daemon to bind its unix socket (arg 1).
wait_for_socket() {
    for _ in $(seq 1 200); do
        [ -S "$1" ] && return 0
        sleep 0.05
    done
    echo "FAIL: daemon never bound $1" >&2
    exit 1
}

echo "== online service: golden transcript + obs + SIGTERM drain"
rm -f target/verify/serve.sock target/verify/obs_serve.jsonl
"$serve_bin" --model paper --socket target/verify/serve.sock \
    --obs-out target/verify/obs_serve.jsonl > target/verify/serve_daemon.log 2>&1 &
serve_pid=$!
wait_for_socket target/verify/serve.sock
"$servegen_bin" --socket target/verify/serve.sock --timeout 30000 \
    --script scripts/serve_session.jsonl > target/verify/serve_transcript.txt
if ! cmp -s scripts/serve_session.golden target/verify/serve_transcript.txt; then
    echo "FAIL: serve transcript drifted from scripts/serve_session.golden" >&2
    diff scripts/serve_session.golden target/verify/serve_transcript.txt >&2 || true
    exit 1
fi
# Every mutation stayed on the incremental Eq. 4 path.
tail -1 target/verify/serve_transcript.txt | grep -q '"full_condenses":1' || {
    echo "FAIL: serve session fell off the incremental path" >&2
    exit 1
}
kill -TERM "$serve_pid"
set +e; wait "$serve_pid"; serve_rc=$?; set -e
if [ "$serve_rc" -ne 0 ]; then
    echo "FAIL: fcm-serve SIGTERM drain exited $serve_rc, expected 0" >&2
    exit 1
fi
grep -q "serve.apply_ns" target/verify/obs_serve.jsonl || {
    echo "FAIL: serve obs log is missing the apply histogram" >&2
    exit 1
}
cargo run --release --offline -q -p fcm-bench --bin obsview -- \
    target/verify/obs_serve.jsonl | grep -q "serve.apply_ns" || {
    echo "FAIL: obsview does not render the serve histograms" >&2
    exit 1
}

echo "== telemetry plane: recorder on/off responses byte-identical"
# The observation contract extends to the wire: flight recorder enabled
# (the default) vs --no-flight must not change one response byte.
rm -f target/verify/serve.sock
"$serve_bin" --model paper --socket target/verify/serve.sock \
    --no-flight > /dev/null 2>&1 &
serve_pid=$!
wait_for_socket target/verify/serve.sock
"$servegen_bin" --socket target/verify/serve.sock --timeout 30000 \
    --script scripts/serve_session.jsonl > target/verify/serve_noflight.txt
kill -TERM "$serve_pid"
set +e; wait "$serve_pid"; set -e
if ! cmp -s target/verify/serve_transcript.txt target/verify/serve_noflight.txt; then
    echo "FAIL: serve responses differ with the flight recorder disabled" >&2
    exit 1
fi

echo "== telemetry plane: subscription golden + SIGTERM flight dump"
# One daemon serves both checks: a live subscription streams the
# scripted mutations (ack + events + end, byte-compared against the
# golden), then SIGTERM dumps the flight ring those same events landed
# in.
rm -f target/verify/serve_sub.sock target/verify/flight.jsonl
"$serve_bin" --model paper --socket target/verify/serve_sub.sock \
    --heartbeat-every 2 --flight-out target/verify/flight.jsonl \
    > /dev/null 2>&1 &
serve_pid=$!
wait_for_socket target/verify/serve_sub.sock
"$servegen_bin" --socket target/verify/serve_sub.sock --timeout 30000 \
    --script scripts/serve_subscribe.jsonl --subscribe-transcript 6 \
    > target/verify/serve_subscribe.txt
if ! cmp -s scripts/serve_subscribe.golden target/verify/serve_subscribe.txt; then
    echo "FAIL: subscription stream drifted from scripts/serve_subscribe.golden" >&2
    diff scripts/serve_subscribe.golden target/verify/serve_subscribe.txt >&2 || true
    exit 1
fi
kill -TERM "$serve_pid"
set +e; wait "$serve_pid"; serve_rc=$?; set -e
if [ "$serve_rc" -ne 0 ]; then
    echo "FAIL: fcm-serve SIGTERM drain exited $serve_rc, expected 0" >&2
    exit 1
fi
if [ ! -f target/verify/flight.jsonl ]; then
    echo "FAIL: SIGTERM drain did not dump target/verify/flight.jsonl" >&2
    exit 1
fi
grep -q '"flight":"sigterm"' target/verify/flight.jsonl || {
    echo "FAIL: flight dump is missing the sigterm reason" >&2
    exit 1
}
grep -q '"schema":"fcm-obs/v1"' target/verify/flight.jsonl || {
    echo "FAIL: flight dump is missing the fcm-obs/v1 schema tag" >&2
    exit 1
}
grep -q '"name":"mutation"' target/verify/flight.jsonl || {
    echo "FAIL: flight dump recorded no mutation events" >&2
    exit 1
}
cargo run --release --offline -q -p fcm-bench --bin obsview -- \
    target/verify/flight.jsonl | grep -q 'flight dump: reason "sigterm"' || {
    echo "FAIL: obsview does not render the flight dump" >&2
    exit 1
}

echo "== obsview: truncated trailing line exits 2"
head -c -5 target/verify/flight.jsonl > target/verify/flight_torn.jsonl
set +e
cargo run --release --offline -q -p fcm-bench --bin obsview -- \
    target/verify/flight_torn.jsonl > /dev/null 2>&1
torn_rc=$?
set -e
if [ "$torn_rc" -ne 2 ]; then
    echo "FAIL: obsview exited $torn_rc on a truncated log, expected 2" >&2
    exit 1
fi

echo "== online service: kill -9 + --resume is byte-identical"
rm -rf target/verify/serve_state_ref target/verify/serve_state_kill
rm -f target/verify/serve_r.sock
# Reference: one daemon lives through part 1 + part 2.
"$serve_bin" --model paper --socket target/verify/serve_r.sock \
    --state-dir target/verify/serve_state_ref --snapshot-every 2 > /dev/null 2>&1 &
serve_pid=$!
wait_for_socket target/verify/serve_r.sock
"$servegen_bin" --socket target/verify/serve_r.sock \
    --script scripts/serve_resume_part1.jsonl > /dev/null
"$servegen_bin" --socket target/verify/serve_r.sock \
    --script scripts/serve_resume_part2.jsonl > target/verify/serve_ref.txt
kill -TERM "$serve_pid"
set +e; wait "$serve_pid"; set -e
rm -f target/verify/serve_r.sock
# Crash drill: part 1, kill -9 (no drain, no final snapshot), --resume,
# part 2. Acked mutations are journaled before the ack, so the dump at
# the end of part 2 must match the reference byte-for-byte.
"$serve_bin" --model paper --socket target/verify/serve_r.sock \
    --state-dir target/verify/serve_state_kill --snapshot-every 2 > /dev/null 2>&1 &
serve_pid=$!
wait_for_socket target/verify/serve_r.sock
"$servegen_bin" --socket target/verify/serve_r.sock \
    --script scripts/serve_resume_part1.jsonl > /dev/null
kill -9 "$serve_pid"
set +e; wait "$serve_pid"; set -e
rm -f target/verify/serve_r.sock
"$serve_bin" --model paper --socket target/verify/serve_r.sock \
    --state-dir target/verify/serve_state_kill --resume > /dev/null 2>&1 &
serve_pid=$!
wait_for_socket target/verify/serve_r.sock
"$servegen_bin" --socket target/verify/serve_r.sock \
    --script scripts/serve_resume_part2.jsonl > target/verify/serve_resumed.txt
kill -TERM "$serve_pid"
set +e; wait "$serve_pid"; set -e
if ! cmp -s <(tail -1 target/verify/serve_ref.txt) <(tail -1 target/verify/serve_resumed.txt); then
    echo "FAIL: resumed model dump differs from the straight-through run" >&2
    exit 1
fi

echo "== crash-point durability matrix (crashdrill --quick)"
# Every write/flush/rename IO site of the scripted session, crashed
# in-process and resumed: zero acknowledged mutations may be lost.
cargo run --release --offline -q -p fcm-serve --bin crashdrill -- --quick

echo "== degraded mode: journal failure serves read-only, drains clean"
rm -rf target/verify/serve_state_deg
rm -f target/verify/serve_d.sock
"$serve_bin" --model paper --socket target/verify/serve_d.sock \
    --state-dir target/verify/serve_state_deg \
    --fault-plan 'journal.*:eio' > /dev/null 2>&1 &
serve_pid=$!
wait_for_socket target/verify/serve_d.sock
printf '%s\n%s\n' \
    '{"op":"set_attr","name":"p8","criticality":2}' \
    '{"op":"stats","id":1}' \
    | "$servegen_bin" --socket target/verify/serve_d.sock --timeout 30000 \
        --script - > target/verify/serve_degraded.txt
# The mutation is rejected with the structured degraded error...
sed -n 2p target/verify/serve_degraded.txt | grep -q '"degraded":true' || {
    echo "FAIL: journal failure did not yield a degraded rejection" >&2
    exit 1
}
# ...but the read path still answers, and reports the transition.
sed -n 3p target/verify/serve_degraded.txt \
    | grep -q '"degraded":true.*"degraded_transitions":1.*"ok":true' || {
    echo "FAIL: degraded daemon stopped answering queries" >&2
    exit 1
}
# Degraded entry auto-dumped the flight ring next to the durable state
# — the post-mortem file explaining *why* the daemon degraded. (Checked
# before the drain: the SIGTERM dump later rewrites the same file.)
grep -q '"flight":"degraded"' target/verify/serve_state_deg/flight.jsonl || {
    echo "FAIL: degraded entry did not auto-dump the flight ring" >&2
    exit 1
}
kill -TERM "$serve_pid"
set +e; wait "$serve_pid"; deg_rc=$?; set -e
if [ "$deg_rc" -ne 0 ]; then
    echo "FAIL: degraded SIGTERM drain exited $deg_rc, expected 0" >&2
    exit 1
fi
# After the drain the SIGTERM dump has rewritten the file, but the ring
# still carried the degraded transition event itself.
grep -q '"name":"degraded"' target/verify/serve_state_deg/flight.jsonl || {
    echo "FAIL: degraded flight dump is missing the degraded event" >&2
    exit 1
}

echo "== source-invariant lint gate (srclint)"
cargo run --release --offline -q -p fcm-bench --bin srclint

echo "== bench artefact schema (scripts/check_bench_schema.sh)"
scripts/check_bench_schema.sh

echo "== pool panic containment"
cargo test -q -p fcm-substrate --offline pool_survives_a_panicking_job

echo "== dependency hermeticity"
if grep -En 'rand|serde|crossbeam|parking_lot|bytes|proptest|criterion' \
    Cargo.toml crates/*/Cargo.toml; then
    echo "FAIL: external dependency name found in a manifest" >&2
    exit 1
fi
# The lockfile is ground truth: path dependencies carry no `source`
# line, so any `source = ` entry means a registry/git crate crept in.
if grep -q 'source = ' Cargo.lock; then
    echo "FAIL: Cargo.lock references a non-path source" >&2
    exit 1
fi

echo "verify: OK"
