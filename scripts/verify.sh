#!/usr/bin/env bash
# Tier-1 verification: hermetic offline build, full test suite, a repro
# smoke run, and a guard that no external registry dependency has crept
# back into any manifest or the lockfile.
#
# The workspace builds with zero external crates by design (see
# DESIGN.md §3); everything lives in crates/substrate. Run this from the
# repo root before merging.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release --offline"
cargo build --release --offline

echo "== cargo test -q --workspace --offline"
cargo test -q --workspace --offline

echo "== repro smoke (T1)"
out=$(cargo run --release --offline -q -p fcm-bench --bin repro -- t1)
echo "$out" | grep -q "Table 1" || {
    echo "FAIL: repro t1 did not render Table 1" >&2
    exit 1
}

echo "== dependency hermeticity"
if grep -En 'rand|serde|crossbeam|parking_lot|bytes|proptest|criterion' \
    Cargo.toml crates/*/Cargo.toml; then
    echo "FAIL: external dependency name found in a manifest" >&2
    exit 1
fi
# The lockfile is ground truth: path dependencies carry no `source`
# line, so any `source = ` entry means a registry/git crate crept in.
if grep -q 'source = ' Cargo.lock; then
    echo "FAIL: Cargo.lock references a non-path source" >&2
    exit 1
fi

echo "verify: OK"
