#!/usr/bin/env bash
# Validates every committed BENCH_*.json artefact against the
# fcm-bench/v1 schema (see DESIGN.md §Observability). Thin wrapper over
# the check_bench_schema binary so CI and humans run the same check;
# wired into scripts/verify.sh.

set -euo pipefail
cd "$(dirname "$0")/.."

shopt -s nullglob
artefacts=(BENCH_*.json)
if [ ${#artefacts[@]} -eq 0 ]; then
    echo "check_bench_schema: no BENCH_*.json artefacts found" >&2
    exit 1
fi

cargo run --release --offline -q -p fcm-bench --bin check_bench_schema -- "${artefacts[@]}"
