//! # DDSI — Dependability-Driven Software Integration
//!
//! A Rust implementation of the framework from N. Suri, S. Ghosh and
//! T. Marlowe, *"A Framework for Dependability Driven Software
//! Integration"* (ICDCS 1998), together with the substrates the framework
//! presupposes: a real-time scheduling analyser, a discrete-event
//! multiprocessor simulator with fault injection, graph condensation and
//! min-cut machinery, and a Monte-Carlo reliability evaluator.
//!
//! This crate is a facade: it re-exports the workspace crates under one
//! name and provides a [`prelude`]. See the individual crates for depth:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `fcm-core` | FCM hierarchy, rules R1–R5, influence (Eq. 1–2), separation (Eq. 3), cluster influence (Eq. 4) |
//! | [`graph`] | `fcm-graph` | digraphs, Stoer–Wagner min-cut, condensation, walk-series matrices |
//! | [`sched`] | `fcm-sched` | EDF feasibility, non-preemptive branch-and-bound, periodic tests |
//! | [`sim`] | `fcm-sim` | discrete-event simulator, fault injection, influence measurement |
//! | [`alloc`] | `fcm-alloc` | SW/HW graphs, replica expansion, heuristics H1–H3, mapping approaches A/B |
//! | [`eval`] | `fcm-eval` | mapping quality metrics, mission reliability, strategy comparison |
//! | [`workloads`] | `fcm-workloads` | the paper's §6 example, random graphs, an avionics suite |
//! | [`check`] | `fcm-check` | design-time static analyzer: diagnostics `C001`–`C016` over the whole model |
//!
//! # Quickstart
//!
//! ```
//! use ddsi::prelude::*;
//!
//! // Build a small SW graph, cluster it with H1, map it with Approach A.
//! let mut b = SwGraphBuilder::new();
//! let a = b.add_process("a", AttributeSet::default().with_criticality(9));
//! let c = b.add_process("b", AttributeSet::default().with_criticality(2));
//! b.add_influence(a, c, 0.5)?;
//! let sw = b.build();
//! let hw = HwGraph::complete(2);
//! let clustering = h1(&sw, 2)?;
//! let mapping = approach_a(&sw, &clustering, &hw, &ImportanceWeights::default())?;
//! assert_eq!(mapping.len(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use fcm_alloc as alloc;
pub use fcm_check as check;
pub use fcm_core as core;
pub use fcm_eval as eval;
pub use fcm_graph as graph;
pub use fcm_sched as sched;
pub use fcm_sim as sim;
pub use fcm_workloads as workloads;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use fcm_alloc::heuristics::{h1, h1_pair_all, h2, h3};
    pub use fcm_alloc::mapping::{approach_a, approach_b, criticality_pairing, timing_refinement};
    pub use fcm_alloc::replication::expand_replicas;
    pub use fcm_alloc::sw::SwGraphBuilder;
    pub use fcm_alloc::{AllocError, Clustering, HwGraph, HwNode, Mapping, SwGraph};
    pub use fcm_core::certification::CertificationLedger;
    pub use fcm_core::ladder::{GenericFcmHierarchy, LevelLadder};
    pub use fcm_core::separation::SeparationAnalysis;
    pub use fcm_core::{
        cluster_influence, AttributeSet, CompositionKind, Criticality, FactorKind, FaultFactor,
        FaultTolerance, FcmError, FcmHierarchy, HierarchyLevel, ImportanceWeights, Influence,
        IsolationTechnique, Probability, TimingConstraint,
    };
    pub use fcm_eval::platform::{select_platform, PlatformOption};
    pub use fcm_eval::tradeoff::integration_sweep;
    pub use fcm_eval::{Comparison, MappingQuality, ReliabilityModel};
    pub use fcm_graph::algo::BisectPolicy;
    pub use fcm_graph::{DiGraph, Matrix, NodeIdx};
    pub use fcm_sched::{edf, Job, JobSet};
    pub use fcm_sim::{InfluenceCampaign, Injection, SystemSpecBuilder};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_resolve() {
        use crate::prelude::*;
        let _ = AttributeSet::default();
        let _ = HwGraph::complete(1);
        let _ = ImportanceWeights::default();
    }
}
