//! End-to-end reliability claims: the integration decisions the paper
//! argues for must actually improve mission reliability in the
//! Monte-Carlo model (the E4 experiment's acceptance tests).

use ddsi::prelude::*;
use ddsi::workloads::avionics;

fn model(trials: u64) -> ReliabilityModel {
    ReliabilityModel {
        p_hw: 0.05,
        p_sw: 0.05,
        cross_node_attenuation: 0.2,
        critical_at: 7,
        trials,
        seed: 77,
    }
}

#[test]
fn replication_beats_simplex_for_the_critical_function() {
    // The expanded suite (TMR autopilot) vs the raw suite (single copy),
    // both integrated with H1 + Approach A.
    let weights = ImportanceWeights::default();
    let m = model(30_000);

    let (raw, _) = avionics::suite();
    let mut hw4 = HwGraph::complete(4);
    hw4.node_mut(NodeIdx(0))
        .expect("hw0 exists")
        .resources
        .insert("display".into());
    hw4.node_mut(NodeIdx(1))
        .expect("hw1 exists")
        .resources
        .insert("radio".into());
    let c_raw = h1(&raw, 4).unwrap();
    let map_raw = approach_a(&raw, &c_raw, &hw4, &weights).unwrap();
    let est_raw = m.evaluate(&raw, &c_raw, &map_raw);

    let (expanded, _) = avionics::expanded_suite();
    let hw6 = avionics::platform();
    let c_rep = h1(&expanded.graph, 6).unwrap();
    let map_rep = approach_a(&expanded.graph, &c_rep, &hw6, &weights).unwrap();
    let est_rep = m.evaluate(&expanded.graph, &c_rep, &map_rep);

    assert!(
        est_rep.mission_failure < est_raw.mission_failure,
        "replicated {} vs simplex {}",
        est_rep.mission_failure,
        est_raw.mission_failure
    );
}

#[test]
fn approach_b_minimises_critical_colocation() {
    let (expanded, _) = avionics::expanded_suite();
    let g = &expanded.graph;
    let hw = avionics::platform();
    let weights = ImportanceWeights::default();

    let c_infl = h1(g, 6).unwrap();
    let m_infl = approach_a(g, &c_infl, &hw, &weights).unwrap();
    let q_infl = MappingQuality::evaluate(g, &c_infl, &m_infl, &hw, 7);

    let (c_crit, m_crit) = approach_b(g, &hw, &weights).unwrap();
    let q_crit = MappingQuality::evaluate(g, &c_crit, &m_crit, &hw, 7);

    // Criticality pairing spreads the critical functions.
    assert!(
        q_crit.critical_colocations <= q_infl.critical_colocations,
        "B: {} vs H1: {}",
        q_crit.critical_colocations,
        q_infl.critical_colocations
    );
    assert!(q_crit.max_criticality_per_node <= q_infl.max_criticality_per_node);
}

#[test]
fn containing_influence_on_node_boundaries_pays_off() {
    // Compare H1 (influence containment) against a deliberately bad
    // clustering (anti-H1: split the strongest pairs) on the same
    // workload, same platform.
    let (expanded, _) = avionics::expanded_suite();
    let g = &expanded.graph;
    let hw = avionics::platform();
    let weights = ImportanceWeights::default();
    let m = model(30_000);

    let c_good = h1(g, 6).unwrap();
    let map_good = approach_a(g, &c_good, &hw, &weights).unwrap();
    let q_good = MappingQuality::evaluate(g, &c_good, &map_good, &hw, 7);

    // Adversarial clustering: reverse H1's grouping preference by pairing
    // the *least* mutually influencing feasible nodes via criticality
    // pairing (which ignores influence entirely).
    let c_bad = criticality_pairing(g, 6).unwrap();
    let map_bad = approach_a(g, &c_bad, &hw, &weights).unwrap();
    let q_bad = MappingQuality::evaluate(g, &c_bad, &map_bad, &hw, 7);

    // H1's whole point: less influence crosses node boundaries.
    assert!(
        q_good.cross_influence <= q_bad.cross_influence + 1e-9,
        "H1 {} vs pairing {}",
        q_good.cross_influence,
        q_bad.cross_influence
    );
    // Both are valid integrations, so reliability is defined for both.
    let r_good = m.evaluate(g, &c_good, &map_good);
    let r_bad = m.evaluate(g, &c_bad, &map_bad);
    assert!(r_good.trials == 30_000 && r_bad.trials == 30_000);
}

#[test]
fn stronger_fcr_boundaries_reduce_mission_failure() {
    let (expanded, _) = avionics::expanded_suite();
    let g = &expanded.graph;
    let hw = avionics::platform();
    let weights = ImportanceWeights::default();
    let c = h1(g, 6).unwrap();
    let mp = approach_a(g, &c, &hw, &weights).unwrap();

    let leaky = ReliabilityModel {
        cross_node_attenuation: 1.0,
        ..model(30_000)
    }
    .evaluate(g, &c, &mp);
    let tight = ReliabilityModel {
        cross_node_attenuation: 0.05,
        ..model(30_000)
    }
    .evaluate(g, &c, &mp);
    assert!(
        tight.mission_failure < leaky.mission_failure,
        "tight {} vs leaky {}",
        tight.mission_failure,
        leaky.mission_failure
    );
    assert!(tight.mean_failed_processes < leaky.mean_failed_processes);
}

#[test]
fn comparison_harness_runs_all_strategies_on_the_suite() {
    let (expanded, _) = avionics::expanded_suite();
    let g = &expanded.graph;
    let hw = avionics::platform();
    let weights = ImportanceWeights::default();
    let m = model(2_000);
    let mut cmp = Comparison::new();
    cmp.run_strategy("H1", g, &hw, &m, || {
        let c = h1(g, 6)?;
        let mp = approach_a(g, &c, &hw, &weights)?;
        Ok((c, mp))
    });
    cmp.run_strategy("H2", g, &hw, &m, || {
        let c = h2(g, 6, BisectPolicy::LargestPart)?;
        let mp = approach_a(g, &c, &hw, &weights)?;
        Ok((c, mp))
    });
    cmp.run_strategy("H3", g, &hw, &m, || {
        let c = h3(g, 6, &weights)?;
        let mp = approach_a(g, &c, &hw, &weights)?;
        Ok((c, mp))
    });
    cmp.run_strategy("B", g, &hw, &m, || approach_b(g, &hw, &weights));
    assert_eq!(cmp.outcomes().len() + cmp.failures().len(), 4);
    assert!(cmp.outcomes().len() >= 3, "failures: {:?}", cmp.failures());
}
