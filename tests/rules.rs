//! Integration tests of the composition rules R1–R5 across a realistic
//! three-level hierarchy (the avionics suite decomposed into processes,
//! tasks, and procedures).

use ddsi::prelude::*;

/// Builds a three-level avionics hierarchy:
/// two processes, each with tasks and procedures.
fn avionics_hierarchy() -> (FcmHierarchy, Ids) {
    let mut h = FcmHierarchy::new();
    let nav = h
        .add_root(
            "nav",
            HierarchyLevel::Process,
            AttributeSet::default()
                .with_criticality(7)
                .with_timing(0, 40, 6),
        )
        .unwrap();
    let guidance = h
        .add_root(
            "guidance",
            HierarchyLevel::Process,
            AttributeSet::default()
                .with_criticality(9)
                .with_timing(0, 20, 5),
        )
        .unwrap();
    let kalman = h
        .add_child(nav, "kalman", AttributeSet::default().with_criticality(7))
        .unwrap();
    let wpt = h
        .add_child(
            nav,
            "waypoints",
            AttributeSet::default().with_criticality(4),
        )
        .unwrap();
    let law = h
        .add_child(
            guidance,
            "control_law",
            AttributeSet::default().with_criticality(9),
        )
        .unwrap();
    let predict = h
        .add_child(
            kalman,
            "predict",
            AttributeSet::default().with_criticality(6),
        )
        .unwrap();
    let update = h
        .add_child(
            kalman,
            "update",
            AttributeSet::default().with_criticality(7),
        )
        .unwrap();
    let gains = h
        .add_child(law, "gains", AttributeSet::default().with_criticality(9))
        .unwrap();
    (
        h,
        Ids {
            nav,
            guidance,
            kalman,
            wpt,
            law,
            predict,
            update,
            gains,
        },
    )
}

struct Ids {
    nav: FcmId,
    guidance: FcmId,
    kalman: FcmId,
    wpt: FcmId,
    law: FcmId,
    predict: FcmId,
    update: FcmId,
    gains: FcmId,
}

use ddsi::core::FcmId;

#[test]
fn the_hierarchy_verifies() {
    let (h, _) = avionics_hierarchy();
    h.verify().unwrap();
    assert_eq!(h.len(), 8);
    assert_eq!(h.roots().count(), 2);
    assert_eq!(h.at_level(HierarchyLevel::Procedure).count(), 3);
}

#[test]
fn r2_sharing_the_kalman_predictor_is_impossible_but_duplication_works() {
    let (mut h, ids) = avionics_hierarchy();
    // The control law wants the predict procedure too. Sharing violates
    // R2; duplication is the sanctioned alternative.
    let copy = h.duplicate_into(ids.predict, ids.law).unwrap();
    assert_ne!(copy, ids.predict);
    assert_eq!(h.fcm(copy).unwrap().parent(), Some(ids.law));
    assert_eq!(h.fcm(ids.predict).unwrap().parent(), Some(ids.kalman));
    h.verify().unwrap();
}

#[test]
fn r4_cross_process_task_integration_merges_the_processes() {
    let (mut h, ids) = avionics_hierarchy();
    // Integrating the kalman task (under nav) with the control law task
    // (under guidance) forces nav and guidance to merge.
    let merged_task = h
        .integrate_across(ids.kalman, ids.law, "kalman+law")
        .unwrap();
    let merged_process = h.fcm(merged_task).unwrap().parent().unwrap();
    assert!(h.fcm(ids.nav).is_err());
    assert!(h.fcm(ids.guidance).is_err());
    // The waypoint task moved under the merged process as well.
    assert_eq!(h.fcm(ids.wpt).unwrap().parent(), Some(merged_process));
    // Attribute combination is most-stringent: criticality 9 wins, merged
    // timing window is the intersection with summed work.
    let attrs = h.fcm(merged_process).unwrap().attributes();
    assert_eq!(attrs.criticality, Criticality(9));
    assert_eq!(attrs.timing.unwrap(), TimingConstraint::new(0, 20, 11));
    h.verify().unwrap();
}

#[test]
fn r5_retest_scales_with_fanout_not_tree_size() {
    let (h, ids) = avionics_hierarchy();
    let rt = h.retest_set(ids.predict).unwrap();
    assert_eq!(rt.parent, Some(ids.kalman));
    assert_eq!(rt.sibling_interfaces, vec![ids.update]);
    assert_eq!(rt.size(), 3);
    // Naive recertification of the nav tree touches 5 FCMs.
    assert_eq!(h.naive_retest_set(ids.predict).unwrap().len(), 5);
    // Sibling procedure in another task is untouched by R5.
    assert!(!rt.sibling_interfaces.contains(&ids.gains));
}

#[test]
fn merged_procedures_keep_isolation_semantics() {
    let (mut h, ids) = avionics_hierarchy();
    let merged = h
        .merge_siblings(ids.predict, ids.update, "predict_update")
        .unwrap();
    assert_eq!(h.fcm(merged).unwrap().level(), HierarchyLevel::Procedure);
    assert_eq!(h.fcm(merged).unwrap().parent(), Some(ids.kalman));
    // R5 after the merge: retesting the merged FCM touches the kalman
    // task only.
    let rt = h.retest_set(merged).unwrap();
    assert_eq!(rt.parent, Some(ids.kalman));
    assert!(rt.sibling_interfaces.is_empty());
    h.verify().unwrap();
}

#[test]
fn fault_classes_route_to_the_right_level() {
    use ddsi::core::FaultClass;
    // A memory footprint is a process-level concern; erroneous parameters
    // are procedure-level; timing overruns are task-level.
    assert_eq!(FaultClass::MemoryFootprint.level(), HierarchyLevel::Process);
    assert_eq!(
        FaultClass::ErroneousParameter.level(),
        HierarchyLevel::Procedure
    );
    assert_eq!(FaultClass::TimingOverrun.level(), HierarchyLevel::Task);
    // And each level handles its own classes exclusively.
    for level in HierarchyLevel::ALL {
        for &fc in level.fault_classes() {
            for other in HierarchyLevel::ALL {
                assert_eq!(other.handles(fc), other == level);
            }
        }
    }
}

#[test]
fn isolation_reduces_influence_through_eq1() {
    // A global-variable factor with and without information hiding.
    let raw = FaultFactor::new(FactorKind::GlobalVariable, 0.3, 0.8, 0.6).unwrap();
    let hidden = raw.with_isolation(IsolationTechnique::InformationHiding);
    let infl_raw = Influence::from_factors(&[raw]);
    let infl_hidden = Influence::from_factors(&[hidden]);
    assert!(infl_hidden.value() < infl_raw.value());
    // 0.3 · (0.8·0.2) · 0.6 = 0.0288
    assert!((infl_hidden.value() - 0.0288).abs() < 1e-12);
}

#[test]
fn replica_marks_survive_composition_attempts() {
    let (mut h, ids) = avionics_hierarchy();
    let law2 = h
        .add_child(
            ids.guidance,
            "control_law_b",
            AttributeSet::default().with_criticality(9),
        )
        .unwrap();
    h.mark_replicas(&[ids.law, law2]).unwrap();
    assert!(matches!(
        h.merge_siblings(ids.law, law2, "laws"),
        Err(FcmError::ReplicaConflict { .. })
    ));
}
