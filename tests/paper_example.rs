//! Integration tests over the paper's §6 worked example: the full
//! pipeline from Table 1 to a validated six-node mapping.

use ddsi::prelude::*;
use ddsi::workloads::paper;

#[test]
fn full_pipeline_table1_to_mapping() {
    let ex = paper::fig4_expansion();
    let hw = paper::hw_platform();
    let clustering = h1(&ex.graph, hw.len()).expect("six-node clustering exists");
    assert_eq!(clustering.len(), 6);
    let mapping = approach_a(&ex.graph, &clustering, &hw, &ImportanceWeights::default())
        .expect("mapping exists");
    mapping
        .validate(&ex.graph, &clustering, &hw)
        .expect("mapping is valid");
}

#[test]
fn replicas_end_up_on_distinct_hw_nodes() {
    let ex = paper::fig4_expansion();
    let hw = paper::hw_platform();
    for strategy in ["h1", "h1_pair_all", "h2", "h3", "crit"] {
        let clustering = match strategy {
            "h1" => h1(&ex.graph, 6).unwrap(),
            "h1_pair_all" => h1_pair_all(&ex.graph, 6).unwrap(),
            "h2" => h2(&ex.graph, 6, BisectPolicy::LargestPart).unwrap(),
            "h3" => h3(&ex.graph, 6, &ImportanceWeights::default()).unwrap(),
            _ => criticality_pairing(&ex.graph, 6).unwrap(),
        };
        let mapping =
            approach_a(&ex.graph, &clustering, &hw, &ImportanceWeights::default()).unwrap();
        // Collect the HW node of every replica of p1.
        let mut hosts = Vec::new();
        for (ci, cluster) in clustering.clusters().iter().enumerate() {
            for &n in cluster {
                let name = &ex.graph.node(n).unwrap().name;
                if name.starts_with("p1") && name.len() == 3 {
                    hosts.push(mapping.hw_of(ci).unwrap());
                }
            }
        }
        hosts.sort();
        let before = hosts.len();
        hosts.dedup();
        assert_eq!(before, 3, "{strategy}: p1 has three replicas");
        assert_eq!(hosts.len(), 3, "{strategy}: all on distinct HW nodes");
    }
}

#[test]
fn five_node_platform_is_infeasible_for_tmr_plus_duplexes() {
    // p1 needs 3 nodes, p2 and p3 two each, all disjoint pairs can share:
    // 3 nodes suffice for anti-affinity, but 2 do not.
    let ex = paper::fig4_expansion();
    assert!(h1(&ex.graph, 2).is_err());
    assert!(h1(&ex.graph, 3).is_ok());
}

#[test]
fn h1_reduction_monotonically_decreases_cluster_count() {
    let ex = paper::fig4_expansion();
    let mut last_cross = -1.0f64;
    for k in (6..=12).rev() {
        let c = h1(&ex.graph, k).unwrap();
        assert_eq!(c.len(), k);
        let cross = c.cross_influence(&ex.graph);
        if last_cross >= 0.0 {
            // H1's merges are nested, so coarser clusterings absorb more
            // influence internally and less crosses node boundaries.
            assert!(cross <= last_cross + 1e-9, "k={k}: {cross} vs {last_cross}");
        }
        last_cross = cross;
    }
}

#[test]
fn criticality_pairing_spreads_criticality() {
    let ex = paper::fig4_expansion();
    let crit = criticality_pairing(&ex.graph, 6).unwrap();
    let by_infl = h1(&ex.graph, 6).unwrap();
    let max_crit = |c: &Clustering| {
        c.clusters()
            .iter()
            .map(|grp| {
                grp.iter()
                    .map(|&n| ex.graph.node(n).unwrap().attributes.criticality.0)
                    .sum::<u32>()
            })
            .max()
            .unwrap()
    };
    // Most-with-least pairing never exceeds the influence-driven packing
    // in criticality concentration.
    assert!(max_crit(&crit) <= max_crit(&by_infl));
}

#[test]
fn separation_analysis_of_fig3_is_well_behaved() {
    let g = paper::fig3_graph();
    let analysis = SeparationAnalysis::from_graph(&g).expect("valid influence weights");
    for i in 0..8 {
        for j in 0..8 {
            if i == j {
                continue;
            }
            let s = analysis.separation(NodeIdx(i), NodeIdx(j), 4);
            assert!((0.0..=1.0).contains(&s), "sep({i},{j}) = {s}");
        }
    }
    // p2 -> p1 direct (0.7) dominates: lowest separation in the graph.
    let s21 = analysis.separation(NodeIdx(1), NodeIdx(0), 4);
    for i in 0..8 {
        for j in 0..8 {
            if i != j {
                assert!(analysis.separation(NodeIdx(i), NodeIdx(j), 4) >= s21 - 1e-9);
            }
        }
    }
}

#[test]
fn timing_refinement_respects_the_p5_p7_p8_conflict() {
    let ex = paper::fig4_expansion();
    for k in 4..=8 {
        let Ok(c) = timing_refinement(&ex.graph, k) else {
            continue;
        };
        for cluster in c.clusters() {
            let names: Vec<&str> = cluster
                .iter()
                .map(|&n| ex.graph.node(n).unwrap().name.as_str())
                .collect();
            let all_three = ["p5", "p7", "p8"].iter().all(|p| names.contains(p));
            assert!(!all_three, "k={k}: {names:?}");
        }
    }
}

#[test]
fn mapping_quality_of_the_example_is_reportable() {
    let ex = paper::fig4_expansion();
    let hw = paper::hw_platform();
    let c = h1(&ex.graph, 6).unwrap();
    let m = approach_a(&ex.graph, &c, &hw, &ImportanceWeights::default()).unwrap();
    let q = MappingQuality::evaluate(&ex.graph, &c, &m, &hw, 8);
    assert_eq!(q.clusters, 6);
    assert!(q.cross_influence > 0.0);
    assert!(q.min_cross_node_separation < 1.0);
}
