//! End-to-end constraint scenario: §4.3's attribute-driven placement
//! rules (pinning, anti-affinity, resources, capacity) interacting on one
//! realistic workload.

use ddsi::prelude::*;

/// A ground-station suite: a TMR tracker, two telemetry decoders that an
/// export-control rule forbids from sharing a processor, a GUI pinned to
/// the operator console, and a bulk archiver with heavy throughput.
fn suite() -> (SwGraph, [NodeIdx; 6]) {
    let mut b = SwGraphBuilder::new();
    let tracker = b.add_process(
        "tracker",
        AttributeSet::default()
            .with_criticality(9)
            .with_fault_tolerance(FaultTolerance::TMR)
            .with_throughput(0.5),
    );
    let dec_a = b.add_process(
        "decoder_a",
        AttributeSet::default().with_criticality(6).with_security(3),
    );
    let dec_b = b.add_process(
        "decoder_b",
        AttributeSet::default().with_criticality(6).with_security(3),
    );
    let gui = b.add_process("gui", AttributeSet::default().with_criticality(3));
    let archiver = b.add_process(
        "archiver",
        AttributeSet::default()
            .with_criticality(2)
            .with_throughput(3.0),
    );
    let health = b.add_process("health", AttributeSet::default().with_criticality(4));
    b.add_influence(tracker, dec_a, 0.4).unwrap();
    b.add_influence(tracker, dec_b, 0.4).unwrap();
    b.add_influence(dec_a, gui, 0.3).unwrap();
    b.add_influence(dec_b, gui, 0.3).unwrap();
    b.add_influence(dec_a, archiver, 0.2).unwrap();
    b.add_influence(health, tracker, 0.1).unwrap();
    b.forbid_colocation(&[dec_a, dec_b]).unwrap();
    b.pin_to_hw(gui, "console").unwrap();
    let g = b.build();
    (g, [tracker, dec_a, dec_b, gui, archiver, health])
}

fn platform() -> HwGraph {
    let nodes = vec![
        HwNode::new("console").with_capacity(2.0),
        HwNode::new("rack0").with_capacity(4.0),
        HwNode::new("rack1").with_capacity(4.0),
        HwNode::new("rack2").with_capacity(4.0),
        HwNode::new("rack3").with_capacity(4.0),
        HwNode::new("rack4").with_capacity(2.0),
    ];
    let mut links = Vec::new();
    for a in 0..6 {
        for b in (a + 1)..6 {
            links.push((a, b, 1.0));
        }
    }
    HwGraph::new(nodes, &links)
}

#[test]
fn all_constraints_hold_simultaneously_in_the_final_mapping() {
    let (g, _) = suite();
    let expanded = expand_replicas(&g);
    let g = &expanded.graph;
    let hw = platform();
    let clustering = h1(g, hw.len()).expect("feasible clustering");
    let mapping =
        approach_a(g, &clustering, &hw, &ImportanceWeights::default()).expect("feasible mapping");
    mapping.validate(g, &clustering, &hw).expect("valid");

    let host_of = |name: &str| {
        let (ci, _) = clustering
            .clusters()
            .iter()
            .enumerate()
            .find_map(|(ci, grp)| {
                grp.iter()
                    .find(|&&n| g.node(n).unwrap().name == name)
                    .map(|&n| (ci, n))
            })
            .unwrap_or_else(|| panic!("{name} not clustered"));
        hw.node(mapping.hw_of(ci).unwrap()).unwrap().name.clone()
    };

    // Pin: the GUI sits on the console.
    assert_eq!(host_of("gui"), "console");
    // Anti-affinity: the decoders live on different processors.
    assert_ne!(host_of("decoder_a"), host_of("decoder_b"));
    // Replica anti-affinity: the three tracker replicas are spread.
    let hosts: std::collections::BTreeSet<String> = ["trackera", "trackerb", "trackerc"]
        .iter()
        .map(|n| host_of(n))
        .collect();
    assert_eq!(hosts.len(), 3);
    // Capacity: the archiver (3.0) avoided the 2.0-capacity nodes.
    let archiver_host = host_of("archiver");
    assert_ne!(archiver_host, "console");
    assert_ne!(archiver_host, "rack4");
}

#[test]
fn criticality_pairing_also_satisfies_the_hard_constraints() {
    let (g, _) = suite();
    let expanded = expand_replicas(&g);
    let g = &expanded.graph;
    let clustering = criticality_pairing(g, 6).expect("feasible pairing");
    // The decoders never share a cluster despite having identical
    // criticality (prime most-with-least pairing targets).
    for grp in clustering.clusters() {
        let names: Vec<&str> = grp
            .iter()
            .map(|&n| g.node(n).unwrap().name.as_str())
            .collect();
        assert!(
            !(names.contains(&"decoder_a") && names.contains(&"decoder_b")),
            "{names:?}"
        );
    }
}

#[test]
fn an_underequipped_platform_is_rejected_with_a_reason() {
    let (g, _) = suite();
    let expanded = expand_replicas(&g);
    let g = &expanded.graph;
    // No node named "console": the pin cannot be satisfied.
    let bare = HwGraph::complete(6);
    let clustering = h1(g, 6).expect("clustering is platform-independent");
    let err = approach_a(g, &clustering, &bare, &ImportanceWeights::default()).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("no feasible sw-to-hw mapping"), "{msg}");
}
