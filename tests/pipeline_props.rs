//! Property-based tests over the whole integration pipeline: random
//! workloads in, validated clusterings and mappings out.

use ddsi::prelude::*;
use ddsi::workloads::random::RandomWorkload;
use proptest::prelude::*;

fn arb_workload() -> impl Strategy<Value = RandomWorkload> {
    (4usize..20, 0.0f64..0.6, 1u32..12, 0.0f64..0.4, any::<u64>()).prop_map(
        |(processes, density, max_criticality, replicated_fraction, seed)| RandomWorkload {
            processes,
            density,
            max_criticality,
            replicated_fraction,
            seed,
            ..RandomWorkload::default()
        },
    )
}

/// Minimum cluster count that can separate every replica group.
fn min_feasible_clusters(g: &SwGraph) -> usize {
    use std::collections::BTreeMap;
    let mut sizes: BTreeMap<u32, usize> = BTreeMap::new();
    for (_, n) in g.nodes() {
        if let Some(rg) = n.replica_group {
            *sizes.entry(rg).or_default() += 1;
        }
    }
    sizes.values().copied().max().unwrap_or(1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn h1_clusterings_are_valid_partitions(w in arb_workload()) {
        let g = expand_replicas(&w.generate()).graph;
        let lo = min_feasible_clusters(&g);
        let target = (g.node_count() / 2).max(lo).min(g.node_count());
        if let Ok(c) = h1(&g, target) {
            prop_assert_eq!(c.len(), target);
            let mut all: Vec<_> = c.clusters().iter().flatten().copied().collect();
            all.sort();
            all.dedup();
            prop_assert_eq!(all.len(), g.node_count());
        }
    }

    #[test]
    fn heuristics_never_colocate_replicas(w in arb_workload()) {
        let g = expand_replicas(&w.generate()).graph;
        let lo = min_feasible_clusters(&g);
        let target = ((g.node_count() * 2) / 3).max(lo).min(g.node_count());
        for c in [
            h1(&g, target),
            h2(&g, target, BisectPolicy::LargestPart),
            h3(&g, target, &ImportanceWeights::default()),
        ]
        .into_iter()
        .flatten()
        {
            for cluster in c.clusters() {
                for (k, &a) in cluster.iter().enumerate() {
                    for &b in &cluster[k + 1..] {
                        let na = g.node(a).unwrap();
                        let nb = g.node(b).unwrap();
                        prop_assert!(!na.is_replica_of(nb));
                    }
                }
            }
        }
    }

    #[test]
    fn condensed_probabilistic_influence_stays_in_unit_interval(w in arb_workload()) {
        let g = w.generate();
        let target = (g.node_count() / 2).max(1);
        if let Ok(c) = h1(&g, target) {
            let cond = c.condensed(&g);
            for (_, e) in cond.graph.edges() {
                prop_assert!((0.0..=1.0).contains(&e.weight), "{}", e.weight);
            }
        }
    }

    #[test]
    fn separation_is_a_probability_and_antitone_in_order(w in arb_workload()) {
        let g = w.generate();
        // Influence entries could in principle sum above 1 per pair; the
        // analysis clamps. Skip graphs with invalid weights (none are
        // generated, but the check keeps the property honest).
        let Ok(analysis) = SeparationAnalysis::from_graph(&g) else {
            return Ok(());
        };
        for i in g.node_indices().take(6) {
            for j in g.node_indices().take(6) {
                if i == j { continue; }
                let s2 = analysis.separation(i, j, 2);
                let s5 = analysis.separation(i, j, 5);
                prop_assert!((0.0..=1.0).contains(&s2));
                // More walk terms can only add influence.
                prop_assert!(s5 <= s2 + 1e-9);
            }
        }
    }

    #[test]
    fn cluster_influence_bounds(values in proptest::collection::vec(0.0f64..1.0, 0..8)) {
        let members: Vec<Influence> = values
            .iter()
            .map(|&v| Influence::new(v).unwrap())
            .collect();
        let combined = cluster_influence(&members).value();
        prop_assert!((0.0..=1.0).contains(&combined));
        let max = values.iter().copied().fold(0.0f64, f64::max);
        prop_assert!(combined >= max - 1e-12);
        let sum: f64 = values.iter().sum();
        prop_assert!(combined <= sum + 1e-12);
    }

    #[test]
    fn mapping_on_a_big_enough_platform_always_validates(w in arb_workload()) {
        let g = expand_replicas(&w.generate()).graph;
        let hw = HwGraph::complete(g.node_count());
        let c = Clustering::singletons(&g);
        let m = approach_a(&g, &c, &hw, &ImportanceWeights::default()).unwrap();
        prop_assert!(m.validate(&g, &c, &hw).is_ok());
    }

    #[test]
    fn edf_feasibility_is_monotone_in_deadline(
        est in 0u64..50,
        ct in 1u64..20,
        slack in 0u64..30,
    ) {
        let tight = Job::new(0, est, est + ct + slack, ct);
        let loose = Job::new(1, est, est + ct + slack + 10, ct);
        let tight_ok = edf::feasible(&JobSet::new(vec![tight]).unwrap());
        let loose_ok = edf::feasible(&JobSet::new(vec![loose]).unwrap());
        prop_assert!(tight_ok);
        prop_assert!(loose_ok);
    }

    #[test]
    fn merge_stringent_timing_never_widens(a_est in 0u64..20, a_len in 1u64..30,
                                           b_est in 0u64..20, b_len in 1u64..30) {
        let a = TimingConstraint::new(a_est, a_est + a_len + 5, 2);
        let b = TimingConstraint::new(b_est, b_est + b_len + 5, 3);
        let m = a.merge_stringent(b);
        prop_assert!(m.est >= a.est && m.est >= b.est);
        prop_assert!(m.tcd <= a.tcd && m.tcd <= b.tcd);
        prop_assert_eq!(m.ct, a.ct + b.ct);
    }
}
