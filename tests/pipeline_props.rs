//! Property-based tests over the whole integration pipeline: random
//! workloads in, validated clusterings and mappings out.

use ddsi::prelude::*;
use ddsi::workloads::random::RandomWorkload;
use fcm_substrate::prop;
use fcm_substrate::rng::Rng;
use fcm_substrate::{prop_assert, prop_assert_eq};

fn arb_workload(rng: &mut Rng, size: usize) -> RandomWorkload {
    let hi = 19usize.min(4 + size * 15 / 100).max(4);
    RandomWorkload {
        processes: rng.gen_range(4usize..=hi),
        density: rng.gen_range(0.0f64..0.6),
        max_criticality: rng.gen_range(1u32..12),
        replicated_fraction: rng.gen_range(0.0f64..0.4),
        seed: rng.gen(),
        ..RandomWorkload::default()
    }
}

/// Minimum cluster count that can separate every replica group.
fn min_feasible_clusters(g: &SwGraph) -> usize {
    use std::collections::BTreeMap;
    let mut sizes: BTreeMap<u32, usize> = BTreeMap::new();
    for (_, n) in g.nodes() {
        if let Some(rg) = n.replica_group {
            *sizes.entry(rg).or_default() += 1;
        }
    }
    sizes.values().copied().max().unwrap_or(1)
}

#[test]
fn h1_clusterings_are_valid_partitions() {
    prop::check_cases(
        "h1_clusterings_are_valid_partitions",
        48,
        arb_workload,
        |w| {
            let g = expand_replicas(&w.generate()).graph;
            let lo = min_feasible_clusters(&g);
            let target = (g.node_count() / 2).max(lo).min(g.node_count());
            if let Ok(c) = h1(&g, target) {
                prop_assert_eq!(c.len(), target);
                let mut all: Vec<_> = c.clusters().iter().flatten().copied().collect();
                all.sort();
                all.dedup();
                prop_assert_eq!(all.len(), g.node_count());
            }
            Ok(())
        },
    );
}

#[test]
fn heuristics_never_colocate_replicas() {
    prop::check_cases(
        "heuristics_never_colocate_replicas",
        48,
        arb_workload,
        |w| {
            let g = expand_replicas(&w.generate()).graph;
            let lo = min_feasible_clusters(&g);
            let target = ((g.node_count() * 2) / 3).max(lo).min(g.node_count());
            for c in [
                h1(&g, target),
                h2(&g, target, BisectPolicy::LargestPart),
                h3(&g, target, &ImportanceWeights::default()),
            ]
            .into_iter()
            .flatten()
            {
                for cluster in c.clusters() {
                    for (k, &a) in cluster.iter().enumerate() {
                        for &b in &cluster[k + 1..] {
                            let na = g.node(a).unwrap();
                            let nb = g.node(b).unwrap();
                            prop_assert!(!na.is_replica_of(nb));
                        }
                    }
                }
            }
            Ok(())
        },
    );
}

#[test]
fn condensed_probabilistic_influence_stays_in_unit_interval() {
    prop::check_cases(
        "condensed_probabilistic_influence_stays_in_unit_interval",
        48,
        arb_workload,
        |w| {
            let g = w.generate();
            let target = (g.node_count() / 2).max(1);
            if let Ok(c) = h1(&g, target) {
                let cond = c.condensed(&g);
                for (_, e) in cond.graph.edges() {
                    prop_assert!((0.0..=1.0).contains(&e.weight), "{}", e.weight);
                }
            }
            Ok(())
        },
    );
}

#[test]
fn separation_is_a_probability_and_antitone_in_order() {
    prop::check_cases(
        "separation_is_a_probability_and_antitone_in_order",
        48,
        arb_workload,
        |w| {
            let g = w.generate();
            // Influence entries could in principle sum above 1 per pair; the
            // analysis clamps. Skip graphs with invalid weights (none are
            // generated, but the check keeps the property honest).
            let Ok(analysis) = SeparationAnalysis::from_graph(&g) else {
                return Ok(());
            };
            for i in g.node_indices().take(6) {
                for j in g.node_indices().take(6) {
                    if i == j {
                        continue;
                    }
                    let s2 = analysis.separation(i, j, 2);
                    let s5 = analysis.separation(i, j, 5);
                    prop_assert!((0.0..=1.0).contains(&s2));
                    // More walk terms can only add influence.
                    prop_assert!(s5 <= s2 + 1e-9);
                }
            }
            Ok(())
        },
    );
}

#[test]
fn cluster_influence_bounds() {
    prop::check_cases(
        "cluster_influence_bounds",
        48,
        |rng, size| {
            let hi = 7usize.min(size * 7 / 100);
            let count = rng.gen_range(0..=hi);
            (0..count)
                .map(|_| rng.gen_range(0.0f64..1.0))
                .collect::<Vec<f64>>()
        },
        |values| {
            let members: Vec<Influence> = values
                .iter()
                .map(|&v| Influence::new(v).unwrap())
                .collect();
            let combined = cluster_influence(&members).value();
            prop_assert!((0.0..=1.0).contains(&combined));
            let max = values.iter().copied().fold(0.0f64, f64::max);
            prop_assert!(combined >= max - 1e-12);
            let sum: f64 = values.iter().sum();
            prop_assert!(combined <= sum + 1e-12);
            Ok(())
        },
    );
}

#[test]
fn mapping_on_a_big_enough_platform_always_validates() {
    prop::check_cases(
        "mapping_on_a_big_enough_platform_always_validates",
        48,
        arb_workload,
        |w| {
            let g = expand_replicas(&w.generate()).graph;
            let hw = HwGraph::complete(g.node_count());
            let c = Clustering::singletons(&g);
            let m = approach_a(&g, &c, &hw, &ImportanceWeights::default()).unwrap();
            prop_assert!(m.validate(&g, &c, &hw).is_ok());
            Ok(())
        },
    );
}

#[test]
fn edf_feasibility_is_monotone_in_deadline() {
    prop::check_cases(
        "edf_feasibility_is_monotone_in_deadline",
        48,
        |rng, _size| {
            (
                rng.gen_range(0u64..50),
                rng.gen_range(1u64..20),
                rng.gen_range(0u64..30),
            )
        },
        |&(est, ct, slack)| {
            let tight = Job::new(0, est, est + ct + slack, ct);
            let loose = Job::new(1, est, est + ct + slack + 10, ct);
            let tight_ok = edf::feasible(&JobSet::new(vec![tight]).unwrap());
            let loose_ok = edf::feasible(&JobSet::new(vec![loose]).unwrap());
            prop_assert!(tight_ok);
            prop_assert!(loose_ok);
            Ok(())
        },
    );
}

#[test]
fn merge_stringent_timing_never_widens() {
    prop::check_cases(
        "merge_stringent_timing_never_widens",
        48,
        |rng, _size| {
            (
                rng.gen_range(0u64..20),
                rng.gen_range(1u64..30),
                rng.gen_range(0u64..20),
                rng.gen_range(1u64..30),
            )
        },
        |&(a_est, a_len, b_est, b_len)| {
            let a = TimingConstraint::new(a_est, a_est + a_len + 5, 2);
            let b = TimingConstraint::new(b_est, b_est + b_len + 5, 3);
            let m = a.merge_stringent(b);
            prop_assert!(m.est >= a.est && m.est >= b.est);
            prop_assert!(m.tcd <= a.tcd && m.tcd <= b.tcd);
            prop_assert_eq!(m.ct, a.ct + b.ct);
            Ok(())
        },
    );
}
