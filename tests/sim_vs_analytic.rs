//! Measured-vs-analytic influence: the simulator's Monte-Carlo estimates
//! must agree with Eq. 1 / Eq. 2 on scenarios where the analytic value is
//! known in closed form (the E3 experiment's acceptance tests).

use ddsi::core::{FactorKind, FaultFactor, Influence, IsolationTechnique};
use ddsi::sim::model::{SchedulingPolicy, SystemSpec, SystemSpecBuilder};
use ddsi::sim::InfluenceCampaign;

/// One writer, one reader, single interaction within the horizon.
fn single_hop(p2: f64, p3: f64, isolate: bool) -> SystemSpec {
    let mut b = SystemSpecBuilder::new(1);
    let m = b.add_medium("gv", FactorKind::GlobalVariable, p2).unwrap();
    if isolate {
        b.isolate_medium(m, IsolationTechnique::InformationHiding)
            .unwrap();
    }
    b.task("writer", 0)
        .one_shot(0, 10, 1)
        .writes(m)
        .build()
        .unwrap();
    b.task("reader", 0)
        .one_shot(5, 10, 1)
        .reads(m)
        .vulnerability(p3)
        .build()
        .unwrap();
    b.build().unwrap()
}

#[test]
fn single_hop_matches_eq1_across_a_parameter_sweep() {
    for &(p2, p3) in &[(0.2, 0.9), (0.5, 0.5), (0.9, 0.3), (1.0, 1.0)] {
        let campaign = InfluenceCampaign::new(single_hop(p2, p3, false), 20, 3000, 1);
        let measured = campaign.measure_influence(0, 1).unwrap();
        let analytic = p2 * p3;
        assert!(
            (measured.estimate - analytic).abs() < 0.04,
            "p2={p2} p3={p3}: measured {} vs analytic {analytic}",
            measured.estimate
        );
    }
}

#[test]
fn isolation_shrinks_measured_influence_by_the_model_multiplier() {
    let base = InfluenceCampaign::new(single_hop(0.8, 1.0, false), 20, 4000, 3);
    let isolated = InfluenceCampaign::new(single_hop(0.8, 1.0, true), 20, 4000, 3);
    let raw = base.measure_influence(0, 1).unwrap().estimate;
    let hidden = isolated.measure_influence(0, 1).unwrap().estimate;
    // Information hiding multiplies transmission by 0.2: 0.8 → 0.16.
    assert!((raw - 0.8).abs() < 0.04, "raw {raw}");
    assert!((hidden - 0.16).abs() < 0.03, "hidden {hidden}");
}

#[test]
fn parallel_paths_match_eq2() {
    // Writer feeds the reader through three independent media.
    let ps = [0.3, 0.5, 0.2];
    let mut b = SystemSpecBuilder::new(1);
    let media: Vec<_> = ps
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            b.add_medium(format!("m{i}"), FactorKind::SharedMemory, p)
                .unwrap()
        })
        .collect();
    let mut writer = b.task("writer", 0).one_shot(0, 10, 1);
    for &m in &media {
        writer = writer.writes(m);
    }
    writer.build().unwrap();
    let mut reader = b.task("reader", 0).one_shot(5, 10, 1);
    for &m in &media {
        reader = reader.reads(m);
    }
    reader.build().unwrap();
    let campaign = InfluenceCampaign::new(b.build().unwrap(), 20, 4000, 17);
    let measured = campaign.measure_influence(0, 1).unwrap();
    let analytic = Influence::from_factors(
        &ps.iter()
            .map(|&p| FaultFactor::new(FactorKind::SharedMemory, 1.0, p, 1.0).unwrap())
            .collect::<Vec<_>>(),
    );
    assert!(
        (measured.estimate - analytic.value()).abs() < 0.04,
        "measured {} analytic {}",
        measured.estimate,
        analytic.value()
    );
}

#[test]
fn two_hop_chain_composes_multiplicatively() {
    // a → m1 → b → m2 → c, all single interactions, p3 = 1: the influence
    // a→c is p2(m1) · p2(m2).
    let mut b = SystemSpecBuilder::new(1);
    let m1 = b.add_medium("m1", FactorKind::MessagePassing, 0.7).unwrap();
    let m2 = b.add_medium("m2", FactorKind::MessagePassing, 0.4).unwrap();
    b.task("a", 0)
        .one_shot(0, 30, 1)
        .writes(m1)
        .build()
        .unwrap();
    b.task("b", 0)
        .one_shot(5, 30, 1)
        .reads(m1)
        .writes(m2)
        .build()
        .unwrap();
    b.task("c", 0)
        .one_shot(10, 30, 1)
        .reads(m2)
        .build()
        .unwrap();
    let campaign = InfluenceCampaign::new(b.build().unwrap(), 40, 4000, 23);
    let measured = campaign.measure_influence(0, 2).unwrap();
    assert!(
        (measured.estimate - 0.28).abs() < 0.04,
        "measured {}",
        measured.estimate
    );
}

#[test]
fn directionality_matches_the_papers_asymmetry_claim() {
    // Influence is directional: the reader never influences the writer.
    let campaign = InfluenceCampaign::new(single_hop(0.9, 0.9, false), 20, 500, 29);
    let forward = campaign.measure_influence(0, 1).unwrap().estimate;
    let backward = campaign.measure_influence(1, 0).unwrap().estimate;
    assert!(forward > 0.5);
    assert_eq!(backward, 0.0);
}

#[test]
fn preemption_suppresses_timing_fault_transmission() {
    use ddsi::sim::fault::FaultKind;
    // Two tasks share a CPU; the hog overruns. Under FIFO the victim
    // misses; under EDF it does not — the paper's §4.2.3 claim.
    let build = |policy| {
        let mut b = SystemSpecBuilder::new(1);
        b.policy(policy);
        b.task("hog", 0).periodic(50, 0, 5).build().unwrap();
        b.task("victim", 0).periodic(20, 2, 3).build().unwrap();
        b.build().unwrap()
    };
    let overrun = FaultKind::TimingOverrun { factor: 4 };
    let fifo = InfluenceCampaign::new(build(SchedulingPolicy::NonPreemptiveFifo), 400, 50, 31)
        .measure_influence_with(0, 1, overrun)
        .unwrap();
    let edf = InfluenceCampaign::new(build(SchedulingPolicy::PreemptiveEdf), 400, 50, 31)
        .measure_influence_with(0, 1, overrun)
        .unwrap();
    assert!(fifo.estimate > 0.9, "fifo {}", fifo.estimate);
    assert!(edf.estimate < 0.1, "edf {}", edf.estimate);
}
