//! Property-based tests of the graph substrate.

use fcm_graph::algo::{self, BisectPolicy};
use fcm_graph::{condense, CombineRule, DiGraph, Matrix, NodeIdx};
use fcm_substrate::prop;
use fcm_substrate::rng::Rng;
use fcm_substrate::{prop_assert, prop_assert_eq};

/// A random weighted digraph: n nodes, each ordered pair an edge with
/// probability `density`, weights in (0, 1].
fn random_graph(rng: &mut Rng, n: usize, density: f64) -> DiGraph<usize, f64> {
    let mut g = DiGraph::new();
    let nodes: Vec<NodeIdx> = (0..n).map(|i| g.add_node(i)).collect();
    for &a in &nodes {
        for &b in &nodes {
            if a != b && rng.gen::<f64>() < density {
                g.add_edge(a, b, rng.gen_range(0.01..=1.0));
            }
        }
    }
    g
}

/// Node count scaled by the shrinkable size budget: 2..=2+span.
fn sized_n(rng: &mut Rng, size: usize, span: usize) -> usize {
    2 + rng.gen_range(0..=span * size.clamp(1, 100) / 100)
}

/// The symmetrised weight crossing a given bipartition.
fn cut_weight(g: &DiGraph<usize, f64>, side_a: &[NodeIdx]) -> f64 {
    let mut in_a = vec![false; g.node_count()];
    for &v in side_a {
        in_a[v.index()] = true;
    }
    g.edges()
        .filter(|(_, e)| in_a[e.from.index()] != in_a[e.to.index()])
        .map(|(_, e)| e.weight)
        .sum()
}

#[test]
fn mincut_never_exceeds_any_single_node_isolation() {
    prop::check_cases(
        "mincut_never_exceeds_any_single_node_isolation",
        64,
        |rng, size| {
            let n = sized_n(rng, size, 9);
            let density = rng.gen_range(0.1f64..0.9);
            random_graph(rng, n, density)
        },
        |g| {
            let cut = algo::min_cut(g).unwrap();
            // The cut found must be no worse than isolating any single node.
            for v in g.node_indices() {
                let isolation = cut_weight(g, &[v]);
                prop_assert!(
                    cut.weight <= isolation + 1e-9,
                    "cut {} vs isolating {}: {}",
                    cut.weight,
                    v,
                    isolation
                );
            }
            // And it must equal the actual crossing weight of its partition.
            let actual = cut_weight(g, &cut.side_a);
            prop_assert!((cut.weight - actual).abs() < 1e-9);
            Ok(())
        },
    );
}

#[test]
fn recursive_min_cut_partitions_exactly() {
    prop::check_cases(
        "recursive_min_cut_partitions_exactly",
        64,
        |rng, size| {
            let n = sized_n(rng, size, 9);
            random_graph(rng, n, 0.4)
        },
        |g| {
            let n = g.node_count();
            for k in 1..=n {
                let parts = algo::recursive_min_cut(g, k, BisectPolicy::LargestPart).unwrap();
                prop_assert_eq!(parts.len(), k);
                let mut all: Vec<NodeIdx> = parts.into_iter().flatten().collect();
                all.sort();
                all.dedup();
                prop_assert_eq!(all.len(), n);
            }
            Ok(())
        },
    );
}

#[test]
fn condense_conserves_sum_weight_under_sum_rule() {
    prop::check_cases(
        "condense_conserves_sum_weight_under_sum_rule",
        64,
        |rng, size| {
            let n = sized_n(rng, size, 7);
            random_graph(rng, n, 0.5)
        },
        |g| {
            let n = g.node_count();
            // Split nodes into two halves.
            let groups: Vec<Vec<NodeIdx>> = vec![
                (0..n / 2).map(NodeIdx).collect(),
                (n / 2..n).map(NodeIdx).collect(),
            ];
            let groups: Vec<Vec<NodeIdx>> =
                groups.into_iter().filter(|grp| !grp.is_empty()).collect();
            let c = condense(g, &groups, CombineRule::Sum).unwrap();
            let condensed_total: f64 = c.graph.edges().map(|(_, e)| e.weight).sum();
            let crossing: f64 = g
                .edges()
                .filter(|(_, e)| c.group_of(e.from) != c.group_of(e.to))
                .map(|(_, e)| e.weight)
                .sum();
            prop_assert!((condensed_total - crossing).abs() < 1e-9);
            Ok(())
        },
    );
}

#[test]
fn condense_probabilistic_never_exceeds_sum() {
    prop::check_cases(
        "condense_probabilistic_never_exceeds_sum",
        64,
        |rng, size| {
            let n = sized_n(rng, size, 7);
            random_graph(rng, n, 0.5)
        },
        |g| {
            let n = g.node_count();
            let groups: Vec<Vec<NodeIdx>> = vec![
                (0..n / 2).map(NodeIdx).collect(),
                (n / 2..n).map(NodeIdx).collect(),
            ];
            let groups: Vec<Vec<NodeIdx>> =
                groups.into_iter().filter(|grp| !grp.is_empty()).collect();
            let prob = condense(g, &groups, CombineRule::Probabilistic).unwrap();
            let sum = condense(g, &groups, CombineRule::Sum).unwrap();
            for (_, e) in prob.graph.edges() {
                let s = sum
                    .graph
                    .edge_weight_between(e.from, e.to)
                    .copied()
                    .unwrap_or(0.0);
                prop_assert!(e.weight <= s + 1e-9);
                prop_assert!((0.0..=1.0 + 1e-9).contains(&e.weight));
            }
            Ok(())
        },
    );
}

#[test]
fn walk_series_is_monotone_in_order_for_nonnegative_matrices() {
    prop::check_cases(
        "walk_series_is_monotone_in_order_for_nonnegative_matrices",
        64,
        |rng, size| {
            let n = sized_n(rng, size, 5) - 1;
            random_graph(rng, n, 0.4)
        },
        |g| {
            let n = g.node_count();
            let m = Matrix::from_graph(g);
            let s2 = m.walk_series(2, 0.0);
            let s4 = m.walk_series(4, 0.0);
            for i in 0..n {
                for j in 0..n {
                    prop_assert!(s4.get(i, j).unwrap() >= s2.get(i, j).unwrap() - 1e-12);
                }
            }
            Ok(())
        },
    );
}

#[test]
fn sccs_partition_and_respect_reachability() {
    prop::check_cases(
        "sccs_partition_and_respect_reachability",
        64,
        |rng, size| {
            let n = sized_n(rng, size, 7) - 1;
            random_graph(rng, n, 0.3)
        },
        |g| {
            let n = g.node_count();
            let sccs = algo::strongly_connected_components(g);
            let total: usize = sccs.iter().map(Vec::len).sum();
            prop_assert_eq!(total, n);
            // Within a component, mutual reachability holds.
            for comp in &sccs {
                for &a in comp {
                    for &b in comp {
                        prop_assert!(algo::is_reachable(g, a, b));
                    }
                }
            }
            Ok(())
        },
    );
}

#[test]
fn topological_order_exists_iff_acyclic() {
    prop::check_cases(
        "topological_order_exists_iff_acyclic",
        64,
        |rng, size| {
            let n = sized_n(rng, size, 7) - 1;
            random_graph(rng, n, 0.3)
        },
        |g| {
            let topo = algo::topological_order(g);
            let sccs = algo::strongly_connected_components(g);
            let acyclic = sccs.iter().all(|c| c.len() == 1)
                && g.node_indices().all(|v| {
                    // No 2-cycles hidden as parallel edges both ways.
                    g.successors(v)
                        .all(|w| !algo::is_reachable(g, w, v) || w == v)
                });
            if topo.is_some() {
                // All SCCs singleton is necessary for acyclicity.
                prop_assert!(sccs.iter().all(|c| c.len() == 1));
            } else {
                prop_assert!(!acyclic);
            }
            Ok(())
        },
    );
}
