//! Property-based tests of the graph substrate.

use fcm_graph::algo::{self, BisectPolicy};
use fcm_graph::{condense, CombineRule, DiGraph, Matrix, NodeIdx};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random weighted digraph from a seed: n nodes, each ordered pair an
/// edge with probability `density`, weights in (0, 1].
fn random_graph(n: usize, density: f64, seed: u64) -> DiGraph<usize, f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = DiGraph::new();
    let nodes: Vec<NodeIdx> = (0..n).map(|i| g.add_node(i)).collect();
    for &a in &nodes {
        for &b in &nodes {
            if a != b && rng.gen::<f64>() < density {
                g.add_edge(a, b, rng.gen_range(0.01..=1.0));
            }
        }
    }
    g
}

/// The symmetrised weight crossing a given bipartition.
fn cut_weight(g: &DiGraph<usize, f64>, side_a: &[NodeIdx]) -> f64 {
    let mut in_a = vec![false; g.node_count()];
    for &v in side_a {
        in_a[v.index()] = true;
    }
    g.edges()
        .filter(|(_, e)| in_a[e.from.index()] != in_a[e.to.index()])
        .map(|(_, e)| e.weight)
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mincut_never_exceeds_any_single_node_isolation(
        n in 2usize..12,
        density in 0.1f64..0.9,
        seed in any::<u64>(),
    ) {
        let g = random_graph(n, density, seed);
        let cut = algo::min_cut(&g).unwrap();
        // The cut found must be no worse than isolating any single node.
        for v in g.node_indices() {
            let isolation = cut_weight(&g, &[v]);
            prop_assert!(cut.weight <= isolation + 1e-9,
                "cut {} vs isolating {}: {}", cut.weight, v, isolation);
        }
        // And it must equal the actual crossing weight of its partition.
        let actual = cut_weight(&g, &cut.side_a);
        prop_assert!((cut.weight - actual).abs() < 1e-9);
    }

    #[test]
    fn recursive_min_cut_partitions_exactly(
        n in 2usize..12,
        seed in any::<u64>(),
    ) {
        let g = random_graph(n, 0.4, seed);
        for k in 1..=n {
            let parts = algo::recursive_min_cut(&g, k, BisectPolicy::LargestPart).unwrap();
            prop_assert_eq!(parts.len(), k);
            let mut all: Vec<NodeIdx> = parts.into_iter().flatten().collect();
            all.sort();
            all.dedup();
            prop_assert_eq!(all.len(), n);
        }
    }

    #[test]
    fn condense_conserves_sum_weight_under_sum_rule(
        n in 2usize..10,
        seed in any::<u64>(),
    ) {
        let g = random_graph(n, 0.5, seed);
        // Split nodes into two halves.
        let groups: Vec<Vec<NodeIdx>> = vec![
            (0..n / 2).map(NodeIdx).collect(),
            (n / 2..n).map(NodeIdx).collect(),
        ];
        let groups: Vec<Vec<NodeIdx>> =
            groups.into_iter().filter(|grp| !grp.is_empty()).collect();
        let c = condense(&g, &groups, CombineRule::Sum).unwrap();
        let condensed_total: f64 = c.graph.edges().map(|(_, e)| e.weight).sum();
        let crossing: f64 = g
            .edges()
            .filter(|(_, e)| {
                c.group_of(e.from) != c.group_of(e.to)
            })
            .map(|(_, e)| e.weight)
            .sum();
        prop_assert!((condensed_total - crossing).abs() < 1e-9);
    }

    #[test]
    fn condense_probabilistic_never_exceeds_sum(
        n in 2usize..10,
        seed in any::<u64>(),
    ) {
        let g = random_graph(n, 0.5, seed);
        let groups: Vec<Vec<NodeIdx>> = vec![
            (0..n / 2).map(NodeIdx).collect(),
            (n / 2..n).map(NodeIdx).collect(),
        ];
        let groups: Vec<Vec<NodeIdx>> =
            groups.into_iter().filter(|grp| !grp.is_empty()).collect();
        let prob = condense(&g, &groups, CombineRule::Probabilistic).unwrap();
        let sum = condense(&g, &groups, CombineRule::Sum).unwrap();
        for (_, e) in prob.graph.edges() {
            let s = sum
                .graph
                .edge_weight_between(e.from, e.to)
                .copied()
                .unwrap_or(0.0);
            prop_assert!(e.weight <= s + 1e-9);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&e.weight));
        }
    }

    #[test]
    fn walk_series_is_monotone_in_order_for_nonnegative_matrices(
        n in 1usize..8,
        seed in any::<u64>(),
    ) {
        let g = random_graph(n, 0.4, seed);
        let m = Matrix::from_graph(&g);
        let s2 = m.walk_series(2, 0.0);
        let s4 = m.walk_series(4, 0.0);
        for i in 0..n {
            for j in 0..n {
                prop_assert!(s4.get(i, j).unwrap() >= s2.get(i, j).unwrap() - 1e-12);
            }
        }
    }

    #[test]
    fn sccs_partition_and_respect_reachability(
        n in 1usize..10,
        seed in any::<u64>(),
    ) {
        let g = random_graph(n, 0.3, seed);
        let sccs = algo::strongly_connected_components(&g);
        let total: usize = sccs.iter().map(Vec::len).sum();
        prop_assert_eq!(total, n);
        // Within a component, mutual reachability holds.
        for comp in &sccs {
            for &a in comp {
                for &b in comp {
                    prop_assert!(algo::is_reachable(&g, a, b));
                }
            }
        }
    }

    #[test]
    fn topological_order_exists_iff_acyclic(
        n in 1usize..10,
        seed in any::<u64>(),
    ) {
        let g = random_graph(n, 0.3, seed);
        let topo = algo::topological_order(&g);
        let sccs = algo::strongly_connected_components(&g);
        let acyclic = sccs.iter().all(|c| c.len() == 1)
            && g.node_indices().all(|v| {
                // No 2-cycles hidden as parallel edges both ways.
                g.successors(v).all(|w| !algo::is_reachable(&g, w, v) || w == v)
            });
        if topo.is_some() {
            // All SCCs singleton is necessary for acyclicity.
            prop_assert!(sccs.iter().all(|c| c.len() == 1));
        } else {
            prop_assert!(!acyclic);
        }
    }
}
