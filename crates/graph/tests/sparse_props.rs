//! Property-based tests of the sparse engine's bitwise contract:
//! whatever the dense oracle computes, the CSR kernel must reproduce
//! bit-for-bit — on random graphs and on the hub-and-spoke shape the
//! large-fleet generator emits.

use fcm_graph::{InfluenceMatrix, Matrix, SparseMatrix};
use fcm_substrate::prop;
use fcm_substrate::rng::Rng;
use fcm_substrate::prop_assert_eq;

/// A random influence matrix: n×n, each off-diagonal entry nonzero with
/// probability `density`, values in (0, 0.9/n·fan] so walk series stay
/// finite but truncation still fires at moderate epsilons.
fn random_dense(rng: &mut Rng, n: usize, density: f64) -> Matrix {
    let mut m = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            if i != j && rng.gen::<f64>() < density {
                m[(i, j)] = rng.gen_range(0.01..0.6);
            }
        }
    }
    m
}

/// A hub-and-spoke dense matrix: spokes point at their hub and back,
/// plus a few random shortcuts — the sparse fleet generator's shape,
/// small enough for the dense oracle.
fn hub_and_spoke(rng: &mut Rng, n: usize) -> Matrix {
    let mut m = Matrix::zeros(n, n);
    let hubs = (n / 6).max(1);
    for i in 0..n {
        let h = (i % hubs) * 6 % n;
        if h != i {
            m[(i, h)] = rng.gen_range(0.05..0.4);
            m[(h, i)] = rng.gen_range(0.01..0.1);
        }
    }
    for _ in 0..n / 2 {
        let (a, b) = (rng.gen_range(0..n), rng.gen_range(0..n));
        if a != b {
            m[(a, b)] = rng.gen_range(0.01..0.3);
        }
    }
    m
}

fn sized_n(rng: &mut Rng, size: usize, span: usize) -> usize {
    2 + rng.gen_range(0..=span * size.clamp(1, 100) / 100)
}

/// Bitwise equality of a sparse result against a dense oracle.
fn assert_bitwise(s: &SparseMatrix, d: &Matrix) -> Result<(), String> {
    prop_assert_eq!(s.rows(), d.rows());
    prop_assert_eq!(s.cols(), d.cols());
    for i in 0..d.rows() {
        for j in 0..d.cols() {
            let sv = s.get(i, j).unwrap_or(0.0);
            let dv = d.get(i, j).expect("in bounds");
            prop_assert_eq!(
                sv.to_bits(),
                dv.to_bits(),
                "entry ({}, {}): sparse {} vs dense {}",
                i,
                j,
                sv,
                dv
            );
        }
    }
    Ok(())
}

#[test]
fn walk_series_is_bitwise_equal_to_the_dense_oracle() {
    prop::check_cases(
        "walk_series_is_bitwise_equal_to_the_dense_oracle",
        64,
        |rng, size| {
            let n = sized_n(rng, size, 30);
            let density = rng.gen_range(0.05f64..0.5);
            let dense = if rng.gen::<f64>() < 0.5 {
                random_dense(rng, n, density)
            } else {
                hub_and_spoke(rng, n)
            };
            let order = rng.gen_range(1..=8usize);
            let epsilon = [0.0, 1e-9, 1e-3, 5e-2][rng.gen_range(0..4usize)];
            (dense, order, epsilon)
        },
        |(dense, order, epsilon)| {
            let sparse = SparseMatrix::from_dense(dense);
            let oracle = dense.walk_series(*order, *epsilon);
            // Full-series parity, at several thread counts.
            assert_bitwise(&sparse.walk_series(*order, *epsilon), &oracle)?;
            for threads in [1, 3] {
                assert_bitwise(&sparse.walk_series_threads(*order, *epsilon, threads), &oracle)?;
            }
            Ok(())
        },
    );
}

#[test]
fn eq4_row_col_recombination_matches_across_representations() {
    prop::check_cases(
        "eq4_row_col_recombination_matches_across_representations",
        64,
        |rng, size| {
            let n = sized_n(rng, size, 20);
            let dense = random_dense(rng, n, 0.3);
            let gi = rng.gen_range(0..n);
            // Fresh row/col values to splice in (diagonal comes from row).
            let row: Vec<f64> = (0..n)
                .map(|j| if j == gi { 0.0 } else { rng.gen_range(0.0..0.5) })
                .collect();
            let col: Vec<f64> = (0..n)
                .map(|j| if j == gi { 0.0 } else { rng.gen_range(0.0..0.5) })
                .collect();
            (dense, gi, row, col)
        },
        |(dense, gi, row, col)| {
            let mut d = InfluenceMatrix::Dense(dense.clone());
            let mut s = InfluenceMatrix::Sparse(SparseMatrix::from_dense(dense));
            d.set_row_col(*gi, row, col);
            s.set_row_col(*gi, row, col);
            prop_assert_eq!(&d, &s, "set_row_col diverged at gi={}", gi);
            // Grow + shrink round-trips stay aligned too.
            let (dg, sg) = (d.grow_row_col(), s.grow_row_col());
            prop_assert_eq!(&dg, &sg);
            let n = dense.rows();
            prop_assert_eq!(dg.rows(), n + 1);
            let (ds, ss) = (dg.shrink_row_col(*gi), sg.shrink_row_col(*gi));
            prop_assert_eq!(&ds, &ss);
            prop_assert_eq!(ds.rows(), n);
            Ok(())
        },
    );
}

#[test]
fn top_k_matches_a_full_sort_of_the_series_row() {
    prop::check_cases(
        "top_k_matches_a_full_sort_of_the_series_row",
        64,
        |rng, size| {
            let n = sized_n(rng, size, 30);
            let dense = if rng.gen::<f64>() < 0.5 {
                random_dense(rng, n, 0.25)
            } else {
                hub_and_spoke(rng, n)
            };
            let from = rng.gen_range(0..n);
            let k = rng.gen_range(0..=n);
            (dense, from, k)
        },
        |(dense, from, k)| {
            let sparse = SparseMatrix::from_dense(dense);
            let order = 6;
            let top = sparse.top_k_from(*from, *k, order, 0.0);
            // Oracle: sort the full (untruncated) series row.
            let series = dense.walk_series(order, 0.0);
            let mut full: Vec<(usize, f64)> = (0..dense.rows())
                .filter(|&j| j != *from)
                .map(|j| (j, series.get(*from, j).expect("in bounds")))
                .filter(|&(_, v)| v != 0.0)
                .collect();
            full.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .expect("finite")
                    .then_with(|| a.0.cmp(&b.0))
            });
            full.truncate(*k);
            prop_assert_eq!(top.len(), full.len());
            for (got, want) in top.iter().zip(&full) {
                prop_assert_eq!(got.0, want.0, "target order");
                prop_assert_eq!(got.1.to_bits(), want.1.to_bits(), "value bits");
            }
            // The enum queries agree with the raw sparse kernel.
            let im = InfluenceMatrix::Sparse(sparse);
            let via_enum = im.top_k_influence(*from, *k, order);
            for (a, b) in via_enum.iter().zip(&top) {
                prop_assert_eq!(a.0, b.0);
            }
            Ok(())
        },
    );
}

#[test]
fn state_json_round_trips_both_representations() {
    prop::check_cases(
        "state_json_round_trips_both_representations",
        32,
        |rng, size| {
            let n = sized_n(rng, size, 15);
            random_dense(rng, n, 0.3)
        },
        |dense| {
            let d = InfluenceMatrix::Dense(dense.clone());
            let s = InfluenceMatrix::Sparse(SparseMatrix::from_dense(dense));
            for im in [&d, &s] {
                let back = InfluenceMatrix::from_state_json(&im.to_state_json())
                    .expect("state round-trip");
                prop_assert_eq!(&back, im, "value-preserving");
                prop_assert_eq!(back.repr(), im.repr(), "representation-preserving");
            }
            Ok(())
        },
    );
}
