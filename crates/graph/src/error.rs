//! Error types for graph construction and algorithms.

use std::error::Error;
use std::fmt;

/// Errors reported by graph construction and algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A node index was not smaller than the node count.
    NodeOutOfBounds {
        /// The offending index.
        index: usize,
        /// The number of nodes in the graph.
        len: usize,
    },
    /// A self-loop was requested; influence of an FCM on itself is
    /// meaningless in the paper's model, so self-loops are rejected.
    SelfLoop {
        /// The node on which the self-loop was attempted.
        node: usize,
    },
    /// An algorithm requiring a non-empty graph was invoked on an empty one.
    EmptyGraph,
    /// A partition request asked for more parts than there are nodes.
    TooManyParts {
        /// Number of parts requested.
        requested: usize,
        /// Number of nodes available.
        nodes: usize,
    },
    /// Matrix dimensions did not agree for the requested operation.
    DimensionMismatch {
        /// Left-hand dimensions `(rows, cols)`.
        left: (usize, usize),
        /// Right-hand dimensions `(rows, cols)`.
        right: (usize, usize),
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfBounds { index, len } => {
                write!(
                    f,
                    "node index {index} out of bounds for graph of {len} nodes"
                )
            }
            GraphError::SelfLoop { node } => {
                write!(f, "self-loop on node {node} is not permitted")
            }
            GraphError::EmptyGraph => write!(f, "operation requires a non-empty graph"),
            GraphError::TooManyParts { requested, nodes } => {
                write!(f, "cannot partition {nodes} nodes into {requested} parts")
            }
            GraphError::DimensionMismatch { left, right } => write!(
                f,
                "matrix dimension mismatch: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<(GraphError, &str)> = vec![
            (
                GraphError::NodeOutOfBounds { index: 9, len: 3 },
                "node index 9 out of bounds for graph of 3 nodes",
            ),
            (
                GraphError::SelfLoop { node: 2 },
                "self-loop on node 2 is not permitted",
            ),
            (
                GraphError::EmptyGraph,
                "operation requires a non-empty graph",
            ),
            (
                GraphError::TooManyParts {
                    requested: 5,
                    nodes: 2,
                },
                "cannot partition 2 nodes into 5 parts",
            ),
            (
                GraphError::DimensionMismatch {
                    left: (2, 3),
                    right: (4, 5),
                },
                "matrix dimension mismatch: 2x3 vs 4x5",
            ),
        ];
        for (err, expected) in cases {
            assert_eq!(err.to_string(), expected);
        }
    }

    #[test]
    fn error_is_std_error() {
        fn takes_error<E: std::error::Error + Send + Sync + 'static>(_: E) {}
        takes_error(GraphError::EmptyGraph);
    }
}
