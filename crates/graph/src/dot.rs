//! Graphviz DOT rendering of directed graphs.
//!
//! The paper communicates every step of its method through node-and-edge
//! figures; this module renders any [`DiGraph`] in DOT so the
//! reproduction's figures can be drawn with standard tooling
//! (`dot -Tsvg`).

use std::fmt::{Display, Write as _};

use crate::{DiGraph, NodeIdx};

/// Options for DOT rendering.
#[derive(Debug, Clone, PartialEq)]
pub struct DotOptions {
    /// Graph name.
    pub name: String,
    /// Whether edges with `Display` text `"0"` (e.g. replica links)
    /// render dashed without a label.
    pub dash_zero_edges: bool,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            name: "fcm".into(),
            dash_zero_edges: true,
        }
    }
}

/// Renders `g` as a DOT digraph, labelling nodes and edges with their
/// `Display` implementations.
///
/// # Example
///
/// ```
/// use fcm_graph::{DiGraph, dot};
///
/// let mut g: DiGraph<&str, f64> = DiGraph::new();
/// let a = g.add_node("p1");
/// let b = g.add_node("p2");
/// g.add_edge(a, b, 0.5);
/// let rendered = dot::render(&g, &dot::DotOptions::default());
/// assert!(rendered.contains("digraph fcm"));
/// assert!(rendered.contains("\"p1\" -> \"p2\""));
/// ```
pub fn render<N: Display, E: Display>(g: &DiGraph<N, E>, options: &DotOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", sanitize(&options.name));
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=ellipse];");
    for (idx, node) in g.nodes() {
        let _ = writeln!(out, "  \"{}\" [id=\"{}\"];", escape(&node.to_string()), idx);
    }
    for (_, e) in g.edges() {
        let label = e.weight.to_string();
        let from = escape(&display_of(g, e.from));
        let to = escape(&display_of(g, e.to));
        if options.dash_zero_edges && is_zero_label(&label) {
            let _ = writeln!(out, "  \"{from}\" -> \"{to}\" [style=dashed, dir=none];");
        } else {
            let _ = writeln!(
                out,
                "  \"{from}\" -> \"{to}\" [label=\"{}\"];",
                escape(&label)
            );
        }
    }
    out.push_str("}\n");
    out
}

fn display_of<N: Display, E>(g: &DiGraph<N, E>, idx: NodeIdx) -> String {
    g.node(idx).map(|n| n.to_string()).unwrap_or_default()
}

fn is_zero_label(label: &str) -> bool {
    label == "0" || label.starts_with("0 (")
}

fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "g".into()
    } else {
        cleaned
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DiGraph<&'static str, f64> {
        let mut g = DiGraph::new();
        let a = g.add_node("p1");
        let b = g.add_node("p2");
        let c = g.add_node("p3");
        g.add_edge(a, b, 0.5);
        g.add_edge(b, c, 0.25);
        g
    }

    #[test]
    fn renders_nodes_and_labelled_edges() {
        let s = render(&sample(), &DotOptions::default());
        assert!(s.starts_with("digraph fcm {"));
        assert!(s.ends_with("}\n"));
        assert!(s.contains("\"p1\" [id=\"n0\"];"));
        assert!(s.contains("\"p1\" -> \"p2\" [label=\"0.5\"];"));
        assert!(s.contains("\"p2\" -> \"p3\" [label=\"0.25\"];"));
    }

    #[test]
    fn zero_edges_render_dashed() {
        let mut g: DiGraph<&str, &str> = DiGraph::new();
        let a = g.add_node("r1");
        let b = g.add_node("r2");
        g.add_edge(a, b, "0 (replica)");
        let s = render(&g, &DotOptions::default());
        assert!(s.contains("style=dashed"));
        assert!(!s.contains("label=\"0 (replica)\""));
        // With dashing disabled, the label appears.
        let s2 = render(
            &g,
            &DotOptions {
                dash_zero_edges: false,
                ..DotOptions::default()
            },
        );
        assert!(s2.contains("label=\"0 (replica)\""));
    }

    #[test]
    fn names_and_labels_are_sanitised() {
        let mut g: DiGraph<String, f64> = DiGraph::new();
        let a = g.add_node("we\"ird".into());
        let b = g.add_node("ok".into());
        g.add_edge(a, b, 1.0);
        let s = render(
            &g,
            &DotOptions {
                name: "my graph!".into(),
                dash_zero_edges: true,
            },
        );
        assert!(s.contains("digraph my_graph_"));
        assert!(s.contains("we\\\"ird"));
        let empty = sanitize("");
        assert_eq!(empty, "g");
    }

    #[test]
    fn empty_graph_renders_a_valid_skeleton() {
        let g: DiGraph<&str, f64> = DiGraph::new();
        let s = render(&g, &DotOptions::default());
        assert!(s.contains("digraph fcm {"));
        assert_eq!(s.lines().count(), 4);
    }
}
