//! Directed weighted graph substrate for the DDSI framework.
//!
//! The ICDCS'98 dependability-integration paper models software fault
//! containment modules (FCMs) as nodes of a *labelled, weighted, directed*
//! graph whose edges carry **influence** values (the probability that a
//! fault in the source FCM manifests in the target FCM), and reduces that
//! graph by repeatedly contracting node groups. This crate provides the
//! graph machinery that the rest of the workspace builds on:
//!
//! * [`DiGraph`] — an adjacency-list directed graph with stable node
//!   indices, arbitrary node payloads and labelled weighted edges;
//! * [`Matrix`] — a dense `f64` matrix with the power-series accumulation
//!   used by the paper's *separation* metric (Eq. 3);
//! * [`SparseMatrix`] — the CSR counterpart for large sparse fleets, with
//!   an SCC-sharded walk series bitwise-equal to the dense oracle;
//! * [`InfluenceMatrix`] — the storage-polymorphic wrapper every upper
//!   layer holds, with an automatic representation-selection policy;
//! * [`algo`] — reachability, strongly connected components, Stoer–Wagner
//!   global min-cut and recursive bisection (heuristic H2 of the paper);
//! * [`mod@condense`] — contraction of node groups into super-nodes, with
//!   pluggable parallel-edge combination (sum, max, or the paper's
//!   probabilistic `1 − Π(1 − p)` rule, Eq. 4).
//!
//! # Example
//!
//! ```
//! use fcm_graph::{DiGraph, algo};
//!
//! let mut g: DiGraph<&str, f64> = DiGraph::new();
//! let a = g.add_node("a");
//! let b = g.add_node("b");
//! g.add_edge(a, b, 0.7);
//! assert!(algo::is_reachable(&g, a, b));
//! assert!(!algo::is_reachable(&g, b, a));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algo;
pub mod condense;
mod digraph;
pub mod dot;
mod error;
mod influence_matrix;
mod matrix;
pub mod sparse;

pub use condense::{condense, CombineRule, Condensation};
pub use digraph::{DiGraph, Edge, EdgeIdx, NodeIdx};
pub use error::GraphError;
pub use influence_matrix::{
    fnv, prefer_sparse, InfluenceMatrix, SPARSE_MAX_DENSITY, SPARSE_MIN_N, SPARSE_N_THRESHOLD,
};
pub use matrix::{Matrix, Workspace};
pub use sparse::SparseMatrix;
