//! The core adjacency-list directed graph.

use std::fmt;

use crate::error::GraphError;

/// Stable index of a node inside a [`DiGraph`].
///
/// Indices are assigned densely in insertion order and remain valid for the
/// lifetime of the graph (nodes are never removed from a `DiGraph`; graph
/// *reduction* is done by [condensation](mod@crate::condense) into a new graph,
/// mirroring the paper's workflow where the original FCM graph is kept for
/// traceability).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeIdx(pub usize);

impl NodeIdx {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<usize> for NodeIdx {
    fn from(i: usize) -> Self {
        NodeIdx(i)
    }
}

/// Stable index of an edge inside a [`DiGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeIdx(pub usize);

impl EdgeIdx {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for EdgeIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A directed edge with its endpoints and payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Edge<E> {
    /// Source node.
    pub from: NodeIdx,
    /// Target node.
    pub to: NodeIdx,
    /// Edge payload (for influence graphs, the influence value and factor
    /// tuple).
    pub weight: E,
}

/// An adjacency-list directed multigraph with node payloads `N` and edge
/// payloads `E`.
///
/// Parallel edges are permitted (the FCM graph never creates them, but the
/// condensation step may before combination); self-loops are rejected with
/// [`GraphError::SelfLoop`] because influence of an FCM on itself is
/// meaningless in the paper's model.
///
/// # Example
///
/// ```
/// use fcm_graph::DiGraph;
///
/// let mut g: DiGraph<&str, f64> = DiGraph::new();
/// let p1 = g.add_node("p1");
/// let p2 = g.add_node("p2");
/// g.add_edge(p1, p2, 0.5);
/// g.add_edge(p2, p1, 0.7);
/// assert_eq!(g.node_count(), 2);
/// assert_eq!(g.edge_count(), 2);
/// assert_eq!(*g.edge_weight_between(p2, p1).unwrap(), 0.7);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DiGraph<N, E> {
    nodes: Vec<N>,
    edges: Vec<Edge<E>>,
    /// Outgoing edge indices per node.
    out_adj: Vec<Vec<EdgeIdx>>,
    /// Incoming edge indices per node.
    in_adj: Vec<Vec<EdgeIdx>>,
}

impl<N, E> Default for DiGraph<N, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N, E> DiGraph<N, E> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        DiGraph {
            nodes: Vec::new(),
            edges: Vec::new(),
            out_adj: Vec::new(),
            in_adj: Vec::new(),
        }
    }

    /// Creates an empty graph with room for `nodes` nodes.
    pub fn with_capacity(nodes: usize) -> Self {
        DiGraph {
            nodes: Vec::with_capacity(nodes),
            edges: Vec::new(),
            out_adj: Vec::with_capacity(nodes),
            in_adj: Vec::with_capacity(nodes),
        }
    }

    /// Adds a node with the given payload and returns its index.
    pub fn add_node(&mut self, payload: N) -> NodeIdx {
        let idx = NodeIdx(self.nodes.len());
        self.nodes.push(payload);
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        idx
    }

    /// Adds a directed edge `from → to`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of bounds or if `from == to`
    /// (self-loop). Use [`DiGraph::try_add_edge`] for a fallible version.
    pub fn add_edge(&mut self, from: NodeIdx, to: NodeIdx, weight: E) -> EdgeIdx {
        self.try_add_edge(from, to, weight)
            .expect("invalid edge endpoints")
    }

    /// Adds a directed edge `from → to`, reporting invalid endpoints.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] if an endpoint does not
    /// exist, or [`GraphError::SelfLoop`] when `from == to`.
    pub fn try_add_edge(
        &mut self,
        from: NodeIdx,
        to: NodeIdx,
        weight: E,
    ) -> Result<EdgeIdx, GraphError> {
        let n = self.nodes.len();
        if from.0 >= n || to.0 >= n {
            return Err(GraphError::NodeOutOfBounds {
                index: from.0.max(to.0),
                len: n,
            });
        }
        if from == to {
            return Err(GraphError::SelfLoop { node: from.0 });
        }
        let idx = EdgeIdx(self.edges.len());
        self.edges.push(Edge { from, to, weight });
        self.out_adj[from.0].push(idx);
        self.in_adj[to.0].push(idx);
        Ok(idx)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Payload of `node`, if it exists.
    pub fn node(&self, node: NodeIdx) -> Option<&N> {
        self.nodes.get(node.0)
    }

    /// Mutable payload of `node`, if it exists.
    pub fn node_mut(&mut self, node: NodeIdx) -> Option<&mut N> {
        self.nodes.get_mut(node.0)
    }

    /// The edge at `edge`, if it exists.
    pub fn edge(&self, edge: EdgeIdx) -> Option<&Edge<E>> {
        self.edges.get(edge.0)
    }

    /// Mutable access to the edge at `edge`, if it exists.
    pub fn edge_mut(&mut self, edge: EdgeIdx) -> Option<&mut Edge<E>> {
        self.edges.get_mut(edge.0)
    }

    /// Iterates over all node indices in insertion order.
    pub fn node_indices(&self) -> impl Iterator<Item = NodeIdx> + '_ {
        (0..self.nodes.len()).map(NodeIdx)
    }

    /// Iterates over `(index, payload)` pairs in insertion order.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeIdx, &N)> + '_ {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeIdx(i), n))
    }

    /// Iterates over all edges in insertion order.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeIdx, &Edge<E>)> + '_ {
        self.edges.iter().enumerate().map(|(i, e)| (EdgeIdx(i), e))
    }

    /// Iterates over the outgoing edges of `node`.
    pub fn out_edges(&self, node: NodeIdx) -> impl Iterator<Item = (EdgeIdx, &Edge<E>)> + '_ {
        self.out_adj
            .get(node.0)
            .into_iter()
            .flatten()
            .map(move |&e| (e, &self.edges[e.0]))
    }

    /// Iterates over the incoming edges of `node`.
    pub fn in_edges(&self, node: NodeIdx) -> impl Iterator<Item = (EdgeIdx, &Edge<E>)> + '_ {
        self.in_adj
            .get(node.0)
            .into_iter()
            .flatten()
            .map(move |&e| (e, &self.edges[e.0]))
    }

    /// Iterates over successor node indices of `node` (with multiplicity for
    /// parallel edges).
    pub fn successors(&self, node: NodeIdx) -> impl Iterator<Item = NodeIdx> + '_ {
        self.out_edges(node).map(|(_, e)| e.to)
    }

    /// Iterates over predecessor node indices of `node`.
    pub fn predecessors(&self, node: NodeIdx) -> impl Iterator<Item = NodeIdx> + '_ {
        self.in_edges(node).map(|(_, e)| e.from)
    }

    /// Out-degree of `node` (counting parallel edges).
    pub fn out_degree(&self, node: NodeIdx) -> usize {
        self.out_adj.get(node.0).map_or(0, Vec::len)
    }

    /// In-degree of `node` (counting parallel edges).
    pub fn in_degree(&self, node: NodeIdx) -> usize {
        self.in_adj.get(node.0).map_or(0, Vec::len)
    }

    /// The first edge `from → to`, if any.
    pub fn find_edge(&self, from: NodeIdx, to: NodeIdx) -> Option<EdgeIdx> {
        self.out_adj
            .get(from.0)?
            .iter()
            .copied()
            .find(|&e| self.edges[e.0].to == to)
    }

    /// Weight of the first edge `from → to`, if any.
    pub fn edge_weight_between(&self, from: NodeIdx, to: NodeIdx) -> Option<&E> {
        self.find_edge(from, to).map(|e| &self.edges[e.0].weight)
    }

    /// Returns `true` when there is at least one edge `from → to`.
    pub fn has_edge(&self, from: NodeIdx, to: NodeIdx) -> bool {
        self.find_edge(from, to).is_some()
    }

    /// Maps node and edge payloads into a new graph with the same shape.
    pub fn map<N2, E2>(
        &self,
        mut node_map: impl FnMut(NodeIdx, &N) -> N2,
        mut edge_map: impl FnMut(EdgeIdx, &Edge<E>) -> E2,
    ) -> DiGraph<N2, E2> {
        DiGraph {
            nodes: self
                .nodes
                .iter()
                .enumerate()
                .map(|(i, n)| node_map(NodeIdx(i), n))
                .collect(),
            edges: self
                .edges
                .iter()
                .enumerate()
                .map(|(i, e)| Edge {
                    from: e.from,
                    to: e.to,
                    weight: edge_map(EdgeIdx(i), e),
                })
                .collect(),
            out_adj: self.out_adj.clone(),
            in_adj: self.in_adj.clone(),
        }
    }
}

impl<N, E: Copy + Into<f64>> DiGraph<N, E> {
    /// Sum of `weight(u→v) + weight(v→u)` — the paper's *mutual influence*
    /// used by heuristic H1 to pick the next pair to combine.
    ///
    /// Missing edges contribute zero; parallel edges all contribute.
    pub fn mutual_weight(&self, u: NodeIdx, v: NodeIdx) -> f64 {
        let fwd: f64 = self
            .out_edges(u)
            .filter(|(_, e)| e.to == v)
            .map(|(_, e)| e.weight.into())
            .sum();
        let back: f64 = self
            .out_edges(v)
            .filter(|(_, e)| e.to == u)
            .map(|(_, e)| e.weight.into())
            .sum();
        fwd + back
    }
}

impl<N: fmt::Display, E: fmt::Display> DiGraph<N, E> {
    /// Renders the graph as an edge list, one edge per line:
    /// `"<from> -> <to> [<weight>]"`. Used by the figure-reproduction
    /// binaries.
    pub fn to_edge_list(&self) -> String {
        use fmt::Write as _;
        let mut s = String::new();
        for (_, e) in self.edges() {
            let _ = writeln!(
                s,
                "{} -> {} [{}]",
                self.nodes[e.from.0], self.nodes[e.to.0], e.weight
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (DiGraph<&'static str, f64>, [NodeIdx; 4]) {
        let mut g = DiGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        g.add_edge(a, b, 1.0);
        g.add_edge(a, c, 2.0);
        g.add_edge(b, d, 3.0);
        g.add_edge(c, d, 4.0);
        (g, [a, b, c, d])
    }

    #[test]
    fn empty_graph_has_no_nodes_or_edges() {
        let g: DiGraph<(), ()> = DiGraph::new();
        assert!(g.is_empty());
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.node_indices().count(), 0);
    }

    #[test]
    fn default_equals_new() {
        let g: DiGraph<u8, u8> = DiGraph::default();
        assert_eq!(g, DiGraph::new());
    }

    #[test]
    fn add_node_returns_dense_indices() {
        let mut g: DiGraph<i32, ()> = DiGraph::new();
        assert_eq!(g.add_node(10), NodeIdx(0));
        assert_eq!(g.add_node(20), NodeIdx(1));
        assert_eq!(g.node(NodeIdx(1)), Some(&20));
        assert_eq!(g.node(NodeIdx(2)), None);
    }

    #[test]
    fn adjacency_is_tracked_both_ways() {
        let (g, [a, b, c, d]) = diamond();
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.in_degree(a), 0);
        assert_eq!(g.in_degree(d), 2);
        assert_eq!(g.out_degree(d), 0);
        let succs: Vec<_> = g.successors(a).collect();
        assert_eq!(succs, vec![b, c]);
        let preds: Vec<_> = g.predecessors(d).collect();
        assert_eq!(preds, vec![b, c]);
    }

    #[test]
    fn self_loop_is_rejected() {
        let mut g: DiGraph<(), f64> = DiGraph::new();
        let a = g.add_node(());
        let err = g.try_add_edge(a, a, 1.0).unwrap_err();
        assert!(matches!(err, GraphError::SelfLoop { node: 0 }));
    }

    #[test]
    fn out_of_bounds_edge_is_rejected() {
        let mut g: DiGraph<(), f64> = DiGraph::new();
        let a = g.add_node(());
        let err = g.try_add_edge(a, NodeIdx(7), 1.0).unwrap_err();
        assert!(matches!(
            err,
            GraphError::NodeOutOfBounds { index: 7, len: 1 }
        ));
    }

    #[test]
    #[should_panic(expected = "invalid edge endpoints")]
    fn add_edge_panics_on_bad_endpoint() {
        let mut g: DiGraph<(), f64> = DiGraph::new();
        let a = g.add_node(());
        g.add_edge(a, NodeIdx(3), 1.0);
    }

    #[test]
    fn parallel_edges_are_allowed_and_counted() {
        let mut g: DiGraph<(), f64> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 0.1);
        g.add_edge(a, b, 0.2);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.out_degree(a), 2);
        // find_edge returns the first inserted parallel edge.
        assert_eq!(*g.edge_weight_between(a, b).unwrap(), 0.1);
    }

    #[test]
    fn mutual_weight_sums_both_directions() {
        let mut g: DiGraph<(), f64> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 0.5);
        g.add_edge(b, a, 0.7);
        assert!((g.mutual_weight(a, b) - 1.2).abs() < 1e-12);
        assert!((g.mutual_weight(b, a) - 1.2).abs() < 1e-12);
    }

    #[test]
    fn mutual_weight_missing_edges_are_zero() {
        let (g, [a, _, _, d]) = diamond();
        assert_eq!(g.mutual_weight(a, d), 0.0);
    }

    #[test]
    fn map_preserves_shape() {
        let (g, [a, _, _, d]) = diamond();
        let g2 = g.map(
            |i, name| format!("{name}{}", i.index()),
            |_, e| e.weight * 10.0,
        );
        assert_eq!(g2.node_count(), 4);
        assert_eq!(g2.edge_count(), 4);
        assert_eq!(g2.node(a).unwrap(), "a0");
        assert_eq!(g2.in_degree(d), 2);
        assert_eq!(*g2.edge_weight_between(NodeIdx(1), d).unwrap(), 30.0);
    }

    #[test]
    fn edge_mut_updates_weight() {
        let (mut g, [a, b, _, _]) = diamond();
        let e = g.find_edge(a, b).unwrap();
        g.edge_mut(e).unwrap().weight = 9.0;
        assert_eq!(*g.edge_weight_between(a, b).unwrap(), 9.0);
    }

    #[test]
    fn to_edge_list_renders_all_edges() {
        let (g, _) = diamond();
        let s = g.to_edge_list();
        assert_eq!(s.lines().count(), 4);
        assert!(s.contains("a -> b [1]"));
        assert!(s.contains("c -> d [4]"));
    }

    #[test]
    fn display_of_indices() {
        assert_eq!(NodeIdx(3).to_string(), "n3");
        assert_eq!(EdgeIdx(5).to_string(), "e5");
        assert_eq!(NodeIdx::from(2).index(), 2);
    }
}
