//! Dense `f64` matrices for the influence power series (paper Eq. 3).
//!
//! The paper's *separation* metric sums walk contributions
//! `P_ij + Σ_k P_ik P_kj + Σ_l Σ_k P_ik P_kl P_lj + …`, i.e. the entries of
//! `P + P² + P³ + …` truncated when higher-order terms become negligible.
//! [`Matrix::walk_series`] computes that truncated sum.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul};

use crate::error::GraphError;
use crate::{DiGraph, NodeIdx};

/// A dense row-major `f64` matrix.
///
/// # Example
///
/// ```
/// use fcm_graph::Matrix;
///
/// let mut m = Matrix::zeros(2, 2);
/// m[(0, 1)] = 0.5;
/// m[(1, 0)] = 0.25;
/// let sq = &m * &m;
/// assert_eq!(sq[(0, 0)], 0.125);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fcm_substrate::ToJson for Matrix {
    fn to_json(&self) -> fcm_substrate::Json {
        use fcm_substrate::Json;
        let data: Vec<Json> = (0..self.rows)
            .map(|i| Json::from(self.data[i * self.cols..(i + 1) * self.cols].to_vec()))
            .collect();
        Json::object()
            .set("rows", self.rows)
            .set("cols", self.cols)
            .set("data", Json::Arr(data))
    }
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major slice.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must be rows*cols");
        Matrix {
            rows,
            cols,
            data: data.to_vec(),
        }
    }

    /// Builds the `n × n` weight matrix of a graph: entry `(i, j)` is the sum
    /// of weights of all edges `i → j` (zero when absent).
    pub fn from_graph<N, E: Copy + Into<f64>>(g: &DiGraph<N, E>) -> Self {
        let n = g.node_count();
        let mut m = Matrix::zeros(n, n);
        for (_, e) in g.edges() {
            m[(e.from.index(), e.to.index())] += e.weight.into();
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the entry at `(row, col)`, or `None` when out of bounds.
    pub fn get(&self, row: usize, col: usize) -> Option<f64> {
        if row < self.rows && col < self.cols {
            Some(self.data[row * self.cols + col])
        } else {
            None
        }
    }

    /// Checked matrix product.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DimensionMismatch`] when `self.cols !=
    /// rhs.rows`.
    pub fn checked_mul(&self, rhs: &Matrix) -> Result<Matrix, GraphError> {
        if self.cols != rhs.rows {
            return Err(GraphError::DimensionMismatch {
                left: (self.rows, self.cols),
                right: (rhs.rows, rhs.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out.data[i * rhs.cols + j] += a * rhs.data[k * rhs.cols + j];
                }
            }
        }
        Ok(out)
    }

    /// Checked matrix sum.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DimensionMismatch`] when shapes differ.
    pub fn checked_add(&self, rhs: &Matrix) -> Result<Matrix, GraphError> {
        if self.rows != rhs.rows || self.cols != rhs.cols {
            return Err(GraphError::DimensionMismatch {
                left: (self.rows, self.cols),
                right: (rhs.rows, rhs.cols),
            });
        }
        let mut out = self.clone();
        for (o, r) in out.data.iter_mut().zip(&rhs.data) {
            *o += r;
        }
        Ok(out)
    }

    /// Largest absolute entry (`0.0` for an empty matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |acc, v| acc.max(v.abs()))
    }

    /// Truncated walk series `Σ_{k=1..order} P^k` — the transitive-influence
    /// sum of the paper's Eq. 3 (`separation = 1 − series entry`).
    ///
    /// Stops early when every entry of the next power is below `epsilon`
    /// (the paper: "at some point, higher-order terms are likely to be small
    /// enough to be neglected"). `order == 0` yields the zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn walk_series(&self, order: usize, epsilon: f64) -> Matrix {
        assert_eq!(self.rows, self.cols, "walk series requires a square matrix");
        let mut acc = Matrix::zeros(self.rows, self.cols);
        let mut power = Matrix::identity(self.rows);
        for _ in 0..order {
            power = power.checked_mul(self).expect("square matrices");
            if power.max_abs() < epsilon {
                break;
            }
            acc = acc.checked_add(&power).expect("same shape");
        }
        acc
    }

    /// The walk-series entry for a node pair, i.e. `1 − separation(i, j)`.
    pub fn transitive_influence(&self, from: NodeIdx, to: NodeIdx, order: usize) -> f64 {
        self.walk_series(order, 1e-12)
            .get(from.index(), to.index())
            .unwrap_or(0.0)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    /// # Panics
    ///
    /// Panics on dimension mismatch; use [`Matrix::checked_mul`] to handle
    /// the error.
    fn mul(self, rhs: &Matrix) -> Matrix {
        self.checked_mul(rhs).expect("matrix dimension mismatch")
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    /// # Panics
    ///
    /// Panics on dimension mismatch; use [`Matrix::checked_add`] to handle
    /// the error.
    fn add(self, rhs: &Matrix) -> Matrix {
        self.checked_add(rhs).expect("matrix dimension mismatch")
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:.4}", self.data[r * self.cols + c])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_multiplication_is_neutral() {
        let m = Matrix::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::identity(2);
        assert_eq!(&m * &i, m);
        assert_eq!(&i * &m, m);
    }

    #[test]
    fn multiplication_matches_hand_computation() {
        let a = Matrix::from_rows(2, 3, &[1.0, 0.0, 2.0, -1.0, 3.0, 1.0]);
        let b = Matrix::from_rows(3, 2, &[3.0, 1.0, 2.0, 1.0, 1.0, 0.0]);
        let c = a.checked_mul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(2, 2, &[5.0, 1.0, 4.0, 2.0]));
    }

    #[test]
    fn mismatched_multiplication_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.checked_mul(&b),
            Err(GraphError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn mismatched_addition_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 2);
        assert!(matches!(
            a.checked_add(&b),
            Err(GraphError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn from_graph_sums_parallel_edges() {
        let mut g: DiGraph<(), f64> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 0.25);
        g.add_edge(a, b, 0.5);
        let m = Matrix::from_graph(&g);
        assert_eq!(m[(0, 1)], 0.75);
        assert_eq!(m[(1, 0)], 0.0);
    }

    #[test]
    fn walk_series_on_a_chain_accumulates_transitive_terms() {
        // a -> b (0.5), b -> c (0.4): direct a->c is 0, two-step is 0.2.
        let mut p = Matrix::zeros(3, 3);
        p[(0, 1)] = 0.5;
        p[(1, 2)] = 0.4;
        let s1 = p.walk_series(1, 0.0);
        assert_eq!(s1[(0, 2)], 0.0);
        let s2 = p.walk_series(2, 0.0);
        assert!((s2[(0, 2)] - 0.2).abs() < 1e-12);
        // No walks longer than 2 exist, so higher orders change nothing.
        let s5 = p.walk_series(5, 0.0);
        assert!((s5[(0, 2)] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn walk_series_early_stops_below_epsilon() {
        let mut p = Matrix::zeros(2, 2);
        p[(0, 1)] = 1e-4;
        p[(1, 0)] = 1e-4;
        // Second power has max entry 1e-8 < epsilon, so the series equals P.
        let s = p.walk_series(10, 1e-6);
        assert_eq!(s, p.walk_series(1, 0.0));
    }

    #[test]
    fn transitive_influence_reads_one_entry() {
        let mut p = Matrix::zeros(3, 3);
        p[(0, 1)] = 0.5;
        p[(1, 2)] = 0.4;
        let v = p.transitive_influence(NodeIdx(0), NodeIdx(2), 4);
        assert!((v - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn walk_series_requires_square() {
        Matrix::zeros(2, 3).walk_series(2, 0.0);
    }

    #[test]
    fn max_abs_of_zero_matrix_is_zero() {
        assert_eq!(Matrix::zeros(3, 3).max_abs(), 0.0);
        let mut m = Matrix::zeros(1, 2);
        m[(0, 1)] = -2.5;
        assert_eq!(m.max_abs(), 2.5);
    }

    #[test]
    fn display_renders_rows() {
        let m = Matrix::from_rows(2, 2, &[1.0, 0.5, 0.25, 0.0]);
        let s = m.to_string();
        assert_eq!(s.lines().count(), 2);
        assert!(s.starts_with("1.0000 0.5000"));
    }

    #[test]
    fn get_is_bounds_checked() {
        let m = Matrix::zeros(2, 2);
        assert_eq!(m.get(1, 1), Some(0.0));
        assert_eq!(m.get(2, 0), None);
        assert_eq!(m.get(0, 2), None);
    }
}
