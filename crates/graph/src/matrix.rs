//! Dense `f64` matrices for the influence power series (paper Eq. 3).
//!
//! The paper's *separation* metric sums walk contributions
//! `P_ij + Σ_k P_ik P_kj + Σ_l Σ_k P_ik P_kl P_lj + …`, i.e. the entries of
//! `P + P² + P³ + …` truncated when higher-order terms become negligible.
//! [`Matrix::walk_series`] computes that truncated sum.
//!
//! # The shared kernel
//!
//! Every analysis in the workspace funnels through one cache-blocked,
//! allocation-free kernel: [`Matrix::mul_into`] writes the product into a
//! caller-owned matrix, and [`Matrix::walk_series_into`] runs the whole
//! power series against a reusable [`Workspace`], so a sweep that
//! evaluates thousands of series performs no allocation after the first
//! cell. The blocking is over `k` (the contraction index) and `i`, with
//! `k`-blocks visited in ascending order — which keeps the per-entry
//! accumulation order identical to the naive `ikj` loop, so results are
//! **bitwise equal** to the pre-blocking implementation, not merely close.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul};

use crate::error::GraphError;
use crate::{DiGraph, NodeIdx};

/// A dense row-major `f64` matrix.
///
/// # Example
///
/// ```
/// use fcm_graph::Matrix;
///
/// let mut m = Matrix::zeros(2, 2);
/// m[(0, 1)] = 0.5;
/// m[(1, 0)] = 0.25;
/// let sq = &m * &m;
/// assert_eq!(sq[(0, 0)], 0.125);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fcm_substrate::ToJson for Matrix {
    fn to_json(&self) -> fcm_substrate::Json {
        use fcm_substrate::Json;
        let data: Vec<Json> = (0..self.rows)
            .map(|i| Json::from(self.data[i * self.cols..(i + 1) * self.cols].to_vec()))
            .collect();
        Json::object()
            .set("rows", self.rows)
            .set("cols", self.cols)
            .set("data", Json::Arr(data))
    }
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major slice.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must be rows*cols");
        Matrix {
            rows,
            cols,
            data: data.to_vec(),
        }
    }

    /// Builds the `n × n` weight matrix of a graph: entry `(i, j)` is the sum
    /// of weights of all edges `i → j` (zero when absent).
    pub fn from_graph<N, E: Copy + Into<f64>>(g: &DiGraph<N, E>) -> Self {
        let n = g.node_count();
        let mut m = Matrix::zeros(n, n);
        for (_, e) in g.edges() {
            m[(e.from.index(), e.to.index())] += e.weight.into();
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the entry at `(row, col)`, or `None` when out of bounds.
    pub fn get(&self, row: usize, col: usize) -> Option<f64> {
        if row < self.rows && col < self.cols {
            Some(self.data[row * self.cols + col])
        } else {
            None
        }
    }

    /// Reshapes to `rows × cols`, all zeros, reusing the existing
    /// allocation whenever its capacity suffices.
    fn reset_zeros(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Reshapes to the `n × n` identity, reusing the allocation.
    fn reset_identity(&mut self, n: usize) {
        self.reset_zeros(n, n);
        for i in 0..n {
            self.data[i * n + i] = 1.0;
        }
    }

    /// Checked matrix product.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DimensionMismatch`] when `self.cols !=
    /// rhs.rows`.
    pub fn checked_mul(&self, rhs: &Matrix) -> Result<Matrix, GraphError> {
        let mut out = Matrix::zeros(0, 0);
        self.mul_into(rhs, &mut out)?;
        Ok(out)
    }

    /// In-place checked matrix product: writes `self * rhs` into `out`,
    /// reshaping it (and reusing its allocation) as needed. This is the
    /// cache-blocked kernel everything else delegates to; per output
    /// entry the contraction index runs in ascending order, so the
    /// result is bitwise identical to a naive `ikj` triple loop.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DimensionMismatch`] when `self.cols !=
    /// rhs.rows`; `out` is untouched in that case.
    pub fn mul_into(&self, rhs: &Matrix, out: &mut Matrix) -> Result<(), GraphError> {
        if self.cols != rhs.rows {
            return Err(GraphError::DimensionMismatch {
                left: (self.rows, self.cols),
                right: (rhs.rows, rhs.cols),
            });
        }
        out.reset_zeros(self.rows, rhs.cols);
        // Blocked over the contraction index k and the output row i:
        // one k-block of `rhs` rows stays hot in cache while the whole
        // i-block streams over it. k-blocks ascend, and k ascends within
        // each block, so every out[(i, j)] accumulates its terms in
        // exactly the order the naive loop used (bitwise-stable FP).
        const BLOCK: usize = 64;
        let n = rhs.cols;
        for k0 in (0..self.cols).step_by(BLOCK) {
            let k1 = (k0 + BLOCK).min(self.cols);
            for i0 in (0..self.rows).step_by(BLOCK) {
                let i1 = (i0 + BLOCK).min(self.rows);
                for i in i0..i1 {
                    let out_row = &mut out.data[i * n..(i + 1) * n];
                    for k in k0..k1 {
                        let a = self.data[i * self.cols + k];
                        if a == 0.0 {
                            continue;
                        }
                        let rhs_row = &rhs.data[k * n..(k + 1) * n];
                        for (o, &r) in out_row.iter_mut().zip(rhs_row) {
                            *o += a * r;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Checked matrix sum.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DimensionMismatch`] when shapes differ.
    pub fn checked_add(&self, rhs: &Matrix) -> Result<Matrix, GraphError> {
        let mut out = self.clone();
        out.add_assign_checked(rhs)?;
        Ok(out)
    }

    /// In-place checked matrix sum: `self += rhs`, no allocation.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DimensionMismatch`] when shapes differ;
    /// `self` is untouched in that case.
    pub fn add_assign_checked(&mut self, rhs: &Matrix) -> Result<(), GraphError> {
        if self.rows != rhs.rows || self.cols != rhs.cols {
            return Err(GraphError::DimensionMismatch {
                left: (self.rows, self.cols),
                right: (rhs.rows, rhs.cols),
            });
        }
        for (o, r) in self.data.iter_mut().zip(&rhs.data) {
            *o += r;
        }
        Ok(())
    }

    /// Largest absolute entry (`0.0` for an empty matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |acc, v| acc.max(v.abs()))
    }

    /// Truncated walk series `Σ_{k=1..order} P^k` — the transitive-influence
    /// sum of the paper's Eq. 3 (`separation = 1 − series entry`).
    ///
    /// # Truncation semantics
    ///
    /// The ε-check tests the max-norm of the **power term** `P^k` —
    /// *not* the accumulator — immediately before that term would be
    /// added: the first power whose largest entry falls below `epsilon`
    /// is discarded and the series stops there (the paper: "at some
    /// point, higher-order terms are likely to be small enough to be
    /// neglected"). The accumulator's own magnitude never participates,
    /// so a series whose sum is already large still truncates as soon
    /// as the *terms* become negligible. The sparse engine
    /// ([`SparseMatrix::walk_series`](crate::SparseMatrix::walk_series))
    /// replays exactly this per-order check, which is what lets the two
    /// representations truncate at the same order and stay
    /// bitwise-equal. `order == 0` yields the zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn walk_series(&self, order: usize, epsilon: f64) -> Matrix {
        self.walk_series_with(order, epsilon, &mut Workspace::new())
    }

    /// [`walk_series`](Matrix::walk_series) against a caller-owned
    /// [`Workspace`], so repeated series over same-sized matrices reuse
    /// the power buffers instead of allocating per power.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    #[must_use]
    pub fn walk_series_with(&self, order: usize, epsilon: f64, ws: &mut Workspace) -> Matrix {
        let mut acc = Matrix::zeros(0, 0);
        self.walk_series_into(order, epsilon, ws, &mut acc);
        acc
    }

    /// The fully in-place walk series: writes `Σ_{k=1..order} P^k` into
    /// `acc` (reshaping it as needed) using `ws` for the intermediate
    /// powers. After the first call at a given size, no allocation at
    /// all. Results are bitwise identical to
    /// [`walk_series`](Matrix::walk_series).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn walk_series_into(&self, order: usize, epsilon: f64, ws: &mut Workspace, acc: &mut Matrix) {
        assert_eq!(self.rows, self.cols, "walk series requires a square matrix");
        let n = self.rows;
        acc.reset_zeros(n, n);
        ws.begin_powers(n);
        for _ in 0..order {
            let power = ws.step_power(self);
            if power.max_abs() < epsilon {
                break;
            }
            acc.add_assign_checked(power).expect("same shape");
        }
    }

    /// The walk-series entry for a node pair, i.e. `1 − separation(i, j)`.
    pub fn transitive_influence(&self, from: NodeIdx, to: NodeIdx, order: usize) -> f64 {
        self.walk_series(order, 1e-12)
            .get(from.index(), to.index())
            .unwrap_or(0.0)
    }
}

/// Reusable scratch buffers for the power-series kernel.
///
/// Holds the current power and a multiply target; both keep their
/// allocations across calls, so any number of
/// [`Matrix::walk_series_into`] runs over same-sized matrices perform
/// zero allocation after the first. A workspace carries no result state
/// between calls — sharing one across unrelated analyses is safe (but
/// not across threads; give each worker its own).
#[derive(Debug, Clone)]
pub struct Workspace {
    power: Matrix,
    next: Matrix,
}

impl Workspace {
    /// Creates an empty workspace; buffers grow on first use.
    #[must_use]
    pub fn new() -> Workspace {
        Workspace {
            power: Matrix::zeros(0, 0),
            next: Matrix::zeros(0, 0),
        }
    }

    /// Resets the power accumulator to the `n × n` identity (`P⁰`),
    /// starting a fresh [`step_power`](Workspace::step_power) walk.
    pub fn begin_powers(&mut self, n: usize) {
        self.power.reset_identity(n);
    }

    /// Advances the accumulator one step — after the `k`-th call it
    /// holds `P^k` — and returns it. Allocation-free once warm.
    ///
    /// # Panics
    ///
    /// Panics when `p`'s row count differs from the size given to
    /// [`begin_powers`](Workspace::begin_powers).
    pub fn step_power(&mut self, p: &Matrix) -> &Matrix {
        self.power
            .mul_into(p, &mut self.next)
            .expect("power accumulator must match the matrix size");
        std::mem::swap(&mut self.power, &mut self.next);
        &self.power
    }
}

impl Default for Workspace {
    fn default() -> Workspace {
        Workspace::new()
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    /// # Panics
    ///
    /// Panics on dimension mismatch; use [`Matrix::checked_mul`] to handle
    /// the error.
    fn mul(self, rhs: &Matrix) -> Matrix {
        self.checked_mul(rhs).expect("matrix dimension mismatch")
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    /// # Panics
    ///
    /// Panics on dimension mismatch; use [`Matrix::checked_add`] to handle
    /// the error.
    fn add(self, rhs: &Matrix) -> Matrix {
        self.checked_add(rhs).expect("matrix dimension mismatch")
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:.4}", self.data[r * self.cols + c])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_multiplication_is_neutral() {
        let m = Matrix::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::identity(2);
        assert_eq!(&m * &i, m);
        assert_eq!(&i * &m, m);
    }

    #[test]
    fn multiplication_matches_hand_computation() {
        let a = Matrix::from_rows(2, 3, &[1.0, 0.0, 2.0, -1.0, 3.0, 1.0]);
        let b = Matrix::from_rows(3, 2, &[3.0, 1.0, 2.0, 1.0, 1.0, 0.0]);
        let c = a.checked_mul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(2, 2, &[5.0, 1.0, 4.0, 2.0]));
    }

    #[test]
    fn mismatched_multiplication_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.checked_mul(&b),
            Err(GraphError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn mismatched_addition_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 2);
        assert!(matches!(
            a.checked_add(&b),
            Err(GraphError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn from_graph_sums_parallel_edges() {
        let mut g: DiGraph<(), f64> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 0.25);
        g.add_edge(a, b, 0.5);
        let m = Matrix::from_graph(&g);
        assert_eq!(m[(0, 1)], 0.75);
        assert_eq!(m[(1, 0)], 0.0);
    }

    #[test]
    fn walk_series_on_a_chain_accumulates_transitive_terms() {
        // a -> b (0.5), b -> c (0.4): direct a->c is 0, two-step is 0.2.
        let mut p = Matrix::zeros(3, 3);
        p[(0, 1)] = 0.5;
        p[(1, 2)] = 0.4;
        let s1 = p.walk_series(1, 0.0);
        assert_eq!(s1[(0, 2)], 0.0);
        let s2 = p.walk_series(2, 0.0);
        assert!((s2[(0, 2)] - 0.2).abs() < 1e-12);
        // No walks longer than 2 exist, so higher orders change nothing.
        let s5 = p.walk_series(5, 0.0);
        assert!((s5[(0, 2)] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn walk_series_early_stops_below_epsilon() {
        let mut p = Matrix::zeros(2, 2);
        p[(0, 1)] = 1e-4;
        p[(1, 0)] = 1e-4;
        // Second power has max entry 1e-8 < epsilon, so the series equals P.
        let s = p.walk_series(10, 1e-6);
        assert_eq!(s, p.walk_series(1, 0.0));
    }

    #[test]
    fn truncation_checks_the_power_term_not_the_accumulator() {
        // Chain 0 -(0.9)-> 1 -(0.01)-> 2: P¹ has max 0.9, P² is the
        // single entry 0.009 at (0, 2), P³ is zero. With ε = 0.05 the
        // P² *term* is below ε while the accumulator's max (0.9) is
        // far above it — an accumulator-based check would keep going
        // and pick up the 0.009, a power-term check must stop first.
        let mut p = Matrix::zeros(3, 3);
        p[(0, 1)] = 0.9;
        p[(1, 2)] = 0.01;
        let s = p.walk_series(10, 0.05);
        assert_eq!(s[(0, 2)], 0.0, "P² term must be discarded");
        assert_eq!(s, p.walk_series(1, 0.0), "series truncates to P¹");
        // With ε below the P² term, the term is kept.
        assert!((p.walk_series(10, 1e-3)[(0, 2)] - 0.009).abs() < 1e-15);
    }

    #[test]
    fn transitive_influence_reads_one_entry() {
        let mut p = Matrix::zeros(3, 3);
        p[(0, 1)] = 0.5;
        p[(1, 2)] = 0.4;
        let v = p.transitive_influence(NodeIdx(0), NodeIdx(2), 4);
        assert!((v - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn walk_series_requires_square() {
        Matrix::zeros(2, 3).walk_series(2, 0.0);
    }

    #[test]
    fn max_abs_of_zero_matrix_is_zero() {
        assert_eq!(Matrix::zeros(3, 3).max_abs(), 0.0);
        let mut m = Matrix::zeros(1, 2);
        m[(0, 1)] = -2.5;
        assert_eq!(m.max_abs(), 2.5);
    }

    #[test]
    fn display_renders_rows() {
        let m = Matrix::from_rows(2, 2, &[1.0, 0.5, 0.25, 0.0]);
        let s = m.to_string();
        assert_eq!(s.lines().count(), 2);
        assert!(s.starts_with("1.0000 0.5000"));
    }

    /// The pre-refactor naive ikj product, kept verbatim as the bitwise
    /// reference for the blocked kernel.
    fn naive_mul(lhs: &Matrix, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(lhs.rows, rhs.cols);
        for i in 0..lhs.rows {
            for k in 0..lhs.cols {
                let a = lhs.data[i * lhs.cols + k];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out.data[i * rhs.cols + j] += a * rhs.data[k * rhs.cols + j];
                }
            }
        }
        out
    }

    /// Deterministic pseudo-random matrix with a sprinkling of exact
    /// zeros (to exercise the skip path), sized to cross block borders.
    fn scrambled(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = fcm_substrate::Rng::seed_from_u64(seed);
        let mut m = Matrix::zeros(rows, cols);
        for v in &mut m.data {
            *v = if rng.gen_range(0..4) == 0 {
                0.0
            } else {
                rng.gen_f64() - 0.5
            };
        }
        m
    }

    #[test]
    fn blocked_product_is_bitwise_equal_to_naive_ikj() {
        // Sizes straddle the 64-wide block boundary, including ragged
        // tails and non-square shapes.
        for (m, k, n) in [(5, 7, 3), (64, 64, 64), (65, 130, 63), (100, 97, 101)] {
            let a = scrambled(m, k, 0xA5A5 + m as u64);
            let b = scrambled(k, n, 0x5A5A + n as u64);
            let blocked = a.checked_mul(&b).unwrap();
            assert_eq!(blocked, naive_mul(&a, &b), "{m}x{k} * {k}x{n}");
        }
    }

    #[test]
    fn mul_into_reuses_out_across_shapes() {
        let a = scrambled(20, 30, 1);
        let b = scrambled(30, 10, 2);
        let mut out = Matrix::zeros(3, 3); // wrong shape on purpose
        a.mul_into(&b, &mut out).unwrap();
        assert_eq!(out, naive_mul(&a, &b));
        // Reuse for a different product; stale contents must not leak.
        let c = scrambled(4, 5, 3);
        let d = scrambled(5, 6, 4);
        c.mul_into(&d, &mut out).unwrap();
        assert_eq!(out, naive_mul(&c, &d));
    }

    #[test]
    fn mul_into_dimension_mismatch_leaves_out_untouched() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let mut out = Matrix::from_rows(1, 2, &[7.0, 8.0]);
        assert!(a.mul_into(&b, &mut out).is_err());
        assert_eq!(out, Matrix::from_rows(1, 2, &[7.0, 8.0]));
    }

    #[test]
    fn add_assign_checked_matches_checked_add() {
        let a = scrambled(9, 9, 5);
        let b = scrambled(9, 9, 6);
        let mut c = a.clone();
        c.add_assign_checked(&b).unwrap();
        assert_eq!(c, a.checked_add(&b).unwrap());
        assert!(c.add_assign_checked(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn workspace_series_is_bitwise_equal_and_reusable() {
        let mut ws = Workspace::new();
        for n in [3usize, 17, 66] {
            // Keep entries small so the series converges.
            let mut p = scrambled(n, n, 7 + n as u64);
            for v in &mut p.data {
                *v *= 0.2;
            }
            let fresh = p.walk_series(6, 1e-9);
            let reused = p.walk_series_with(6, 1e-9, &mut ws);
            assert_eq!(fresh, reused, "n={n}");
            let mut acc = Matrix::zeros(0, 0);
            p.walk_series_into(6, 1e-9, &mut ws, &mut acc);
            assert_eq!(fresh, acc, "n={n} (into)");
        }
    }

    #[test]
    fn get_is_bounds_checked() {
        let m = Matrix::zeros(2, 2);
        assert_eq!(m.get(1, 1), Some(0.0));
        assert_eq!(m.get(2, 0), None);
        assert_eq!(m.get(0, 2), None);
    }
}
