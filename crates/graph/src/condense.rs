//! Graph condensation: contracting node groups into super-nodes.
//!
//! When the paper combines SW nodes into a cluster, *"internal influences
//! disappear"* and influences of several members on a common outside
//! neighbour *"need to be combined"* — with the probabilistic rule of
//! Eq. 4, `infl(C→t) = 1 − Π_{i∈C}(1 − infl(i→t))`. [`condense`] performs
//! that contraction with a pluggable [`CombineRule`].

use crate::error::GraphError;
use crate::{DiGraph, Matrix, NodeIdx};

/// How parallel influences from/to a condensed group are combined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CombineRule {
    /// Probabilistic or-combination `1 − Π(1 − pᵢ)` — the paper's Eq. 4,
    /// correct when the member influences are independent probabilities.
    #[default]
    Probabilistic,
    /// Plain sum — used when edge weights are rates or costs rather than
    /// probabilities (e.g. communication volume).
    Sum,
    /// Maximum — a conservative bound.
    Max,
}

impl CombineRule {
    /// Combines a non-empty list of parallel weights per the rule.
    ///
    /// Returns `0.0` for an empty slice.
    pub fn combine(self, weights: &[f64]) -> f64 {
        match self {
            CombineRule::Probabilistic => 1.0 - weights.iter().fold(1.0, |acc, &p| acc * (1.0 - p)),
            CombineRule::Sum => weights.iter().sum(),
            CombineRule::Max => weights.iter().fold(0.0, |acc, &p| acc.max(p)),
        }
    }
}

/// Result of condensing a graph: the condensed graph plus the node mapping.
///
/// Node payloads of the condensed graph are the member lists of original
/// node indices, preserving the traceability the paper's figures rely on
/// (e.g. the cluster "p1,2,3,4").
#[derive(Debug, Clone, PartialEq)]
pub struct Condensation {
    /// The condensed graph; payloads are original-node member lists.
    pub graph: DiGraph<Vec<NodeIdx>, f64>,
    /// For each original node index, the condensed node that contains it.
    pub membership: Vec<NodeIdx>,
}

impl Condensation {
    /// The condensed node containing original node `orig`.
    pub fn group_of(&self, orig: NodeIdx) -> Option<NodeIdx> {
        self.membership.get(orig.index()).copied()
    }

    /// The group-to-group influence matrix of the condensed graph:
    /// entry `(i, j)` is the combined influence of group `i` on group
    /// `j`, `0.0` where no edge exists. This is the *full-recompute*
    /// reference the incremental pipeline update is checked against
    /// (bitwise) by the equivalence property tests.
    #[must_use]
    pub fn influence_matrix(&self) -> Matrix {
        Matrix::from_graph(&self.graph)
    }
}

/// Contracts `groups` (a partition of the node set) into super-nodes.
///
/// Edges internal to a group vanish; edges between groups are combined
/// per `rule`. Groups must be disjoint, non-empty, and cover every node.
///
/// # Errors
///
/// Returns [`GraphError::NodeOutOfBounds`] if a group references a missing
/// node, and [`GraphError::TooManyParts`] if the groups do not form a
/// partition (a node missing or listed twice).
///
/// # Example
///
/// ```
/// use fcm_graph::{DiGraph, NodeIdx, condense::{condense, CombineRule}};
///
/// let mut g: DiGraph<(), f64> = DiGraph::new();
/// let n: Vec<_> = (0..3).map(|_| g.add_node(())).collect();
/// g.add_edge(n[0], n[2], 0.7);
/// g.add_edge(n[1], n[2], 0.2);
/// let c = condense(&g, &[vec![n[0], n[1]], vec![n[2]]], CombineRule::Probabilistic)?;
/// // Eq. 4: 1 - (1-0.7)(1-0.2) = 0.76 — the value visible in the paper's Fig. 5.
/// let w = *c.graph.edge_weight_between(NodeIdx(0), NodeIdx(1)).unwrap();
/// assert!((w - 0.76).abs() < 1e-12);
/// # Ok::<(), fcm_graph::GraphError>(())
/// ```
pub fn condense<N, E: Copy + Into<f64>>(
    g: &DiGraph<N, E>,
    groups: &[Vec<NodeIdx>],
    rule: CombineRule,
) -> Result<Condensation, GraphError> {
    let n = g.node_count();
    let mut membership = vec![usize::MAX; n];
    for (gi, group) in groups.iter().enumerate() {
        for &v in group {
            if v.index() >= n {
                return Err(GraphError::NodeOutOfBounds {
                    index: v.index(),
                    len: n,
                });
            }
            if membership[v.index()] != usize::MAX {
                // Duplicate membership: not a partition.
                return Err(GraphError::TooManyParts {
                    requested: groups.len(),
                    nodes: n,
                });
            }
            membership[v.index()] = gi;
        }
    }
    if membership.contains(&usize::MAX) {
        return Err(GraphError::TooManyParts {
            requested: groups.len(),
            nodes: n,
        });
    }

    let mut out: DiGraph<Vec<NodeIdx>, f64> = DiGraph::with_capacity(groups.len());
    for group in groups {
        let mut sorted = group.clone();
        sorted.sort();
        out.add_node(sorted);
    }

    // Gather parallel weights per (source group, target group).
    let k = groups.len();
    let mut buckets: Vec<Vec<f64>> = vec![Vec::new(); k * k];
    for (_, e) in g.edges() {
        let (gu, gv) = (membership[e.from.index()], membership[e.to.index()]);
        if gu != gv {
            buckets[gu * k + gv].push(e.weight.into());
        }
    }
    for gu in 0..k {
        for gv in 0..k {
            let ws = &buckets[gu * k + gv];
            if !ws.is_empty() {
                out.add_edge(NodeIdx(gu), NodeIdx(gv), rule.combine(ws));
            }
        }
    }

    Ok(Condensation {
        graph: out,
        membership: membership.into_iter().map(NodeIdx).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fan_in() -> (DiGraph<(), f64>, Vec<NodeIdx>) {
        let mut g: DiGraph<(), f64> = DiGraph::new();
        let n: Vec<_> = (0..4).map(|_| g.add_node(())).collect();
        g.add_edge(n[0], n[3], 0.7);
        g.add_edge(n[1], n[3], 0.2);
        g.add_edge(n[0], n[1], 0.9); // internal once grouped
        g.add_edge(n[3], n[2], 0.4);
        (g, n)
    }

    #[test]
    fn probabilistic_rule_matches_eq4() {
        assert!((CombineRule::Probabilistic.combine(&[0.7, 0.2]) - 0.76).abs() < 1e-12);
        assert_eq!(CombineRule::Probabilistic.combine(&[]), 0.0);
        assert_eq!(CombineRule::Probabilistic.combine(&[1.0, 0.3]), 1.0);
    }

    #[test]
    fn sum_and_max_rules() {
        assert!((CombineRule::Sum.combine(&[0.7, 0.2]) - 0.9).abs() < 1e-12);
        assert_eq!(CombineRule::Max.combine(&[0.7, 0.2]), 0.7);
        assert_eq!(CombineRule::Sum.combine(&[]), 0.0);
        assert_eq!(CombineRule::Max.combine(&[]), 0.0);
    }

    #[test]
    fn internal_influences_disappear() {
        let (g, n) = fan_in();
        let c = condense(
            &g,
            &[vec![n[0], n[1]], vec![n[2]], vec![n[3]]],
            CombineRule::Probabilistic,
        )
        .unwrap();
        assert_eq!(c.graph.node_count(), 3);
        // 0.9 internal edge is gone; fan-in combined to 0.76; 3->2 kept.
        assert_eq!(c.graph.edge_count(), 2);
        let w = *c
            .graph
            .edge_weight_between(c.group_of(n[0]).unwrap(), c.group_of(n[3]).unwrap())
            .unwrap();
        assert!((w - 0.76).abs() < 1e-12);
        let back = *c
            .graph
            .edge_weight_between(c.group_of(n[3]).unwrap(), c.group_of(n[2]).unwrap())
            .unwrap();
        assert!((back - 0.4).abs() < 1e-12);
    }

    #[test]
    fn membership_maps_every_original_node() {
        let (g, n) = fan_in();
        let c = condense(&g, &[vec![n[0], n[2]], vec![n[1], n[3]]], CombineRule::Sum).unwrap();
        assert_eq!(c.membership.len(), 4);
        assert_eq!(c.group_of(n[0]), Some(NodeIdx(0)));
        assert_eq!(c.group_of(n[3]), Some(NodeIdx(1)));
        assert_eq!(c.group_of(NodeIdx(99)), None);
    }

    #[test]
    fn non_partition_is_rejected() {
        let (g, n) = fan_in();
        // Node 3 missing.
        assert!(condense(&g, &[vec![n[0], n[1]], vec![n[2]]], CombineRule::Sum).is_err());
        // Node 0 duplicated.
        assert!(condense(
            &g,
            &[vec![n[0], n[1]], vec![n[0], n[2], n[3]]],
            CombineRule::Sum
        )
        .is_err());
        // Unknown node.
        assert!(condense(&g, &[vec![NodeIdx(9)]], CombineRule::Sum).is_err());
    }

    #[test]
    fn payloads_record_sorted_members() {
        let (g, n) = fan_in();
        let c = condense(&g, &[vec![n[3], n[0]], vec![n[1], n[2]]], CombineRule::Max).unwrap();
        assert_eq!(c.graph.node(NodeIdx(0)).unwrap(), &vec![n[0], n[3]]);
    }

    #[test]
    fn influence_matrix_mirrors_the_condensed_edges() {
        let (g, n) = fan_in();
        let c = condense(
            &g,
            &[vec![n[0], n[1]], vec![n[2]], vec![n[3]]],
            CombineRule::Probabilistic,
        )
        .unwrap();
        let m = c.influence_matrix();
        assert_eq!(m.rows(), 3);
        let g03 = c.group_of(n[3]).unwrap().index();
        let g02 = c.group_of(n[2]).unwrap().index();
        assert!((m[(0, g03)] - 0.76).abs() < 1e-12);
        assert_eq!(m[(g03, g02)], 0.4);
        assert_eq!(m[(g02, 0)], 0.0, "absent edge is zero");
    }

    #[test]
    fn singleton_partition_is_identity_shape() {
        let (g, n) = fan_in();
        let groups: Vec<Vec<NodeIdx>> = n.iter().map(|&v| vec![v]).collect();
        let c = condense(&g, &groups, CombineRule::Probabilistic).unwrap();
        assert_eq!(c.graph.node_count(), 4);
        assert_eq!(c.graph.edge_count(), 4);
    }
}
