//! Storage-polymorphic influence matrices: one value type over the
//! dense [`Matrix`] oracle and the CSR [`SparseMatrix`] engine.
//!
//! Every layer above `fcm-graph` (separation analysis, the condense
//! pipeline, the checker, the serve daemon) holds an
//! [`InfluenceMatrix`] and lets this module pick the representation.
//! The two representations are interchangeable by construction — the
//! sparse kernels are bitwise equal to the dense ones wherever both run
//! (see the [`sparse`](crate::sparse) module docs for the argument) —
//! so selection is purely a performance policy, never a semantics
//! switch.
//!
//! # Representation-selection policy
//!
//! [`prefer_sparse`] chooses CSR when
//!
//! * `n ≥ 512` (dense storage alone is ≥ 2 MiB and the cubic walk
//!   series stops being interactive), or
//! * `n ≥ 64` and density ≤ 5% (the CSR row kernels already win, and
//!   below 64 nodes nothing is worth the indirection).
//!
//! [`InfluenceMatrix::rebalance`] re-applies the policy after shape or
//! density changes (the serve admit/retire path); conversions preserve
//! every value bitwise, so a rebalance is never observable in results.

use crate::matrix::Matrix;
use crate::sparse::SparseMatrix;
use crate::DiGraph;
use fcm_substrate::Json;

/// Node count at which CSR is always selected.
pub const SPARSE_N_THRESHOLD: usize = 512;
/// Node count below which dense is always selected.
pub const SPARSE_MIN_N: usize = 64;
/// Maximum density for CSR selection in the mid range.
pub const SPARSE_MAX_DENSITY: f64 = 0.05;

/// The representation-selection policy (module docs).
#[must_use]
pub fn prefer_sparse(n: usize, density: f64) -> bool {
    n >= SPARSE_N_THRESHOLD || (n >= SPARSE_MIN_N && density <= SPARSE_MAX_DENSITY)
}

/// FNV-1a hashing helpers shared by [`InfluenceMatrix::row_hash`] and the
/// checker's contract fingerprints. Deterministic, allocation-free, and
/// stable across platforms (pure 64-bit integer arithmetic).
pub mod fnv {
    /// The FNV-1a 64-bit offset basis (the hash of an empty input).
    pub const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Folds one byte into the running hash.
    #[must_use]
    pub fn byte(h: u64, b: u8) -> u64 {
        (h ^ u64::from(b)).wrapping_mul(PRIME)
    }

    /// Folds a 64-bit word into the running hash, little-endian.
    #[must_use]
    pub fn word(mut h: u64, w: u64) -> u64 {
        for b in w.to_le_bytes() {
            h = byte(h, b);
        }
        h
    }

    /// Folds an `f64` into the running hash by its exact bit pattern.
    #[must_use]
    pub fn value(h: u64, v: f64) -> u64 {
        word(h, v.to_bits())
    }

    /// Folds a string into the running hash (length-prefixed so that
    /// adjacent fields cannot alias).
    #[must_use]
    pub fn text(mut h: u64, s: &str) -> u64 {
        h = word(h, s.len() as u64);
        for b in s.bytes() {
            h = byte(h, b);
        }
        h
    }

    /// Folds one `(column, value)` matrix entry into the running hash.
    #[must_use]
    pub fn entry(h: u64, col: usize, v: f64) -> u64 {
        value(word(h, col as u64), v)
    }
}

/// An influence matrix in whichever representation suits its size and
/// fill: dense row-major ([`Matrix`], the bitwise oracle) or CSR
/// ([`SparseMatrix`], the large-n engine).
///
/// # Example
///
/// ```
/// use fcm_graph::{InfluenceMatrix, Matrix};
///
/// let mut m = Matrix::zeros(3, 3);
/// m[(0, 1)] = 0.5;
/// m[(1, 2)] = 0.4;
/// let im = InfluenceMatrix::from_dense_auto(m);
/// assert_eq!(im.repr(), "dense"); // tiny, stays dense
/// assert_eq!(im[(0, 1)], 0.5);
/// assert!((im.transitive_influence(0, 2, 4) - 0.2).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub enum InfluenceMatrix {
    /// Dense row-major storage — the small-n oracle.
    Dense(Matrix),
    /// Compressed sparse rows — the large-n engine.
    Sparse(SparseMatrix),
}

static ZERO: f64 = 0.0;

impl InfluenceMatrix {
    /// Wraps a dense matrix, then applies the selection policy (a
    /// sparse conversion preserves every value bitwise).
    #[must_use]
    pub fn from_dense_auto(m: Matrix) -> InfluenceMatrix {
        let mut im = InfluenceMatrix::Dense(m);
        im.rebalance();
        im
    }

    /// Builds the weight matrix of a graph under the selection policy,
    /// without materialising a dense matrix unless dense is chosen.
    /// Parallel edges sum in global edge order, exactly like
    /// [`Matrix::from_graph`].
    #[must_use]
    pub fn from_graph_auto<N, E: Copy + Into<f64>>(g: &DiGraph<N, E>) -> InfluenceMatrix {
        let s = SparseMatrix::from_graph(g);
        if prefer_sparse(s.rows(), s.density()) {
            InfluenceMatrix::Sparse(s)
        } else {
            InfluenceMatrix::Dense(s.to_dense())
        }
    }

    /// Re-applies the selection policy in place after a shape or
    /// density change. Returns `true` when the representation switched.
    pub fn rebalance(&mut self) -> bool {
        let want_sparse = prefer_sparse(self.rows(), self.density());
        match self {
            InfluenceMatrix::Dense(m) if want_sparse => {
                *self = InfluenceMatrix::Sparse(SparseMatrix::from_dense(m));
                true
            }
            InfluenceMatrix::Sparse(s) if !want_sparse => {
                *self = InfluenceMatrix::Dense(s.to_dense());
                true
            }
            _ => false,
        }
    }

    /// The representation's stable name: `"dense"` or `"csr"`.
    #[must_use]
    pub fn repr(&self) -> &'static str {
        match self {
            InfluenceMatrix::Dense(_) => "dense",
            InfluenceMatrix::Sparse(_) => "csr",
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        match self {
            InfluenceMatrix::Dense(m) => m.rows(),
            InfluenceMatrix::Sparse(s) => s.rows(),
        }
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        match self {
            InfluenceMatrix::Dense(m) => m.cols(),
            InfluenceMatrix::Sparse(s) => s.cols(),
        }
    }

    /// Number of nonzero entries (counted for dense, stored for CSR —
    /// equal by the zero-pruning invariant).
    #[must_use]
    pub fn nnz(&self) -> usize {
        match self {
            InfluenceMatrix::Dense(m) => (0..m.rows())
                .map(|i| (0..m.cols()).filter(|&j| m[(i, j)] != 0.0).count())
                .sum(),
            InfluenceMatrix::Sparse(s) => s.nnz(),
        }
    }

    /// Fill ratio `nnz / (rows · cols)` (`0.0` for an empty shape).
    #[must_use]
    pub fn density(&self) -> f64 {
        if self.rows() == 0 || self.cols() == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows() as f64 * self.cols() as f64)
        }
    }

    /// The entry at `(row, col)`, or `None` when out of bounds — the
    /// [`Matrix::get`] contract in both representations.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> Option<f64> {
        match self {
            InfluenceMatrix::Dense(m) => m.get(row, col),
            InfluenceMatrix::Sparse(s) => s.get(row, col),
        }
    }

    /// A representation-independent fingerprint of one row: FNV-1a over
    /// the `(column, value bits)` pairs of the row's *nonzero* entries in
    /// ascending column order. Structural zeros are skipped in the dense
    /// arm, so by the zero-pruning invariant the hash of a row is
    /// bitwise-identical across `Dense` and `Sparse` representations —
    /// the property the incremental certifier's cache keying relies on.
    ///
    /// Rows out of bounds hash like empty rows (the FNV offset basis).
    #[must_use]
    pub fn row_hash(&self, row: usize) -> u64 {
        let mut h = fnv::OFFSET;
        match self {
            InfluenceMatrix::Dense(m) => {
                if row < m.rows() {
                    for col in 0..m.cols() {
                        let v = m[(row, col)];
                        if v != 0.0 {
                            h = fnv::entry(h, col, v);
                        }
                    }
                }
            }
            InfluenceMatrix::Sparse(s) => {
                if row < s.rows() {
                    let (cols, vals) = s.row(row);
                    for (&col, &v) in cols.iter().zip(vals) {
                        if v != 0.0 {
                            h = fnv::entry(h, col, v);
                        }
                    }
                }
            }
        }
        h
    }

    /// The dense matrix when this is the dense representation.
    #[must_use]
    pub fn as_dense(&self) -> Option<&Matrix> {
        match self {
            InfluenceMatrix::Dense(m) => Some(m),
            InfluenceMatrix::Sparse(_) => None,
        }
    }

    /// The CSR matrix when this is the sparse representation.
    #[must_use]
    pub fn as_sparse(&self) -> Option<&SparseMatrix> {
        match self {
            InfluenceMatrix::Dense(_) => None,
            InfluenceMatrix::Sparse(s) => Some(s),
        }
    }

    /// Materialises a dense copy (bitwise, regardless of
    /// representation).
    #[must_use]
    pub fn to_dense(&self) -> Matrix {
        match self {
            InfluenceMatrix::Dense(m) => m.clone(),
            InfluenceMatrix::Sparse(s) => s.to_dense(),
        }
    }

    /// Truncated walk series `Σ_{k=1..order} P^k` (paper Eq. 3) in the
    /// same representation: the dense oracle kernel or the SCC-sharded
    /// sparse engine — bitwise-equal results either way.
    ///
    /// # Panics
    ///
    /// Panics when the matrix is not square.
    #[must_use]
    pub fn walk_series(&self, order: usize, epsilon: f64) -> InfluenceMatrix {
        match self {
            InfluenceMatrix::Dense(m) => InfluenceMatrix::Dense(m.walk_series(order, epsilon)),
            InfluenceMatrix::Sparse(s) => InfluenceMatrix::Sparse(s.walk_series(order, epsilon)),
        }
    }

    /// Row `from` of the walk series as sorted `(col, value)` pairs,
    /// with **row-local** ε-truncation (see [`SparseMatrix::walk_row`]).
    /// Both representations run the identical row kernel, so the result
    /// is bitwise representation-independent — the property the serve
    /// daemon's per-query path relies on.
    ///
    /// # Panics
    ///
    /// Panics when the matrix is not square or `from` is out of bounds.
    #[must_use]
    pub fn walk_row(&self, from: usize, order: usize, epsilon: f64) -> Vec<(usize, f64)> {
        match self {
            InfluenceMatrix::Dense(m) => SparseMatrix::from_dense(m).walk_row(from, order, epsilon),
            InfluenceMatrix::Sparse(s) => s.walk_row(from, order, epsilon),
        }
    }

    /// The walk-series entry for one node pair — Eq. 3's transitive
    /// influence, `1 − separation(from, to)` — via a single-row walk
    /// (ε = 1e-12, row-local), never the full n×n series.
    #[must_use]
    pub fn transitive_influence(&self, from: usize, to: usize, order: usize) -> f64 {
        self.walk_row(from, order, 1e-12)
            .iter()
            .find(|&&(j, _)| j == to)
            .map_or(0.0, |&(_, v)| v)
    }

    /// The `k` strongest transitive influences out of `from` (diagonal
    /// excluded), descending by value with ascending-column ties —
    /// guaranteed to agree with a full sort of the same walk row.
    #[must_use]
    pub fn top_k_influence(&self, from: usize, k: usize, order: usize) -> Vec<(usize, f64)> {
        match self {
            InfluenceMatrix::Dense(m) => {
                SparseMatrix::from_dense(m).top_k_from(from, k, order, 1e-12)
            }
            InfluenceMatrix::Sparse(s) => s.top_k_from(from, k, order, 1e-12),
        }
    }

    /// The `k` least-separated targets of `from`: separation is
    /// `1 − min(series, 1)`, monotone decreasing in influence, so the
    /// strongest influences are exactly the least-separated pairs.
    /// Returns `(node, separation)` ascending by separation.
    #[must_use]
    pub fn top_k_least_separated(&self, from: usize, k: usize, order: usize) -> Vec<(usize, f64)> {
        self.top_k_influence(from, k, order)
            .into_iter()
            .map(|(j, v)| (j, 1.0 - v.min(1.0)))
            .collect()
    }

    /// Appends one all-zero row and column (serve admit hook), keeping
    /// the representation; call [`rebalance`](Self::rebalance) after.
    #[must_use]
    pub fn grow_row_col(&self) -> InfluenceMatrix {
        match self {
            InfluenceMatrix::Dense(m) => {
                let n = m.rows();
                let mut out = Matrix::zeros(n + 1, n + 1);
                for i in 0..n {
                    for j in 0..n {
                        out[(i, j)] = m[(i, j)];
                    }
                }
                InfluenceMatrix::Dense(out)
            }
            InfluenceMatrix::Sparse(s) => InfluenceMatrix::Sparse(s.grow_row_col()),
        }
    }

    /// Removes row and column `hi`, shifting later indices down (serve
    /// retire hook), keeping the representation.
    ///
    /// # Panics
    ///
    /// Panics when the matrix is not square or `hi` is out of bounds.
    #[must_use]
    pub fn shrink_row_col(&self, hi: usize) -> InfluenceMatrix {
        match self {
            InfluenceMatrix::Dense(m) => {
                let n = m.rows();
                assert!(hi < n, "shrink index out of bounds");
                let mut out = Matrix::zeros(n - 1, n - 1);
                for i in 0..n - 1 {
                    for j in 0..n - 1 {
                        let si = if i >= hi { i + 1 } else { i };
                        let sj = if j >= hi { j + 1 } else { j };
                        out[(i, j)] = m[(si, sj)];
                    }
                }
                InfluenceMatrix::Dense(out)
            }
            InfluenceMatrix::Sparse(s) => InfluenceMatrix::Sparse(s.shrink_row_col(hi)),
        }
    }

    /// Replaces row `gi` and column `gi` with dense slices (the Eq. 4
    /// row/column recombination hook). Both representations end up with
    /// identical values; CSR prunes the exact zeros.
    ///
    /// # Panics
    ///
    /// Panics when the matrix is not square or a slice length differs
    /// from `n`.
    pub fn set_row_col(&mut self, gi: usize, row: &[f64], col: &[f64]) {
        match self {
            InfluenceMatrix::Dense(m) => {
                let n = m.rows();
                assert!(gi < n && row.len() == n && col.len() == n);
                for t in 0..n {
                    m[(gi, t)] = row[t];
                }
                for (t, &v) in col.iter().enumerate() {
                    if t != gi {
                        m[(t, gi)] = v;
                    }
                }
            }
            InfluenceMatrix::Sparse(s) => s.set_row_col(gi, row, col),
        }
    }

    /// Applies a node relabelling: entry `(i, j)` of the result is
    /// entry `(map[i], map[j])` of `self`. Values carry bitwise.
    ///
    /// # Panics
    ///
    /// Panics when the matrix is not square or `map` is not a
    /// permutation of `0..n`.
    #[must_use]
    pub fn permuted(&self, map: &[usize]) -> InfluenceMatrix {
        match self {
            InfluenceMatrix::Dense(m) => {
                let n = m.rows();
                assert_eq!(map.len(), n, "map must cover every node");
                let mut out = Matrix::zeros(n, n);
                for i in 0..n {
                    for j in 0..n {
                        out[(i, j)] = m[(map[i], map[j])];
                    }
                }
                InfluenceMatrix::Dense(out)
            }
            InfluenceMatrix::Sparse(s) => InfluenceMatrix::Sparse(s.permuted(map)),
        }
    }

    /// Serialises for snapshot state. Dense emits the legacy
    /// array-of-rows form byte-for-byte (older snapshots stay
    /// readable and dense state round-trips unchanged); CSR emits a
    /// `{"format":"csr",…}` object with the raw arrays.
    #[must_use]
    pub fn to_state_json(&self) -> Json {
        match self {
            InfluenceMatrix::Dense(m) => Json::array(
                (0..m.rows())
                    .map(|i| Json::array((0..m.cols()).map(|j| Json::from(m[(i, j)])))),
            ),
            InfluenceMatrix::Sparse(s) => {
                let n = s.rows();
                let mut row_ptr = Vec::with_capacity(n + 1);
                let mut col_idx = Vec::with_capacity(s.nnz());
                let mut vals = Vec::with_capacity(s.nnz());
                row_ptr.push(0usize);
                for i in 0..n {
                    let (cols, v) = s.row(i);
                    col_idx.extend(cols.iter().map(|&c| c as u64));
                    vals.extend_from_slice(v);
                    row_ptr.push(col_idx.len());
                }
                Json::object()
                    .set("col_idx", Json::array(col_idx))
                    .set("cols", s.cols() as u64)
                    .set("format", "csr")
                    .set("row_ptr", Json::array(row_ptr.iter().map(|&p| p as u64)))
                    .set("rows", n as u64)
                    .set("vals", Json::array(vals.iter().copied()))
            }
        }
    }

    /// Parses either state form emitted by
    /// [`to_state_json`](Self::to_state_json): a dense array-of-rows or
    /// a `{"format":"csr",…}` object. Returns `None` on any malformed
    /// shape (ragged rows, non-numbers, inconsistent CSR arrays).
    #[must_use]
    pub fn from_state_json(j: &Json) -> Option<InfluenceMatrix> {
        if let Some(rows) = j.as_array() {
            let n = rows.len();
            let mut data = Vec::with_capacity(n * n);
            for row in rows {
                let cells = row.as_array()?;
                if cells.len() != n {
                    return None;
                }
                for cell in cells {
                    data.push(cell.as_f64()?);
                }
            }
            return Some(InfluenceMatrix::Dense(Matrix::from_rows(n, n, &data)));
        }
        if j.get("format")?.as_str()? != "csr" {
            return None;
        }
        let rows = usize_field(j, "rows")?;
        let cols = usize_field(j, "cols")?;
        let row_ptr: Vec<usize> = usize_array(j.get("row_ptr")?)?;
        let col_idx: Vec<usize> = usize_array(j.get("col_idx")?)?;
        let vals: Vec<f64> = j
            .get("vals")?
            .as_array()?
            .iter()
            .map(Json::as_f64)
            .collect::<Option<_>>()?;
        if row_ptr.len() != rows + 1
            || row_ptr.first() != Some(&0)
            || row_ptr.last() != Some(&col_idx.len())
            || col_idx.len() != vals.len()
            || row_ptr.windows(2).any(|w| w[0] > w[1])
            || col_idx.iter().any(|&c| c >= cols)
        {
            return None;
        }
        let mut triples = Vec::with_capacity(vals.len());
        for r in 0..rows {
            for p in row_ptr[r]..row_ptr[r + 1] {
                triples.push((r, col_idx[p], vals[p]));
            }
        }
        Some(InfluenceMatrix::Sparse(SparseMatrix::from_triples(
            rows, cols, triples,
        )))
    }
}

fn usize_field(j: &Json, key: &str) -> Option<usize> {
    let v = j.get(key)?.as_f64()?;
    (v >= 0.0 && v.fract() == 0.0).then_some(v as usize)
}

fn usize_array(j: &Json) -> Option<Vec<usize>> {
    j.as_array()?
        .iter()
        .map(|v| {
            let v = v.as_f64()?;
            (v >= 0.0 && v.fract() == 0.0).then_some(v as usize)
        })
        .collect()
}

impl std::ops::Index<(usize, usize)> for InfluenceMatrix {
    type Output = f64;
    /// # Panics
    ///
    /// Panics when the index is out of bounds (structurally-zero CSR
    /// cells index fine and yield `0.0`).
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        match self {
            InfluenceMatrix::Dense(m) => &m[(r, c)],
            InfluenceMatrix::Sparse(s) => {
                assert!(
                    r < s.rows() && c < s.cols(),
                    "matrix index out of bounds"
                );
                s.entry_ref(r, c).unwrap_or(&ZERO)
            }
        }
    }
}

/// Value equality across representations: same shape, same entries
/// (possible because both representations prune exact zeros).
impl PartialEq for InfluenceMatrix {
    fn eq(&self, other: &InfluenceMatrix) -> bool {
        match (self, other) {
            (InfluenceMatrix::Dense(a), InfluenceMatrix::Dense(b)) => a == b,
            (InfluenceMatrix::Sparse(a), InfluenceMatrix::Sparse(b)) => a == b,
            (InfluenceMatrix::Dense(d), InfluenceMatrix::Sparse(s))
            | (InfluenceMatrix::Sparse(s), InfluenceMatrix::Dense(d)) => sparse_eq_dense(s, d),
        }
    }
}

/// Value equality against a dense matrix (what analysis tests compare
/// incremental results to).
impl PartialEq<Matrix> for InfluenceMatrix {
    fn eq(&self, other: &Matrix) -> bool {
        match self {
            InfluenceMatrix::Dense(m) => m == other,
            InfluenceMatrix::Sparse(s) => sparse_eq_dense(s, other),
        }
    }
}

fn sparse_eq_dense(s: &SparseMatrix, d: &Matrix) -> bool {
    if s.rows() != d.rows() || s.cols() != d.cols() {
        return false;
    }
    (0..s.rows()).all(|i| {
        let (cols, vals) = s.row(i);
        let mut p = 0;
        (0..s.cols()).all(|j| {
            let want = if p < cols.len() && cols[p] == j {
                p += 1;
                vals[p - 1]
            } else {
                0.0
            };
            d[(i, j)] == want
        })
    })
}

impl fcm_substrate::ToJson for InfluenceMatrix {
    /// The dense [`Matrix` ToJson](Matrix#impl-ToJson-for-Matrix) form
    /// (`rows`/`cols`/`data`), regardless of representation — diagnostic
    /// consumers see one shape.
    fn to_json(&self) -> Json {
        fcm_substrate::ToJson::to_json(&self.to_dense())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> Matrix {
        let mut m = Matrix::zeros(3, 3);
        m[(0, 1)] = 0.5;
        m[(1, 2)] = 0.4;
        m
    }

    #[test]
    fn policy_picks_csr_only_when_it_pays() {
        assert!(!prefer_sparse(3, 0.01));
        assert!(!prefer_sparse(63, 0.0));
        assert!(prefer_sparse(64, 0.05));
        assert!(!prefer_sparse(64, 0.051));
        assert!(prefer_sparse(512, 1.0));
        assert!(prefer_sparse(50_000, 0.9));
    }

    #[test]
    fn auto_selection_and_rebalance_preserve_values() {
        let dense_small = InfluenceMatrix::from_dense_auto(chain());
        assert_eq!(dense_small.repr(), "dense");
        let mut big = Matrix::zeros(600, 600);
        big[(0, 1)] = 0.5;
        let im = InfluenceMatrix::from_dense_auto(big.clone());
        assert_eq!(im.repr(), "csr");
        assert_eq!(im, big);
        assert_eq!(im.nnz(), 1);
        let mut back = im.clone();
        // Force-dense round trip: value equality across the switch.
        back = InfluenceMatrix::Dense(back.to_dense());
        assert_eq!(back, im);
    }

    #[test]
    fn index_and_get_agree_across_representations() {
        let d = InfluenceMatrix::Dense(chain());
        let s = InfluenceMatrix::Sparse(SparseMatrix::from_dense(&chain()));
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(d[(i, j)], s[(i, j)]);
                assert_eq!(d.get(i, j), s.get(i, j));
            }
        }
        assert_eq!(s.get(3, 0), None);
        assert_eq!(d.nnz(), 2);
        assert_eq!(s.nnz(), 2);
        assert!((s.density() - 2.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn walk_row_and_queries_are_representation_independent() {
        let d = InfluenceMatrix::Dense(chain());
        let s = InfluenceMatrix::Sparse(SparseMatrix::from_dense(&chain()));
        assert_eq!(d.walk_row(0, 4, 1e-12), s.walk_row(0, 4, 1e-12));
        assert_eq!(
            d.transitive_influence(0, 2, 4).to_bits(),
            s.transitive_influence(0, 2, 4).to_bits()
        );
        assert_eq!(d.top_k_influence(0, 2, 4), s.top_k_influence(0, 2, 4));
        let sep = d.top_k_least_separated(0, 2, 4);
        assert_eq!(sep[0].0, 1); // strongest influence ⇒ least separated
        assert!(sep[0].1 < sep[1].1 + 1e-15);
    }

    #[test]
    fn row_hash_is_representation_independent_and_value_sensitive() {
        let d = InfluenceMatrix::Dense(chain());
        let s = InfluenceMatrix::Sparse(SparseMatrix::from_dense(&chain()));
        for i in 0..3 {
            assert_eq!(d.row_hash(i), s.row_hash(i), "row {i}");
        }
        // An empty row hashes like an out-of-bounds row: the offset basis.
        assert_eq!(d.row_hash(2), fnv::OFFSET);
        assert_eq!(d.row_hash(99), fnv::OFFSET);
        // Any change to a row's values or structure changes its hash.
        let mut edited = chain();
        edited[(0, 1)] = 0.500001;
        assert_ne!(InfluenceMatrix::Dense(edited).row_hash(0), d.row_hash(0));
        let mut moved = chain();
        moved[(0, 1)] = 0.0;
        moved[(0, 2)] = 0.5;
        assert_ne!(InfluenceMatrix::Dense(moved).row_hash(0), d.row_hash(0));
    }

    #[test]
    fn mutation_hooks_match_across_representations() {
        let base = chain();
        let mut d = InfluenceMatrix::Dense(base.clone());
        let mut s = InfluenceMatrix::Sparse(SparseMatrix::from_dense(&base));
        d = d.grow_row_col();
        s = s.grow_row_col();
        assert_eq!(d, s);
        let row = [0.0, 0.1, 0.2, 0.0];
        let col = [0.3, 0.0, 0.4, 0.0];
        d.set_row_col(0, &row, &col);
        s.set_row_col(0, &row, &col);
        assert_eq!(d, s);
        assert_eq!(d.shrink_row_col(2), s.shrink_row_col(2));
        let map = [3usize, 1, 0, 2];
        assert_eq!(d.permuted(&map), s.permuted(&map));
    }

    #[test]
    fn state_json_round_trips_both_forms() {
        let d = InfluenceMatrix::Dense(chain());
        let dj = d.to_state_json();
        assert!(dj.as_array().is_some(), "dense stays the legacy array form");
        assert_eq!(InfluenceMatrix::from_state_json(&dj).unwrap(), d);

        let s = InfluenceMatrix::Sparse(SparseMatrix::from_dense(&chain()));
        let sj = s.to_state_json();
        assert_eq!(sj.get("format").and_then(Json::as_str), Some("csr"));
        let back = InfluenceMatrix::from_state_json(&sj).unwrap();
        assert_eq!(back.repr(), "csr");
        assert_eq!(back, s);

        assert!(InfluenceMatrix::from_state_json(&Json::from(1.5)).is_none());
        assert!(InfluenceMatrix::from_state_json(&Json::object().set("format", "coo")).is_none());
    }

    #[test]
    fn empty_state_round_trips() {
        let e = InfluenceMatrix::Dense(Matrix::zeros(0, 0));
        let j = e.to_state_json();
        let back = InfluenceMatrix::from_state_json(&j).unwrap();
        assert_eq!(back.rows(), 0);
        assert_eq!(e.density(), 0.0);
    }
}
