//! Source–target minimum cut via Edmonds–Karp max-flow.
//!
//! The paper's H2 lists this variation explicitly: "Other variations
//! include … to cut the graph using source and target nodes." The cut is
//! computed on the symmetrised weights (a cut separates node sets
//! regardless of edge direction), matching [`min_cut`](super::min_cut).

use std::collections::VecDeque;

use crate::algo::mincut::Cut;
use crate::error::GraphError;
use crate::{DiGraph, NodeIdx};

/// Computes a minimum cut separating `source` from `target` on the
/// symmetrised weights, via Edmonds–Karp max-flow.
///
/// Returns a [`Cut`] whose `side_a` contains `source` and `side_b`
/// contains `target`.
///
/// # Errors
///
/// * [`GraphError::EmptyGraph`] — fewer than two nodes;
/// * [`GraphError::NodeOutOfBounds`] — invalid endpoints;
/// * [`GraphError::SelfLoop`] — `source == target`.
///
/// # Example
///
/// ```
/// use fcm_graph::{DiGraph, NodeIdx, algo::st_min_cut};
///
/// // a -1.0- b -0.1- c: separating a from c severs the thin middle edge.
/// let mut g: DiGraph<(), f64> = DiGraph::new();
/// let a = g.add_node(());
/// let b = g.add_node(());
/// let c = g.add_node(());
/// g.add_edge(a, b, 1.0);
/// g.add_edge(b, c, 0.1);
/// let cut = st_min_cut(&g, a, c)?;
/// assert!((cut.weight - 0.1).abs() < 1e-9);
/// assert!(cut.side_a.contains(&b));
/// # Ok::<(), fcm_graph::GraphError>(())
/// ```
pub fn st_min_cut<N, E: Copy + Into<f64>>(
    g: &DiGraph<N, E>,
    source: NodeIdx,
    target: NodeIdx,
) -> Result<Cut, GraphError> {
    let n = g.node_count();
    if n < 2 {
        return Err(GraphError::EmptyGraph);
    }
    if source.index() >= n || target.index() >= n {
        return Err(GraphError::NodeOutOfBounds {
            index: source.index().max(target.index()),
            len: n,
        });
    }
    if source == target {
        return Err(GraphError::SelfLoop {
            node: source.index(),
        });
    }

    // Symmetrised capacity matrix (dense: FCM graphs are small).
    let mut cap = vec![vec![0.0f64; n]; n];
    for (_, e) in g.edges() {
        let (u, v) = (e.from.index(), e.to.index());
        let w: f64 = e.weight.into();
        cap[u][v] += w;
        cap[v][u] += w;
    }

    let (s, t) = (source.index(), target.index());
    let mut flow_value = 0.0f64;
    loop {
        // BFS for an augmenting path in the residual graph.
        let mut parent = vec![usize::MAX; n];
        parent[s] = s;
        let mut queue = VecDeque::from([s]);
        while let Some(u) = queue.pop_front() {
            if u == t {
                break;
            }
            for v in 0..n {
                if parent[v] == usize::MAX && cap[u][v] > 1e-12 {
                    parent[v] = u;
                    queue.push_back(v);
                }
            }
        }
        if parent[t] == usize::MAX {
            break; // no augmenting path: max flow reached
        }
        // Bottleneck along the path.
        let mut bottleneck = f64::INFINITY;
        let mut v = t;
        while v != s {
            let u = parent[v];
            bottleneck = bottleneck.min(cap[u][v]);
            v = u;
        }
        // Augment.
        let mut v = t;
        while v != s {
            let u = parent[v];
            cap[u][v] -= bottleneck;
            cap[v][u] += bottleneck;
            v = u;
        }
        flow_value += bottleneck;
    }

    // Source side = residual-reachable set from s.
    let mut reachable = vec![false; n];
    reachable[s] = true;
    let mut queue = VecDeque::from([s]);
    while let Some(u) = queue.pop_front() {
        for v in 0..n {
            if !reachable[v] && cap[u][v] > 1e-12 {
                reachable[v] = true;
                queue.push_back(v);
            }
        }
    }

    let side_a: Vec<NodeIdx> = (0..n).filter(|&i| reachable[i]).map(NodeIdx).collect();
    let side_b: Vec<NodeIdx> = (0..n).filter(|&i| !reachable[i]).map(NodeIdx).collect();
    Ok(Cut {
        side_a,
        side_b,
        weight: flow_value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_cut_severs_the_thinnest_link() {
        let mut g: DiGraph<(), f64> = DiGraph::new();
        let n: Vec<_> = (0..4).map(|_| g.add_node(())).collect();
        g.add_edge(n[0], n[1], 0.9);
        g.add_edge(n[1], n[2], 0.2);
        g.add_edge(n[2], n[3], 0.7);
        let cut = st_min_cut(&g, n[0], n[3]).unwrap();
        assert!((cut.weight - 0.2).abs() < 1e-9);
        assert!(cut.side_a.contains(&n[0]) && cut.side_a.contains(&n[1]));
        assert!(cut.side_b.contains(&n[2]) && cut.side_b.contains(&n[3]));
    }

    #[test]
    fn st_cut_matches_flow_on_parallel_paths() {
        // Two disjoint s-t paths with bottlenecks 0.3 and 0.4: max flow
        // (= min cut) is 0.7.
        let mut g: DiGraph<(), f64> = DiGraph::new();
        let s = g.add_node(());
        let a = g.add_node(());
        let b = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, a, 0.3);
        g.add_edge(a, t, 0.9);
        g.add_edge(s, b, 0.8);
        g.add_edge(b, t, 0.4);
        let cut = st_min_cut(&g, s, t).unwrap();
        assert!((cut.weight - 0.7).abs() < 1e-9);
    }

    #[test]
    fn disconnected_pair_has_zero_cut() {
        let mut g: DiGraph<(), f64> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, 1.0);
        let cut = st_min_cut(&g, a, c).unwrap();
        assert_eq!(cut.weight, 0.0);
        assert!(cut.side_b.contains(&c));
        assert!(!cut.side_a.contains(&c));
    }

    #[test]
    fn st_cut_is_never_below_the_global_min_cut() {
        use crate::algo::min_cut;
        use fcm_substrate::rng::Rng;
        let mut rng = Rng::seed_from_u64(11);
        for _ in 0..10 {
            let mut g: DiGraph<(), f64> = DiGraph::new();
            let nodes: Vec<_> = (0..7).map(|_| g.add_node(())).collect();
            for &a in &nodes {
                for &b in &nodes {
                    if a != b && rng.gen::<f64>() < 0.4 {
                        g.add_edge(a, b, rng.gen_range(0.05..0.9));
                    }
                }
            }
            let global = min_cut(&g).unwrap();
            let st = st_min_cut(&g, nodes[0], nodes[6]).unwrap();
            assert!(st.weight >= global.weight - 1e-9);
        }
    }

    #[test]
    fn invalid_endpoints_error() {
        let mut g: DiGraph<(), f64> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 1.0);
        assert!(matches!(
            st_min_cut(&g, a, a),
            Err(GraphError::SelfLoop { .. })
        ));
        assert!(matches!(
            st_min_cut(&g, a, NodeIdx(9)),
            Err(GraphError::NodeOutOfBounds { .. })
        ));
        let single: DiGraph<(), f64> = DiGraph::new();
        assert!(matches!(
            st_min_cut(&single, a, b),
            Err(GraphError::EmptyGraph)
        ));
    }

    #[test]
    fn direction_is_ignored_for_capacity() {
        // Only a back-edge exists; the undirected cut still costs it.
        let mut g: DiGraph<(), f64> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(b, a, 0.5);
        let cut = st_min_cut(&g, a, b).unwrap();
        assert!((cut.weight - 0.5).abs() < 1e-9);
    }
}
