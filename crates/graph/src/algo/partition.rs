//! Recursive min-cut partitioning (heuristic H2 of the paper).
//!
//! The paper: *"Find the min-cut of the graph. Divide the graph into two
//! parts along the cut. Find the min-cut in each half and repeat the
//! process, until the requisite number of components has been generated.
//! Other variations include: cut the portion with the largest number of
//! nodes."* Both the default (cut the part with the heaviest internal
//! connectivity next — a greedy variant that keeps cuts cheap) and the
//! largest-part variant are provided.

use crate::error::GraphError;
use crate::{algo::mincut, DiGraph, NodeIdx};

/// Which part to bisect next while more parts are needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BisectPolicy {
    /// Cut the part with the most nodes (the paper's stated variation).
    #[default]
    LargestPart,
    /// Cut the part whose internal (symmetrised) weight is largest, so the
    /// most strongly coupled cluster is broken where it is cheapest.
    HeaviestPart,
}

/// Splits the nodes of `g` into exactly `parts` groups by recursive
/// Stoer–Wagner bisection of the symmetrised weights.
///
/// Every returned group is non-empty and the groups partition the node set.
///
/// # Errors
///
/// * [`GraphError::EmptyGraph`] when the graph has no nodes;
/// * [`GraphError::TooManyParts`] when `parts` is zero or exceeds the node
///   count.
///
/// # Example
///
/// ```
/// use fcm_graph::{DiGraph, algo::{recursive_min_cut, BisectPolicy}};
///
/// let mut g: DiGraph<(), f64> = DiGraph::new();
/// let n: Vec<_> = (0..4).map(|_| g.add_node(())).collect();
/// g.add_edge(n[0], n[1], 1.0);
/// g.add_edge(n[2], n[3], 1.0);
/// g.add_edge(n[1], n[2], 0.1);
/// let parts = recursive_min_cut(&g, 2, BisectPolicy::LargestPart)?;
/// assert_eq!(parts.len(), 2);
/// # Ok::<(), fcm_graph::GraphError>(())
/// ```
pub fn recursive_min_cut<N, E: Copy + Into<f64>>(
    g: &DiGraph<N, E>,
    parts: usize,
    policy: BisectPolicy,
) -> Result<Vec<Vec<NodeIdx>>, GraphError> {
    let n = g.node_count();
    if n == 0 {
        return Err(GraphError::EmptyGraph);
    }
    if parts == 0 || parts > n {
        return Err(GraphError::TooManyParts {
            requested: parts,
            nodes: n,
        });
    }

    let mut groups: Vec<Vec<NodeIdx>> = vec![g.node_indices().collect()];
    while groups.len() < parts {
        let split_at = choose_group(g, &groups, policy)
            .expect("parts <= n guarantees a splittable group exists");
        let group = groups.swap_remove(split_at);
        let (sub, back) = induced_subgraph(g, &group);
        let cut = mincut::min_cut(&sub)?;
        let to_orig = |side: &[NodeIdx]| side.iter().map(|&i| back[i.index()]).collect::<Vec<_>>();
        groups.push(to_orig(&cut.side_a));
        groups.push(to_orig(&cut.side_b));
    }
    Ok(groups)
}

/// Index of the group to bisect next, per policy; `None` when no group has
/// two or more nodes.
fn choose_group<N, E: Copy + Into<f64>>(
    g: &DiGraph<N, E>,
    groups: &[Vec<NodeIdx>],
    policy: BisectPolicy,
) -> Option<usize> {
    let splittable = groups.iter().enumerate().filter(|(_, grp)| grp.len() >= 2);
    match policy {
        BisectPolicy::LargestPart => splittable.max_by_key(|(_, grp)| grp.len()).map(|(i, _)| i),
        BisectPolicy::HeaviestPart => splittable
            .map(|(i, grp)| (i, internal_weight(g, grp)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("weights are finite"))
            .map(|(i, _)| i),
    }
}

/// Sum of symmetrised weights of edges with both endpoints in `group`.
fn internal_weight<N, E: Copy + Into<f64>>(g: &DiGraph<N, E>, group: &[NodeIdx]) -> f64 {
    let mut inside = vec![false; g.node_count()];
    for &v in group {
        inside[v.index()] = true;
    }
    g.edges()
        .filter(|(_, e)| inside[e.from.index()] && inside[e.to.index()])
        .map(|(_, e)| e.weight.into())
        .sum()
}

/// The subgraph induced by `group`, plus the mapping from subgraph indices
/// back to original indices.
pub fn induced_subgraph<N, E: Copy>(
    g: &DiGraph<N, E>,
    group: &[NodeIdx],
) -> (DiGraph<(), E>, Vec<NodeIdx>) {
    let mut fwd = vec![usize::MAX; g.node_count()];
    let mut back = Vec::with_capacity(group.len());
    let mut sub: DiGraph<(), E> = DiGraph::with_capacity(group.len());
    for &v in group {
        fwd[v.index()] = sub.add_node(()).index();
        back.push(v);
    }
    for (_, e) in g.edges() {
        let (u, v) = (fwd[e.from.index()], fwd[e.to.index()]);
        if u != usize::MAX && v != usize::MAX {
            sub.add_edge(NodeIdx(u), NodeIdx(v), e.weight);
        }
    }
    (sub, back)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_clusters() -> DiGraph<(), f64> {
        // Clusters {0,1,2}, {3,4,5}, {6,7,8} tightly bound internally,
        // loosely bound across.
        let mut g: DiGraph<(), f64> = DiGraph::new();
        let n: Vec<_> = (0..9).map(|_| g.add_node(())).collect();
        for base in [0, 3, 6] {
            g.add_edge(n[base], n[base + 1], 1.0);
            g.add_edge(n[base + 1], n[base + 2], 1.0);
            g.add_edge(n[base + 2], n[base], 1.0);
        }
        g.add_edge(n[2], n[3], 0.05);
        g.add_edge(n[5], n[6], 0.05);
        g
    }

    #[test]
    fn one_part_returns_everything() {
        let g = three_clusters();
        let parts = recursive_min_cut(&g, 1, BisectPolicy::LargestPart).unwrap();
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].len(), 9);
    }

    #[test]
    fn three_parts_recover_the_clusters() {
        let g = three_clusters();
        for policy in [BisectPolicy::LargestPart, BisectPolicy::HeaviestPart] {
            let mut parts = recursive_min_cut(&g, 3, policy).unwrap();
            for p in &mut parts {
                p.sort();
            }
            parts.sort();
            let expect: Vec<Vec<NodeIdx>> = vec![
                vec![NodeIdx(0), NodeIdx(1), NodeIdx(2)],
                vec![NodeIdx(3), NodeIdx(4), NodeIdx(5)],
                vec![NodeIdx(6), NodeIdx(7), NodeIdx(8)],
            ];
            assert_eq!(parts, expect, "policy {policy:?}");
        }
    }

    #[test]
    fn n_parts_are_singletons() {
        let g = three_clusters();
        let parts = recursive_min_cut(&g, 9, BisectPolicy::LargestPart).unwrap();
        assert_eq!(parts.len(), 9);
        assert!(parts.iter().all(|p| p.len() == 1));
    }

    #[test]
    fn zero_or_excess_parts_error() {
        let g = three_clusters();
        assert!(matches!(
            recursive_min_cut(&g, 0, BisectPolicy::LargestPart),
            Err(GraphError::TooManyParts {
                requested: 0,
                nodes: 9
            })
        ));
        assert!(matches!(
            recursive_min_cut(&g, 10, BisectPolicy::LargestPart),
            Err(GraphError::TooManyParts {
                requested: 10,
                nodes: 9
            })
        ));
        let empty: DiGraph<(), f64> = DiGraph::new();
        assert!(matches!(
            recursive_min_cut(&empty, 1, BisectPolicy::LargestPart),
            Err(GraphError::EmptyGraph)
        ));
    }

    #[test]
    fn groups_partition_the_node_set() {
        let g = three_clusters();
        for k in 1..=9 {
            let parts = recursive_min_cut(&g, k, BisectPolicy::HeaviestPart).unwrap();
            assert_eq!(parts.len(), k);
            let mut all: Vec<_> = parts.into_iter().flatten().collect();
            all.sort();
            all.dedup();
            assert_eq!(all.len(), 9, "k={k}");
        }
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = three_clusters();
        let (sub, back) = induced_subgraph(&g, &[NodeIdx(0), NodeIdx(1), NodeIdx(2), NodeIdx(3)]);
        assert_eq!(sub.node_count(), 4);
        // Internal: the 3 cluster edges plus the 2->3 bridge.
        assert_eq!(sub.edge_count(), 4);
        assert_eq!(back, vec![NodeIdx(0), NodeIdx(1), NodeIdx(2), NodeIdx(3)]);
    }

    #[test]
    fn default_policy_is_largest_part() {
        assert_eq!(BisectPolicy::default(), BisectPolicy::LargestPart);
    }
}
