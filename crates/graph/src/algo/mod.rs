//! Graph algorithms used by the integration framework.
//!
//! * [`traverse`] — BFS/DFS reachability, topological order, cycle check
//!   (rule R2 of the paper requires the integration DAG to be a tree, which
//!   the hierarchy checks with these primitives);
//! * [`scc`] — Tarjan strongly connected components (used to detect
//!   influence cycles before truncating the separation series);
//! * [`mincut`] — Stoer–Wagner global minimum cut on the symmetrised
//!   influence weights (the cut step of heuristic H2);
//! * [`stcut`] — Edmonds–Karp source–target minimum cut (the paper's
//!   "cut the graph using source and target nodes" H2 variation);
//! * [`partition`] — recursive min-cut bisection into `k` parts (the whole
//!   of heuristic H2, with the paper's "cut the largest part" variant).

pub mod mincut;
pub mod partition;
pub mod scc;
pub mod stcut;
pub mod traverse;

pub use mincut::{min_cut, Cut};
pub use partition::{induced_subgraph, recursive_min_cut, BisectPolicy};
pub use scc::{is_strongly_connected, scc_of_csr, strongly_connected_components};
pub use stcut::st_min_cut;
pub use traverse::{
    bfs_order, dfs_order, has_cycle, is_reachable, reachable_set, topological_order,
};
