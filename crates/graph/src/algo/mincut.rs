//! Stoer–Wagner global minimum cut.
//!
//! Heuristic H2 of the paper repeatedly cuts the influence graph along its
//! minimum cut: *"Find the min-cut of the graph. Divide the graph into two
//! parts along the cut. Find the min-cut in each half and repeat"*. The
//! influence graph is directed; since a cut separates the node set
//! regardless of direction, we symmetrise weights (`w(u,v) + w(v,u)`)
//! before cutting, which is exactly the paper's *mutual influence*.

use crate::error::GraphError;
use crate::{DiGraph, NodeIdx};

/// A global minimum cut: the two sides and the total crossing weight.
#[derive(Debug, Clone, PartialEq)]
pub struct Cut {
    /// One side of the cut (never empty).
    pub side_a: Vec<NodeIdx>,
    /// The other side of the cut (never empty).
    pub side_b: Vec<NodeIdx>,
    /// Sum of symmetrised edge weights crossing the cut.
    pub weight: f64,
}

impl Cut {
    /// The smaller of the two sides (ties favour `side_a`).
    pub fn smaller_side(&self) -> &[NodeIdx] {
        if self.side_a.len() <= self.side_b.len() {
            &self.side_a
        } else {
            &self.side_b
        }
    }
}

/// Computes a global minimum cut of the symmetrised graph via Stoer–Wagner.
///
/// Runs in `O(n³)` with the simple array implementation, fine for the graph
/// sizes the integration framework handles (hundreds of FCM nodes).
///
/// # Errors
///
/// Returns [`GraphError::EmptyGraph`] when the graph has fewer than two
/// nodes.
///
/// # Example
///
/// ```
/// use fcm_graph::{DiGraph, algo};
///
/// // Two triangles joined by one light edge: the min cut severs it.
/// let mut g: DiGraph<(), f64> = DiGraph::new();
/// let n: Vec<_> = (0..6).map(|_| g.add_node(())).collect();
/// for &(a, b) in &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
///     g.add_edge(n[a], n[b], 1.0);
/// }
/// g.add_edge(n[2], n[3], 0.1);
/// let cut = algo::min_cut(&g)?;
/// assert!((cut.weight - 0.1).abs() < 1e-9);
/// assert_eq!(cut.smaller_side().len(), 3);
/// # Ok::<(), fcm_graph::GraphError>(())
/// ```
pub fn min_cut<N, E: Copy + Into<f64>>(g: &DiGraph<N, E>) -> Result<Cut, GraphError> {
    let n = g.node_count();
    if n < 2 {
        return Err(GraphError::EmptyGraph);
    }

    // Symmetrised dense weight matrix.
    let mut w = vec![vec![0.0f64; n]; n];
    for (_, e) in g.edges() {
        let (u, v) = (e.from.index(), e.to.index());
        let x: f64 = e.weight.into();
        w[u][v] += x;
        w[v][u] += x;
    }

    // `members[i]`: original nodes merged into supernode i.
    let mut members: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    let mut active: Vec<usize> = (0..n).collect();

    let mut best: Option<Cut> = None;

    while active.len() > 1 {
        // Maximum adjacency (minimum cut phase).
        let mut in_a = vec![false; n];
        let mut weights = vec![0.0f64; n];
        let mut order: Vec<usize> = Vec::with_capacity(active.len());

        for _ in 0..active.len() {
            // Pick the most tightly connected remaining supernode.
            let mut sel = usize::MAX;
            let mut sel_w = f64::NEG_INFINITY;
            for &v in &active {
                if !in_a[v] && weights[v] > sel_w {
                    sel = v;
                    sel_w = weights[v];
                }
            }
            in_a[sel] = true;
            order.push(sel);
            for &v in &active {
                if !in_a[v] {
                    weights[v] += w[sel][v];
                }
            }
        }

        let t = *order.last().expect("phase visits every active node");
        let s = order[order.len() - 2];
        let cut_of_phase = {
            // Weight of t to everything else == its key when added.
            let mut total = 0.0;
            for &v in &active {
                if v != t {
                    total += w[t][v];
                }
            }
            total
        };

        let better = best.as_ref().is_none_or(|b| cut_of_phase < b.weight);
        if better {
            let side_a: Vec<NodeIdx> = members[t].iter().map(|&i| NodeIdx(i)).collect();
            let side_b: Vec<NodeIdx> = active
                .iter()
                .filter(|&&v| v != t)
                .flat_map(|&v| members[v].iter().map(|&i| NodeIdx(i)))
                .collect();
            best = Some(Cut {
                side_a,
                side_b,
                weight: cut_of_phase,
            });
        }

        // Merge t into s.
        let t_members = std::mem::take(&mut members[t]);
        members[s].extend(t_members);
        let absorbed = w[t].clone();
        for (v, &tv) in absorbed.iter().enumerate() {
            if v != s {
                let merged = w[s][v] + tv;
                w[s][v] = merged;
                w[v][s] = merged;
            }
        }
        active.retain(|&v| v != t);
    }

    Ok(best.expect("graph with >= 2 nodes yields a cut"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_nodes_cut_is_their_mutual_weight() {
        let mut g: DiGraph<(), f64> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 0.5);
        g.add_edge(b, a, 0.7);
        let cut = min_cut(&g).unwrap();
        assert!((cut.weight - 1.2).abs() < 1e-12);
        assert_eq!(cut.side_a.len() + cut.side_b.len(), 2);
    }

    #[test]
    fn disconnected_graph_has_zero_cut() {
        let mut g: DiGraph<(), f64> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, 5.0);
        let _ = c;
        let cut = min_cut(&g).unwrap();
        assert_eq!(cut.weight, 0.0);
        assert_eq!(cut.smaller_side().len(), 1);
    }

    #[test]
    fn single_node_graph_errors() {
        let mut g: DiGraph<(), f64> = DiGraph::new();
        g.add_node(());
        assert!(matches!(min_cut(&g), Err(GraphError::EmptyGraph)));
    }

    #[test]
    fn barbell_cut_severs_the_bridge() {
        // Two cliques of 4 joined by one weight-0.3 bridge.
        let mut g: DiGraph<(), f64> = DiGraph::new();
        let n: Vec<_> = (0..8).map(|_| g.add_node(())).collect();
        for group in [&n[0..4], &n[4..8]] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    g.add_edge(group[i], group[j], 1.0);
                }
            }
        }
        g.add_edge(n[3], n[4], 0.3);
        let cut = min_cut(&g).unwrap();
        assert!((cut.weight - 0.3).abs() < 1e-9);
        let mut small: Vec<usize> = cut.smaller_side().iter().map(|x| x.index()).collect();
        small.sort();
        assert!(small == vec![0, 1, 2, 3] || small == vec![4, 5, 6, 7]);
    }

    #[test]
    fn star_cuts_off_the_lightest_leaf() {
        let mut g: DiGraph<(), f64> = DiGraph::new();
        let hub = g.add_node(());
        let leaves: Vec<_> = (0..4).map(|_| g.add_node(())).collect();
        let ws = [0.9, 0.2, 0.7, 0.5];
        for (leaf, &w) in leaves.iter().zip(&ws) {
            g.add_edge(hub, *leaf, w);
        }
        let cut = min_cut(&g).unwrap();
        assert!((cut.weight - 0.2).abs() < 1e-12);
        assert_eq!(cut.smaller_side(), &[leaves[1]]);
    }

    #[test]
    fn both_sides_are_nonempty_and_partition_nodes() {
        let mut g: DiGraph<(), f64> = DiGraph::new();
        let n: Vec<_> = (0..5).map(|_| g.add_node(())).collect();
        for i in 0..5 {
            g.add_edge(n[i], n[(i + 1) % 5], (i + 1) as f64 / 10.0);
        }
        let cut = min_cut(&g).unwrap();
        assert!(!cut.side_a.is_empty());
        assert!(!cut.side_b.is_empty());
        let mut all: Vec<_> = cut.side_a.iter().chain(&cut.side_b).copied().collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 5);
    }
}
