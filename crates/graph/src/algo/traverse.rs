//! Reachability, traversal orders, and cycle detection.

use std::collections::VecDeque;

use crate::{DiGraph, NodeIdx};

/// Returns the nodes reachable from `start` (including `start`) in BFS
/// order.
///
/// # Example
///
/// ```
/// use fcm_graph::{DiGraph, algo};
///
/// let mut g: DiGraph<(), ()> = DiGraph::new();
/// let a = g.add_node(());
/// let b = g.add_node(());
/// let c = g.add_node(());
/// g.add_edge(a, b, ());
/// let order = algo::bfs_order(&g, a);
/// assert_eq!(order, vec![a, b]);
/// assert!(!order.contains(&c));
/// ```
pub fn bfs_order<N, E>(g: &DiGraph<N, E>, start: NodeIdx) -> Vec<NodeIdx> {
    let mut seen = vec![false; g.node_count()];
    let mut order = Vec::new();
    if start.index() >= g.node_count() {
        return order;
    }
    let mut queue = VecDeque::new();
    seen[start.index()] = true;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for v in g.successors(u) {
            if !seen[v.index()] {
                seen[v.index()] = true;
                queue.push_back(v);
            }
        }
    }
    order
}

/// Returns the nodes reachable from `start` (including `start`) in DFS
/// preorder.
pub fn dfs_order<N, E>(g: &DiGraph<N, E>, start: NodeIdx) -> Vec<NodeIdx> {
    let mut seen = vec![false; g.node_count()];
    let mut order = Vec::new();
    if start.index() >= g.node_count() {
        return order;
    }
    let mut stack = vec![start];
    while let Some(u) = stack.pop() {
        if seen[u.index()] {
            continue;
        }
        seen[u.index()] = true;
        order.push(u);
        // Push successors in reverse so the first successor is visited first.
        let succs: Vec<_> = g.successors(u).collect();
        for v in succs.into_iter().rev() {
            if !seen[v.index()] {
                stack.push(v);
            }
        }
    }
    order
}

/// Whether `to` is reachable from `from` following edge directions.
pub fn is_reachable<N, E>(g: &DiGraph<N, E>, from: NodeIdx, to: NodeIdx) -> bool {
    if from == to {
        return true;
    }
    reachable_set(g, from)[to.index()]
}

/// Boolean reachability vector from `start` (entry `i` is `true` when node
/// `i` is reachable, including `start` itself).
pub fn reachable_set<N, E>(g: &DiGraph<N, E>, start: NodeIdx) -> Vec<bool> {
    let mut seen = vec![false; g.node_count()];
    if start.index() >= g.node_count() {
        return seen;
    }
    let mut stack = vec![start];
    seen[start.index()] = true;
    while let Some(u) = stack.pop() {
        for v in g.successors(u) {
            if !seen[v.index()] {
                seen[v.index()] = true;
                stack.push(v);
            }
        }
    }
    seen
}

/// Kahn topological order, or `None` when the graph has a directed cycle.
pub fn topological_order<N, E>(g: &DiGraph<N, E>) -> Option<Vec<NodeIdx>> {
    let n = g.node_count();
    let mut in_deg: Vec<usize> = (0..n).map(|i| g.in_degree(NodeIdx(i))).collect();
    let mut queue: VecDeque<NodeIdx> = (0..n).filter(|&i| in_deg[i] == 0).map(NodeIdx).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for v in g.successors(u) {
            in_deg[v.index()] -= 1;
            if in_deg[v.index()] == 0 {
                queue.push_back(v);
            }
        }
    }
    if order.len() == n {
        Some(order)
    } else {
        None
    }
}

/// Whether the graph contains a directed cycle.
pub fn has_cycle<N, E>(g: &DiGraph<N, E>) -> bool {
    topological_order(g).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> DiGraph<usize, ()> {
        let mut g = DiGraph::new();
        let nodes: Vec<_> = (0..n).map(|i| g.add_node(i)).collect();
        for w in nodes.windows(2) {
            g.add_edge(w[0], w[1], ());
        }
        g
    }

    #[test]
    fn bfs_visits_levels_in_order() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(a, c, ());
        g.add_edge(b, d, ());
        g.add_edge(c, d, ());
        assert_eq!(bfs_order(&g, a), vec![a, b, c, d]);
    }

    #[test]
    fn dfs_goes_deep_first() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, d, ());
        g.add_edge(a, c, ());
        assert_eq!(dfs_order(&g, a), vec![a, b, d, c]);
    }

    #[test]
    fn reachability_respects_direction() {
        let g = chain(4);
        assert!(is_reachable(&g, NodeIdx(0), NodeIdx(3)));
        assert!(!is_reachable(&g, NodeIdx(3), NodeIdx(0)));
        assert!(is_reachable(&g, NodeIdx(2), NodeIdx(2)));
    }

    #[test]
    fn out_of_range_start_yields_nothing() {
        let g = chain(2);
        assert!(bfs_order(&g, NodeIdx(9)).is_empty());
        assert!(dfs_order(&g, NodeIdx(9)).is_empty());
        assert!(!reachable_set(&g, NodeIdx(9)).iter().any(|&b| b));
    }

    #[test]
    fn topological_order_on_dag() {
        let g = chain(5);
        let order = topological_order(&g).unwrap();
        assert_eq!(order.len(), 5);
        // Every edge goes forward in the order.
        let pos: Vec<_> = {
            let mut p = vec![0; 5];
            for (i, n) in order.iter().enumerate() {
                p[n.index()] = i;
            }
            p
        };
        for (_, e) in g.edges() {
            assert!(pos[e.from.index()] < pos[e.to.index()]);
        }
        assert!(!has_cycle(&g));
    }

    #[test]
    fn cycle_is_detected() {
        let mut g = chain(3);
        g.add_edge(NodeIdx(2), NodeIdx(0), ());
        assert!(has_cycle(&g));
        assert!(topological_order(&g).is_none());
    }

    #[test]
    fn empty_graph_topological_order_is_empty() {
        let g: DiGraph<(), ()> = DiGraph::new();
        assert_eq!(topological_order(&g), Some(vec![]));
        assert!(!has_cycle(&g));
    }
}
