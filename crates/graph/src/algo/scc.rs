//! Tarjan strongly connected components (iterative).
//!
//! The separation series of the paper (Eq. 3) converges only when influence
//! cycles have products `< 1`; detecting cycles via SCCs lets callers warn
//! about (or renormalise) pathological influence graphs. The sparse
//! walk-series engine also uses the components (via [`scc_of_csr`]) to
//! shard rows across the substrate pool.

use crate::{DiGraph, NodeIdx};

/// Iterative Tarjan over any adjacency: `succs(v, out)` must fill `out`
/// with `v`'s successors. Components come back in reverse topological
/// order of the condensation (a property of Tarjan's algorithm).
fn tarjan(n: usize, succs: impl Fn(usize, &mut Vec<usize>)) -> Vec<Vec<usize>> {
    const UNVISITED: usize = usize::MAX;

    struct State {
        index: Vec<usize>,
        lowlink: Vec<usize>,
        on_stack: Vec<bool>,
        stack: Vec<usize>,
        next_index: usize,
        components: Vec<Vec<usize>>,
    }

    let mut st = State {
        index: vec![UNVISITED; n],
        lowlink: vec![0; n],
        on_stack: vec![false; n],
        stack: Vec::new(),
        next_index: 0,
        components: Vec::new(),
    };

    // Iterative Tarjan: each call frame is (node, iterator position).
    let mut succ_buf = Vec::new();
    for root in 0..n {
        if st.index[root] != UNVISITED {
            continue;
        }
        let mut call_stack: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut succ_pos)) = call_stack.last_mut() {
            if *succ_pos == 0 {
                st.index[v] = st.next_index;
                st.lowlink[v] = st.next_index;
                st.next_index += 1;
                st.stack.push(v);
                st.on_stack[v] = true;
            }
            succ_buf.clear();
            succs(v, &mut succ_buf);
            let mut recursed = false;
            while *succ_pos < succ_buf.len() {
                let w = succ_buf[*succ_pos];
                *succ_pos += 1;
                if st.index[w] == UNVISITED {
                    call_stack.push((w, 0));
                    recursed = true;
                    break;
                } else if st.on_stack[w] {
                    st.lowlink[v] = st.lowlink[v].min(st.index[w]);
                }
            }
            if recursed {
                continue;
            }
            // Finished v.
            if st.lowlink[v] == st.index[v] {
                let mut comp = Vec::new();
                loop {
                    let w = st.stack.pop().expect("tarjan stack underflow");
                    st.on_stack[w] = false;
                    comp.push(w);
                    if w == v {
                        break;
                    }
                }
                st.components.push(comp);
            }
            call_stack.pop();
            if let Some(&mut (parent, _)) = call_stack.last_mut() {
                st.lowlink[parent] = st.lowlink[parent].min(st.lowlink[v]);
            }
        }
    }
    st.components
}

/// Computes the strongly connected components of `g`.
///
/// Components are returned in **reverse topological order** of the
/// condensation (a property of Tarjan's algorithm); each component lists its
/// member nodes.
///
/// # Example
///
/// ```
/// use fcm_graph::{DiGraph, algo};
///
/// let mut g: DiGraph<(), ()> = DiGraph::new();
/// let a = g.add_node(());
/// let b = g.add_node(());
/// let c = g.add_node(());
/// g.add_edge(a, b, ());
/// g.add_edge(b, a, ());
/// g.add_edge(b, c, ());
/// let sccs = algo::strongly_connected_components(&g);
/// assert_eq!(sccs.len(), 2);
/// ```
pub fn strongly_connected_components<N, E>(g: &DiGraph<N, E>) -> Vec<Vec<NodeIdx>> {
    tarjan(g.node_count(), |v, out| {
        out.extend(g.successors(NodeIdx(v)).map(NodeIdx::index));
    })
    .into_iter()
    .map(|comp| comp.into_iter().map(NodeIdx).collect())
    .collect()
}

/// Strongly connected components of a CSR adjacency: node `v`'s
/// successors are `col_idx[row_ptr[v]..row_ptr[v + 1]]`. Same reverse
/// topological ordering contract as [`strongly_connected_components`];
/// used by the sparse walk-series engine to shard rows by component.
///
/// # Panics
///
/// Panics when `row_ptr` does not have `n + 1` entries.
pub fn scc_of_csr(n: usize, row_ptr: &[usize], col_idx: &[usize]) -> Vec<Vec<usize>> {
    assert_eq!(row_ptr.len(), n + 1, "row_ptr must have n + 1 entries");
    tarjan(n, |v, out| {
        out.extend_from_slice(&col_idx[row_ptr[v]..row_ptr[v + 1]]);
    })
}

/// Whether the whole graph is one strongly connected component.
pub fn is_strongly_connected<N, E>(g: &DiGraph<N, E>) -> bool {
    !g.is_empty() && strongly_connected_components(g).len() == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_nodes_are_their_own_components() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        g.add_node(());
        g.add_node(());
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 2);
        assert!(sccs.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn two_cycles_connected_by_a_bridge() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let n: Vec<_> = (0..6).map(|_| g.add_node(())).collect();
        // Cycle 0-1-2, cycle 3-4-5, bridge 2 -> 3.
        g.add_edge(n[0], n[1], ());
        g.add_edge(n[1], n[2], ());
        g.add_edge(n[2], n[0], ());
        g.add_edge(n[3], n[4], ());
        g.add_edge(n[4], n[5], ());
        g.add_edge(n[5], n[3], ());
        g.add_edge(n[2], n[3], ());
        let mut sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 2);
        for c in &mut sccs {
            c.sort();
        }
        // Reverse topological: the sink component {3,4,5} comes first.
        assert_eq!(sccs[0], vec![n[3], n[4], n[5]]);
        assert_eq!(sccs[1], vec![n[0], n[1], n[2]]);
    }

    #[test]
    fn dag_has_all_singletons() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, c, ());
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 3);
        assert!(!is_strongly_connected(&g));
    }

    #[test]
    fn full_cycle_is_strongly_connected() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let n: Vec<_> = (0..4).map(|_| g.add_node(())).collect();
        for i in 0..4 {
            g.add_edge(n[i], n[(i + 1) % 4], ());
        }
        assert!(is_strongly_connected(&g));
    }

    #[test]
    fn empty_graph_is_not_strongly_connected() {
        let g: DiGraph<(), ()> = DiGraph::new();
        assert!(!is_strongly_connected(&g));
        assert!(strongly_connected_components(&g).is_empty());
    }

    #[test]
    fn components_partition_the_nodes() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let n: Vec<_> = (0..8).map(|_| g.add_node(())).collect();
        g.add_edge(n[0], n[1], ());
        g.add_edge(n[1], n[0], ());
        g.add_edge(n[2], n[3], ());
        g.add_edge(n[5], n[6], ());
        g.add_edge(n[6], n[7], ());
        g.add_edge(n[7], n[5], ());
        let sccs = strongly_connected_components(&g);
        let total: usize = sccs.iter().map(Vec::len).sum();
        assert_eq!(total, 8);
        let mut all: Vec<_> = sccs.into_iter().flatten().collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 8);
    }

    #[test]
    fn csr_and_digraph_agree() {
        // 0 <-> 1 feeding 2 -> 3 plus isolated 4.
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let n: Vec<_> = (0..5).map(|_| g.add_node(())).collect();
        g.add_edge(n[0], n[1], ());
        g.add_edge(n[1], n[0], ());
        g.add_edge(n[1], n[2], ());
        g.add_edge(n[2], n[3], ());
        let row_ptr = [0usize, 1, 3, 4, 4, 4];
        let col_idx = [1usize, 0, 2, 3];
        let from_graph: Vec<Vec<usize>> = strongly_connected_components(&g)
            .into_iter()
            .map(|c| c.into_iter().map(NodeIdx::index).collect())
            .collect();
        let from_csr = scc_of_csr(5, &row_ptr, &col_idx);
        assert_eq!(from_graph, from_csr);
    }
}
