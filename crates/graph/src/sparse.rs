//! Compressed-sparse-row matrices for large-n influence analysis.
//!
//! Real integration fleets (tens of thousands of FCMs) have *sparse*
//! influence graphs — hub-and-spoke and fan-out shapes where each
//! process touches a handful of others — while the paper's Eq. 3 walk
//! series is quadratic in storage and cubic in time on the dense
//! [`Matrix`]. [`SparseMatrix`] stores only the nonzero entries in CSR
//! layout and computes the walk series row by row, sharding rows across
//! the substrate pool grouped by strongly connected component (see
//! [`SparseMatrix::walk_series`]).
//!
//! # The dense-oracle contract
//!
//! The dense kernel stays the bitwise oracle: wherever both
//! representations run, the sparse walk series is **bitwise equal** to
//! [`Matrix::walk_series`], not merely close. This holds because both
//! kernels fold identically per entry:
//!
//! * a product entry `(i, j)` accumulates `a_ik · b_kj` over the
//!   contraction index `k` in **ascending order**, skipping zero
//!   `a_ik` — the dense blocked kernel skips `a == 0.0` explicitly,
//!   the CSR kernel never stores it (zeros are pruned at compaction);
//! * the series accumulator folds `acc += P^k` in ascending `k`, and
//!   IEEE-754 addition of a pruned (exactly zero) term is the identity
//!   on the non-negative domain;
//! * ε-truncation tests the max-norm of the **power term** before it is
//!   added — the same check at the same point in the loop — so both
//!   representations truncate at the same order (see
//!   [`Matrix::walk_series`]).
//!
//! `crates/graph/tests/sparse_props.rs` pins the contract on seeded
//! random and hub-and-spoke graphs.

use crate::algo;
use crate::matrix::Matrix;
use crate::DiGraph;
use fcm_substrate::pool;

/// A square-or-rectangular CSR (compressed sparse row) `f64` matrix.
///
/// Within each row, stored entries are ordered by ascending column and
/// never hold an exact `0.0` (zeros are pruned so the sparse kernels
/// skip exactly the entries the dense kernel skips).
///
/// # Example
///
/// ```
/// use fcm_graph::SparseMatrix;
///
/// let m = SparseMatrix::from_triples(3, 3, [(0, 1, 0.5), (1, 2, 0.4)]);
/// assert_eq!(m.nnz(), 2);
/// let series = m.walk_series(4, 1e-15);
/// assert_eq!(series.get(0, 2), Some(0.2)); // 0.5 · 0.4 via the 2-walk
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    /// `row_ptr[i]..row_ptr[i + 1]` indexes row `i`'s entries.
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    vals: Vec<f64>,
}

impl SparseMatrix {
    /// Creates an all-zero (no stored entries) `rows × cols` matrix.
    #[must_use]
    pub fn empty(rows: usize, cols: usize) -> SparseMatrix {
        SparseMatrix {
            rows,
            cols,
            row_ptr: vec![0; rows + 1],
            col_idx: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Builds a matrix from `(row, col, value)` triples. Duplicate
    /// cells are **summed in triple order** — the same fold
    /// [`Matrix::from_graph`] performs for parallel edges, which keeps
    /// the two constructors bitwise-consistent. Exact zeros (including
    /// zero-valued sums) are pruned.
    ///
    /// # Panics
    ///
    /// Panics when a triple indexes out of bounds.
    #[must_use]
    pub fn from_triples(
        rows: usize,
        cols: usize,
        triples: impl IntoIterator<Item = (usize, usize, f64)>,
    ) -> SparseMatrix {
        let mut by_row: Vec<Vec<(usize, f64)>> = vec![Vec::new(); rows];
        for (r, c, v) in triples {
            assert!(r < rows && c < cols, "triple ({r}, {c}) out of bounds");
            by_row[r].push((c, v));
        }
        let mut m = SparseMatrix::empty(rows, cols);
        for (r, mut row) in by_row.into_iter().enumerate() {
            // Stable by column: duplicates keep triple order, so the
            // run-fold below sums them left to right exactly as the
            // dense `+=` accumulation does.
            row.sort_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < row.len() {
                let (c, mut v) = row[i];
                i += 1;
                while i < row.len() && row[i].0 == c {
                    v += row[i].1;
                    i += 1;
                }
                if v != 0.0 {
                    m.col_idx.push(c);
                    m.vals.push(v);
                }
            }
            m.row_ptr[r + 1] = m.col_idx.len();
        }
        m
    }

    /// Builds the `n × n` weight matrix of a graph, summing parallel
    /// edges in global edge-id order — the sparse counterpart of
    /// [`Matrix::from_graph`], with which it is bitwise-consistent.
    #[must_use]
    pub fn from_graph<N, E: Copy + Into<f64>>(g: &DiGraph<N, E>) -> SparseMatrix {
        let n = g.node_count();
        SparseMatrix::from_triples(
            n,
            n,
            g.edges()
                .map(|(_, e)| (e.from.index(), e.to.index(), e.weight.into())),
        )
    }

    /// Converts a dense matrix, pruning exact zeros.
    #[must_use]
    pub fn from_dense(m: &Matrix) -> SparseMatrix {
        let (rows, cols) = (m.rows(), m.cols());
        SparseMatrix::from_triples(
            rows,
            cols,
            (0..rows).flat_map(|i| {
                (0..cols).map(move |j| (i, j, m.get(i, j).expect("in bounds")))
            }),
        )
    }

    /// Materialises the dense equivalent (entry-for-entry bitwise).
    #[must_use]
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (nonzero) entries.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Fill ratio `nnz / (rows · cols)` (`0.0` for an empty shape).
    #[must_use]
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
        }
    }

    /// The entry at `(row, col)` (`0.0` when not stored), or `None` when
    /// out of bounds — the same contract as [`Matrix::get`].
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> Option<f64> {
        if row >= self.rows || col >= self.cols {
            return None;
        }
        let (cols, vals) = self.row(row);
        Some(match cols.binary_search(&col) {
            Ok(p) => vals[p],
            Err(_) => 0.0,
        })
    }

    /// Row `i`'s stored entries as parallel `(columns, values)` slices,
    /// columns ascending.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of bounds.
    #[must_use]
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
        (&self.col_idx[lo..hi], &self.vals[lo..hi])
    }

    /// Iterates all stored entries as `(row, col, value)`, row-major.
    pub fn entries(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |i| {
            let (cols, vals) = self.row(i);
            cols.iter().zip(vals).map(move |(&j, &v)| (i, j, v))
        })
    }

    /// Largest absolute stored entry (`0.0` when none) — equals
    /// [`Matrix::max_abs`] of the dense equivalent.
    #[must_use]
    pub fn max_abs(&self) -> f64 {
        self.vals.iter().fold(0.0f64, |m, v| m.max(v.abs()))
    }

    /// The strongly connected components of the matrix's nonzero
    /// pattern, in reverse topological order of the condensation
    /// (Tarjan over the CSR adjacency — see [`algo::scc_of_csr`]).
    ///
    /// # Panics
    ///
    /// Panics when the matrix is not square.
    #[must_use]
    pub fn components(&self) -> Vec<Vec<usize>> {
        assert_eq!(self.rows, self.cols, "components need a square matrix");
        algo::scc_of_csr(self.rows, &self.row_ptr, &self.col_idx)
    }

    /// Truncated walk series `Σ_{k=1..order} P^k` (paper Eq. 3) on the
    /// default pool width — see [`walk_series_threads`]
    /// (SparseMatrix::walk_series_threads).
    ///
    /// # Panics
    ///
    /// Panics when the matrix is not square.
    #[must_use]
    pub fn walk_series(&self, order: usize, epsilon: f64) -> SparseMatrix {
        self.walk_series_threads(order, epsilon, pool::worker_count())
    }

    /// The walk series with an explicit worker cap.
    ///
    /// Rows are grouped by strongly connected component (reverse
    /// topological order, so each shard's rows have similar reach) and
    /// the per-component row blocks are sharded across the substrate
    /// pool. Each row's series is an independent sparse vector walk, so
    /// the result is byte-identical at any `threads` — and bitwise
    /// equal to the dense oracle (module docs). Truncation matches
    /// [`Matrix::walk_series`] exactly: the **global** max-norm of each
    /// power term is tested before the term is added, so both
    /// representations truncate at the same order.
    ///
    /// # Panics
    ///
    /// Panics when the matrix is not square.
    #[must_use]
    pub fn walk_series_threads(&self, order: usize, epsilon: f64, threads: usize) -> SparseMatrix {
        assert_eq!(self.rows, self.cols, "walk series needs a square matrix");
        let n = self.rows;
        if n == 0 || order == 0 {
            return SparseMatrix::empty(n, n);
        }
        let shards = self.component_shards(threads);
        // cur[i] = row i of P^k (k starts at 1: the matrix itself).
        let mut cur: Vec<Vec<(usize, f64)>> = (0..n)
            .map(|i| {
                let (cols, vals) = self.row(i);
                cols.iter().copied().zip(vals.iter().copied()).collect()
            })
            .collect();
        let mut acc: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for step in 0..order {
            // Dense parity: test the power term's global max-norm
            // *before* adding it (Matrix::walk_series_into).
            let max = cur
                .iter()
                .flat_map(|row| row.iter())
                .fold(0.0f64, |m, &(_, v)| m.max(v.abs()));
            if max < epsilon {
                break;
            }
            let merged = pool::par_map_threads(&shards, threads, |shard| {
                shard
                    .iter()
                    .map(|&r| merge_add(&acc[r], &cur[r]))
                    .collect::<Vec<_>>()
            });
            for (shard, rows) in shards.iter().zip(merged) {
                for (&r, row) in shard.iter().zip(rows) {
                    acc[r] = row;
                }
            }
            if step + 1 < order {
                let next = pool::par_map_threads(&shards, threads, |shard| {
                    let mut scratch = vec![0.0f64; n];
                    let mut touched = Vec::new();
                    shard
                        .iter()
                        .map(|&r| self.mul_row(&cur[r], &mut scratch, &mut touched))
                        .collect::<Vec<_>>()
                });
                for (shard, rows) in shards.iter().zip(next) {
                    for (&r, row) in shard.iter().zip(rows) {
                        cur[r] = row;
                    }
                }
            }
        }
        from_sparse_rows(n, n, acc)
    }

    /// Smallest `k` whose power term `P^k` has global max-norm ≤
    /// `epsilon`, capped at `max_order` — the sparse twin of stepping a
    /// dense [`Workspace`](crate::Workspace) and testing
    /// [`Matrix::max_abs`] per power. The powers are bitwise equal to
    /// the dense kernel's, so both representations report the same
    /// order.
    ///
    /// # Panics
    ///
    /// Panics when the matrix is not square.
    #[must_use]
    pub fn converged_order(&self, epsilon: f64, max_order: usize) -> usize {
        assert_eq!(self.rows, self.cols, "walk series needs a square matrix");
        let n = self.rows;
        if n == 0 {
            return if max_order == 0 { 0 } else { 1 };
        }
        let mut scratch = vec![0.0f64; n];
        let mut touched = Vec::new();
        let mut cur: Vec<Vec<(usize, f64)>> = (0..n)
            .map(|i| {
                let (cols, vals) = self.row(i);
                cols.iter().copied().zip(vals.iter().copied()).collect()
            })
            .collect();
        for k in 1..=max_order {
            let max = cur
                .iter()
                .flat_map(|row| row.iter())
                .fold(0.0f64, |m, &(_, v)| m.max(v.abs()));
            if max <= epsilon {
                return k;
            }
            if k < max_order {
                for row in &mut cur {
                    *row = self.mul_row(row, &mut scratch, &mut touched);
                }
            }
        }
        max_order
    }

    /// Row `i` of the walk series as sorted `(col, value)` pairs —
    /// an O(row-reach) single-source query that never touches the other
    /// rows.
    ///
    /// Truncation is **row-local**: the walk stops when the queried
    /// row's power term drops below `epsilon` in max-norm. With
    /// `epsilon = 0.0` (or whenever truncation does not fire) this is
    /// bitwise equal to the corresponding row of
    /// [`walk_series`](SparseMatrix::walk_series); under truncation the
    /// full series may keep sub-ε terms of this row alive while
    /// *another* row keeps the global max-norm above ε.
    ///
    /// # Panics
    ///
    /// Panics when the matrix is not square or `i` is out of bounds.
    #[must_use]
    pub fn walk_row(&self, i: usize, order: usize, epsilon: f64) -> Vec<(usize, f64)> {
        assert_eq!(self.rows, self.cols, "walk series needs a square matrix");
        let n = self.rows;
        let mut scratch = vec![0.0f64; n];
        let mut touched = Vec::new();
        let (cols, vals) = self.row(i);
        let mut cur: Vec<(usize, f64)> =
            cols.iter().copied().zip(vals.iter().copied()).collect();
        let mut acc: Vec<(usize, f64)> = Vec::new();
        for step in 0..order {
            let max = cur.iter().fold(0.0f64, |m, &(_, v)| m.max(v.abs()));
            if max < epsilon {
                break;
            }
            acc = merge_add(&acc, &cur);
            if step + 1 < order {
                cur = self.mul_row(&cur, &mut scratch, &mut touched);
            }
        }
        acc
    }

    /// The `k` largest walk-series entries of row `from` (excluding the
    /// diagonal): the strongest transitive influences of one FCM,
    /// without materialising anything beyond that row's reach. Ordered
    /// by descending value, then ascending column. Truncation is
    /// row-local (see [`walk_row`](SparseMatrix::walk_row)).
    #[must_use]
    pub fn top_k_from(
        &self,
        from: usize,
        k: usize,
        order: usize,
        epsilon: f64,
    ) -> Vec<(usize, f64)> {
        let mut row = self.walk_row(from, order, epsilon);
        row.retain(|&(j, _)| j != from);
        sort_desc_by_value(&mut row);
        row.truncate(k);
        row
    }

    /// One sparse row times `self`, folding contributions over the
    /// contraction index in ascending order — the dense kernel's exact
    /// per-entry association. `scratch` must be all-zero of length
    /// `self.cols` on entry and is restored before returning.
    /// (`touched.contains` is O(t) per probe, but a probe only happens
    /// when `scratch[j] == 0.0` — first touch or a sum that landed on
    /// exact zero, both rare.)
    fn mul_row(
        &self,
        row: &[(usize, f64)],
        scratch: &mut [f64],
        touched: &mut Vec<usize>,
    ) -> Vec<(usize, f64)> {
        touched.clear();
        for &(k, a) in row {
            let (cols, vals) = self.row(k);
            for (&j, &b) in cols.iter().zip(vals) {
                if scratch[j] == 0.0 && !touched.contains(&j) {
                    touched.push(j);
                }
                scratch[j] += a * b;
            }
        }
        touched.sort_unstable();
        let mut out = Vec::with_capacity(touched.len());
        for &j in touched.iter() {
            if scratch[j] != 0.0 {
                out.push((j, scratch[j]));
            }
            scratch[j] = 0.0;
        }
        out
    }

    /// A reference to the stored entry at `(row, col)`, or `None` when
    /// the cell is structurally zero or out of bounds.
    pub(crate) fn entry_ref(&self, row: usize, col: usize) -> Option<&f64> {
        if row >= self.rows || col >= self.cols {
            return None;
        }
        let (lo, hi) = (self.row_ptr[row], self.row_ptr[row + 1]);
        match self.col_idx[lo..hi].binary_search(&col) {
            Ok(p) => Some(&self.vals[lo + p]),
            Err(_) => None,
        }
    }

    /// Appends one all-zero row and column (the serve-path admit hook):
    /// stored entries are untouched, only the shape grows.
    #[must_use]
    pub fn grow_row_col(&self) -> SparseMatrix {
        let mut m = self.clone();
        m.rows += 1;
        m.cols += 1;
        m.row_ptr.push(m.col_idx.len());
        m
    }

    /// Removes row and column `hi`, shifting later indices down by one —
    /// the sparse counterpart of the dense pipeline's `shrink_row_col`.
    ///
    /// # Panics
    ///
    /// Panics when the matrix is not square or `hi` is out of bounds.
    #[must_use]
    pub fn shrink_row_col(&self, hi: usize) -> SparseMatrix {
        assert_eq!(self.rows, self.cols, "shrink needs a square matrix");
        assert!(hi < self.rows, "shrink index out of bounds");
        let n = self.rows - 1;
        let mut m = SparseMatrix::empty(n, n);
        for r in 0..self.rows {
            if r == hi {
                continue;
            }
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                if c == hi {
                    continue;
                }
                m.col_idx.push(if c > hi { c - 1 } else { c });
                m.vals.push(v);
            }
            let nr = if r > hi { r - 1 } else { r };
            m.row_ptr[nr + 1] = m.col_idx.len();
        }
        m
    }

    /// Replaces row `gi` and column `gi` wholesale: the new row is
    /// `row[0..n]` and the new column is `col[0..n]` (dense slices; the
    /// diagonal comes from `row[gi]`). Exact zeros are pruned, so the
    /// result carries the same values as the dense assignment loop in
    /// the Eq. 4 recombiner.
    ///
    /// # Panics
    ///
    /// Panics when the matrix is not square or a slice length differs
    /// from `n`.
    pub fn set_row_col(&mut self, gi: usize, row: &[f64], col: &[f64]) {
        let n = self.rows;
        assert_eq!(self.rows, self.cols, "set_row_col needs a square matrix");
        assert!(gi < n && row.len() == n && col.len() == n);
        let mut m = SparseMatrix::empty(n, n);
        for (r, &cv) in col.iter().enumerate() {
            if r == gi {
                for (j, &v) in row.iter().enumerate() {
                    if v != 0.0 {
                        m.col_idx.push(j);
                        m.vals.push(v);
                    }
                }
            } else {
                let (cols, vals) = self.row(r);
                let mut placed = false;
                for (&c, &v) in cols.iter().zip(vals) {
                    if !placed && c >= gi {
                        if cv != 0.0 {
                            m.col_idx.push(gi);
                            m.vals.push(cv);
                        }
                        placed = true;
                    }
                    if c == gi {
                        continue;
                    }
                    m.col_idx.push(c);
                    m.vals.push(v);
                }
                if !placed && cv != 0.0 {
                    m.col_idx.push(gi);
                    m.vals.push(cv);
                }
            }
            m.row_ptr[r + 1] = m.col_idx.len();
        }
        *self = m;
    }

    /// Applies a node relabelling: entry `(i, j)` of the result is entry
    /// `(map[i], map[j])` of `self` (`map` must be a permutation of
    /// `0..n`). Values are carried bitwise.
    ///
    /// # Panics
    ///
    /// Panics when the matrix is not square or `map` is not a
    /// permutation of `0..n`.
    #[must_use]
    pub fn permuted(&self, map: &[usize]) -> SparseMatrix {
        let n = self.rows;
        assert_eq!(self.rows, self.cols, "permuted needs a square matrix");
        assert_eq!(map.len(), n, "map must cover every node");
        let mut inv = vec![usize::MAX; n];
        for (new, &old) in map.iter().enumerate() {
            assert!(old < n && inv[old] == usize::MAX, "map must be a permutation");
            inv[old] = new;
        }
        SparseMatrix::from_triples(
            n,
            n,
            self.entries().map(|(r, c, v)| (inv[r], inv[c], v)),
        )
    }

    /// Splits the rows into contiguous blocks of whole strongly
    /// connected components (components merged greedily up to a target
    /// block size). Shard boundaries only affect scheduling, never
    /// values — each row's series is independent.
    fn component_shards(&self, threads: usize) -> Vec<Vec<usize>> {
        let n = self.rows;
        let target = (n / (threads.max(1) * 8)).clamp(1, 2048);
        let mut shards = Vec::new();
        let mut shard: Vec<usize> = Vec::new();
        for comp in self.components() {
            shard.extend(comp);
            if shard.len() >= target {
                shards.push(std::mem::take(&mut shard));
            }
        }
        if !shard.is_empty() {
            shards.push(shard);
        }
        shards
    }
}

/// Orders query results by descending value, ties broken by ascending
/// column — the one comparator every top-k path (sparse or dense) uses,
/// so top-k always agrees with a full sort of the same row.
pub(crate) fn sort_desc_by_value(row: &mut [(usize, f64)]) {
    row.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("finite walk values")
            .then(a.0.cmp(&b.0))
    });
}

/// Merges two column-sorted sparse rows entrywise (`a + b`). Where only
/// one side stores an entry the value carries over verbatim, matching
/// the dense `acc += power` fold (adding an exact zero is the identity
/// on the non-negative domain).
fn merge_add(a: &[(usize, f64)], b: &[(usize, f64)]) -> Vec<(usize, f64)> {
    let mut out = Vec::with_capacity(a.len().max(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                let v = a[i].1 + b[j].1;
                if v != 0.0 {
                    out.push((a[i].0, v));
                }
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Assembles a CSR matrix from per-row sorted `(col, value)` lists.
fn from_sparse_rows(rows: usize, cols: usize, data: Vec<Vec<(usize, f64)>>) -> SparseMatrix {
    let mut m = SparseMatrix::empty(rows, cols);
    for (r, row) in data.into_iter().enumerate() {
        for (c, v) in row {
            debug_assert!(c < cols);
            m.col_idx.push(c);
            m.vals.push(v);
        }
        m.row_ptr[r + 1] = m.col_idx.len();
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcm_substrate::rng::Rng;

    fn random_dense(n: usize, density: f64, seed: u64) -> Matrix {
        let mut rng = Rng::seed_from_u64(seed);
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                if i != j && rng.gen_range(0.0..1.0) < density {
                    m[(i, j)] = rng.gen_range(0.0..0.8) / n as f64;
                }
            }
        }
        m
    }

    #[test]
    fn triples_sum_duplicates_in_order_and_prune_zeros() {
        let m = SparseMatrix::from_triples(
            2,
            2,
            [(0, 1, 0.25), (0, 1, 0.5), (1, 0, 0.0), (0, 0, 0.125)],
        );
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 1), Some(0.75));
        assert_eq!(m.get(1, 0), Some(0.0)); // pruned
        assert_eq!(m.get(0, 0), Some(0.125));
        assert_eq!(m.get(2, 0), None);
        assert!((m.density() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dense_round_trip_is_bitwise() {
        let d = random_dense(17, 0.3, 7);
        let s = SparseMatrix::from_dense(&d);
        let back = s.to_dense();
        for i in 0..17 {
            for j in 0..17 {
                assert_eq!(d[(i, j)].to_bits(), back.get(i, j).unwrap().to_bits());
            }
        }
        assert_eq!(s.max_abs(), d.max_abs());
    }

    #[test]
    fn walk_series_matches_the_dense_oracle_bitwise() {
        for seed in 0..4 {
            let d = random_dense(23, 0.25, seed);
            let s = SparseMatrix::from_dense(&d);
            let dense = d.walk_series(6, 1e-12);
            let sparse = s.walk_series(6, 1e-12).to_dense();
            for i in 0..23 {
                for j in 0..23 {
                    assert_eq!(
                        dense[(i, j)].to_bits(),
                        sparse.get(i, j).unwrap().to_bits(),
                        "seed {seed} entry ({i}, {j})"
                    );
                }
            }
        }
    }

    #[test]
    fn walk_series_is_thread_count_independent() {
        let d = random_dense(31, 0.2, 11);
        let s = SparseMatrix::from_dense(&d);
        let one = s.walk_series_threads(5, 1e-12, 1);
        let four = s.walk_series_threads(5, 1e-12, 4);
        assert_eq!(one, four);
    }

    #[test]
    fn walk_row_matches_the_full_series_without_truncation() {
        let d = random_dense(19, 0.3, 3);
        let s = SparseMatrix::from_dense(&d);
        let full = s.walk_series(5, 0.0);
        for i in 0..19 {
            let row = s.walk_row(i, 5, 0.0);
            let (cols, vals) = full.row(i);
            let expect: Vec<(usize, f64)> =
                cols.iter().copied().zip(vals.iter().copied()).collect();
            assert_eq!(row, expect, "row {i}");
        }
    }

    #[test]
    fn top_k_from_agrees_with_a_full_sort() {
        let d = random_dense(19, 0.3, 5);
        let s = SparseMatrix::from_dense(&d);
        let top = s.top_k_from(2, 4, 5, 0.0);
        let mut all = s.walk_row(2, 5, 0.0);
        all.retain(|&(j, _)| j != 2);
        sort_desc_by_value(&mut all);
        all.truncate(4);
        assert_eq!(top, all);
    }

    #[test]
    fn components_come_back_in_reverse_topological_order() {
        // 0 <-> 1 cycle feeding the 2 -> 3 chain.
        let m = SparseMatrix::from_triples(
            4,
            4,
            [(0, 1, 0.5), (1, 0, 0.5), (1, 2, 0.3), (2, 3, 0.2)],
        );
        let comps = m.components();
        assert_eq!(comps.len(), 3);
        // The sink singleton {3} first, the source cycle {0, 1} last.
        assert_eq!(comps[0], vec![3]);
        let mut last = comps[2].clone();
        last.sort_unstable();
        assert_eq!(last, vec![0, 1]);
    }

    #[test]
    fn empty_and_zero_order_series_are_empty() {
        let m = SparseMatrix::empty(0, 0);
        assert_eq!(m.walk_series(4, 1e-12).nnz(), 0);
        let m = SparseMatrix::from_triples(3, 3, [(0, 1, 0.5)]);
        assert_eq!(m.walk_series(0, 1e-12).nnz(), 0);
        assert_eq!(m.density(), 1.0 / 9.0);
    }

    #[test]
    fn grow_then_shrink_round_trips() {
        let m = SparseMatrix::from_triples(3, 3, [(0, 1, 0.5), (2, 0, 0.25)]);
        let g = m.grow_row_col();
        assert_eq!((g.rows(), g.cols()), (4, 4));
        assert_eq!(g.get(3, 0), Some(0.0));
        assert_eq!(g.get(0, 1), Some(0.5));
        assert_eq!(g.shrink_row_col(3), m);
        // Shrinking an interior index shifts later nodes down.
        let s = m.shrink_row_col(1);
        assert_eq!((s.rows(), s.nnz()), (2, 1));
        assert_eq!(s.get(1, 0), Some(0.25)); // old (2, 0)
    }

    #[test]
    fn set_row_col_matches_the_dense_assignment_loop() {
        let d = random_dense(13, 0.4, 9);
        let mut s = SparseMatrix::from_dense(&d);
        let (n, gi) = (13, 4);
        let mut rng = Rng::seed_from_u64(10);
        let pick = |rng: &mut Rng, j: usize| {
            if j == gi || j.is_multiple_of(3) {
                0.0
            } else {
                rng.gen_range(0.0..1.0)
            }
        };
        let row: Vec<f64> = (0..n).map(|j| pick(&mut rng, j)).collect();
        let col: Vec<f64> = (0..n).map(|j| pick(&mut rng, j)).collect();
        s.set_row_col(gi, &row, &col);
        let mut expect = d.clone();
        for t in 0..n {
            expect[(gi, t)] = row[t];
            expect[(t, gi)] = col[t];
        }
        assert_eq!(s.to_dense(), expect);
    }

    #[test]
    fn permuted_relabels_entries() {
        let m = SparseMatrix::from_triples(3, 3, [(0, 1, 0.5), (1, 2, 0.25)]);
        // new 0 <- old 2, new 1 <- old 0, new 2 <- old 1
        let p = m.permuted(&[2, 0, 1]);
        assert_eq!(p.get(1, 2), Some(0.5)); // old (0, 1)
        assert_eq!(p.get(2, 0), Some(0.25)); // old (1, 2)
        assert_eq!(p.nnz(), 2);
    }

    #[test]
    fn truncation_tests_the_power_term_like_the_dense_kernel() {
        // 0 -> 1 -> 2 chain: P² has one entry 0.25·0.25 = 0.0625, P³ is
        // zero. With ε above 0.0625 the series truncates after P¹ on
        // both representations.
        let d = Matrix::from_rows(3, 3, &[0.0, 0.25, 0.0, 0.0, 0.0, 0.25, 0.0, 0.0, 0.0]);
        let s = SparseMatrix::from_dense(&d);
        for &eps in &[0.1, 0.01, 1e-15] {
            let dense = d.walk_series(8, eps);
            let sparse = s.walk_series(8, eps).to_dense();
            for i in 0..3 {
                for j in 0..3 {
                    assert_eq!(
                        dense[(i, j)].to_bits(),
                        sparse.get(i, j).unwrap().to_bits(),
                        "eps {eps} entry ({i}, {j})"
                    );
                }
            }
        }
    }
}
