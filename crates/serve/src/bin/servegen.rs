//! `servegen` — deterministic load generator and script driver for
//! `fcm-serve`.
//!
//! ```text
//! servegen --socket /tmp/fcm.sock --script session.jsonl   # transcript mode
//! servegen --tcp 127.0.0.1:7433 --rate 10000 --duration-ms 2000
//! ```
//!
//! Script mode prints the server hello plus one response line per
//! request — a transcript suitable for golden-file comparison. Load
//! mode drives a seeded open-loop mix and prints a one-line JSON
//! summary with p50/p99 round-trip latencies.
//!
//! Exit codes: 0 = run completed, 2 = usage or I/O error. (Rejected
//! requests are data, not failures — they appear in the transcript or
//! the `errors` count.) With `--timeout`, a run that does not complete
//! in time — a hung or degraded daemon — also exits 2 instead of
//! wedging CI forever.

use std::io::Read;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::mpsc;
use std::time::Duration;

use fcm_serve::gen::{self, LoadConfig};
use fcm_serve::server::Listen;

const USAGE: &str = "\
servegen: deterministic load generator for fcm-serve

USAGE:
    servegen (--socket <PATH> | --tcp <ADDR>) [--script <FILE|->]
             [--subscribe-transcript <K>] [--subscribe <N>]
             [--rate <N>] [--clients <N>] [--duration-ms <N>]
             [--seed <N>] [--mutation-pct <N>] [--timeout <MS>]

MODES:
    --script <FILE|->     Replay requests from FILE (or stdin with \"-\"),
                          printing the hello and every response verbatim
    --script <FILE> --subscribe-transcript <K>
                          Subscribe first (events from eseq 0), replay the
                          script from a second session, and print the ack
                          plus the first K event lines and the end marker
    (no --script)         Open-loop load: seeded mutation/query mix

OPTIONS:
    --subscribe <N>       Load mode: attach N event subscribers for the
                          run; each verifies exact eseq/dropped gap
                          accounting and the summary reports totals
    --rate <N>            Offered requests/second, all clients (default 1000)
    --clients <N>         Concurrent connections (default 4)
    --duration-ms <N>     Load run length (default 2000)
    --seed <N>            Base RNG seed (default 42)
    --mutation-pct <N>    Percent of requests that mutate (default 20)
    --timeout <MS>        Fail (exit 2) if the whole run has not
                          completed after MS milliseconds
    --help                Show this help

EXIT CODES:
    0  run completed
    2  usage or I/O error, or --timeout expired
";

enum Mode {
    Script(String),
    SubscribeTranscript(String, u64),
    Load(LoadConfig),
}

fn parse_args(argv: &[String]) -> Result<Option<(Listen, Mode, Option<u64>)>, String> {
    let mut target: Option<Listen> = None;
    let mut script: Option<String> = None;
    let mut subscribe_transcript: Option<u64> = None;
    let mut config = LoadConfig::default();
    let mut timeout_ms: Option<u64> = None;

    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        let uint = |flag: &str, v: String| {
            v.parse::<u64>()
                .map_err(|_| format!("{flag} requires a non-negative integer"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--socket" => target = Some(Listen::Unix(PathBuf::from(value("--socket")?))),
            "--tcp" => target = Some(Listen::Tcp(value("--tcp")?)),
            "--script" => script = Some(value("--script")?),
            "--subscribe-transcript" => {
                let k = uint("--subscribe-transcript", value("--subscribe-transcript")?)?;
                if k == 0 {
                    return Err("--subscribe-transcript requires a positive count".to_string());
                }
                subscribe_transcript = Some(k);
            }
            "--subscribe" => {
                config.subscribers =
                    uint("--subscribe", value("--subscribe")?)? as usize;
            }
            "--rate" => config.rate = uint("--rate", value("--rate")?)?,
            "--clients" => config.clients = uint("--clients", value("--clients")?)? as usize,
            "--duration-ms" => config.duration_ms = uint("--duration-ms", value("--duration-ms")?)?,
            "--seed" => config.seed = uint("--seed", value("--seed")?)?,
            "--mutation-pct" => {
                let pct = uint("--mutation-pct", value("--mutation-pct")?)?;
                if pct > 100 {
                    return Err("--mutation-pct must be in 0..=100".to_string());
                }
                config.mutation_pct = pct as u8;
            }
            "--timeout" => timeout_ms = Some(uint("--timeout", value("--timeout")?)?),
            other => return Err(format!("unknown flag \"{other}\"")),
        }
    }
    let target = target.ok_or("one of --socket or --tcp is required")?;
    let mode = match (script, subscribe_transcript) {
        (Some(path), k) => {
            let text = if path == "-" {
                let mut buf = String::new();
                std::io::stdin()
                    .read_to_string(&mut buf)
                    .map_err(|e| format!("read stdin: {e}"))?;
                buf
            } else {
                std::fs::read_to_string(&path).map_err(|e| format!("read {path}: {e}"))?
            };
            match k {
                Some(k) => Mode::SubscribeTranscript(text, k),
                None => Mode::Script(text),
            }
        }
        (None, Some(_)) => {
            return Err("--subscribe-transcript requires --script".to_string());
        }
        (None, None) => Mode::Load(config),
    };
    Ok(Some((target, mode, timeout_ms)))
}

fn run(target: &Listen, mode: Mode) -> Result<(), String> {
    match mode {
        Mode::Script(text) => {
            let mut stdout = std::io::stdout().lock();
            gen::run_script(target, &text, &mut stdout)
        }
        Mode::SubscribeTranscript(text, k) => {
            let mut stdout = std::io::stdout().lock();
            gen::run_subscribe_transcript(target, &text, k, &mut stdout)
        }
        Mode::Load(config) => gen::run_load(target, &config).map(|report| {
            println!("{}", gen::report_json(&config, &report).to_string_compact());
        }),
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (target, mode, timeout_ms) = match parse_args(&argv) {
        Ok(Some(parsed)) => parsed,
        Ok(None) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("servegen: {e}");
            eprintln!("run with --help for usage");
            return ExitCode::from(2);
        }
    };
    let result = match timeout_ms {
        None => run(&target, mode),
        // Watchdog: run on a worker thread; if it has not finished by
        // the deadline the whole process exits 2 (a hung daemon must
        // fail the bench, not wedge CI).
        Some(ms) => {
            let (tx, rx) = mpsc::channel();
            std::thread::spawn(move || {
                let _ = tx.send(run(&target, mode));
            });
            match rx.recv_timeout(Duration::from_millis(ms)) {
                Ok(r) => r,
                Err(_) => {
                    eprintln!("servegen: run did not complete within {ms} ms");
                    std::process::exit(2);
                }
            }
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("servegen: {e}");
            ExitCode::from(2)
        }
    }
}
