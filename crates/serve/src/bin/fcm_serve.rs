//! `fcm-serve` — the online integration daemon.
//!
//! ```text
//! fcm-serve --model paper --socket /tmp/fcm.sock [--state-dir DIR]
//!           [--resume] [--snapshot-every N] [--obs-out PATH]
//!           [--fault-plan SPEC] [--rearm-base-ms N]
//! fcm-serve --model avionics --tcp 127.0.0.1:7433
//! ```
//!
//! Exit codes follow the workspace contract: 0 = clean shutdown
//! (SIGTERM/SIGINT drain), 1 = the startup model failed its pre-flight
//! checks or could not be placed, 2 = usage or I/O error (bad flags,
//! bind failure, unwritable state dir).

use std::path::PathBuf;
use std::process::ExitCode;

use fcm_serve::server::{start, Listen, ServerConfig};
use fcm_serve::signal;
use fcm_substrate::fault::FaultPlan;

const USAGE: &str = "\
fcm-serve: online integration service (fcm-serve/v1 line-JSON protocol)

USAGE:
    fcm-serve --model <paper|avionics> (--socket <PATH> | --tcp <ADDR>)
              [--state-dir <DIR>] [--resume] [--snapshot-every <N>]
              [--obs-out <PATH>] [--fault-plan <SPEC>] [--rearm-base-ms <N>]

OPTIONS:
    --model <NAME>        Committed workload to serve (paper | avionics)
    --socket <PATH>       Listen on a Unix-domain socket at PATH
    --tcp <ADDR>          Listen on TCP at ADDR (host:port; port 0 = ephemeral)
    --state-dir <DIR>     Durable state: snapshot.json + journal.jsonl in DIR
    --resume              Recover from --state-dir instead of starting fresh
    --snapshot-every <N>  Snapshot every N accepted mutations (default 64;
                          0 = only at shutdown)
    --obs-out <PATH>      Write an fcm-obs event log on shutdown
    --fault-plan <SPEC>   Deterministic fault injection on the durability
                          path (testing only): ;-separated
                          site[:kind][@N|@N..M|@N..] rules, e.g.
                          'journal.*:eio' or 'snapshot.rename:crash@0'
    --rearm-base-ms <N>   Base backoff (ms) for degraded-mode re-arm
                          probes (default 100)
    --help                Show this help

EXIT CODES:
    0  clean shutdown (SIGTERM/SIGINT drain complete, snapshot written)
    1  startup model rejected by pre-flight checks or unplaceable
    2  usage or I/O error
";

struct Args {
    config: ServerConfig,
    obs_out: Option<PathBuf>,
}

fn parse_args(argv: &[String]) -> Result<Option<Args>, String> {
    let mut model: Option<String> = None;
    let mut listen: Option<Listen> = None;
    let mut state_dir: Option<PathBuf> = None;
    let mut resume = false;
    let mut snapshot_every: u64 = 64;
    let mut obs_out: Option<PathBuf> = None;
    let mut fault = FaultPlan::none();
    let mut rearm_base_ms: u64 = 100;

    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--model" => model = Some(value("--model")?),
            "--socket" => listen = Some(Listen::Unix(PathBuf::from(value("--socket")?))),
            "--tcp" => listen = Some(Listen::Tcp(value("--tcp")?)),
            "--state-dir" => state_dir = Some(PathBuf::from(value("--state-dir")?)),
            "--resume" => resume = true,
            "--snapshot-every" => {
                snapshot_every = value("--snapshot-every")?
                    .parse()
                    .map_err(|_| "--snapshot-every requires a non-negative integer".to_string())?;
            }
            "--obs-out" => obs_out = Some(PathBuf::from(value("--obs-out")?)),
            "--fault-plan" => {
                fault = FaultPlan::parse(&value("--fault-plan")?)
                    .map_err(|e| format!("--fault-plan: {e}"))?;
            }
            "--rearm-base-ms" => {
                rearm_base_ms = value("--rearm-base-ms")?
                    .parse()
                    .map_err(|_| "--rearm-base-ms requires a non-negative integer".to_string())?;
            }
            other => return Err(format!("unknown flag \"{other}\"")),
        }
    }
    let model = model.ok_or("--model is required")?;
    let listen = listen.ok_or("one of --socket or --tcp is required")?;
    if resume && state_dir.is_none() {
        return Err("--resume requires --state-dir".to_string());
    }
    Ok(Some(Args {
        config: ServerConfig {
            state_dir,
            resume,
            snapshot_every,
            fault,
            rearm_base_ms,
            ..ServerConfig::new(listen, &model)
        },
        obs_out,
    }))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(Some(args)) => args,
        Ok(None) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("fcm-serve: {e}");
            eprintln!("run with --help for usage");
            return ExitCode::from(2);
        }
    };

    if args.obs_out.is_some() || std::env::var_os(fcm_obs::OBS_OUT_ENV).is_some() {
        fcm_obs::init(fcm_obs::ObsConfig::default());
        fcm_obs::set_enabled(true);
    }
    signal::install();

    let handle = match start(args.config) {
        Ok(h) => h,
        Err(e) => {
            // Model-content failures (pre-flight findings, infeasible
            // placement) are findings → 1; environment failures → 2.
            let findings = e.contains("preflight")
                || e.contains("no feasible")
                || e.contains("unknown model");
            eprintln!("fcm-serve: {e}");
            return ExitCode::from(if findings { 1 } else { 2 });
        }
    };
    println!("fcm-serve: listening on {}", handle.addr());
    println!("fcm-serve: model ready at seq {}", handle.seq());
    let _ = std::io::Write::flush(&mut std::io::stdout());

    while !signal::requested() {
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    eprintln!("fcm-serve: shutdown requested, draining");
    let rc = match handle.stop() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fcm-serve: shutdown error: {e}");
            ExitCode::from(2)
        }
    };
    if let Some(path) = args.obs_out {
        if let Err(e) = fcm_obs::export::export_to(&path) {
            eprintln!("fcm-serve: obs export failed: {e}");
            return ExitCode::from(2);
        }
    }
    rc
}
