//! `fcm-serve` — the online integration daemon.
//!
//! ```text
//! fcm-serve --model paper --socket /tmp/fcm.sock [--state-dir DIR]
//!           [--resume] [--snapshot-every N] [--obs-out PATH]
//!           [--fault-plan SPEC] [--rearm-base-ms N]
//!           [--flight-out PATH] [--no-flight] [--heartbeat-every N]
//!           [--sub-queue N] [--slo-window N]
//! fcm-serve --model avionics --tcp 127.0.0.1:7433
//! ```
//!
//! The flight recorder is on by default (a bounded in-memory ring; its
//! only output is an `fcm-obs/v1` dump on degraded entry or SIGTERM),
//! and `--no-flight` exists precisely so the byte-identity gate can
//! show serve responses do not depend on it.
//!
//! Exit codes follow the workspace contract: 0 = clean shutdown
//! (SIGTERM/SIGINT drain), 1 = the startup model failed its pre-flight
//! checks or could not be placed, 2 = usage or I/O error (bad flags,
//! bind failure, unwritable state dir).

use std::path::PathBuf;
use std::process::ExitCode;

use fcm_serve::server::{start, Listen, ServerConfig};
use fcm_serve::signal;
use fcm_substrate::fault::FaultPlan;

const USAGE: &str = "\
fcm-serve: online integration service (fcm-serve/v1 line-JSON protocol)

USAGE:
    fcm-serve --model <paper|avionics> (--socket <PATH> | --tcp <ADDR>)
              [--state-dir <DIR>] [--resume] [--snapshot-every <N>]
              [--obs-out <PATH>] [--fault-plan <SPEC>] [--rearm-base-ms <N>]
              [--flight-out <PATH>] [--no-flight] [--heartbeat-every <N>]
              [--sub-queue <N>] [--slo-window <N>]

OPTIONS:
    --model <NAME>        Committed workload to serve (paper | avionics)
    --socket <PATH>       Listen on a Unix-domain socket at PATH
    --tcp <ADDR>          Listen on TCP at ADDR (host:port; port 0 = ephemeral)
    --state-dir <DIR>     Durable state: snapshot.json + journal.jsonl in DIR
    --resume              Recover from --state-dir instead of starting fresh
    --snapshot-every <N>  Snapshot every N accepted mutations (default 64;
                          0 = only at shutdown)
    --obs-out <PATH>      Write an fcm-obs event log on shutdown
    --fault-plan <SPEC>   Deterministic fault injection on the durability
                          path (testing only): ;-separated
                          site[:kind][@N|@N..M|@N..] rules, e.g.
                          'journal.*:eio' or 'snapshot.rename:crash@0'
    --rearm-base-ms <N>   Base backoff (ms) for degraded-mode re-arm
                          probes (default 100)
    --flight-out <PATH>   Where the flight recorder dumps fcm-obs/v1
                          JSONL on degraded entry / SIGTERM (default
                          <state-dir>/flight.jsonl when --state-dir is
                          given, else no dump path)
    --no-flight           Disable the flight recorder entirely
    --heartbeat-every <N> Publish a stats heartbeat event every N
                          accepted mutations (default 256; 0 = never)
    --sub-queue <N>       Default per-subscriber event-queue bound
                          (default 1024; overfull queues drop oldest)
    --slo-window <N>      Samples per rolling SLO window behind the
                          stats p50/p99 fields (default 4096)
    --help                Show this help

EXIT CODES:
    0  clean shutdown (SIGTERM/SIGINT drain complete, snapshot written)
    1  startup model rejected by pre-flight checks or unplaceable
    2  usage or I/O error
";

struct Args {
    config: ServerConfig,
    obs_out: Option<PathBuf>,
    flight_out: Option<PathBuf>,
    no_flight: bool,
}

fn parse_args(argv: &[String]) -> Result<Option<Args>, String> {
    let mut model: Option<String> = None;
    let mut listen: Option<Listen> = None;
    let mut state_dir: Option<PathBuf> = None;
    let mut resume = false;
    let mut snapshot_every: u64 = 64;
    let mut obs_out: Option<PathBuf> = None;
    let mut fault = FaultPlan::none();
    let mut rearm_base_ms: u64 = 100;
    let mut flight_out: Option<PathBuf> = None;
    let mut no_flight = false;
    let mut heartbeat_every: u64 = 256;
    let mut sub_queue: usize = 1024;
    let mut slo_window: u64 = 4096;

    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--model" => model = Some(value("--model")?),
            "--socket" => listen = Some(Listen::Unix(PathBuf::from(value("--socket")?))),
            "--tcp" => listen = Some(Listen::Tcp(value("--tcp")?)),
            "--state-dir" => state_dir = Some(PathBuf::from(value("--state-dir")?)),
            "--resume" => resume = true,
            "--snapshot-every" => {
                snapshot_every = value("--snapshot-every")?
                    .parse()
                    .map_err(|_| "--snapshot-every requires a non-negative integer".to_string())?;
            }
            "--obs-out" => obs_out = Some(PathBuf::from(value("--obs-out")?)),
            "--fault-plan" => {
                fault = FaultPlan::parse(&value("--fault-plan")?)
                    .map_err(|e| format!("--fault-plan: {e}"))?;
            }
            "--rearm-base-ms" => {
                rearm_base_ms = value("--rearm-base-ms")?
                    .parse()
                    .map_err(|_| "--rearm-base-ms requires a non-negative integer".to_string())?;
            }
            "--flight-out" => flight_out = Some(PathBuf::from(value("--flight-out")?)),
            "--no-flight" => no_flight = true,
            "--heartbeat-every" => {
                heartbeat_every = value("--heartbeat-every")?
                    .parse()
                    .map_err(|_| "--heartbeat-every requires a non-negative integer".to_string())?;
            }
            "--sub-queue" => {
                sub_queue = value("--sub-queue")?
                    .parse()
                    .map_err(|_| "--sub-queue requires a positive integer".to_string())?;
                if sub_queue == 0 {
                    return Err("--sub-queue requires a positive integer".to_string());
                }
            }
            "--slo-window" => {
                slo_window = value("--slo-window")?
                    .parse()
                    .map_err(|_| "--slo-window requires a positive integer".to_string())?;
                if slo_window == 0 {
                    return Err("--slo-window requires a positive integer".to_string());
                }
            }
            other => return Err(format!("unknown flag \"{other}\"")),
        }
    }
    let model = model.ok_or("--model is required")?;
    let listen = listen.ok_or("one of --socket or --tcp is required")?;
    if resume && state_dir.is_none() {
        return Err("--resume requires --state-dir".to_string());
    }
    if no_flight && flight_out.is_some() {
        return Err("--no-flight conflicts with --flight-out".to_string());
    }
    // Default dump path: next to the durable state, where a post-mortem
    // will look first.
    let flight_out = match (flight_out, &state_dir, no_flight) {
        (Some(p), _, _) => Some(p),
        (None, Some(dir), false) => Some(dir.join("flight.jsonl")),
        _ => None,
    };
    Ok(Some(Args {
        config: ServerConfig {
            state_dir,
            resume,
            snapshot_every,
            fault,
            rearm_base_ms,
            sub_queue,
            heartbeat_every,
            slo_window,
            ..ServerConfig::new(listen, &model)
        },
        obs_out,
        flight_out,
        no_flight,
    }))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(Some(args)) => args,
        Ok(None) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("fcm-serve: {e}");
            eprintln!("run with --help for usage");
            return ExitCode::from(2);
        }
    };

    if args.obs_out.is_some() || std::env::var_os(fcm_obs::OBS_OUT_ENV).is_some() {
        fcm_obs::init(fcm_obs::ObsConfig::default());
        fcm_obs::set_enabled(true);
    }
    if !args.no_flight {
        fcm_obs::recorder::set_dump_path(args.flight_out.clone());
        fcm_obs::recorder::set_enabled(true);
    }
    signal::install();

    let handle = match start(args.config) {
        Ok(h) => h,
        Err(e) => {
            // Model-content failures (pre-flight findings, infeasible
            // placement) are findings → 1; environment failures → 2.
            let findings = e.contains("preflight")
                || e.contains("no feasible")
                || e.contains("unknown model");
            eprintln!("fcm-serve: {e}");
            return ExitCode::from(if findings { 1 } else { 2 });
        }
    };
    println!("fcm-serve: listening on {}", handle.addr());
    println!("fcm-serve: model ready at seq {}", handle.seq());
    let _ = std::io::Write::flush(&mut std::io::stdout());

    while !signal::requested() {
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    eprintln!("fcm-serve: shutdown requested, draining");
    let rc = match handle.stop() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fcm-serve: shutdown error: {e}");
            ExitCode::from(2)
        }
    };
    // After the drain: the ring still holds the run's tail, and the
    // dump can no longer race the writer thread.
    if let Some(path) = fcm_obs::recorder::auto_dump("sigterm") {
        eprintln!("fcm-serve: flight log dumped to {}", path.display());
    }
    if let Some(path) = args.obs_out {
        if let Err(e) = fcm_obs::export::export_to(&path) {
            eprintln!("fcm-serve: obs export failed: {e}");
            return ExitCode::from(2);
        }
    }
    rc
}
