//! `crashdrill` — the crash-point durability matrix as a CI gate.
//!
//! ```text
//! crashdrill [--model <paper|avionics>] [--quick] [--json]
//! ```
//!
//! Runs the golden session once to enumerate every IO site it reaches,
//! then simulates an in-process crash at each hit (plus a torn-write
//! variant for byte-write sites), resumes with the production recovery
//! path, and verifies the recovered model is prefix-consistent with the
//! reference run — zero acknowledged mutations lost, byte-identical
//! state at the recovered seq.
//!
//! Exit codes: 0 = every crash point recovered prefix-consistently,
//! 1 = at least one durability violation, 2 = usage/setup error.

use std::process::ExitCode;

use fcm_serve::drill;

const USAGE: &str = "\
crashdrill: crash-point durability matrix for the fcm-serve store

USAGE:
    crashdrill [--model <paper|avionics>] [--quick] [--json]
               [--flight-out <PATH>]

OPTIONS:
    --model <NAME>       Committed workload to drill (default paper)
    --quick              Trimmed session (the scripts/verify.sh gate)
    --json               Emit the fcm-crashdrill/v1 report on stdout
    --flight-out <PATH>  Arm the flight recorder: every simulated crash
                         point dumps an fcm-obs/v1 flight log to PATH
                         (the file holds the last crash point reached)
    --help               Show this help

EXIT CODES:
    0  all crash points recovered prefix-consistently
    1  durability violation at one or more crash points
    2  usage or setup error
";

fn main() -> ExitCode {
    let mut model = "paper".to_string();
    let mut quick = false;
    let mut json = false;
    let mut flight_out: Option<std::path::PathBuf> = None;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--model" => match it.next() {
                Some(m) => model = m.clone(),
                None => {
                    eprintln!("crashdrill: --model requires a value");
                    return ExitCode::from(2);
                }
            },
            "--quick" => quick = true,
            "--json" => json = true,
            "--flight-out" => match it.next() {
                Some(p) => flight_out = Some(std::path::PathBuf::from(p)),
                None => {
                    eprintln!("crashdrill: --flight-out requires a value");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("crashdrill: unknown flag \"{other}\"");
                eprintln!("run with --help for usage");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(path) = &flight_out {
        fcm_obs::recorder::set_dump_path(Some(path.clone()));
        fcm_obs::recorder::set_enabled(true);
    }

    let report = match drill::run_matrix(&model, quick) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("crashdrill: {e}");
            return ExitCode::from(2);
        }
    };
    if json {
        println!("{}", report.to_json().to_string_pretty());
    } else {
        println!(
            "crashdrill: model {} — {} sites enumerated, {} crash points",
            report.model,
            report.trace.len(),
            report.cases.len()
        );
        for c in &report.cases {
            let verdict = match &c.failure {
                None => "ok".to_string(),
                Some(why) => format!("FAIL: {why}"),
            };
            println!(
                "  hit {:>3} {:<22} torn={:<5} acked={:>2} recovered_seq={:>2}  {}",
                c.hit, c.site, c.torn, c.acked, c.recovered_seq, verdict
            );
        }
    }
    let failed = report.failures().len();
    if failed > 0 {
        eprintln!("crashdrill: {failed} durability violations");
        return ExitCode::from(1);
    }
    if !json {
        println!(
            "crashdrill: {} crash points, 0 durability violations",
            report.cases.len()
        );
    }
    ExitCode::SUCCESS
}
