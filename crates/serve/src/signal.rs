//! Graceful-drain flag: SIGTERM/SIGINT set a process-wide atomic the
//! daemon's main loop polls, so shutdown always goes through the
//! drain-then-snapshot path.
//!
//! This is the crate's only `unsafe`: a raw `signal(2)` binding rather
//! than a libc crate (the workspace is zero-external-deps). The handler
//! body is async-signal-safe — a single relaxed atomic store.

use std::sync::atomic::{AtomicBool, Ordering};

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::Relaxed);
}

extern "C" {
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

/// Installs the SIGTERM/SIGINT handlers. Idempotent; call once at
/// daemon startup before accepting connections.
pub fn install() {
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
}

/// Whether a shutdown signal has been received.
#[must_use]
pub fn requested() -> bool {
    SHUTDOWN.load(Ordering::Relaxed)
}

/// Test/embedding hook: request shutdown without a real signal.
pub fn request() {
    SHUTDOWN.store(true, Ordering::Relaxed);
}
