//! The `fcm-serve/v1` line protocol: parse and render.
//!
//! One JSON object per line, both directions. Requests carry an `"op"`
//! plus op-specific fields and an optional `"id"` echoed back verbatim;
//! responses always carry `"ok"` (`true` with op-specific payload
//! fields, `false` with an `"error"` string). A malformed line yields a
//! structured error response, never a dropped connection.
//!
//! The grammar (DESIGN.md §9):
//!
//! ```text
//! mutation  := add_fcm | remove_fcm | set_attr | fail_node | restore_node
//! query     := influence | separation | check | certify | admit
//!            | propose_placement | stats | metrics | list | dump
//!            | snapshot | ping
//! subscribe := subscribe [max_events] [queue]
//! ```
//!
//! `subscribe` upgrades the session to a push stream: after the ack the
//! server interleaves line-JSON events (`"event"` + `"eseq"` +
//! `"dropped"` fields) with any later responses on the same connection;
//! see DESIGN.md §12 for the backpressure and ordering contract.
//!
//! [`mutation_to_json`] is the canonical rendering used for the journal:
//! parse∘render is the identity on mutations (pinned by the protocol
//! property tests), which is what makes journal replay reproduce a
//! byte-identical model.

use fcm_check::Contract;
use fcm_substrate::Json;

/// Protocol schema tag, sent in the hello line on connect.
pub const SCHEMA: &str = "fcm-serve/v1";

/// Default walk-series order for influence/separation queries (matches
/// `fcm_core::separation::DEFAULT_ORDER`).
pub const DEFAULT_ORDER: usize = 4;

/// A state-changing request, applied by the writer thread and journaled.
#[derive(Debug, Clone, PartialEq)]
pub enum Mutation {
    /// Add a process FCM with its attributes and influence edges.
    AddFcm {
        /// Unique FCM name.
        name: String,
        /// Criticality attribute.
        criticality: u32,
        /// Throughput attribute (units per tick).
        throughput: f64,
        /// Security level attribute.
        security: u8,
        /// Optional timing triple `(est, tcd, ct)`.
        timing: Option<(u64, u64, u64)>,
        /// Outgoing influence edges `(target, weight)`.
        influences: Vec<(String, f64)>,
        /// Incoming influence edges `(source, weight)`.
        influenced_by: Vec<(String, f64)>,
        /// Optional rely-guarantee contract the FCM arrives with; its
        /// `fcm` field always equals `name` (the wire form omits it).
        contract: Option<Contract>,
    },
    /// Remove an FCM and every incident edge.
    RemoveFcm {
        /// Name of the FCM to remove.
        name: String,
    },
    /// Update attributes of an existing FCM (absent fields unchanged;
    /// `timing: null` clears the timing constraint).
    SetAttr {
        /// Name of the FCM to update.
        name: String,
        /// New criticality, when present.
        criticality: Option<u32>,
        /// New throughput, when present.
        throughput: Option<f64>,
        /// `Some(None)` clears timing, `Some(Some(t))` replaces it.
        timing: Option<Option<(u64, u64, u64)>>,
    },
    /// Mark a HW node failed and re-place its FCMs on the survivors.
    FailNode {
        /// HW node name, e.g. `"hw2"`.
        node: String,
    },
    /// Bring a failed HW node back and re-place unhosted FCMs.
    RestoreNode {
        /// HW node name.
        node: String,
    },
}

impl Mutation {
    /// The wire/journal `op` tag.
    #[must_use]
    pub fn op(&self) -> &'static str {
        match self {
            Mutation::AddFcm { .. } => "add_fcm",
            Mutation::RemoveFcm { .. } => "remove_fcm",
            Mutation::SetAttr { .. } => "set_attr",
            Mutation::FailNode { .. } => "fail_node",
            Mutation::RestoreNode { .. } => "restore_node",
        }
    }
}

/// A read-only request, answered under the shared read lock.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// Direct + transitive influence between two FCMs.
    Influence {
        /// Source FCM name.
        from: String,
        /// Target FCM name.
        to: String,
        /// Walk-series order.
        order: usize,
    },
    /// Eq. 3 separation between two FCMs.
    Separation {
        /// Source FCM name.
        from: String,
        /// Target FCM name.
        to: String,
        /// Walk-series order.
        order: usize,
    },
    /// Run the `fcm-check` rule catalog over the live model.
    Check,
    /// The compositional certification state: the contract-derived
    /// system bound, the C017–C022 findings, and the incremental
    /// certifier's dirty/reused split from the last re-certification.
    Certify,
    /// Would this hypothetical load be admitted on a HW node?
    Admit {
        /// HW node name.
        node: String,
        /// Optional timing triple of the candidate.
        timing: Option<(u64, u64, u64)>,
        /// Throughput of the candidate.
        throughput: f64,
    },
    /// Failover proposal for a HW node, via `fcm_alloc::failover::remap`
    /// — computed, not applied.
    ProposePlacement {
        /// HW node name.
        node: String,
    },
    /// Counters: model size, seq, full-condense count, failed nodes.
    Stats,
    /// Live `fcm-obs` metrics snapshot (counters/gauges/histograms)
    /// plus the rolling-window SLO block — answered at the server
    /// layer, never by the model (telemetry stays output-only).
    Metrics,
    /// FCM and HW node names.
    List,
    /// The full canonical model state (the byte-compare payload).
    Dump,
    /// Force a snapshot now.
    Snapshot,
    /// Liveness probe.
    Ping,
}

/// Options for a `subscribe` request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SubscribeOpts {
    /// Deliver exactly this many events, then an `"event":"end"` line,
    /// then unsubscribe (`None` = stream until the session closes).
    /// Golden transcripts use this for a deterministic cut-off.
    pub max_events: Option<u64>,
    /// Per-subscriber queue bound override (overwrite-oldest past it).
    pub queue: Option<usize>,
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Routed to the writer thread.
    Mutation(Mutation),
    /// Answered in-place under the read lock.
    Query(Query),
    /// Upgrade this session to a live event stream.
    Subscribe(SubscribeOpts),
}

fn str_field(j: &Json, key: &str) -> Result<String, String> {
    j.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string field \"{key}\""))
}

fn f64_field(j: &Json, key: &str, default: f64) -> Result<f64, String> {
    match j.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_f64()
            .filter(|x| x.is_finite())
            .ok_or_else(|| format!("field \"{key}\" must be a finite number")),
    }
}

fn uint_field(j: &Json, key: &str, default: u64) -> Result<u64, String> {
    match j.get(key) {
        None => Ok(default),
        Some(v) => as_uint(v).ok_or_else(|| format!("field \"{key}\" must be a non-negative integer")),
    }
}

fn as_uint(v: &Json) -> Option<u64> {
    let x = v.as_f64()?;
    (x.is_finite() && x >= 0.0 && x.fract() == 0.0 && x < 9.0e15).then_some(x as u64)
}

fn timing_triple(v: &Json) -> Result<(u64, u64, u64), String> {
    let arr = v
        .as_array()
        .filter(|a| a.len() == 3)
        .ok_or_else(|| "\"timing\" must be [est, tcd, ct] or null".to_string())?;
    let mut t = [0u64; 3];
    for (slot, item) in t.iter_mut().zip(arr) {
        *slot = as_uint(item).ok_or_else(|| "\"timing\" entries must be integers".to_string())?;
    }
    Ok((t[0], t[1], t[2]))
}

/// A `set_attr` timing patch: outer `None` = field absent (leave as
/// is), inner `None` = explicit `null` (clear the constraint).
type TimingPatch = Option<Option<(u64, u64, u64)>>;

/// `"timing"` absent → `Ok(None)`; `null` or a triple → `Ok(Some(…))`
/// mapped through `wrap`.
fn opt_timing(j: &Json) -> Result<TimingPatch, String> {
    match j.get("timing") {
        None => Ok(None),
        Some(Json::Null) => Ok(Some(None)),
        Some(v) => Ok(Some(Some(timing_triple(v)?))),
    }
}

fn edge_pairs(j: &Json, key: &str) -> Result<Vec<(String, f64)>, String> {
    let Some(v) = j.get(key) else {
        return Ok(Vec::new());
    };
    let arr = v
        .as_array()
        .ok_or_else(|| format!("field \"{key}\" must be an array of [name, weight] pairs"))?;
    let mut out = Vec::with_capacity(arr.len());
    for pair in arr {
        let p = pair
            .as_array()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| format!("\"{key}\" entries must be [name, weight] pairs"))?;
        let name = p[0]
            .as_str()
            .ok_or_else(|| format!("\"{key}\" entry name must be a string"))?;
        let w = p[1]
            .as_f64()
            .filter(|x| x.is_finite())
            .ok_or_else(|| format!("\"{key}\" entry weight must be a finite number"))?;
        out.push((name.to_string(), w));
    }
    Ok(out)
}

/// `"contract"` on an `add_fcm`: absent → `None`; an object → parsed as
/// a [`Contract`] with its `fcm` field forced to the mutation's
/// `"name"` (the wire form never repeats it).
fn contract_field(j: &Json) -> Result<Option<Contract>, String> {
    let Some(doc) = j.get("contract") else {
        return Ok(None);
    };
    if !matches!(doc, Json::Obj(_)) {
        return Err("field \"contract\" must be an object".to_string());
    }
    let name = j.get("name").and_then(Json::as_str).unwrap_or_default();
    let c = Contract::from_json(&doc.clone().set("fcm", name))?;
    Ok(Some(c))
}

/// Wire form of an embedded contract: [`Contract::to_json`] without the
/// redundant `"fcm"` (the mutation's `"name"` supplies it on parse).
fn contract_json(c: &Contract) -> Json {
    match c.to_json() {
        Json::Obj(mut m) => {
            m.remove("fcm");
            Json::Obj(m)
        }
        other => other,
    }
}

/// Parses one request line: the echoed `"id"` (if any — recovered even
/// from otherwise-invalid requests) plus the request or a parse error.
pub fn parse_line(line: &str) -> (Option<Json>, Result<Request, String>) {
    let j = match Json::parse(line) {
        Ok(j) => j,
        Err(e) => return (None, Err(format!("parse: {e}"))),
    };
    if !matches!(j, Json::Obj(_)) {
        return (None, Err("request must be a JSON object".to_string()));
    }
    let id = j.get("id").cloned();
    (id, parse_request(&j))
}

fn parse_request(j: &Json) -> Result<Request, String> {
    let op = j
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| "missing or non-string field \"op\"".to_string())?;
    let req = match op {
        "add_fcm" => Request::Mutation(Mutation::AddFcm {
            name: str_field(j, "name")?,
            criticality: u32::try_from(uint_field(j, "criticality", 0)?)
                .map_err(|_| "\"criticality\" out of range".to_string())?,
            throughput: f64_field(j, "throughput", 0.0)?,
            security: u8::try_from(uint_field(j, "security", 0)?)
                .map_err(|_| "\"security\" out of range".to_string())?,
            timing: opt_timing(j)?.flatten(),
            influences: edge_pairs(j, "influences")?,
            influenced_by: edge_pairs(j, "influenced_by")?,
            contract: contract_field(j)?,
        }),
        "remove_fcm" => Request::Mutation(Mutation::RemoveFcm {
            name: str_field(j, "name")?,
        }),
        "set_attr" => Request::Mutation(Mutation::SetAttr {
            name: str_field(j, "name")?,
            criticality: match j.get("criticality") {
                None => None,
                Some(_) => Some(
                    u32::try_from(uint_field(j, "criticality", 0)?)
                        .map_err(|_| "\"criticality\" out of range".to_string())?,
                ),
            },
            throughput: match j.get("throughput") {
                None => None,
                Some(_) => Some(f64_field(j, "throughput", 0.0)?),
            },
            timing: opt_timing(j)?,
        }),
        "fail_node" => Request::Mutation(Mutation::FailNode {
            node: str_field(j, "node")?,
        }),
        "restore_node" => Request::Mutation(Mutation::RestoreNode {
            node: str_field(j, "node")?,
        }),
        "influence" | "separation" => {
            let from = str_field(j, "from")?;
            let to = str_field(j, "to")?;
            let order = uint_field(j, "order", DEFAULT_ORDER as u64)? as usize;
            if order == 0 || order > 64 {
                return Err("\"order\" must be in 1..=64".to_string());
            }
            Request::Query(if op == "influence" {
                Query::Influence { from, to, order }
            } else {
                Query::Separation { from, to, order }
            })
        }
        "check" => Request::Query(Query::Check),
        "certify" => Request::Query(Query::Certify),
        "admit" => Request::Query(Query::Admit {
            node: str_field(j, "node")?,
            timing: opt_timing(j)?.flatten(),
            throughput: f64_field(j, "throughput", 0.0)?,
        }),
        "propose_placement" => Request::Query(Query::ProposePlacement {
            node: str_field(j, "node")?,
        }),
        "stats" => Request::Query(Query::Stats),
        "metrics" => Request::Query(Query::Metrics),
        "subscribe" => {
            let max_events = match j.get("max_events") {
                None => None,
                Some(v) => Some(
                    as_uint(v)
                        .filter(|&n| n > 0)
                        .ok_or_else(|| "\"max_events\" must be a positive integer".to_string())?,
                ),
            };
            let queue = match j.get("queue") {
                None => None,
                Some(v) => Some(
                    as_uint(v)
                        .filter(|&n| n > 0 && n <= 1 << 20)
                        .ok_or_else(|| "\"queue\" must be in 1..=1048576".to_string())?
                        as usize,
                ),
            };
            Request::Subscribe(SubscribeOpts { max_events, queue })
        }
        "list" => Request::Query(Query::List),
        "dump" => Request::Query(Query::Dump),
        "snapshot" => Request::Query(Query::Snapshot),
        "ping" => Request::Query(Query::Ping),
        other => return Err(format!("unknown op \"{other}\"")),
    };
    Ok(req)
}

/// Parses a mutation from its canonical JSON (the journal format).
///
/// # Errors
///
/// A malformed object, or a JSON that parses to a query.
pub fn mutation_from_json(j: &Json) -> Result<Mutation, String> {
    match parse_request(j)? {
        Request::Mutation(m) => Ok(m),
        Request::Query(_) | Request::Subscribe(_) => {
            Err("journal entry is not a mutation".to_string())
        }
    }
}

fn timing_json(t: Option<(u64, u64, u64)>) -> Json {
    match t {
        Some((e, d, c)) => Json::array([Json::from(e), Json::from(d), Json::from(c)]),
        None => Json::Null,
    }
}

fn pairs_json(pairs: &[(String, f64)]) -> Json {
    Json::array(
        pairs
            .iter()
            .map(|(n, w)| Json::array([Json::from(n.as_str()), Json::from(*w)])),
    )
}

/// Canonical JSON for a mutation — the journal format and the
/// round-trip normal form (parse∘render is the identity).
#[must_use]
pub fn mutation_to_json(m: &Mutation) -> Json {
    let base = Json::object().set("op", m.op());
    match m {
        Mutation::AddFcm {
            name,
            criticality,
            throughput,
            security,
            timing,
            influences,
            influenced_by,
            contract,
        } => {
            let mut j = base
                .set("criticality", *criticality)
                .set("influenced_by", pairs_json(influenced_by))
                .set("influences", pairs_json(influences))
                .set("name", name.as_str())
                .set("security", u64::from(*security))
                .set("throughput", *throughput)
                .set("timing", timing_json(*timing));
            if let Some(c) = contract {
                j = j.set("contract", contract_json(c));
            }
            j
        }
        Mutation::RemoveFcm { name } => base.set("name", name.as_str()),
        Mutation::SetAttr {
            name,
            criticality,
            throughput,
            timing,
        } => {
            let mut j = base.set("name", name.as_str());
            if let Some(c) = criticality {
                j = j.set("criticality", *c);
            }
            if let Some(t) = throughput {
                j = j.set("throughput", *t);
            }
            if let Some(t) = timing {
                j = j.set("timing", timing_json(*t));
            }
            j
        }
        Mutation::FailNode { node } | Mutation::RestoreNode { node } => {
            base.set("node", node.as_str())
        }
    }
}

/// Renders one response line (newline-terminated): `payload` fields plus
/// `"ok"`, or `"ok": false` with the error; the request `"id"` is echoed
/// when present.
#[must_use]
pub fn render_response(id: Option<&Json>, result: &Result<Json, String>) -> String {
    let mut obj = match result {
        Ok(payload) => payload.clone().set("ok", true),
        Err(e) => {
            // Convention: errors beginning with the `degraded:` marker
            // come from the read-only degraded mode (journal failure);
            // clients get a machine-checkable `"degraded": true` field
            // so they can distinguish "retry later" from "bad request".
            let mut obj = Json::object().set("error", e.as_str()).set("ok", false);
            if e.starts_with("degraded:") {
                obj = obj.set("degraded", true);
            }
            obj
        }
    };
    if let Some(id) = id {
        obj = obj.set("id", id.clone());
    }
    let mut line = obj.to_string_compact();
    line.push('\n');
    line
}

/// The hello line sent on connect.
#[must_use]
pub fn hello(model: &str, fcms: usize, hw: usize, seq: u64) -> String {
    let mut line = Json::object()
        .set("fcms", fcms as u64)
        .set("hw", hw as u64)
        .set("model", model)
        .set("schema", SCHEMA)
        .set("seq", seq)
        .to_string_compact();
    line.push('\n');
    line
}
