//! The daemon: socket accept loop, per-connection reader threads, and
//! the single writer thread that serializes mutations.
//!
//! # Threading model
//!
//! * The model lives in one `RwLock<LiveModel>`. **Queries** take the
//!   read lock only while computing the answer (microseconds — all
//!   socket I/O happens outside the lock), so a connection pool reads
//!   mostly in parallel.
//! * **Mutations** are forwarded over a channel to the one writer
//!   thread, which applies under the write lock, appends the journal,
//!   and only then replies — *applied → journaled → acknowledged*. A
//!   torn model is impossible: readers see the state before or after a
//!   mutation, never mid-apply. Consecutive mutations on one session
//!   pipeline to the writer and their in-order replies flush as a
//!   batch, so the per-mutation cost is one apply, not two context
//!   switches (see [`serve_client`]).
//! * Every `snapshot_every` accepted mutations (and once more at
//!   shutdown) the writer snapshots the state off the read lock.
//!
//! Bounded latency follows from the lock discipline: a query waits for
//! at most one in-flight `apply` (incremental Eq. 4: O(n) row/column
//! work, not O(n³) recondense) plus its own O(n·order) walk — never for
//! journal or snapshot I/O, which the writer performs outside the write
//! lock.
//!
//! # Degraded mode
//!
//! A journal-append failure no longer kills the writer. Instead the
//! daemon rolls the model back to the durable prefix on disk (the
//! failed mutation was never acknowledged) and enters an explicit
//! **read-only degraded mode**: every mutation is rejected with a
//! structured `degraded:` error (rendered with `"degraded": true`),
//! queries keep serving from the rolled-back state, and seeded
//! bounded-exponential-backoff probes (`Store::probe`) try to re-arm
//! durability. The writer queue is bounded ([`ServerConfig::queue_bound`]),
//! so a stalled disk back-pressures producers instead of growing an
//! unbounded backlog. The armed → degraded → re-arming state machine is
//! specified in DESIGN.md §10 and surfaced in `stats` (`degraded`,
//! `degraded_transitions`, `faults_injected`, `rearm_attempts`).
//!
//! Instrumented via `fcm-obs`: `serve.apply_ns`, `serve.query_ns`,
//! `serve.snapshot_ns` histograms and `serve.mutations`/`serve.queries`
//! counters — plus `serve.faults_injected`, `serve.degraded_transitions`
//! and `serve.rearm_attempts` for the fault path — so `obsview` works on
//! a server run.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fcm_obs::RollingHist;
use fcm_substrate::fault::{FaultInjector, FaultPlan};
use fcm_substrate::{Json, Rng};

use crate::events::{EventBus, PopBatch, Subscriber, DEFAULT_SUB_QUEUE};
use crate::model::LiveModel;
use crate::proto::{self, Query, Request};
use crate::store::{self, Recovered, Store};

/// Where the daemon listens (or a client connects).
#[derive(Debug, Clone)]
pub enum Listen {
    /// Unix-domain socket at this path.
    Unix(PathBuf),
    /// TCP at this `host:port` (port 0 = ephemeral; see [`Handle::addr`]).
    Tcp(String),
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Socket to listen on.
    pub listen: Listen,
    /// Model name (`paper` / `avionics`).
    pub model: String,
    /// State directory for snapshot + journal; `None` = no durability.
    pub state_dir: Option<PathBuf>,
    /// Recover from the state directory instead of truncating it.
    pub resume: bool,
    /// Snapshot period in accepted mutations (0 = only at shutdown).
    pub snapshot_every: u64,
    /// Writer-queue bound: producers block (back-pressure) once this
    /// many messages are in flight to the writer thread.
    pub queue_bound: usize,
    /// Fault plan for the durability path ([`FaultPlan::none`] in
    /// production — the injector is then a single passive bool load).
    pub fault: FaultPlan,
    /// Base delay (ms) for the seeded exponential-backoff re-arm probes
    /// issued while degraded.
    pub rearm_base_ms: u64,
    /// Default per-subscriber event-queue bound (a `subscribe` request
    /// may lower or raise its own with `"queue"`); past it the oldest
    /// queued event is overwritten and counted in `"dropped"`.
    pub sub_queue: usize,
    /// Publish a `stats` heartbeat event every this many accepted
    /// mutations (0 = no heartbeats). Count-based, so heartbeat
    /// positions in a deterministic mutation stream are deterministic.
    pub heartbeat_every: u64,
    /// Samples per rolling SLO window for the per-op latency
    /// histograms behind the `stats` `"slo"` fields.
    pub slo_window: u64,
}

impl ServerConfig {
    /// A config with production defaults: no durability, no fault
    /// injection, queue bound 4096, re-arm base 100 ms.
    #[must_use]
    pub fn new(listen: Listen, model: &str) -> ServerConfig {
        ServerConfig {
            listen,
            model: model.to_string(),
            state_dir: None,
            resume: false,
            snapshot_every: 0,
            queue_bound: 4096,
            fault: FaultPlan::none(),
            rearm_base_ms: 100,
            sub_queue: DEFAULT_SUB_QUEUE,
            heartbeat_every: 256,
            slo_window: 4096,
        }
    }
}

/// Shared durability status: the armed/degraded flag plus the
/// transition and re-arm counters surfaced in `stats`.
#[derive(Debug, Default)]
pub struct ServeStatus {
    degraded: AtomicBool,
    transitions: AtomicU64,
    rearm_attempts: AtomicU64,
}

impl ServeStatus {
    /// Whether the daemon is currently read-only degraded.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Total armed → degraded transitions.
    #[must_use]
    pub fn transitions(&self) -> u64 {
        self.transitions.load(Ordering::Relaxed)
    }

    /// Total re-arm probes attempted.
    #[must_use]
    pub fn rearm_attempts(&self) -> u64 {
        self.rearm_attempts.load(Ordering::Relaxed)
    }

    fn enter_degraded(&self) {
        if !self.degraded.swap(true, Ordering::Relaxed) {
            self.transitions.fetch_add(1, Ordering::Relaxed);
            fcm_obs::counter_add("serve.degraded_transitions", 1);
        }
    }

    fn leave_degraded(&self) {
        self.degraded.store(false, Ordering::Relaxed);
    }

    fn note_rearm_attempt(&self) {
        self.rearm_attempts.fetch_add(1, Ordering::Relaxed);
        fcm_obs::counter_add("serve.rearm_attempts", 1);
    }
}

/// Rolling-window per-op latency state behind the `stats` `"slo"`
/// fields: p50/p99 over the most recent *completed* window, not the
/// process lifetime. Windows rotate on sample counts, so a golden
/// session that never fills one renders `"slo":null` deterministically.
struct SloWindows {
    apply: RollingHist,
    query: RollingHist,
}

impl SloWindows {
    fn new(window: u64) -> SloWindows {
        SloWindows {
            apply: RollingHist::new(window, 8),
            query: RollingHist::new(window, 8),
        }
    }
}

/// Renders the SLO block: `null` until some window has completed, else
/// per-op `count`/`p50_ns`/`p99_ns` from the last completed window.
fn slo_json(slo: &Mutex<SloWindows>) -> Json {
    let s = slo.lock().expect("slo lock");
    let part = |r: &RollingHist| {
        r.last_window().map(|w| {
            Json::object()
                .set("count", w.count())
                .set("p50_ns", w.quantile(0.5).unwrap_or(0))
                .set("p99_ns", w.quantile(0.99).unwrap_or(0))
        })
    };
    match (part(&s.apply), part(&s.query)) {
        (None, None) => Json::Null,
        (a, q) => {
            let mut j = Json::object().set("window", s.apply.window_every());
            if let Some(a) = a {
                j = j.set("apply", a);
            }
            if let Some(q) = q {
                j = j.set("query", q);
            }
            j
        }
    }
}

/// Per-connection server context shared by every session thread.
struct Shared {
    model: Arc<RwLock<LiveModel>>,
    status: Arc<ServeStatus>,
    injector: Arc<FaultInjector>,
    bus: Arc<EventBus>,
    slo: Arc<Mutex<SloWindows>>,
    sub_queue: usize,
}

/// A bidirectional client/server stream over either transport.
pub(crate) enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    pub(crate) fn try_clone(&self) -> std::io::Result<Stream> {
        match self {
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
        }
    }

    pub(crate) fn shutdown(&self) {
        let _ = match self {
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }

    fn set_nonblocking(&self, on: bool) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_nonblocking(on),
            Stream::Unix(s) => s.set_nonblocking(on),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// Connects to a listening daemon (the `servegen` client side).
pub(crate) fn connect(target: &Listen) -> Result<Stream, String> {
    match target {
        Listen::Unix(path) => UnixStream::connect(path)
            .map(Stream::Unix)
            .map_err(|e| format!("connect {}: {e}", path.display())),
        Listen::Tcp(addr) => TcpStream::connect(addr)
            .map(|s| {
                // Request/response over one connection: Nagle + delayed
                // ACK would add ~40 ms per round-trip.
                let _ = s.set_nodelay(true);
                Stream::Tcp(s)
            })
            .map_err(|e| format!("connect {addr}: {e}")),
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl Listener {
    fn accept(&self) -> std::io::Result<Stream> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| {
                let _ = s.set_nodelay(true);
                Stream::Tcp(s)
            }),
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
        }
    }

    fn set_nonblocking(&self, on: bool) -> std::io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(on),
            Listener::Unix(l) => l.set_nonblocking(on),
        }
    }
}

enum WriterMsg {
    Apply {
        mutation: crate::proto::Mutation,
        reply: mpsc::Sender<Result<Json, String>>,
    },
    Snapshot {
        reply: mpsc::Sender<Result<Json, String>>,
    },
}

struct ClientSlot {
    stream: Stream,
    thread: JoinHandle<()>,
}

/// A running daemon; dropping it (or calling [`Handle::stop`]) drains
/// clients, flushes the final snapshot, and joins every thread.
pub struct Handle {
    stop: Arc<AtomicBool>,
    addr: String,
    unix_path: Option<PathBuf>,
    clients: Arc<Mutex<Vec<ClientSlot>>>,
    accept_thread: Option<JoinHandle<()>>,
    writer_tx: Option<mpsc::SyncSender<WriterMsg>>,
    writer_thread: Option<JoinHandle<Result<(), String>>>,
    model: Arc<RwLock<LiveModel>>,
    status: Arc<ServeStatus>,
    injector: Arc<FaultInjector>,
}

impl Handle {
    /// The bound address: `host:port` for TCP (with the real ephemeral
    /// port), the socket path for Unix.
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Current journal cursor (accepted mutations).
    #[must_use]
    pub fn seq(&self) -> u64 {
        self.model.read().expect("model lock").seq()
    }

    /// The degradation status shared with the writer thread.
    #[must_use]
    pub fn status(&self) -> &Arc<ServeStatus> {
        &self.status
    }

    /// The fault injector the durability path consults.
    #[must_use]
    pub fn injector(&self) -> &Arc<FaultInjector> {
        &self.injector
    }

    /// Stops accepting, drains clients, writes the final snapshot, and
    /// joins all threads.
    ///
    /// # Errors
    ///
    /// A journal/snapshot write failure observed by the writer thread.
    pub fn stop(mut self) -> Result<(), String> {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> Result<(), String> {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Shut the sockets down to unblock reader threads mid-`read`.
        let slots: Vec<ClientSlot> = std::mem::take(&mut *self.clients.lock().expect("clients lock"));
        for slot in &slots {
            slot.stream.shutdown();
        }
        for slot in slots {
            let _ = slot.thread.join();
        }
        // All client-held writer senders are gone; dropping ours ends
        // the writer loop, which flushes the final snapshot.
        drop(self.writer_tx.take());
        let result = self
            .writer_thread
            .take()
            .map_or(Ok(()), |t| t.join().map_err(|_| "writer thread panicked".to_string())?);
        if let Some(path) = self.unix_path.take() {
            let _ = std::fs::remove_file(path);
        }
        result
    }
}

impl Drop for Handle {
    fn drop(&mut self) {
        let _ = self.shutdown_inner();
    }
}

/// Rebuilds a model from recovered durable state: snapshot (or a fresh
/// model when none) plus journal-suffix replay with seq-drift checks.
/// Shared by `--resume` startup and the degraded-mode rollback.
fn recover_model(name: &str, recovered: &Recovered) -> Result<LiveModel, String> {
    let mut model = match &recovered.snapshot {
        Some((state, _)) => LiveModel::from_state(state)?,
        None => LiveModel::new(name)?,
    };
    if model.name() != name {
        return Err(format!(
            "state dir holds model \"{}\" but \"{}\" was requested",
            model.name(),
            name
        ));
    }
    for (seq, m) in &recovered.replay {
        model
            .apply(m)
            .map_err(|e| format!("journal replay seq {seq} rejected: {e}"))?;
        if model.seq() != *seq {
            return Err(format!(
                "journal replay drift: expected seq {seq}, model at {}",
                model.seq()
            ));
        }
    }
    Ok(model)
}

/// Builds the model per config: fresh, or recovered from the state
/// directory (snapshot + journal-suffix replay).
fn build_model(
    config: &ServerConfig,
    inj: &Arc<FaultInjector>,
) -> Result<(LiveModel, Option<Store>), String> {
    match (&config.state_dir, config.resume) {
        (None, _) => Ok((LiveModel::new(&config.model)?, None)),
        (Some(dir), false) => Ok((
            LiveModel::new(&config.model)?,
            Some(Store::create_fresh_with(dir, Arc::clone(inj))?),
        )),
        (Some(dir), true) => {
            let (store, recovered) = Store::open_resume_with(dir, Arc::clone(inj))?;
            let model = recover_model(&config.model, &recovered)?;
            Ok((model, Some(store)))
        }
    }
}

/// Starts the daemon and returns its handle.
///
/// # Errors
///
/// Model construction/recovery failure, or a bind failure on the
/// requested socket (both exit-code-2 class for the bin).
pub fn start(config: ServerConfig) -> Result<Handle, String> {
    let injector = Arc::new(FaultInjector::new(&config.fault));
    let status = Arc::new(ServeStatus::default());
    let (model, store) = build_model(&config, &injector)?;
    let model = Arc::new(RwLock::new(model));

    let (listener, addr, unix_path) = match &config.listen {
        Listen::Unix(path) => {
            if path.exists() {
                std::fs::remove_file(path)
                    .map_err(|e| format!("remove stale socket {}: {e}", path.display()))?;
            }
            let l = UnixListener::bind(path)
                .map_err(|e| format!("bind {}: {e}", path.display()))?;
            (
                Listener::Unix(l),
                path.display().to_string(),
                Some(path.clone()),
            )
        }
        Listen::Tcp(spec) => {
            let l = TcpListener::bind(spec).map_err(|e| format!("bind {spec}: {e}"))?;
            let real = l
                .local_addr()
                .map_err(|e| format!("local_addr: {e}"))?
                .to_string();
            (Listener::Tcp(l), real, None)
        }
    };
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("set_nonblocking: {e}"))?;

    let stop = Arc::new(AtomicBool::new(false));
    let clients: Arc<Mutex<Vec<ClientSlot>>> = Arc::new(Mutex::new(Vec::new()));
    let (writer_tx, writer_rx) = mpsc::sync_channel::<WriterMsg>(config.queue_bound.max(1));
    let bus = Arc::new(EventBus::new());
    let slo = Arc::new(Mutex::new(SloWindows::new(config.slo_window)));
    let shared = Arc::new(Shared {
        model: Arc::clone(&model),
        status: Arc::clone(&status),
        injector: Arc::clone(&injector),
        bus: Arc::clone(&bus),
        slo: Arc::clone(&slo),
        sub_queue: config.sub_queue.max(1),
    });

    let writer_thread = {
        let model = Arc::clone(&model);
        let ctx = WriterCtx {
            store,
            status: Arc::clone(&status),
            model_name: config.model.clone(),
            snapshot_every: config.snapshot_every,
            rearm_base_ms: config.rearm_base_ms,
            rng: Rng::seed_from_u64(0xfa57_a4e1),
            rearm_failures: 0,
            next_probe_at: None,
            bus,
            slo,
            heartbeat_every: config.heartbeat_every,
            accepted: 0,
        };
        std::thread::spawn(move || writer_loop(&model, &writer_rx, ctx))
    };

    let accept_thread = {
        let stop = Arc::clone(&stop);
        let clients = Arc::clone(&clients);
        let writer_tx = writer_tx.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok(stream) => {
                        let Ok(reader_half) = stream.try_clone() else {
                            continue;
                        };
                        let shared = Arc::clone(&shared);
                        let tx = writer_tx.clone();
                        let thread = std::thread::spawn(move || {
                            serve_client(reader_half, &shared, &tx);
                        });
                        clients
                            .lock()
                            .expect("clients lock")
                            .push(ClientSlot { stream, thread });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        })
    };

    Ok(Handle {
        stop,
        addr,
        unix_path,
        clients,
        accept_thread: Some(accept_thread),
        writer_tx: Some(writer_tx),
        writer_thread: Some(writer_thread),
        model,
        status,
        injector,
    })
}

/// The mutation-reject message while degraded; starts with the
/// `degraded:` marker [`proto::render_response`] turns into a
/// structured `"degraded": true` field.
const DEGRADED_REJECT: &str = "degraded: journal unavailable, serving read-only";

/// Writer-thread state: the store, the shared status, and the re-arm
/// schedule.
struct WriterCtx {
    store: Option<Store>,
    status: Arc<ServeStatus>,
    model_name: String,
    snapshot_every: u64,
    rearm_base_ms: u64,
    /// Seeded jitter source for the re-arm backoff — deterministic per
    /// process, never wall-clock seeded.
    rng: Rng,
    /// Consecutive failed probes since entering degraded (backoff
    /// exponent).
    rearm_failures: u32,
    /// When the next re-arm probe may run; `None` while armed.
    next_probe_at: Option<Instant>,
    /// Event bus published from this thread's serialization point.
    bus: Arc<EventBus>,
    /// Rolling apply/query latency windows behind the `stats` SLO block.
    slo: Arc<Mutex<SloWindows>>,
    /// Publish a `stats` heartbeat event every this many accepted
    /// mutations (0 = never).
    heartbeat_every: u64,
    /// Accepted mutations so far (drives the heartbeat cadence).
    accepted: u64,
}

impl WriterCtx {
    /// Bounded-exponential backoff with seeded jitter:
    /// `base · 2^min(failures,6) · U(0.5,1.5)`, capped at 10 s.
    fn backoff(&mut self) -> Duration {
        let exp = (1u64 << self.rearm_failures.min(6)) as f64;
        let jitter = 0.5 + self.rng.gen_f64();
        let ms = (self.rearm_base_ms.max(1) as f64 * exp * jitter).min(10_000.0);
        Duration::from_millis(ms as u64)
    }

    /// Armed → degraded: roll the model back to the durable prefix on
    /// disk (the mutation whose append failed was never acknowledged),
    /// flag the status, and schedule the first re-arm probe.
    fn enter_degraded(&mut self, model: &RwLock<LiveModel>) {
        if let Some(s) = self.store.as_ref() {
            // Best-effort: if even reading the durable state fails the
            // in-memory model stays as-is (still consistent, possibly
            // one unacknowledged mutation ahead of the journal).
            if let Ok(rolled) =
                store::read_recovered(s.dir()).and_then(|rec| recover_model(&self.model_name, &rec))
            {
                *model.write().expect("model lock") = rolled;
            }
        }
        self.status.enter_degraded();
        self.bus.publish(
            "degraded",
            Json::object()
                .set("transitions", self.status.transitions())
                .set("seq", model.read().expect("model lock").seq()),
        );
        // A degraded transition is exactly the moment a post-mortem
        // wants the recent history: flush the flight recorder now,
        // while the events that led here are still in the ring.
        let _ = fcm_obs::recorder::auto_dump("degraded");
        self.rearm_failures = 0;
        let delay = self.backoff();
        self.next_probe_at = Some(Instant::now() + delay);
    }

    /// One re-arm step while degraded: if the probe window has arrived,
    /// probe the journal; on success repair + re-open happened inside
    /// [`Store::probe`] and the daemon is armed again. Returns whether
    /// the daemon is now armed.
    fn try_rearm(&mut self) -> bool {
        let Some(at) = self.next_probe_at else {
            return false;
        };
        if Instant::now() < at {
            return false;
        }
        let Some(s) = self.store.as_mut() else {
            return false;
        };
        self.status.note_rearm_attempt();
        match s.probe() {
            Ok(()) => {
                self.status.leave_degraded();
                self.rearm_failures = 0;
                self.next_probe_at = None;
                self.bus.publish(
                    "rearm",
                    Json::object()
                        .set("armed", true)
                        .set("attempts", self.status.rearm_attempts()),
                );
                true
            }
            Err(_) => {
                self.rearm_failures = self.rearm_failures.saturating_add(1);
                let delay = self.backoff();
                self.next_probe_at = Some(Instant::now() + delay);
                self.bus.publish(
                    "rearm",
                    Json::object()
                        .set("armed", false)
                        .set("attempts", self.status.rearm_attempts()),
                );
                false
            }
        }
    }
}

/// The writer loop: the only code path that mutates the model.
/// Ordering per mutation: apply (write lock) → journal append → reply.
/// On journal failure the loop degrades instead of dying (see the
/// module docs); while degraded it rejects mutations, probes for
/// re-arm, and keeps the read path untouched.
fn writer_loop(
    model: &RwLock<LiveModel>,
    rx: &mpsc::Receiver<WriterMsg>,
    mut ctx: WriterCtx,
) -> Result<(), String> {
    let mut since_snapshot: u64 = 0;
    // Events built during an apply, published only after the ack.
    let mut pending_events: Vec<(&'static str, Json)> = Vec::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            WriterMsg::Apply { mutation, reply } => {
                if ctx.status.is_degraded() && !ctx.try_rearm() {
                    let _ = reply.send(Err(DEGRADED_REJECT.to_string()));
                    continue;
                }
                // Snapshot repr/nnz around the apply only when someone
                // observes events — the brief is two loads, but even
                // that stays off the unobserved fast path.
                let observe = ctx.bus.has_consumers();
                let t0 = Instant::now();
                let (result, briefs) = {
                    let mut m = model.write().expect("model lock");
                    let before = observe.then(|| m.matrix_brief());
                    let result = m.apply(&mutation);
                    let after = observe.then(|| m.matrix_brief());
                    (result, before.zip(after))
                };
                let apply_ns = t0.elapsed().as_nanos() as u64;
                fcm_obs::hist_record("serve.apply_ns", apply_ns);
                fcm_obs::counter_add("serve.mutations", 1);
                ctx.slo.lock().expect("slo lock").apply.record(apply_ns);
                if result.is_ok() {
                    if let Some(s) = ctx.store.as_mut() {
                        let seq = model.read().expect("model lock").seq();
                        if let Err(e) = s.append(seq, &mutation) {
                            ctx.enter_degraded(model);
                            let _ = reply.send(Err(format!("degraded: {e}")));
                            continue;
                        }
                    }
                    since_snapshot += 1;
                    ctx.accepted += 1;
                    // Build event payloads now (the reply consumes
                    // `result`)…
                    if let (Ok(payload), Some(((repr_b, nnz_b), (repr_a, nnz_a)))) =
                        (&result, briefs)
                    {
                        #[allow(clippy::cast_precision_loss)]
                        let nnz_delta = nnz_a as f64 - nnz_b as f64;
                        pending_events.push((
                            "mutation",
                            payload
                                .clone()
                                .set("op", mutation.op())
                                .set("nnz_delta", nnz_delta),
                        ));
                        if repr_b != repr_a {
                            pending_events.push((
                                "repr_flip",
                                Json::object()
                                    .set("from", repr_b)
                                    .set("to", repr_a)
                                    .set("nnz", nnz_a),
                            ));
                        }
                    }
                    if ctx.heartbeat_every > 0
                        && ctx.accepted.is_multiple_of(ctx.heartbeat_every)
                        && ctx.bus.has_consumers()
                    {
                        // Count-based cadence: heartbeat positions in a
                        // deterministic mutation stream are themselves
                        // deterministic (the subscribe golden relies on
                        // this).
                        if let Ok(stats) =
                            model.read().expect("model lock").query(&Query::Stats)
                        {
                            pending_events.push(("stats", stats));
                        }
                    }
                }
                let _ = reply.send(result);
                // …and publish *after* the ack is on its way. The
                // `eseq` order is still assigned here, at the writer's
                // serialization point — subscribers observe exactly the
                // mutation order — but the streamer threads the publish
                // wakes no longer preempt the path between the apply
                // and the client's ack (on small machines that wakeup
                // preemption, not the publish itself, dominated
                // round-trip latency).
                for (name, detail) in pending_events.drain(..) {
                    ctx.bus.publish(name, detail);
                }
                if ctx.snapshot_every > 0 && since_snapshot >= ctx.snapshot_every {
                    // A failed periodic snapshot loses no acknowledged
                    // data (the journal has everything); stay armed and
                    // retry after the next interval.
                    let _ = write_snapshot(model, ctx.store.as_mut());
                    since_snapshot = 0;
                }
            }
            WriterMsg::Snapshot { reply } => {
                let result = if ctx.status.is_degraded() {
                    Err(DEGRADED_REJECT.to_string())
                } else {
                    since_snapshot = 0;
                    write_snapshot(model, ctx.store.as_mut()).map(|seq| match seq {
                        Some(seq) => Json::object().set("seq", seq).set("snapshotted", true),
                        None => Json::object().set("snapshotted", false),
                    })
                };
                let _ = reply.send(result);
            }
        }
    }
    // Channel closed: final snapshot before exit. In degraded mode the
    // snapshot is best-effort — SIGTERM while degraded still exits 0.
    match write_snapshot(model, ctx.store.as_mut()) {
        Ok(_) => Ok(()),
        Err(_) if ctx.status.is_degraded() => Ok(()),
        Err(e) => Err(e),
    }
}

fn write_snapshot(model: &RwLock<LiveModel>, store: Option<&mut Store>) -> Result<Option<u64>, String> {
    let Some(store) = store else {
        return Ok(None);
    };
    let t0 = Instant::now();
    let (seq, state) = {
        let m = model.read().expect("model lock");
        (m.seq(), m.state_json())
    };
    store.snapshot(seq, &state)?;
    fcm_obs::hist_record("serve.snapshot_ns", t0.elapsed().as_nanos() as u64);
    Ok(Some(seq))
}

/// In-flight pipelined mutations: request id plus the writer's reply
/// slot, in submission order (= response order).
type Pending = std::collections::VecDeque<(Option<Json>, mpsc::Receiver<Result<Json, String>>)>;

/// Writes one blob to the session's shared write half under its lock —
/// the same lock the subscription streamer threads take, so response
/// lines and event lines interleave only at line boundaries, never
/// mid-line.
fn write_locked(out: &Mutex<Stream>, bytes: &[u8]) -> bool {
    out.lock().expect("out lock").write_all(bytes).is_ok()
}

/// Awaits every in-flight mutation reply and writes the responses in
/// order (one syscall for the whole batch). Returns `false` when the
/// session is dead (writer gone or socket closed).
fn flush_pending(pending: &mut Pending, out: &Mutex<Stream>) -> bool {
    if pending.is_empty() {
        return true;
    }
    let mut batch = String::new();
    for (id, rx) in pending.drain(..) {
        let Ok(result) = rx.recv() else { return false };
        batch.push_str(&proto::render_response(id.as_ref(), &result));
    }
    write_locked(out, batch.as_bytes())
}

/// Drains one subscription onto the session's shared write half: pops
/// events (blocking), writes each rendered line, and — when the
/// subscription has a `max_events` cut-off — appends a final
/// `{"event":"end","delivered":…,"dropped":…}` line once the cut-off is
/// reached. Exits on write failure or subscription close, always
/// deregistering from the bus.
fn spawn_streamer(
    out: Arc<Mutex<Stream>>,
    sub: Arc<Subscriber>,
    bus: Arc<EventBus>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        // Batch bound: enough to drain a bursty queue in one write,
        // small enough to keep any one write (and the lock hold on the
        // shared half) bounded.
        const MAX_BATCH: u64 = 256;
        // Coalesce window: events wait up to this long so a busy
        // writer's burst is delivered as one write instead of one
        // wakeup+write per event (see `Subscriber::pop_batch`).
        const COALESCE: Duration = Duration::from_millis(2);
        loop {
            // Never overshoot a max_events cut-off mid-batch.
            let limit = match sub.max_events() {
                Some(m) => (m - sub.counts().0).min(MAX_BATCH),
                None => MAX_BATCH,
            };
            let PopBatch::Lines(lines, _) = sub.pop_batch(limit, COALESCE) else {
                break;
            };
            if !write_locked(&out, lines.as_bytes()) {
                break;
            }
            if sub.max_events().is_some_and(|m| sub.counts().0 >= m) {
                let (delivered, dropped) = sub.counts();
                let mut end = Json::object()
                    .set("event", "end")
                    .set("delivered", delivered)
                    .set("dropped", dropped)
                    .to_string_compact();
                end.push('\n');
                let _ = write_locked(&out, end.as_bytes());
                break;
            }
        }
        bus.unsubscribe(sub.id());
    })
}

/// Back-pressure bound: a session never holds more un-acknowledged
/// mutations than this before draining replies.
const MAX_PIPELINE: usize = 1024;

/// One connection: hello, then request/response lines until EOF. Parse
/// and I/O errors never kill the daemon — a malformed line gets a
/// structured error response and the loop continues.
///
/// Mutations *pipeline*: a run of consecutive mutation lines is
/// forwarded to the writer without waiting for individual replies, and
/// the in-order responses are flushed as a batch once the socket has no
/// more buffered input (or before any query, preserving
/// read-your-writes within the session). This amortizes the
/// conn-thread ↔ writer-thread handoff over the whole run instead of
/// paying two context switches per mutation.
/// Subscriptions add a second writer to the session socket: each
/// `subscribe` spawns a streamer thread that drains its bounded event
/// queue onto the same write half, so the half lives behind a `Mutex`
/// and every write (response batch or event line) is whole-line atomic.
/// The ack for a `subscribe` is written *before* its streamer spawns,
/// so the ack always precedes the first event line.
fn serve_client(mut stream: Stream, shared: &Shared, writer: &mpsc::SyncSender<WriterMsg>) {
    let Ok(out) = stream.try_clone() else {
        return;
    };
    let out = Arc::new(Mutex::new(out));
    {
        let m = shared.model.read().expect("model lock");
        let hello = proto::hello(m.name(), m.fcm_count(), m.hw_count(), m.seq());
        if !write_locked(&out, hello.as_bytes()) {
            return;
        }
    }
    let mut inbuf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    let mut pending = Pending::new();
    let mut subs: Vec<(Arc<Subscriber>, JoinHandle<()>)> = Vec::new();
    'session: loop {
        // Dispatch every complete line currently buffered.
        let mut start = 0usize;
        while let Some(pos) = inbuf[start..].iter().position(|&b| b == b'\n') {
            let end = start + pos;
            let line = String::from_utf8_lossy(&inbuf[start..end]).into_owned();
            start = end + 1;
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (id, parsed) = proto::parse_line(line);
            match parsed {
                Ok(Request::Mutation(m)) => {
                    let (tx, rx) = mpsc::channel();
                    if writer.send(WriterMsg::Apply { mutation: m, reply: tx }).is_err() {
                        break 'session;
                    }
                    pending.push_back((id, rx));
                    if pending.len() >= MAX_PIPELINE && !flush_pending(&mut pending, &out) {
                        break 'session;
                    }
                }
                Ok(Request::Subscribe(opts)) => {
                    // Settle mutations first so the subscription's
                    // `next_eseq` reflects everything this session
                    // already submitted.
                    if !flush_pending(&mut pending, &out) {
                        break 'session;
                    }
                    let capacity = opts.queue.unwrap_or(shared.sub_queue);
                    let (sub, next_eseq) = shared.bus.subscribe(capacity, opts.max_events);
                    let mut ack = Json::object()
                        .set("next_eseq", next_eseq)
                        .set("queue", capacity as u64)
                        .set("subscription", sub.id());
                    if let Some(m) = opts.max_events {
                        ack = ack.set("max_events", m);
                    }
                    let response = proto::render_response(id.as_ref(), &Ok(ack));
                    if !write_locked(&out, response.as_bytes()) {
                        shared.bus.unsubscribe(sub.id());
                        break 'session;
                    }
                    let streamer =
                        spawn_streamer(Arc::clone(&out), Arc::clone(&sub), Arc::clone(&shared.bus));
                    subs.push((sub, streamer));
                }
                parsed => {
                    // Order + read-your-writes: settle the pipelined
                    // mutations before answering anything else.
                    if !flush_pending(&mut pending, &out) {
                        break 'session;
                    }
                    let result = match parsed {
                        Err(e) => Err(e),
                        Ok(Request::Query(Query::Snapshot)) => {
                            let (tx, rx) = mpsc::channel();
                            if writer.send(WriterMsg::Snapshot { reply: tx }).is_err() {
                                break 'session;
                            }
                            match rx.recv() {
                                Ok(r) => r,
                                Err(_) => break 'session,
                            }
                        }
                        Ok(Request::Query(Query::Metrics)) => {
                            // Answered here, not in the model: the live
                            // counter/gauge/histogram registry plus the
                            // rolling SLO block — telemetry out, never in.
                            Ok(fcm_obs::metrics::snapshot()
                                .to_json()
                                .set("slo", slo_json(&shared.slo)))
                        }
                        Ok(Request::Query(q)) => {
                            let is_stats = matches!(q, Query::Stats);
                            let t0 = Instant::now();
                            let mut r = shared.model.read().expect("model lock").query(&q);
                            let query_ns = t0.elapsed().as_nanos() as u64;
                            fcm_obs::hist_record("serve.query_ns", query_ns);
                            fcm_obs::counter_add("serve.queries", 1);
                            shared.slo.lock().expect("slo lock").query.record(query_ns);
                            if is_stats {
                                // Durability status rides along in stats;
                                // Json objects are BTreeMaps, so key
                                // order stays canonical.
                                r = r.map(|j| {
                                    j.set("degraded", shared.status.is_degraded())
                                        .set("degraded_transitions", shared.status.transitions())
                                        .set("faults_injected", shared.injector.injected())
                                        .set("rearm_attempts", shared.status.rearm_attempts())
                                        .set("slo", slo_json(&shared.slo))
                                });
                            }
                            r
                        }
                        Ok(Request::Mutation(_) | Request::Subscribe(_)) => {
                            unreachable!("handled above")
                        }
                    };
                    let response = proto::render_response(id.as_ref(), &result);
                    if !write_locked(&out, response.as_bytes()) {
                        break 'session;
                    }
                }
            }
        }
        inbuf.drain(..start);
        // Refill. With replies pending, poll first: if the client has
        // nothing more queued, settle the batch before blocking (a
        // request/response client is waiting on those responses).
        if !pending.is_empty() {
            let _ = stream.set_nonblocking(true);
            let polled = stream.read(&mut chunk);
            let _ = stream.set_nonblocking(false);
            match polled {
                Ok(0) => break,
                Ok(n) => {
                    inbuf.extend_from_slice(&chunk[..n]);
                    continue;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if !flush_pending(&mut pending, &out) {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => inbuf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
    let _ = flush_pending(&mut pending, &out);
    // Session over: close this session's subscriptions and join their
    // streamers (each deregisters itself from the bus on exit).
    for (sub, _) in &subs {
        sub.close();
    }
    for (_, streamer) in subs {
        let _ = streamer.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::io::{BufRead, BufReader};

    fn send(
        out: &mut Stream,
        lines: &mut std::io::Lines<BufReader<Stream>>,
        req: &str,
    ) -> Json {
        out.write_all(req.as_bytes()).expect("write");
        out.write_all(b"\n").expect("write");
        let line = lines.next().expect("response").expect("read");
        Json::parse(&line).expect("valid response JSON")
    }

    fn open_session(addr: &str) -> (Stream, std::io::Lines<BufReader<Stream>>, Json) {
        let stream = connect(&Listen::Tcp(addr.to_string())).expect("connect");
        let out = stream.try_clone().expect("clone");
        let mut lines = BufReader::new(stream).lines();
        let hello = Json::parse(&lines.next().expect("hello").expect("read")).expect("hello JSON");
        (out, lines, hello)
    }

    #[test]
    fn end_to_end_session_over_tcp() {
        let handle = start(ServerConfig::new(Listen::Tcp("127.0.0.1:0".to_string()), "paper"))
        .expect("server starts");
        let (mut out, mut lines, hello) = open_session(handle.addr());
        assert_eq!(
            hello.get("schema").and_then(Json::as_str),
            Some(crate::proto::SCHEMA)
        );

        let r = send(&mut out, &mut lines, r#"{"op":"ping","id":7}"#);
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(r.get("id").and_then(Json::as_f64), Some(7.0));

        let r = send(
            &mut out,
            &mut lines,
            r#"{"op":"add_fcm","name":"tcp1","criticality":1,"influences":[["p8",0.25]]}"#,
        );
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r:?}");
        assert!(r.get("host").is_some());

        let r = send(
            &mut out,
            &mut lines,
            r#"{"op":"influence","from":"tcp1","to":"p8"}"#,
        );
        assert!(r.get("direct").and_then(Json::as_f64).unwrap() > 0.2);

        // Malformed line: structured error, session survives.
        let r = send(&mut out, &mut lines, "{nope");
        assert_eq!(r.get("ok"), Some(&Json::Bool(false)));
        assert!(r.get("error").and_then(Json::as_str).unwrap().contains("parse"));
        let r = send(&mut out, &mut lines, r#"{"op":"stats"}"#);
        assert_eq!(r.get("full_condenses").and_then(Json::as_f64), Some(1.0));
        assert_eq!(r.get("seq").and_then(Json::as_f64), Some(1.0));

        handle.stop().expect("clean stop");
    }

    #[test]
    fn concurrent_readers_never_observe_a_torn_model() {
        let handle = start(ServerConfig::new(Listen::Tcp("127.0.0.1:0".to_string()), "paper"))
        .expect("server starts");
        let addr = handle.addr().to_string();

        // Writer session: add/remove a chain of FCMs.
        let w = {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let (mut out, mut lines, _) = open_session(&addr);
                for i in 0..30 {
                    let add = format!(
                        r#"{{"op":"add_fcm","name":"w{i}","criticality":1,"influences":[["p8",0.5]]}}"#
                    );
                    assert_eq!(send(&mut out, &mut lines, &add).get("ok"), Some(&Json::Bool(true)));
                    let rm = format!(r#"{{"op":"remove_fcm","name":"w{i}"}}"#);
                    assert_eq!(send(&mut out, &mut lines, &rm).get("ok"), Some(&Json::Bool(true)));
                }
            })
        };
        // Reader sessions: dump must always be internally consistent —
        // influence matrix dimensions match the fcm list exactly.
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let (mut out, mut lines, _) = open_session(&addr);
                    for _ in 0..40 {
                        let r = send(&mut out, &mut lines, r#"{"op":"dump"}"#);
                        let state = r.get("state").expect("state");
                        let n = state.get("fcms").and_then(Json::as_array).unwrap().len();
                        let rows = state.get("influence").and_then(Json::as_array).unwrap();
                        assert_eq!(rows.len(), n, "row count matches fcm count");
                        for row in rows {
                            assert_eq!(row.as_array().unwrap().len(), n);
                        }
                    }
                })
            })
            .collect();
        w.join().expect("writer session");
        for r in readers {
            r.join().expect("reader session");
        }
        handle.stop().expect("clean stop");
    }

    #[test]
    fn kill_and_resume_reproduces_the_model_byte_identically() {
        let dir = std::env::temp_dir().join(format!("fcm-serve-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // Straight-through reference run.
        let part1 = [
            r#"{"op":"add_fcm","name":"r1","criticality":2,"influences":[["p2a",0.4]]}"#,
            r#"{"op":"set_attr","name":"r1","criticality":3}"#,
            r#"{"op":"fail_node","node":"hw4"}"#,
        ];
        let part2 = [
            r#"{"op":"restore_node","node":"hw4"}"#,
            r#"{"op":"add_fcm","name":"r2","criticality":1,"influenced_by":[["r1",0.7]]}"#,
        ];
        let reference = {
            let h = start(ServerConfig::new(Listen::Tcp("127.0.0.1:0".to_string()), "paper"))
            .unwrap();
            let (mut out, mut lines, _) = open_session(h.addr());
            for req in part1.iter().chain(part2.iter()) {
                assert_eq!(send(&mut out, &mut lines, req).get("ok"), Some(&Json::Bool(true)));
            }
            let dump = send(&mut out, &mut lines, r#"{"op":"dump"}"#);
            h.stop().unwrap();
            dump.get("state").unwrap().to_string_compact()
        };

        // Durable run through part 1, then discard the snapshot so the
        // resume is forced through journal-only replay (the kill -9 path
        // scripts/verify.sh drives end-to-end).
        {
            let h = start(ServerConfig {
                state_dir: Some(dir.clone()),
                snapshot_every: 2,
                ..ServerConfig::new(Listen::Tcp("127.0.0.1:0".to_string()), "paper")
            })
            .unwrap();
            let (mut out, mut lines, _) = open_session(h.addr());
            for req in &part1 {
                assert_eq!(send(&mut out, &mut lines, req).get("ok"), Some(&Json::Bool(true)));
            }
            drop(h);
        }
        std::fs::remove_file(dir.join("snapshot.json")).expect("snapshot existed");
        // Resume and finish.
        let resumed = {
            let h = start(ServerConfig {
                state_dir: Some(dir.clone()),
                resume: true,
                snapshot_every: 2,
                ..ServerConfig::new(Listen::Tcp("127.0.0.1:0".to_string()), "paper")
            })
            .unwrap();
            assert_eq!(h.seq(), part1.len() as u64, "recovered every accepted mutation");
            let (mut out, mut lines, _) = open_session(h.addr());
            for req in &part2 {
                assert_eq!(send(&mut out, &mut lines, req).get("ok"), Some(&Json::Bool(true)));
            }
            let dump = send(&mut out, &mut lines, r#"{"op":"dump"}"#);
            h.stop().unwrap();
            dump.get("state").unwrap().to_string_compact()
        };
        assert_eq!(resumed, reference, "resume converges byte-identically");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejected_mutations_do_not_reach_the_journal() {
        let dir = std::env::temp_dir().join(format!("fcm-serve-rej-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let h = start(ServerConfig {
            state_dir: Some(dir.clone()),
            ..ServerConfig::new(Listen::Tcp("127.0.0.1:0".to_string()), "paper")
        })
        .unwrap();
        let (mut out, mut lines, _) = open_session(h.addr());
        let r = send(&mut out, &mut lines, r#"{"op":"remove_fcm","name":"ghost"}"#);
        assert_eq!(r.get("ok"), Some(&Json::Bool(false)));
        let r = send(&mut out, &mut lines, r#"{"op":"set_attr","name":"p8","criticality":2}"#);
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
        h.stop().unwrap();
        let journal = std::fs::read_to_string(dir.join("journal.jsonl")).unwrap();
        let lines: Vec<&str> = journal.lines().collect();
        assert_eq!(lines.len(), 1, "only the accepted mutation was journaled");
        assert!(lines[0].contains("set_attr"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unix_socket_round_trip() {
        let path = std::env::temp_dir().join(format!("fcm-serve-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let h = start(ServerConfig::new(Listen::Unix(path.clone()), "avionics"))
            .expect("unix server starts");
        let stream = connect(&Listen::Unix(path.clone())).expect("connect");
        let mut out = stream.try_clone().unwrap();
        let mut lines = BufReader::new(stream).lines();
        let _hello = lines.next().unwrap().unwrap();
        let r = send(&mut out, &mut lines, r#"{"op":"list"}"#);
        let fcms = r.get("fcms").and_then(Json::as_array).unwrap();
        assert!(!fcms.is_empty());
        h.stop().expect("clean stop");
        assert!(!path.exists(), "socket file removed on shutdown");
    }

    #[test]
    fn subscription_streams_writer_events_in_order() {
        let handle = start(ServerConfig {
            heartbeat_every: 2,
            ..ServerConfig::new(Listen::Tcp("127.0.0.1:0".to_string()), "paper")
        })
        .expect("server starts");

        // Subscriber attaches before any mutation, so eseq starts at 0.
        let (mut sub_out, mut sub_lines, _) = open_session(handle.addr());
        let ack = send(&mut sub_out, &mut sub_lines, r#"{"op":"subscribe","max_events":5}"#);
        assert_eq!(ack.get("ok"), Some(&Json::Bool(true)), "{ack:?}");
        assert_eq!(ack.get("next_eseq").and_then(Json::as_f64), Some(0.0));
        assert_eq!(ack.get("max_events").and_then(Json::as_f64), Some(5.0));
        assert!(ack.get("queue").and_then(Json::as_f64).unwrap() >= 1.0);

        // Mutations from a *different* session; with heartbeat_every=2
        // the published stream is: mutation, mutation, stats, mutation,
        // mutation, stats — the subscriber's cut-off lands mid-stream.
        let (mut out, mut lines, _) = open_session(handle.addr());
        for i in 0..4 {
            let add = format!(
                r#"{{"op":"add_fcm","name":"s{i}","criticality":1,"influences":[["p8",0.5]]}}"#
            );
            assert_eq!(send(&mut out, &mut lines, &add).get("ok"), Some(&Json::Bool(true)));
        }

        let mut names = Vec::new();
        for want_eseq in 0..5u64 {
            let line = sub_lines.next().expect("event line").expect("read");
            let ev = Json::parse(&line).expect("event JSON");
            assert_eq!(ev.get("eseq").and_then(Json::as_f64), Some(want_eseq as f64));
            assert_eq!(ev.get("dropped").and_then(Json::as_f64), Some(0.0));
            names.push(ev.get("event").and_then(Json::as_str).unwrap().to_string());
        }
        assert_eq!(names, ["mutation", "mutation", "stats", "mutation", "mutation"]);

        let end = Json::parse(&sub_lines.next().expect("end line").expect("read")).unwrap();
        assert_eq!(end.get("event").and_then(Json::as_str), Some("end"));
        assert_eq!(end.get("delivered").and_then(Json::as_f64), Some(5.0));
        assert_eq!(end.get("dropped").and_then(Json::as_f64), Some(0.0));

        // The subscriber session still answers regular requests after
        // its stream ended.
        let r = send(&mut sub_out, &mut sub_lines, r#"{"op":"ping"}"#);
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
        handle.stop().expect("clean stop");
    }

    #[test]
    fn metrics_query_returns_the_live_registry() {
        let handle = start(ServerConfig::new(Listen::Tcp("127.0.0.1:0".to_string()), "paper"))
            .expect("server starts");
        let (mut out, mut lines, _) = open_session(handle.addr());
        assert_eq!(
            send(&mut out, &mut lines, r#"{"op":"ping"}"#).get("ok"),
            Some(&Json::Bool(true))
        );
        let r = send(&mut out, &mut lines, r#"{"op":"metrics"}"#);
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r:?}");
        assert!(r.get("counters").is_some());
        assert!(r.get("gauges").is_some());
        assert!(r.get("hists").is_some());
        // No op has completed an SLO window yet: deterministic null.
        assert_eq!(r.get("slo"), Some(&Json::Null));
        handle.stop().expect("clean stop");
    }

    #[test]
    fn writer_serializes_conflicting_sessions() {
        // Two sessions race to add the same name; exactly one wins.
        let handle = start(ServerConfig::new(Listen::Tcp("127.0.0.1:0".to_string()), "paper"))
        .unwrap();
        let addr = handle.addr().to_string();
        let outcomes: Vec<bool> = (0..2)
            .map(|_| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let (mut out, mut lines, _) = open_session(&addr);
                    let r = send(
                        &mut out,
                        &mut lines,
                        r#"{"op":"add_fcm","name":"race","criticality":0}"#,
                    );
                    r.get("ok") == Some(&Json::Bool(true))
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|t| t.join().unwrap())
            .collect();
        let wins: BTreeMap<bool, usize> =
            outcomes.iter().fold(BTreeMap::new(), |mut acc, &b| {
                *acc.entry(b).or_default() += 1;
                acc
            });
        assert_eq!(wins.get(&true), Some(&1), "{outcomes:?}");
        assert_eq!(wins.get(&false), Some(&1), "{outcomes:?}");
        handle.stop().unwrap();
    }
}
