//! The daemon: socket accept loop, per-connection reader threads, and
//! the single writer thread that serializes mutations.
//!
//! # Threading model
//!
//! * The model lives in one `RwLock<LiveModel>`. **Queries** take the
//!   read lock only while computing the answer (microseconds — all
//!   socket I/O happens outside the lock), so a connection pool reads
//!   mostly in parallel.
//! * **Mutations** are forwarded over a channel to the one writer
//!   thread, which applies under the write lock, appends the journal,
//!   and only then replies — *applied → journaled → acknowledged*. A
//!   torn model is impossible: readers see the state before or after a
//!   mutation, never mid-apply. Consecutive mutations on one session
//!   pipeline to the writer and their in-order replies flush as a
//!   batch, so the per-mutation cost is one apply, not two context
//!   switches (see [`serve_client`]).
//! * Every `snapshot_every` accepted mutations (and once more at
//!   shutdown) the writer snapshots the state off the read lock.
//!
//! Bounded latency follows from the lock discipline: a query waits for
//! at most one in-flight `apply` (incremental Eq. 4: O(n) row/column
//! work, not O(n³) recondense) plus its own O(n·order) walk — never for
//! journal or snapshot I/O, which the writer performs outside the write
//! lock.
//!
//! # Degraded mode
//!
//! A journal-append failure no longer kills the writer. Instead the
//! daemon rolls the model back to the durable prefix on disk (the
//! failed mutation was never acknowledged) and enters an explicit
//! **read-only degraded mode**: every mutation is rejected with a
//! structured `degraded:` error (rendered with `"degraded": true`),
//! queries keep serving from the rolled-back state, and seeded
//! bounded-exponential-backoff probes (`Store::probe`) try to re-arm
//! durability. The writer queue is bounded ([`ServerConfig::queue_bound`]),
//! so a stalled disk back-pressures producers instead of growing an
//! unbounded backlog. The armed → degraded → re-arming state machine is
//! specified in DESIGN.md §10 and surfaced in `stats` (`degraded`,
//! `degraded_transitions`, `faults_injected`, `rearm_attempts`).
//!
//! Instrumented via `fcm-obs`: `serve.apply_ns`, `serve.query_ns`,
//! `serve.snapshot_ns` histograms and `serve.mutations`/`serve.queries`
//! counters — plus `serve.faults_injected`, `serve.degraded_transitions`
//! and `serve.rearm_attempts` for the fault path — so `obsview` works on
//! a server run.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fcm_substrate::fault::{FaultInjector, FaultPlan};
use fcm_substrate::{Json, Rng};

use crate::model::LiveModel;
use crate::proto::{self, Query, Request};
use crate::store::{self, Recovered, Store};

/// Where the daemon listens (or a client connects).
#[derive(Debug, Clone)]
pub enum Listen {
    /// Unix-domain socket at this path.
    Unix(PathBuf),
    /// TCP at this `host:port` (port 0 = ephemeral; see [`Handle::addr`]).
    Tcp(String),
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Socket to listen on.
    pub listen: Listen,
    /// Model name (`paper` / `avionics`).
    pub model: String,
    /// State directory for snapshot + journal; `None` = no durability.
    pub state_dir: Option<PathBuf>,
    /// Recover from the state directory instead of truncating it.
    pub resume: bool,
    /// Snapshot period in accepted mutations (0 = only at shutdown).
    pub snapshot_every: u64,
    /// Writer-queue bound: producers block (back-pressure) once this
    /// many messages are in flight to the writer thread.
    pub queue_bound: usize,
    /// Fault plan for the durability path ([`FaultPlan::none`] in
    /// production — the injector is then a single passive bool load).
    pub fault: FaultPlan,
    /// Base delay (ms) for the seeded exponential-backoff re-arm probes
    /// issued while degraded.
    pub rearm_base_ms: u64,
}

impl ServerConfig {
    /// A config with production defaults: no durability, no fault
    /// injection, queue bound 4096, re-arm base 100 ms.
    #[must_use]
    pub fn new(listen: Listen, model: &str) -> ServerConfig {
        ServerConfig {
            listen,
            model: model.to_string(),
            state_dir: None,
            resume: false,
            snapshot_every: 0,
            queue_bound: 4096,
            fault: FaultPlan::none(),
            rearm_base_ms: 100,
        }
    }
}

/// Shared durability status: the armed/degraded flag plus the
/// transition and re-arm counters surfaced in `stats`.
#[derive(Debug, Default)]
pub struct ServeStatus {
    degraded: AtomicBool,
    transitions: AtomicU64,
    rearm_attempts: AtomicU64,
}

impl ServeStatus {
    /// Whether the daemon is currently read-only degraded.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Total armed → degraded transitions.
    #[must_use]
    pub fn transitions(&self) -> u64 {
        self.transitions.load(Ordering::Relaxed)
    }

    /// Total re-arm probes attempted.
    #[must_use]
    pub fn rearm_attempts(&self) -> u64 {
        self.rearm_attempts.load(Ordering::Relaxed)
    }

    fn enter_degraded(&self) {
        if !self.degraded.swap(true, Ordering::Relaxed) {
            self.transitions.fetch_add(1, Ordering::Relaxed);
            fcm_obs::counter_add("serve.degraded_transitions", 1);
        }
    }

    fn leave_degraded(&self) {
        self.degraded.store(false, Ordering::Relaxed);
    }

    fn note_rearm_attempt(&self) {
        self.rearm_attempts.fetch_add(1, Ordering::Relaxed);
        fcm_obs::counter_add("serve.rearm_attempts", 1);
    }
}

/// A bidirectional client/server stream over either transport.
pub(crate) enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    pub(crate) fn try_clone(&self) -> std::io::Result<Stream> {
        match self {
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
        }
    }

    fn shutdown(&self) {
        let _ = match self {
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }

    fn set_nonblocking(&self, on: bool) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_nonblocking(on),
            Stream::Unix(s) => s.set_nonblocking(on),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// Connects to a listening daemon (the `servegen` client side).
pub(crate) fn connect(target: &Listen) -> Result<Stream, String> {
    match target {
        Listen::Unix(path) => UnixStream::connect(path)
            .map(Stream::Unix)
            .map_err(|e| format!("connect {}: {e}", path.display())),
        Listen::Tcp(addr) => TcpStream::connect(addr)
            .map(|s| {
                // Request/response over one connection: Nagle + delayed
                // ACK would add ~40 ms per round-trip.
                let _ = s.set_nodelay(true);
                Stream::Tcp(s)
            })
            .map_err(|e| format!("connect {addr}: {e}")),
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl Listener {
    fn accept(&self) -> std::io::Result<Stream> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| {
                let _ = s.set_nodelay(true);
                Stream::Tcp(s)
            }),
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
        }
    }

    fn set_nonblocking(&self, on: bool) -> std::io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(on),
            Listener::Unix(l) => l.set_nonblocking(on),
        }
    }
}

enum WriterMsg {
    Apply {
        mutation: crate::proto::Mutation,
        reply: mpsc::Sender<Result<Json, String>>,
    },
    Snapshot {
        reply: mpsc::Sender<Result<Json, String>>,
    },
}

struct ClientSlot {
    stream: Stream,
    thread: JoinHandle<()>,
}

/// A running daemon; dropping it (or calling [`Handle::stop`]) drains
/// clients, flushes the final snapshot, and joins every thread.
pub struct Handle {
    stop: Arc<AtomicBool>,
    addr: String,
    unix_path: Option<PathBuf>,
    clients: Arc<Mutex<Vec<ClientSlot>>>,
    accept_thread: Option<JoinHandle<()>>,
    writer_tx: Option<mpsc::SyncSender<WriterMsg>>,
    writer_thread: Option<JoinHandle<Result<(), String>>>,
    model: Arc<RwLock<LiveModel>>,
    status: Arc<ServeStatus>,
    injector: Arc<FaultInjector>,
}

impl Handle {
    /// The bound address: `host:port` for TCP (with the real ephemeral
    /// port), the socket path for Unix.
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Current journal cursor (accepted mutations).
    #[must_use]
    pub fn seq(&self) -> u64 {
        self.model.read().expect("model lock").seq()
    }

    /// The degradation status shared with the writer thread.
    #[must_use]
    pub fn status(&self) -> &Arc<ServeStatus> {
        &self.status
    }

    /// The fault injector the durability path consults.
    #[must_use]
    pub fn injector(&self) -> &Arc<FaultInjector> {
        &self.injector
    }

    /// Stops accepting, drains clients, writes the final snapshot, and
    /// joins all threads.
    ///
    /// # Errors
    ///
    /// A journal/snapshot write failure observed by the writer thread.
    pub fn stop(mut self) -> Result<(), String> {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> Result<(), String> {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Shut the sockets down to unblock reader threads mid-`read`.
        let slots: Vec<ClientSlot> = std::mem::take(&mut *self.clients.lock().expect("clients lock"));
        for slot in &slots {
            slot.stream.shutdown();
        }
        for slot in slots {
            let _ = slot.thread.join();
        }
        // All client-held writer senders are gone; dropping ours ends
        // the writer loop, which flushes the final snapshot.
        drop(self.writer_tx.take());
        let result = self
            .writer_thread
            .take()
            .map_or(Ok(()), |t| t.join().map_err(|_| "writer thread panicked".to_string())?);
        if let Some(path) = self.unix_path.take() {
            let _ = std::fs::remove_file(path);
        }
        result
    }
}

impl Drop for Handle {
    fn drop(&mut self) {
        let _ = self.shutdown_inner();
    }
}

/// Rebuilds a model from recovered durable state: snapshot (or a fresh
/// model when none) plus journal-suffix replay with seq-drift checks.
/// Shared by `--resume` startup and the degraded-mode rollback.
fn recover_model(name: &str, recovered: &Recovered) -> Result<LiveModel, String> {
    let mut model = match &recovered.snapshot {
        Some((state, _)) => LiveModel::from_state(state)?,
        None => LiveModel::new(name)?,
    };
    if model.name() != name {
        return Err(format!(
            "state dir holds model \"{}\" but \"{}\" was requested",
            model.name(),
            name
        ));
    }
    for (seq, m) in &recovered.replay {
        model
            .apply(m)
            .map_err(|e| format!("journal replay seq {seq} rejected: {e}"))?;
        if model.seq() != *seq {
            return Err(format!(
                "journal replay drift: expected seq {seq}, model at {}",
                model.seq()
            ));
        }
    }
    Ok(model)
}

/// Builds the model per config: fresh, or recovered from the state
/// directory (snapshot + journal-suffix replay).
fn build_model(
    config: &ServerConfig,
    inj: &Arc<FaultInjector>,
) -> Result<(LiveModel, Option<Store>), String> {
    match (&config.state_dir, config.resume) {
        (None, _) => Ok((LiveModel::new(&config.model)?, None)),
        (Some(dir), false) => Ok((
            LiveModel::new(&config.model)?,
            Some(Store::create_fresh_with(dir, Arc::clone(inj))?),
        )),
        (Some(dir), true) => {
            let (store, recovered) = Store::open_resume_with(dir, Arc::clone(inj))?;
            let model = recover_model(&config.model, &recovered)?;
            Ok((model, Some(store)))
        }
    }
}

/// Starts the daemon and returns its handle.
///
/// # Errors
///
/// Model construction/recovery failure, or a bind failure on the
/// requested socket (both exit-code-2 class for the bin).
pub fn start(config: ServerConfig) -> Result<Handle, String> {
    let injector = Arc::new(FaultInjector::new(&config.fault));
    let status = Arc::new(ServeStatus::default());
    let (model, store) = build_model(&config, &injector)?;
    let model = Arc::new(RwLock::new(model));

    let (listener, addr, unix_path) = match &config.listen {
        Listen::Unix(path) => {
            if path.exists() {
                std::fs::remove_file(path)
                    .map_err(|e| format!("remove stale socket {}: {e}", path.display()))?;
            }
            let l = UnixListener::bind(path)
                .map_err(|e| format!("bind {}: {e}", path.display()))?;
            (
                Listener::Unix(l),
                path.display().to_string(),
                Some(path.clone()),
            )
        }
        Listen::Tcp(spec) => {
            let l = TcpListener::bind(spec).map_err(|e| format!("bind {spec}: {e}"))?;
            let real = l
                .local_addr()
                .map_err(|e| format!("local_addr: {e}"))?
                .to_string();
            (Listener::Tcp(l), real, None)
        }
    };
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("set_nonblocking: {e}"))?;

    let stop = Arc::new(AtomicBool::new(false));
    let clients: Arc<Mutex<Vec<ClientSlot>>> = Arc::new(Mutex::new(Vec::new()));
    let (writer_tx, writer_rx) = mpsc::sync_channel::<WriterMsg>(config.queue_bound.max(1));

    let writer_thread = {
        let model = Arc::clone(&model);
        let ctx = WriterCtx {
            store,
            status: Arc::clone(&status),
            model_name: config.model.clone(),
            snapshot_every: config.snapshot_every,
            rearm_base_ms: config.rearm_base_ms,
            rng: Rng::seed_from_u64(0xfa57_a4e1),
            rearm_failures: 0,
            next_probe_at: None,
        };
        std::thread::spawn(move || writer_loop(&model, &writer_rx, ctx))
    };

    let accept_thread = {
        let stop = Arc::clone(&stop);
        let clients = Arc::clone(&clients);
        let model = Arc::clone(&model);
        let status = Arc::clone(&status);
        let injector = Arc::clone(&injector);
        let writer_tx = writer_tx.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok(stream) => {
                        let Ok(reader_half) = stream.try_clone() else {
                            continue;
                        };
                        let model = Arc::clone(&model);
                        let status = Arc::clone(&status);
                        let injector = Arc::clone(&injector);
                        let tx = writer_tx.clone();
                        let thread = std::thread::spawn(move || {
                            serve_client(reader_half, &model, &tx, &status, &injector);
                        });
                        clients
                            .lock()
                            .expect("clients lock")
                            .push(ClientSlot { stream, thread });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        })
    };

    Ok(Handle {
        stop,
        addr,
        unix_path,
        clients,
        accept_thread: Some(accept_thread),
        writer_tx: Some(writer_tx),
        writer_thread: Some(writer_thread),
        model,
        status,
        injector,
    })
}

/// The mutation-reject message while degraded; starts with the
/// `degraded:` marker [`proto::render_response`] turns into a
/// structured `"degraded": true` field.
const DEGRADED_REJECT: &str = "degraded: journal unavailable, serving read-only";

/// Writer-thread state: the store, the shared status, and the re-arm
/// schedule.
struct WriterCtx {
    store: Option<Store>,
    status: Arc<ServeStatus>,
    model_name: String,
    snapshot_every: u64,
    rearm_base_ms: u64,
    /// Seeded jitter source for the re-arm backoff — deterministic per
    /// process, never wall-clock seeded.
    rng: Rng,
    /// Consecutive failed probes since entering degraded (backoff
    /// exponent).
    rearm_failures: u32,
    /// When the next re-arm probe may run; `None` while armed.
    next_probe_at: Option<Instant>,
}

impl WriterCtx {
    /// Bounded-exponential backoff with seeded jitter:
    /// `base · 2^min(failures,6) · U(0.5,1.5)`, capped at 10 s.
    fn backoff(&mut self) -> Duration {
        let exp = (1u64 << self.rearm_failures.min(6)) as f64;
        let jitter = 0.5 + self.rng.gen_f64();
        let ms = (self.rearm_base_ms.max(1) as f64 * exp * jitter).min(10_000.0);
        Duration::from_millis(ms as u64)
    }

    /// Armed → degraded: roll the model back to the durable prefix on
    /// disk (the mutation whose append failed was never acknowledged),
    /// flag the status, and schedule the first re-arm probe.
    fn enter_degraded(&mut self, model: &RwLock<LiveModel>) {
        if let Some(s) = self.store.as_ref() {
            // Best-effort: if even reading the durable state fails the
            // in-memory model stays as-is (still consistent, possibly
            // one unacknowledged mutation ahead of the journal).
            if let Ok(rolled) =
                store::read_recovered(s.dir()).and_then(|rec| recover_model(&self.model_name, &rec))
            {
                *model.write().expect("model lock") = rolled;
            }
        }
        self.status.enter_degraded();
        self.rearm_failures = 0;
        let delay = self.backoff();
        self.next_probe_at = Some(Instant::now() + delay);
    }

    /// One re-arm step while degraded: if the probe window has arrived,
    /// probe the journal; on success repair + re-open happened inside
    /// [`Store::probe`] and the daemon is armed again. Returns whether
    /// the daemon is now armed.
    fn try_rearm(&mut self) -> bool {
        let Some(at) = self.next_probe_at else {
            return false;
        };
        if Instant::now() < at {
            return false;
        }
        let Some(s) = self.store.as_mut() else {
            return false;
        };
        self.status.note_rearm_attempt();
        match s.probe() {
            Ok(()) => {
                self.status.leave_degraded();
                self.rearm_failures = 0;
                self.next_probe_at = None;
                true
            }
            Err(_) => {
                self.rearm_failures = self.rearm_failures.saturating_add(1);
                let delay = self.backoff();
                self.next_probe_at = Some(Instant::now() + delay);
                false
            }
        }
    }
}

/// The writer loop: the only code path that mutates the model.
/// Ordering per mutation: apply (write lock) → journal append → reply.
/// On journal failure the loop degrades instead of dying (see the
/// module docs); while degraded it rejects mutations, probes for
/// re-arm, and keeps the read path untouched.
fn writer_loop(
    model: &RwLock<LiveModel>,
    rx: &mpsc::Receiver<WriterMsg>,
    mut ctx: WriterCtx,
) -> Result<(), String> {
    let mut since_snapshot: u64 = 0;
    while let Ok(msg) = rx.recv() {
        match msg {
            WriterMsg::Apply { mutation, reply } => {
                if ctx.status.is_degraded() && !ctx.try_rearm() {
                    let _ = reply.send(Err(DEGRADED_REJECT.to_string()));
                    continue;
                }
                let t0 = Instant::now();
                let result = {
                    let mut m = model.write().expect("model lock");
                    m.apply(&mutation)
                };
                fcm_obs::hist_record("serve.apply_ns", t0.elapsed().as_nanos() as u64);
                fcm_obs::counter_add("serve.mutations", 1);
                if result.is_ok() {
                    if let Some(s) = ctx.store.as_mut() {
                        let seq = model.read().expect("model lock").seq();
                        if let Err(e) = s.append(seq, &mutation) {
                            ctx.enter_degraded(model);
                            let _ = reply.send(Err(format!("degraded: {e}")));
                            continue;
                        }
                    }
                    since_snapshot += 1;
                }
                let _ = reply.send(result);
                if ctx.snapshot_every > 0 && since_snapshot >= ctx.snapshot_every {
                    // A failed periodic snapshot loses no acknowledged
                    // data (the journal has everything); stay armed and
                    // retry after the next interval.
                    let _ = write_snapshot(model, ctx.store.as_mut());
                    since_snapshot = 0;
                }
            }
            WriterMsg::Snapshot { reply } => {
                let result = if ctx.status.is_degraded() {
                    Err(DEGRADED_REJECT.to_string())
                } else {
                    since_snapshot = 0;
                    write_snapshot(model, ctx.store.as_mut()).map(|seq| match seq {
                        Some(seq) => Json::object().set("seq", seq).set("snapshotted", true),
                        None => Json::object().set("snapshotted", false),
                    })
                };
                let _ = reply.send(result);
            }
        }
    }
    // Channel closed: final snapshot before exit. In degraded mode the
    // snapshot is best-effort — SIGTERM while degraded still exits 0.
    match write_snapshot(model, ctx.store.as_mut()) {
        Ok(_) => Ok(()),
        Err(_) if ctx.status.is_degraded() => Ok(()),
        Err(e) => Err(e),
    }
}

fn write_snapshot(model: &RwLock<LiveModel>, store: Option<&mut Store>) -> Result<Option<u64>, String> {
    let Some(store) = store else {
        return Ok(None);
    };
    let t0 = Instant::now();
    let (seq, state) = {
        let m = model.read().expect("model lock");
        (m.seq(), m.state_json())
    };
    store.snapshot(seq, &state)?;
    fcm_obs::hist_record("serve.snapshot_ns", t0.elapsed().as_nanos() as u64);
    Ok(Some(seq))
}

/// In-flight pipelined mutations: request id plus the writer's reply
/// slot, in submission order (= response order).
type Pending = std::collections::VecDeque<(Option<Json>, mpsc::Receiver<Result<Json, String>>)>;

/// Awaits every in-flight mutation reply and writes the responses in
/// order (one syscall for the whole batch). Returns `false` when the
/// session is dead (writer gone or socket closed).
fn flush_pending(pending: &mut Pending, out: &mut Stream) -> bool {
    if pending.is_empty() {
        return true;
    }
    let mut batch = String::new();
    for (id, rx) in pending.drain(..) {
        let Ok(result) = rx.recv() else { return false };
        batch.push_str(&proto::render_response(id.as_ref(), &result));
    }
    out.write_all(batch.as_bytes()).is_ok()
}

/// Back-pressure bound: a session never holds more un-acknowledged
/// mutations than this before draining replies.
const MAX_PIPELINE: usize = 1024;

/// One connection: hello, then request/response lines until EOF. Parse
/// and I/O errors never kill the daemon — a malformed line gets a
/// structured error response and the loop continues.
///
/// Mutations *pipeline*: a run of consecutive mutation lines is
/// forwarded to the writer without waiting for individual replies, and
/// the in-order responses are flushed as a batch once the socket has no
/// more buffered input (or before any query, preserving
/// read-your-writes within the session). This amortizes the
/// conn-thread ↔ writer-thread handoff over the whole run instead of
/// paying two context switches per mutation.
fn serve_client(
    mut stream: Stream,
    model: &RwLock<LiveModel>,
    writer: &mpsc::SyncSender<WriterMsg>,
    status: &ServeStatus,
    injector: &FaultInjector,
) {
    let Ok(mut out) = stream.try_clone() else {
        return;
    };
    {
        let m = model.read().expect("model lock");
        let hello = proto::hello(m.name(), m.fcm_count(), m.hw_count(), m.seq());
        if out.write_all(hello.as_bytes()).is_err() {
            return;
        }
    }
    let mut inbuf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    let mut pending = Pending::new();
    'session: loop {
        // Dispatch every complete line currently buffered.
        let mut start = 0usize;
        while let Some(pos) = inbuf[start..].iter().position(|&b| b == b'\n') {
            let end = start + pos;
            let line = String::from_utf8_lossy(&inbuf[start..end]).into_owned();
            start = end + 1;
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (id, parsed) = proto::parse_line(line);
            match parsed {
                Ok(Request::Mutation(m)) => {
                    let (tx, rx) = mpsc::channel();
                    if writer.send(WriterMsg::Apply { mutation: m, reply: tx }).is_err() {
                        break 'session;
                    }
                    pending.push_back((id, rx));
                    if pending.len() >= MAX_PIPELINE && !flush_pending(&mut pending, &mut out) {
                        break 'session;
                    }
                }
                parsed => {
                    // Order + read-your-writes: settle the pipelined
                    // mutations before answering anything else.
                    if !flush_pending(&mut pending, &mut out) {
                        break 'session;
                    }
                    let result = match parsed {
                        Err(e) => Err(e),
                        Ok(Request::Query(Query::Snapshot)) => {
                            let (tx, rx) = mpsc::channel();
                            if writer.send(WriterMsg::Snapshot { reply: tx }).is_err() {
                                break 'session;
                            }
                            match rx.recv() {
                                Ok(r) => r,
                                Err(_) => break 'session,
                            }
                        }
                        Ok(Request::Query(q)) => {
                            let is_stats = matches!(q, Query::Stats);
                            let t0 = Instant::now();
                            let mut r = model.read().expect("model lock").query(&q);
                            fcm_obs::hist_record("serve.query_ns", t0.elapsed().as_nanos() as u64);
                            fcm_obs::counter_add("serve.queries", 1);
                            if is_stats {
                                // Durability status rides along in stats;
                                // Json objects are BTreeMaps, so key
                                // order stays canonical.
                                r = r.map(|j| {
                                    j.set("degraded", status.is_degraded())
                                        .set("degraded_transitions", status.transitions())
                                        .set("faults_injected", injector.injected())
                                        .set("rearm_attempts", status.rearm_attempts())
                                });
                            }
                            r
                        }
                        Ok(Request::Mutation(_)) => unreachable!("handled above"),
                    };
                    let response = proto::render_response(id.as_ref(), &result);
                    if out.write_all(response.as_bytes()).is_err() {
                        break 'session;
                    }
                }
            }
        }
        inbuf.drain(..start);
        // Refill. With replies pending, poll first: if the client has
        // nothing more queued, settle the batch before blocking (a
        // request/response client is waiting on those responses).
        if !pending.is_empty() {
            let _ = stream.set_nonblocking(true);
            let polled = stream.read(&mut chunk);
            let _ = stream.set_nonblocking(false);
            match polled {
                Ok(0) => break,
                Ok(n) => {
                    inbuf.extend_from_slice(&chunk[..n]);
                    continue;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if !flush_pending(&mut pending, &mut out) {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => inbuf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
    let _ = flush_pending(&mut pending, &mut out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::io::{BufRead, BufReader};

    fn send(
        out: &mut Stream,
        lines: &mut std::io::Lines<BufReader<Stream>>,
        req: &str,
    ) -> Json {
        out.write_all(req.as_bytes()).expect("write");
        out.write_all(b"\n").expect("write");
        let line = lines.next().expect("response").expect("read");
        Json::parse(&line).expect("valid response JSON")
    }

    fn open_session(addr: &str) -> (Stream, std::io::Lines<BufReader<Stream>>, Json) {
        let stream = connect(&Listen::Tcp(addr.to_string())).expect("connect");
        let out = stream.try_clone().expect("clone");
        let mut lines = BufReader::new(stream).lines();
        let hello = Json::parse(&lines.next().expect("hello").expect("read")).expect("hello JSON");
        (out, lines, hello)
    }

    #[test]
    fn end_to_end_session_over_tcp() {
        let handle = start(ServerConfig::new(Listen::Tcp("127.0.0.1:0".to_string()), "paper"))
        .expect("server starts");
        let (mut out, mut lines, hello) = open_session(handle.addr());
        assert_eq!(
            hello.get("schema").and_then(Json::as_str),
            Some(crate::proto::SCHEMA)
        );

        let r = send(&mut out, &mut lines, r#"{"op":"ping","id":7}"#);
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(r.get("id").and_then(Json::as_f64), Some(7.0));

        let r = send(
            &mut out,
            &mut lines,
            r#"{"op":"add_fcm","name":"tcp1","criticality":1,"influences":[["p8",0.25]]}"#,
        );
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r:?}");
        assert!(r.get("host").is_some());

        let r = send(
            &mut out,
            &mut lines,
            r#"{"op":"influence","from":"tcp1","to":"p8"}"#,
        );
        assert!(r.get("direct").and_then(Json::as_f64).unwrap() > 0.2);

        // Malformed line: structured error, session survives.
        let r = send(&mut out, &mut lines, "{nope");
        assert_eq!(r.get("ok"), Some(&Json::Bool(false)));
        assert!(r.get("error").and_then(Json::as_str).unwrap().contains("parse"));
        let r = send(&mut out, &mut lines, r#"{"op":"stats"}"#);
        assert_eq!(r.get("full_condenses").and_then(Json::as_f64), Some(1.0));
        assert_eq!(r.get("seq").and_then(Json::as_f64), Some(1.0));

        handle.stop().expect("clean stop");
    }

    #[test]
    fn concurrent_readers_never_observe_a_torn_model() {
        let handle = start(ServerConfig::new(Listen::Tcp("127.0.0.1:0".to_string()), "paper"))
        .expect("server starts");
        let addr = handle.addr().to_string();

        // Writer session: add/remove a chain of FCMs.
        let w = {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let (mut out, mut lines, _) = open_session(&addr);
                for i in 0..30 {
                    let add = format!(
                        r#"{{"op":"add_fcm","name":"w{i}","criticality":1,"influences":[["p8",0.5]]}}"#
                    );
                    assert_eq!(send(&mut out, &mut lines, &add).get("ok"), Some(&Json::Bool(true)));
                    let rm = format!(r#"{{"op":"remove_fcm","name":"w{i}"}}"#);
                    assert_eq!(send(&mut out, &mut lines, &rm).get("ok"), Some(&Json::Bool(true)));
                }
            })
        };
        // Reader sessions: dump must always be internally consistent —
        // influence matrix dimensions match the fcm list exactly.
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let (mut out, mut lines, _) = open_session(&addr);
                    for _ in 0..40 {
                        let r = send(&mut out, &mut lines, r#"{"op":"dump"}"#);
                        let state = r.get("state").expect("state");
                        let n = state.get("fcms").and_then(Json::as_array).unwrap().len();
                        let rows = state.get("influence").and_then(Json::as_array).unwrap();
                        assert_eq!(rows.len(), n, "row count matches fcm count");
                        for row in rows {
                            assert_eq!(row.as_array().unwrap().len(), n);
                        }
                    }
                })
            })
            .collect();
        w.join().expect("writer session");
        for r in readers {
            r.join().expect("reader session");
        }
        handle.stop().expect("clean stop");
    }

    #[test]
    fn kill_and_resume_reproduces_the_model_byte_identically() {
        let dir = std::env::temp_dir().join(format!("fcm-serve-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // Straight-through reference run.
        let part1 = [
            r#"{"op":"add_fcm","name":"r1","criticality":2,"influences":[["p2a",0.4]]}"#,
            r#"{"op":"set_attr","name":"r1","criticality":3}"#,
            r#"{"op":"fail_node","node":"hw4"}"#,
        ];
        let part2 = [
            r#"{"op":"restore_node","node":"hw4"}"#,
            r#"{"op":"add_fcm","name":"r2","criticality":1,"influenced_by":[["r1",0.7]]}"#,
        ];
        let reference = {
            let h = start(ServerConfig::new(Listen::Tcp("127.0.0.1:0".to_string()), "paper"))
            .unwrap();
            let (mut out, mut lines, _) = open_session(h.addr());
            for req in part1.iter().chain(part2.iter()) {
                assert_eq!(send(&mut out, &mut lines, req).get("ok"), Some(&Json::Bool(true)));
            }
            let dump = send(&mut out, &mut lines, r#"{"op":"dump"}"#);
            h.stop().unwrap();
            dump.get("state").unwrap().to_string_compact()
        };

        // Durable run through part 1, then discard the snapshot so the
        // resume is forced through journal-only replay (the kill -9 path
        // scripts/verify.sh drives end-to-end).
        {
            let h = start(ServerConfig {
                state_dir: Some(dir.clone()),
                snapshot_every: 2,
                ..ServerConfig::new(Listen::Tcp("127.0.0.1:0".to_string()), "paper")
            })
            .unwrap();
            let (mut out, mut lines, _) = open_session(h.addr());
            for req in &part1 {
                assert_eq!(send(&mut out, &mut lines, req).get("ok"), Some(&Json::Bool(true)));
            }
            drop(h);
        }
        std::fs::remove_file(dir.join("snapshot.json")).expect("snapshot existed");
        // Resume and finish.
        let resumed = {
            let h = start(ServerConfig {
                state_dir: Some(dir.clone()),
                resume: true,
                snapshot_every: 2,
                ..ServerConfig::new(Listen::Tcp("127.0.0.1:0".to_string()), "paper")
            })
            .unwrap();
            assert_eq!(h.seq(), part1.len() as u64, "recovered every accepted mutation");
            let (mut out, mut lines, _) = open_session(h.addr());
            for req in &part2 {
                assert_eq!(send(&mut out, &mut lines, req).get("ok"), Some(&Json::Bool(true)));
            }
            let dump = send(&mut out, &mut lines, r#"{"op":"dump"}"#);
            h.stop().unwrap();
            dump.get("state").unwrap().to_string_compact()
        };
        assert_eq!(resumed, reference, "resume converges byte-identically");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejected_mutations_do_not_reach_the_journal() {
        let dir = std::env::temp_dir().join(format!("fcm-serve-rej-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let h = start(ServerConfig {
            state_dir: Some(dir.clone()),
            ..ServerConfig::new(Listen::Tcp("127.0.0.1:0".to_string()), "paper")
        })
        .unwrap();
        let (mut out, mut lines, _) = open_session(h.addr());
        let r = send(&mut out, &mut lines, r#"{"op":"remove_fcm","name":"ghost"}"#);
        assert_eq!(r.get("ok"), Some(&Json::Bool(false)));
        let r = send(&mut out, &mut lines, r#"{"op":"set_attr","name":"p8","criticality":2}"#);
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
        h.stop().unwrap();
        let journal = std::fs::read_to_string(dir.join("journal.jsonl")).unwrap();
        let lines: Vec<&str> = journal.lines().collect();
        assert_eq!(lines.len(), 1, "only the accepted mutation was journaled");
        assert!(lines[0].contains("set_attr"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unix_socket_round_trip() {
        let path = std::env::temp_dir().join(format!("fcm-serve-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let h = start(ServerConfig::new(Listen::Unix(path.clone()), "avionics"))
            .expect("unix server starts");
        let stream = connect(&Listen::Unix(path.clone())).expect("connect");
        let mut out = stream.try_clone().unwrap();
        let mut lines = BufReader::new(stream).lines();
        let _hello = lines.next().unwrap().unwrap();
        let r = send(&mut out, &mut lines, r#"{"op":"list"}"#);
        let fcms = r.get("fcms").and_then(Json::as_array).unwrap();
        assert!(!fcms.is_empty());
        h.stop().expect("clean stop");
        assert!(!path.exists(), "socket file removed on shutdown");
    }

    #[test]
    fn writer_serializes_conflicting_sessions() {
        // Two sessions race to add the same name; exactly one wins.
        let handle = start(ServerConfig::new(Listen::Tcp("127.0.0.1:0".to_string()), "paper"))
        .unwrap();
        let addr = handle.addr().to_string();
        let outcomes: Vec<bool> = (0..2)
            .map(|_| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let (mut out, mut lines, _) = open_session(&addr);
                    let r = send(
                        &mut out,
                        &mut lines,
                        r#"{"op":"add_fcm","name":"race","criticality":0}"#,
                    );
                    r.get("ok") == Some(&Json::Bool(true))
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|t| t.join().unwrap())
            .collect();
        let wins: BTreeMap<bool, usize> =
            outcomes.iter().fold(BTreeMap::new(), |mut acc, &b| {
                *acc.entry(b).or_default() += 1;
                acc
            });
        assert_eq!(wins.get(&true), Some(&1), "{outcomes:?}");
        assert_eq!(wins.get(&false), Some(&1), "{outcomes:?}");
        handle.stop().unwrap();
    }
}
