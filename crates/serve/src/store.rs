//! Durability: snapshot + journal under one state directory.
//!
//! Layout (all substrate JSON, one value per file/line):
//!
//! * `snapshot.json` — `{"schema":"fcm-serve-snapshot/v1","seq":N,
//!   "state":{...},"written_unix_ms":T}` where `state` is
//!   [`crate::LiveModel::state_json`] output. Written to a temp file in
//!   the same directory and atomically renamed, so a crash never leaves
//!   a torn snapshot.
//! * `journal.jsonl` — one `{"mutation":{...},"seq":N}` line per
//!   accepted mutation, in canonical [`crate::proto::mutation_to_json`]
//!   form, flushed per line. The writer appends *after* applying and
//!   *before* replying, so every acknowledged mutation is durable.
//!
//! Recovery (`--resume`) loads the snapshot (if any), then replays the
//! journal suffix with `seq > snapshot.seq`. Mutations are deterministic
//! functions of model state, so replay reconstructs the crashed model
//! byte-identically — `scripts/verify.sh` pins this with a `dump`
//! byte-compare against a straight-through run.
//!
//! The only wall-clock read in the crate is the snapshot metadata
//! timestamp (`written_unix_ms`); it is deliberately *outside* the
//! `state` object so state comparisons stay byte-exact.

use std::fs::{self, File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

use fcm_substrate::Json;

use crate::proto::{self, Mutation};

/// Snapshot-file schema tag.
pub const SNAPSHOT_SCHEMA: &str = "fcm-serve-snapshot/v1";

const SNAPSHOT: &str = "snapshot.json";
const JOURNAL: &str = "journal.jsonl";

/// An open state directory: the journal writer plus snapshot paths.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    journal: BufWriter<File>,
}

/// What `open_resume` recovered from disk.
#[derive(Debug)]
pub struct Recovered {
    /// Snapshot `state` object and its seq, when a snapshot existed.
    pub snapshot: Option<(Json, u64)>,
    /// Journal suffix to replay: `(seq, mutation)` with seq ascending,
    /// already filtered to entries newer than the snapshot.
    pub replay: Vec<(u64, Mutation)>,
}

fn io_err(what: &str, path: &Path, e: &std::io::Error) -> String {
    format!("{what} {}: {e}", path.display())
}

impl Store {
    /// Creates/truncates the state directory for a fresh run.
    ///
    /// # Errors
    ///
    /// Directory creation or journal-open failure (exit-code-2 class).
    pub fn create_fresh(dir: &Path) -> Result<Store, String> {
        fs::create_dir_all(dir).map_err(|e| io_err("create state dir", dir, &e))?;
        let snap = dir.join(SNAPSHOT);
        if snap.exists() {
            fs::remove_file(&snap).map_err(|e| io_err("remove stale snapshot", &snap, &e))?;
        }
        let jpath = dir.join(JOURNAL);
        let journal = File::create(&jpath).map_err(|e| io_err("create journal", &jpath, &e))?;
        Ok(Store {
            dir: dir.to_path_buf(),
            journal: BufWriter::new(journal),
        })
    }

    /// Opens an existing state directory, returning whatever snapshot
    /// and journal suffix survive; the journal is reopened for append.
    ///
    /// # Errors
    ///
    /// Unreadable/corrupt snapshot or journal, or journal-open failure.
    pub fn open_resume(dir: &Path) -> Result<(Store, Recovered), String> {
        fs::create_dir_all(dir).map_err(|e| io_err("create state dir", dir, &e))?;
        let snap_path = dir.join(SNAPSHOT);
        let snapshot = if snap_path.exists() {
            let text = fs::read_to_string(&snap_path)
                .map_err(|e| io_err("read snapshot", &snap_path, &e))?;
            let json = Json::parse(&text).map_err(|e| format!("corrupt snapshot: {e}"))?;
            if json.get("schema").and_then(Json::as_str) != Some(SNAPSHOT_SCHEMA) {
                return Err(format!("snapshot is not {SNAPSHOT_SCHEMA}"));
            }
            let seq = json
                .get("seq")
                .and_then(Json::as_f64)
                .ok_or("snapshot missing \"seq\"")? as u64;
            let state = json.get("state").cloned().ok_or("snapshot missing \"state\"")?;
            Some((state, seq))
        } else {
            None
        };
        let base_seq = snapshot.as_ref().map_or(0, |&(_, s)| s);

        let jpath = dir.join(JOURNAL);
        let mut replay = Vec::new();
        if jpath.exists() {
            let file = File::open(&jpath).map_err(|e| io_err("read journal", &jpath, &e))?;
            for (lineno, line) in BufReader::new(file).lines().enumerate() {
                let line = line.map_err(|e| io_err("read journal", &jpath, &e))?;
                if line.trim().is_empty() {
                    continue;
                }
                let entry = Json::parse(&line)
                    .map_err(|e| format!("corrupt journal line {}: {e}", lineno + 1))?;
                let seq = entry
                    .get("seq")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("journal line {} missing \"seq\"", lineno + 1))?
                    as u64;
                let m = entry
                    .get("mutation")
                    .ok_or_else(|| format!("journal line {} missing \"mutation\"", lineno + 1))?;
                let mutation = proto::mutation_from_json(m)
                    .map_err(|e| format!("journal line {}: {e}", lineno + 1))?;
                if seq > base_seq {
                    replay.push((seq, mutation));
                }
            }
        }
        replay.sort_by_key(|&(s, _)| s);

        let journal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&jpath)
            .map_err(|e| io_err("append journal", &jpath, &e))?;
        Ok((
            Store {
                dir: dir.to_path_buf(),
                journal: BufWriter::new(journal),
            },
            Recovered { snapshot, replay },
        ))
    }

    /// Appends one accepted mutation and flushes it to the OS before
    /// the caller acknowledges the client.
    ///
    /// # Errors
    ///
    /// Journal write failure — the daemon treats this as fatal.
    pub fn append(&mut self, seq: u64, m: &Mutation) -> Result<(), String> {
        let line = Json::object()
            .set("mutation", proto::mutation_to_json(m))
            .set("seq", seq)
            .to_string_compact();
        let jpath = self.dir.join(JOURNAL);
        writeln!(self.journal, "{line}").map_err(|e| io_err("append journal", &jpath, &e))?;
        self.journal
            .flush()
            .map_err(|e| io_err("flush journal", &jpath, &e))
    }

    /// Writes a snapshot of `state` at `seq`: temp file + atomic rename.
    ///
    /// # Errors
    ///
    /// Temp-file write or rename failure.
    pub fn snapshot(&mut self, seq: u64, state: &Json) -> Result<(), String> {
        let written_unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(0, |d| d.as_millis() as u64);
        let doc = Json::object()
            .set("schema", SNAPSHOT_SCHEMA)
            .set("seq", seq)
            .set("state", state.clone())
            .set("written_unix_ms", written_unix_ms);
        let tmp = self.dir.join("snapshot.json.tmp");
        let fin = self.dir.join(SNAPSHOT);
        fs::write(&tmp, doc.to_string_compact() + "\n")
            .map_err(|e| io_err("write snapshot", &tmp, &e))?;
        fs::rename(&tmp, &fin).map_err(|e| io_err("rename snapshot", &fin, &e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LiveModel;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("fcm-serve-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn fresh_then_resume_replays_the_suffix() {
        let dir = tmpdir("replay");
        let mut model = LiveModel::new("paper").unwrap();
        let mut store = Store::create_fresh(&dir).unwrap();
        let ops = [
            Mutation::SetAttr {
                name: "p8".to_string(),
                criticality: Some(2),
                throughput: None,
                timing: None,
            },
            Mutation::FailNode { node: "hw2".to_string() },
            Mutation::RestoreNode { node: "hw2".to_string() },
        ];
        for (i, m) in ops.iter().enumerate() {
            model.apply(m).unwrap();
            store.append(model.seq(), m).unwrap();
            if i == 0 {
                store.snapshot(model.seq(), &model.state_json()).unwrap();
            }
        }
        drop(store);

        let (_store2, rec) = Store::open_resume(&dir).unwrap();
        let (state, snap_seq) = rec.snapshot.expect("snapshot written");
        assert_eq!(snap_seq, 1);
        assert_eq!(rec.replay.len(), 2, "only the post-snapshot suffix");
        let mut recovered = LiveModel::from_state(&state).unwrap();
        for (seq, m) in &rec.replay {
            recovered.apply(m).unwrap();
            assert_eq!(recovered.seq(), *seq);
        }
        assert_eq!(
            recovered.state_json().to_string_compact(),
            model.state_json().to_string_compact(),
            "replayed model is byte-identical"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_journal_lines_are_reported_with_position() {
        let dir = tmpdir("corrupt");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("journal.jsonl"), "{\"seq\":1,\"mutation\"\n").unwrap();
        let err = Store::open_resume(&dir).unwrap_err();
        assert!(err.contains("journal line 1"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }
}
