//! Durability: snapshot + journal under one state directory, with every
//! write-path operation routed through a named fault-injection site.
//!
//! Layout (all substrate JSON, one value per file/line):
//!
//! * `snapshot.json` — `{"schema":"fcm-serve-snapshot/v1","seq":N,
//!   "state":{...},"written_unix_ms":T}` where `state` is
//!   [`crate::LiveModel::state_json`] output. Written to a temp file in
//!   the same directory, fsynced, atomically renamed, and the parent
//!   directory fsynced, so a crash never leaves a torn or unlinked
//!   snapshot. Orphaned `snapshot.json.tmp` files from a crash between
//!   write and rename are removed on startup.
//! * `journal.jsonl` — one `{"mutation":{...},"seq":N}` line per
//!   accepted mutation, in canonical [`crate::proto::mutation_to_json`]
//!   form, written whole-line to the OS. The writer appends *after*
//!   applying and *before* replying, so every acknowledged mutation is
//!   durable.
//!
//! Recovery (`--resume`) loads the snapshot (if any), then replays the
//! journal suffix with `seq > snapshot.seq`. A *torn tail* — a final
//! journal segment with no trailing newline, the only artefact a
//! mid-write crash can leave — is silently dropped and truncated away
//! (crash-consistent: its mutation was never acknowledged). A
//! newline-*terminated* line that fails to parse is real corruption and
//! is reported with its line number (exit-code-2 class). Mutations are
//! deterministic functions of model state, so replay reconstructs the
//! crashed model byte-identically — `scripts/verify.sh` pins this with
//! a `dump` byte-compare against a straight-through run, and
//! `crashdrill` pins it at every enumerated IO site.
//!
//! ## IO-site catalog
//!
//! | site | operation |
//! |---|---|
//! | `journal.append.write` | one whole journal line to the OS |
//! | `journal.append.flush` | flush of the journal handle |
//! | `journal.probe` | re-arm probe: repair torn tail, reopen append |
//! | `snapshot.tmp.write` | snapshot document into `snapshot.json.tmp` |
//! | `snapshot.tmp.fsync` | fsync of the temp file before rename |
//! | `snapshot.rename` | atomic rename onto `snapshot.json` |
//! | `snapshot.dir.fsync` | fsync of the state directory after rename |
//!
//! Every site consults the store's [`FaultInjector`] first; the
//! production plan is [`FaultPlan::none`], whose passive path is a
//! single bool load. Injected failures return
//! `"injected <kind> at <site>"` errors; torn kinds first write a
//! strict prefix of the data, which is exactly the on-disk state the
//! torn-tail rule above recovers from.
//!
//! The only wall-clock read in the crate is the snapshot metadata
//! timestamp (`written_unix_ms`); it is deliberately *outside* the
//! `state` object so state comparisons stay byte-exact.

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

use fcm_substrate::fault::{Fault, FaultInjector, FaultKind, FaultPlan};
use fcm_substrate::Json;

use crate::proto::{self, Mutation};

/// Snapshot-file schema tag.
pub const SNAPSHOT_SCHEMA: &str = "fcm-serve-snapshot/v1";

const SNAPSHOT: &str = "snapshot.json";
const SNAPSHOT_TMP: &str = "snapshot.json.tmp";
const JOURNAL: &str = "journal.jsonl";

/// An open state directory: the journal writer, snapshot paths, and the
/// fault injector every write-path operation consults.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    journal: File,
    inj: Arc<FaultInjector>,
}

/// What resume recovered from disk.
#[derive(Debug)]
pub struct Recovered {
    /// Snapshot `state` object and its seq, when a snapshot existed.
    pub snapshot: Option<(Json, u64)>,
    /// Journal suffix to replay: `(seq, mutation)` with seq ascending,
    /// already filtered to entries newer than the snapshot.
    pub replay: Vec<(u64, Mutation)>,
}

fn io_err(what: &str, path: &Path, e: &std::io::Error) -> String {
    format!("{what} {}: {e}", path.display())
}

/// Outcome of a fault-site decision: proceed, or fail with this error
/// (after `torn` prefix bytes of a write-class payload were transferred).
fn injected_err(kind: FaultKind, site: &str) -> String {
    format!("injected {} at {site}", kind.token())
}

impl Store {
    /// Creates/truncates the state directory for a fresh run, with
    /// fault injection disabled ([`FaultPlan::none`]).
    ///
    /// # Errors
    ///
    /// Directory creation or journal-open failure (exit-code-2 class).
    pub fn create_fresh(dir: &Path) -> Result<Store, String> {
        Store::create_fresh_with(dir, Arc::new(FaultInjector::new(&FaultPlan::none())))
    }

    /// [`Store::create_fresh`] with an explicit injector.
    ///
    /// # Errors
    ///
    /// Directory creation or journal-open failure (exit-code-2 class).
    pub fn create_fresh_with(dir: &Path, inj: Arc<FaultInjector>) -> Result<Store, String> {
        fs::create_dir_all(dir).map_err(|e| io_err("create state dir", dir, &e))?;
        remove_orphan_tmp(dir)?;
        let snap = dir.join(SNAPSHOT);
        if snap.exists() {
            fs::remove_file(&snap).map_err(|e| io_err("remove stale snapshot", &snap, &e))?;
        }
        let jpath = dir.join(JOURNAL);
        let journal = File::create(&jpath).map_err(|e| io_err("create journal", &jpath, &e))?;
        Ok(Store {
            dir: dir.to_path_buf(),
            journal,
            inj,
        })
    }

    /// Opens an existing state directory with fault injection disabled,
    /// returning whatever snapshot and journal suffix survive; a torn
    /// journal tail is truncated away and the journal reopened for
    /// append.
    ///
    /// # Errors
    ///
    /// Unreadable/corrupt snapshot or journal, or journal-open failure.
    pub fn open_resume(dir: &Path) -> Result<(Store, Recovered), String> {
        Store::open_resume_with(dir, Arc::new(FaultInjector::new(&FaultPlan::none())))
    }

    /// [`Store::open_resume`] with an explicit injector. Recovery reads
    /// are never gated — resume must work on the post-crash disk image.
    ///
    /// # Errors
    ///
    /// Unreadable/corrupt snapshot or journal, or journal-open failure.
    pub fn open_resume_with(
        dir: &Path,
        inj: Arc<FaultInjector>,
    ) -> Result<(Store, Recovered), String> {
        fs::create_dir_all(dir).map_err(|e| io_err("create state dir", dir, &e))?;
        remove_orphan_tmp(dir)?;
        let recovered = read_recovered(dir)?;
        let jpath = dir.join(JOURNAL);
        truncate_torn_tail(&jpath)?;
        let journal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&jpath)
            .map_err(|e| io_err("append journal", &jpath, &e))?;
        Ok((
            Store {
                dir: dir.to_path_buf(),
                journal,
                inj,
            },
            recovered,
        ))
    }

    /// The injector this store consults (for counters and crash latch).
    #[must_use]
    pub fn injector(&self) -> &Arc<FaultInjector> {
        &self.inj
    }

    /// The state directory this store persists into.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Appends one accepted mutation as a whole line and flushes it to
    /// the OS before the caller acknowledges the client.
    ///
    /// # Errors
    ///
    /// Journal write failure (real or injected) — the daemon responds
    /// by entering degraded mode, not by dying.
    pub fn append(&mut self, seq: u64, m: &Mutation) -> Result<(), String> {
        let mut line = Json::object()
            .set("mutation", proto::mutation_to_json(m))
            .set("seq", seq)
            .to_string_compact();
        line.push('\n');
        let jpath = self.dir.join(JOURNAL);
        self.gated_write("journal.append.write", line.as_bytes(), &jpath)?;
        let site = "journal.append.flush";
        match self.inj.hit(site) {
            Fault::Pass => self
                .journal
                .flush()
                .map_err(|e| io_err("flush journal", &jpath, &e)),
            Fault::Fail(kind) => {
                note_injection();
                Err(injected_err(kind, site))
            }
        }
    }

    /// Re-arm probe after a journal failure: verifies the injector (and
    /// disk) will accept journal writes again, repairs any torn tail
    /// the failure left (truncate to the last complete line), and
    /// reopens the append handle.
    ///
    /// # Errors
    ///
    /// The fault is still armed, or the repair itself fails.
    pub fn probe(&mut self) -> Result<(), String> {
        let site = "journal.probe";
        if let Fault::Fail(kind) = self.inj.hit(site) {
            note_injection();
            return Err(injected_err(kind, site));
        }
        let jpath = self.dir.join(JOURNAL);
        truncate_torn_tail(&jpath)?;
        self.journal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&jpath)
            .map_err(|e| io_err("append journal", &jpath, &e))?;
        Ok(())
    }

    /// Writes a snapshot of `state` at `seq`: temp file + fsync +
    /// atomic rename + parent-directory fsync.
    ///
    /// # Errors
    ///
    /// Temp-file write, fsync, or rename failure.
    pub fn snapshot(&mut self, seq: u64, state: &Json) -> Result<(), String> {
        let written_unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(0, |d| d.as_millis() as u64);
        let doc = Json::object()
            .set("schema", SNAPSHOT_SCHEMA)
            .set("seq", seq)
            .set("state", state.clone())
            .set("written_unix_ms", written_unix_ms);
        let tmp = self.dir.join(SNAPSHOT_TMP);
        let fin = self.dir.join(SNAPSHOT);
        let payload = doc.to_string_compact() + "\n";

        let mut tmp_file = File::create(&tmp).map_err(|e| io_err("write snapshot", &tmp, &e))?;
        {
            let site = "snapshot.tmp.write";
            match self.inj.hit(site) {
                Fault::Pass => tmp_file
                    .write_all(payload.as_bytes())
                    .map_err(|e| io_err("write snapshot", &tmp, &e))?,
                Fault::Fail(kind) => {
                    if kind.is_torn() {
                        let _ = tmp_file.write_all(&payload.as_bytes()[..payload.len() / 2]);
                    }
                    note_injection();
                    return Err(injected_err(kind, site));
                }
            }
        }
        self.gated("snapshot.tmp.fsync", || {
            tmp_file.sync_all().map_err(|e| io_err("fsync snapshot", &tmp, &e))
        })?;
        drop(tmp_file);
        self.gated("snapshot.rename", || {
            fs::rename(&tmp, &fin).map_err(|e| io_err("rename snapshot", &fin, &e))
        })?;
        self.gated("snapshot.dir.fsync", || {
            File::open(&self.dir)
                .and_then(|d| d.sync_all())
                .map_err(|e| io_err("fsync state dir", &self.dir, &e))
        })
    }

    /// A byte write through the injector: torn kinds transfer a strict
    /// prefix before failing.
    fn gated_write(&mut self, site: &str, bytes: &[u8], path: &Path) -> Result<(), String> {
        match self.inj.hit(site) {
            Fault::Pass => self
                .journal
                .write_all(bytes)
                .map_err(|e| io_err("append journal", path, &e)),
            Fault::Fail(kind) => {
                if kind.is_torn() {
                    let _ = self.journal.write_all(&bytes[..bytes.len() / 2]);
                    let _ = self.journal.flush();
                }
                note_injection();
                Err(injected_err(kind, site))
            }
        }
    }

    /// A non-byte operation (fsync/rename) through the injector.
    fn gated(&self, site: &str, op: impl FnOnce() -> Result<(), String>) -> Result<(), String> {
        match self.inj.hit(site) {
            Fault::Pass => op(),
            Fault::Fail(kind) => {
                note_injection();
                Err(injected_err(kind, site))
            }
        }
    }
}

fn note_injection() {
    fcm_obs::counter_add("serve.faults_injected", 1);
}

/// Removes a `snapshot.json.tmp` orphaned by a crash between temp write
/// and rename.
fn remove_orphan_tmp(dir: &Path) -> Result<(), String> {
    let tmp = dir.join(SNAPSHOT_TMP);
    if tmp.exists() {
        fs::remove_file(&tmp).map_err(|e| io_err("remove orphan snapshot tmp", &tmp, &e))?;
    }
    Ok(())
}

/// Physically truncates a torn (newline-less) final segment so appends
/// continue from a complete line.
fn truncate_torn_tail(jpath: &Path) -> Result<(), String> {
    if !jpath.exists() {
        return Ok(());
    }
    let bytes = fs::read(jpath).map_err(|e| io_err("read journal", jpath, &e))?;
    if bytes.is_empty() || bytes.ends_with(b"\n") {
        return Ok(());
    }
    let keep = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1);
    let f = OpenOptions::new()
        .write(true)
        .open(jpath)
        .map_err(|e| io_err("repair journal", jpath, &e))?;
    f.set_len(keep as u64)
        .map_err(|e| io_err("repair journal", jpath, &e))?;
    f.sync_all().map_err(|e| io_err("repair journal", jpath, &e))
}

/// Read-only recovery of the durable state in `dir`: snapshot plus the
/// replayable journal suffix. Never writes — this is also the rollback
/// path the writer uses when entering degraded mode on a possibly
/// failing disk. A torn final segment (no trailing newline) is dropped
/// silently; a newline-terminated unparseable line is an error.
///
/// # Errors
///
/// Unreadable/corrupt snapshot, or mid-file journal corruption (with
/// line number).
pub fn read_recovered(dir: &Path) -> Result<Recovered, String> {
    let snap_path = dir.join(SNAPSHOT);
    let snapshot = if snap_path.exists() {
        let text =
            fs::read_to_string(&snap_path).map_err(|e| io_err("read snapshot", &snap_path, &e))?;
        let json = Json::parse(&text).map_err(|e| format!("corrupt snapshot: {e}"))?;
        if json.get("schema").and_then(Json::as_str) != Some(SNAPSHOT_SCHEMA) {
            return Err(format!("snapshot is not {SNAPSHOT_SCHEMA}"));
        }
        let seq = json
            .get("seq")
            .and_then(Json::as_f64)
            .ok_or("snapshot missing \"seq\"")? as u64;
        let state = json.get("state").cloned().ok_or("snapshot missing \"state\"")?;
        Some((state, seq))
    } else {
        None
    };
    let base_seq = snapshot.as_ref().map_or(0, |&(_, s)| s);

    let jpath = dir.join(JOURNAL);
    let mut replay = Vec::new();
    if jpath.exists() {
        let bytes = fs::read(&jpath).map_err(|e| io_err("read journal", &jpath, &e))?;
        // Only complete (newline-terminated) lines are journal entries;
        // a trailing newline-less segment is the torn tail of a crashed
        // append and carries an unacknowledged mutation — drop it.
        let complete = match bytes.iter().rposition(|&b| b == b'\n') {
            Some(p) => &bytes[..=p],
            None => &[][..],
        };
        let text = std::str::from_utf8(complete)
            .map_err(|e| format!("corrupt journal (not UTF-8): {e}"))?;
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let entry = Json::parse(line)
                .map_err(|e| format!("corrupt journal line {}: {e}", lineno + 1))?;
            let seq = entry
                .get("seq")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("journal line {} missing \"seq\"", lineno + 1))?
                as u64;
            let m = entry
                .get("mutation")
                .ok_or_else(|| format!("journal line {} missing \"mutation\"", lineno + 1))?;
            let mutation = proto::mutation_from_json(m)
                .map_err(|e| format!("journal line {}: {e}", lineno + 1))?;
            if seq > base_seq {
                replay.push((seq, mutation));
            }
        }
    }
    replay.sort_by_key(|&(s, _)| s);
    Ok(Recovered { snapshot, replay })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LiveModel;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("fcm-serve-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn ops() -> [Mutation; 3] {
        [
            Mutation::SetAttr {
                name: "p8".to_string(),
                criticality: Some(2),
                throughput: None,
                timing: None,
            },
            Mutation::FailNode { node: "hw2".to_string() },
            Mutation::RestoreNode { node: "hw2".to_string() },
        ]
    }

    #[test]
    fn fresh_then_resume_replays_the_suffix() {
        let dir = tmpdir("replay");
        let mut model = LiveModel::new("paper").unwrap();
        let mut store = Store::create_fresh(&dir).unwrap();
        for (i, m) in ops().iter().enumerate() {
            model.apply(m).unwrap();
            store.append(model.seq(), m).unwrap();
            if i == 0 {
                store.snapshot(model.seq(), &model.state_json()).unwrap();
            }
        }
        drop(store);

        let (_store2, rec) = Store::open_resume(&dir).unwrap();
        let (state, snap_seq) = rec.snapshot.expect("snapshot written");
        assert_eq!(snap_seq, 1);
        assert_eq!(rec.replay.len(), 2, "only the post-snapshot suffix");
        let mut recovered = LiveModel::from_state(&state).unwrap();
        for (seq, m) in &rec.replay {
            recovered.apply(m).unwrap();
            assert_eq!(recovered.seq(), *seq);
        }
        assert_eq!(
            recovered.state_json().to_string_compact(),
            model.state_json().to_string_compact(),
            "replayed model is byte-identical"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_journal_lines_are_reported_with_position() {
        let dir = tmpdir("corrupt");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("journal.jsonl"), "{\"seq\":1,\"mutation\"\n").unwrap();
        let err = Store::open_resume(&dir).unwrap_err();
        assert!(err.contains("journal line 1"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_final_line_is_dropped_and_truncated() {
        let dir = tmpdir("torn");
        let mut model = LiveModel::new("paper").unwrap();
        let mut store = Store::create_fresh(&dir).unwrap();
        let m = &ops()[0];
        model.apply(m).unwrap();
        store.append(model.seq(), m).unwrap();
        drop(store);
        // Simulate a crash mid-append: half of a second line.
        let jpath = dir.join("journal.jsonl");
        let mut f = OpenOptions::new().append(true).open(&jpath).unwrap();
        f.write_all(b"{\"mutation\":{\"op\":\"fail_no").unwrap();
        drop(f);

        let (_store2, rec) = Store::open_resume(&dir).unwrap();
        assert_eq!(rec.replay.len(), 1, "torn tail dropped");
        let bytes = fs::read(&jpath).unwrap();
        assert!(bytes.ends_with(b"\n"), "tail physically truncated");
        assert_eq!(
            bytes.iter().filter(|&&b| b == b'\n').count(),
            1,
            "exactly the complete line survives"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn orphan_snapshot_tmp_is_cleaned_on_startup() {
        let dir = tmpdir("orphan");
        fs::create_dir_all(&dir).unwrap();
        let tmp = dir.join("snapshot.json.tmp");
        fs::write(&tmp, "{half a snapsh").unwrap();
        let _ = Store::open_resume(&dir).unwrap();
        assert!(!tmp.exists(), "orphan tmp removed on resume");
        fs::write(&tmp, "{half a snapsh").unwrap();
        let _ = Store::create_fresh(&dir).unwrap();
        assert!(!tmp.exists(), "orphan tmp removed on fresh start");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_faults_fail_the_gated_sites() {
        let dir = tmpdir("inject");
        let plan = FaultPlan::parse("journal.append.write:short@1").unwrap();
        let inj = Arc::new(FaultInjector::new(&plan));
        let mut model = LiveModel::new("paper").unwrap();
        let mut store = Store::create_fresh_with(&dir, Arc::clone(&inj)).unwrap();
        let all = ops();
        model.apply(&all[0]).unwrap();
        store.append(model.seq(), &all[0]).unwrap();
        model.apply(&all[1]).unwrap();
        let err = store.append(model.seq(), &all[1]).unwrap_err();
        assert!(err.contains("injected short at journal.append.write"), "{err}");
        assert_eq!(inj.injected(), 1);
        // The short write left a torn tail; recovery sees only line 1.
        let rec = read_recovered(&dir).unwrap();
        assert_eq!(rec.replay.len(), 1);
        // The probe repairs the tail and appends succeed again.
        store.probe().unwrap();
        store.append(2, &all[1]).unwrap();
        let rec = read_recovered(&dir).unwrap();
        assert_eq!(rec.replay.len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn none_plan_store_snapshots_and_dir_are_fsynced() {
        let dir = tmpdir("fsync");
        let mut model = LiveModel::new("paper").unwrap();
        let mut store = Store::create_fresh(&dir).unwrap();
        let m = &ops()[0];
        model.apply(m).unwrap();
        store.append(model.seq(), m).unwrap();
        store.snapshot(model.seq(), &model.state_json()).unwrap();
        assert!(dir.join("snapshot.json").exists());
        assert!(!dir.join("snapshot.json.tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
