//! `fcm-serve`: the online integration service.
//!
//! The paper's framework is interactive by nature — influence (Eq. 2/4),
//! separation (Eq. 3), admission, and placement are meant to be
//! re-evaluated as the system under design evolves. This crate turns the
//! batch analyses of the lower layers into a long-running daemon holding
//! a [`model::LiveModel`]: a mutable SW graph whose node-level Eq. 4
//! influence matrix is maintained *incrementally* (via the
//! `fcm_alloc::pipeline` helpers — never a full recondense after
//! startup), plus a concrete placement kept feasible per edit through
//! the same admission/anti-affinity machinery the failover path uses.
//!
//! The pieces:
//!
//! * [`proto`] — the line-JSON wire protocol (`fcm-serve/v1`): five
//!   mutations, a read-only query surface, structured error responses;
//! * [`model`] — the live model: gate-checked mutation application and
//!   bounded-latency queries;
//! * [`store`] — durability: an append-only mutation journal plus
//!   periodic/on-shutdown snapshots (atomic rename), replayed by
//!   `fcm-serve --resume` to a byte-identical model;
//! * [`server`] — the daemon: one writer thread serializes mutations
//!   ahead of a read-mostly query pool (one thread per connection);
//! * [`events`] — the telemetry event bus: writer-serialized events
//!   (mutations, degraded/re-arm transitions, repr flips, stats
//!   heartbeats) fanned out to bounded per-session subscriber queues
//!   (`subscribe` op) and the `fcm-obs` flight recorder;
//! * [`gen`] — the deterministic seeded load generator behind the
//!   `servegen` bin and the `serve_latency` bench;
//! * [`drill`] — the crash-point durability matrix: enumerate every IO
//!   site a scripted session reaches (via `fcm_substrate::fault`
//!   tracing), simulate a crash at each, and verify prefix-consistent
//!   recovery (the `crashdrill` bin and `crash_matrix` test);
//! * [`signal`] — the SIGTERM/SIGINT drain flag (the one `unsafe` block
//!   in the crate; no libc crate, a raw `signal(2)` binding).
//!
//! I/O-edge exemptions: this is the only crate allowed to touch
//! `std::net`/`std::os::unix::net` and `SystemTime` (snapshot metadata
//! timestamps) — enforced by `srclint`. Neither ever feeds an analysis:
//! all model state and protocol payloads are substrate JSON.

pub mod drill;
pub mod events;
pub mod gen;
pub mod model;
pub mod proto;
pub mod server;
pub mod signal;
pub mod store;

pub use model::LiveModel;
pub use proto::{Mutation, Query, Request};
pub use server::{Handle, Listen, ServerConfig};
