//! Crash-point durability matrix: enumerate every IO site a scripted
//! session reaches, simulate a crash at each one in-process, resume,
//! and check the recovered model is a prefix-consistent replay.
//!
//! The paper's integration argument is that dependability must be
//! re-verified after every change; the verify.sh kill -9 drill checks
//! exactly *one* crash point per run. This module closes the gap with
//! exhaustion instead of sampling:
//!
//! 1. **Enumerate.** Run a deterministic golden session (a fixed
//!    mutation script against the committed model, snapshotting every
//!    [`SNAPSHOT_EVERY`] mutations) through a *tracing* injector with
//!    the empty plan, recording the exact sequence of IO-site hits and
//!    the canonical model state after every accepted mutation.
//! 2. **Crash everywhere.** For each recorded hit `k`, re-run the same
//!    session in a fresh directory under [`FaultPlan::crash_at_hit`]
//!    `(k)` — and, for byte-write sites, a second *torn* variant that
//!    dies mid-write, leaving a partial line or partial temp file.
//! 3. **Resume + verify.** Recover with the production resume path and
//!    assert the recovered state (a) lost no acknowledged mutation and
//!    (b) is byte-identical to the reference state at the recovered
//!    seq — i.e. recovery always lands exactly *on* the reference
//!    trajectory, never beside it.
//!
//! The recovered seq may exceed the acknowledged count by at most the
//! one mutation whose journal line hit the disk before the crash killed
//! the acknowledgement — durable-but-unacked, the unavoidable ambiguity
//! of any write-ahead design.
//!
//! Shared by `crates/serve/tests/crash_matrix.rs` (tier-1), the
//! `crashdrill` bin (CI gate in scripts/verify.sh), and the
//! `fault_recovery` bench.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use fcm_substrate::fault::{FaultInjector, FaultPlan};
use fcm_substrate::Json;

use crate::model::LiveModel;
use crate::proto::Mutation;
use crate::store::{self, Store};

/// Snapshot period of the golden session: small enough that the matrix
/// crosses several snapshot boundaries.
pub const SNAPSHOT_EVERY: usize = 3;

/// One simulated crash point and its verdict.
#[derive(Debug)]
pub struct CrashCase {
    /// Hit ordinal (0-based) at which the crash was injected.
    pub hit: u64,
    /// The IO site crashed at (from the reference trace).
    pub site: String,
    /// Whether the crash tore the write (partial bytes on disk).
    pub torn: bool,
    /// Mutations acknowledged before the crash.
    pub acked: usize,
    /// Seq the resumed model recovered to.
    pub recovered_seq: u64,
    /// `None` = prefix-consistent; `Some(why)` = durability violation.
    pub failure: Option<String>,
}

/// The whole matrix run.
#[derive(Debug)]
pub struct DrillReport {
    /// Model the session ran against.
    pub model: String,
    /// Site-hit sequence of the reference session.
    pub trace: Vec<String>,
    /// Every simulated crash, in hit order (torn variant after plain).
    pub cases: Vec<CrashCase>,
}

impl DrillReport {
    /// Cases that violated prefix consistency.
    #[must_use]
    pub fn failures(&self) -> Vec<&CrashCase> {
        self.cases.iter().filter(|c| c.failure.is_some()).collect()
    }

    /// The report as a `fcm-crashdrill/v1` JSON document.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let cases = Json::array(self.cases.iter().map(|c| {
            let mut j = Json::object()
                .set("acked", c.acked as u64)
                .set("hit", c.hit)
                .set("ok", c.failure.is_none())
                .set("recovered_seq", c.recovered_seq)
                .set("site", c.site.as_str())
                .set("torn", c.torn);
            if let Some(why) = &c.failure {
                j = j.set("failure", why.as_str());
            }
            j
        }));
        Json::object()
            .set("cases", cases)
            .set("crash_points", self.cases.len() as u64)
            .set("failed", self.failures().len() as u64)
            .set("model", self.model.as_str())
            .set("schema", "fcm-crashdrill/v1")
            .set("sites_enumerated", self.trace.len() as u64)
    }
}

/// The deterministic golden session: a mutation script touching every
/// mutation kind, pre-validated against `model_name` so every entry is
/// accepted when applied in order. `quick` trims the script for the
/// verify.sh gate; the full script is the tier-1 matrix.
///
/// # Errors
///
/// Unknown model name.
pub fn golden_session(model_name: &str, quick: bool) -> Result<Vec<Mutation>, String> {
    let mut probe = LiveModel::new(model_name)?;
    let state = probe.state_json();
    let fcms = state.get("fcms").and_then(Json::as_array).unwrap_or(&[]);
    let anchor = fcms
        .first()
        .and_then(|f| f.get("name"))
        .and_then(Json::as_str)
        .ok_or("model has no FCMs to anchor the drill session")?
        .to_string();
    let host = fcms
        .iter()
        .find_map(|f| f.get("host").and_then(Json::as_str))
        .ok_or("model has no hosted FCM to derive a HW node from")?
        .to_string();

    let adds = if quick { 4 } else { 9 };
    let mut script: Vec<Mutation> = Vec::new();
    for i in 0..adds {
        script.push(Mutation::AddFcm {
            name: format!("drill{i}"),
            criticality: (i % 3) as u32,
            throughput: 0.5 + 0.25 * i as f64,
            security: 0,
            timing: None,
            influences: vec![(anchor.clone(), 0.2 + 0.05 * (i % 5) as f64)],
            influenced_by: Vec::new(),
            contract: None,
        });
        if i % 3 == 2 {
            script.push(Mutation::SetAttr {
                name: format!("drill{i}"),
                criticality: Some(2),
                throughput: None,
                timing: None,
            });
        }
    }
    script.push(Mutation::FailNode { node: host.clone() });
    script.push(Mutation::RestoreNode { node: host });
    if !quick {
        script.push(Mutation::RemoveFcm {
            name: "drill0".to_string(),
        });
    }
    // Keep only the prefix-valid accepted mutations (e.g. a model whose
    // gates reject one of the adds): the session must be replayable
    // end-to-end so the reference trajectory is well-defined.
    let mut accepted = Vec::with_capacity(script.len());
    for m in script {
        if probe.apply(&m).is_ok() {
            accepted.push(m);
        }
    }
    Ok(accepted)
}

fn drill_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fcm-crashdrill-{tag}-{}", std::process::id()))
}

/// Runs the golden session once with a tracing (but never-failing)
/// injector: returns the site-hit trace and `states[i]` = canonical
/// state string after `i` accepted mutations.
fn reference_run(
    model_name: &str,
    session: &[Mutation],
) -> Result<(Vec<String>, Vec<String>), String> {
    let dir = drill_dir(&format!("{model_name}-{}-ref", session.len()));
    let _ = fs::remove_dir_all(&dir);
    let inj = Arc::new(FaultInjector::tracing(&FaultPlan::none()));
    let mut store = Store::create_fresh_with(&dir, Arc::clone(&inj))?;
    let mut model = LiveModel::new(model_name)?;
    let mut states = vec![model.state_json().to_string_compact()];
    for (i, m) in session.iter().enumerate() {
        model.apply(m).map_err(|e| format!("reference apply {i}: {e}"))?;
        store.append(model.seq(), m)?;
        states.push(model.state_json().to_string_compact());
        if (i + 1) % SNAPSHOT_EVERY == 0 {
            store.snapshot(model.seq(), &model.state_json())?;
        }
    }
    drop(store);
    let _ = fs::remove_dir_all(&dir);
    Ok((inj.trace(), states))
}

/// One crash case: run the session under `crash_at_hit(k, torn)`, stop
/// at the simulated death, resume with the production path, and verify
/// prefix consistency against the reference trajectory.
fn crash_case(
    model_name: &str,
    session: &[Mutation],
    k: u64,
    site: &str,
    torn: bool,
    ref_states: &[String],
) -> Result<CrashCase, String> {
    let dir = drill_dir(&format!(
        "{model_name}-{}-k{k}{}",
        session.len(),
        if torn { "t" } else { "" }
    ));
    let _ = fs::remove_dir_all(&dir);
    let inj = Arc::new(FaultInjector::new(&FaultPlan::crash_at_hit(k, torn)));
    let mut store = Store::create_fresh_with(&dir, Arc::clone(&inj))?;
    let mut model = LiveModel::new(model_name)?;
    let mut acked = 0usize;
    'session: for (i, m) in session.iter().enumerate() {
        model.apply(m).map_err(|e| format!("drill apply {i}: {e}"))?;
        if store.append(model.seq(), m).is_err() {
            // The process died mid-append. The flight recorder treats a
            // simulated crash like a real one: capture the moment, then
            // best-effort dump (a no-op unless the drill armed it).
            fcm_obs::recorder::record(
                "crash_point",
                Json::object().set("site", site).set("hit", k).set("torn", torn),
            );
            let _ = fcm_obs::recorder::auto_dump("crash_point");
            break 'session;
        }
        acked += 1;
        if (i + 1) % SNAPSHOT_EVERY == 0 && store.snapshot(model.seq(), &model.state_json()).is_err()
        {
            // Died mid-snapshot; journal has everything.
            fcm_obs::recorder::record(
                "crash_point",
                Json::object().set("site", site).set("hit", k).set("torn", torn),
            );
            let _ = fcm_obs::recorder::auto_dump("crash_point");
            break 'session;
        }
    }
    drop(store);
    drop(model);

    // Resume exactly as `--resume` would: open, recover, replay.
    let failure = match Store::open_resume(&dir) {
        Err(e) => Some(format!("resume failed: {e}")),
        Ok((_store, rec)) => match rebuild(model_name, &rec) {
            Err(e) => Some(format!("rebuild failed: {e}")),
            Ok(recovered) => verify_prefix(&recovered, acked, ref_states),
        },
    };
    let recovered_seq = match failure {
        None => recovered_seq_of(&dir, model_name),
        Some(_) => 0,
    };
    let _ = fs::remove_dir_all(&dir);
    Ok(CrashCase {
        hit: k,
        site: site.to_string(),
        torn,
        acked,
        recovered_seq,
        failure,
    })
}

fn rebuild(model_name: &str, rec: &store::Recovered) -> Result<LiveModel, String> {
    let mut model = match &rec.snapshot {
        Some((state, _)) => LiveModel::from_state(state)?,
        None => LiveModel::new(model_name)?,
    };
    for (seq, m) in &rec.replay {
        model
            .apply(m)
            .map_err(|e| format!("replay seq {seq}: {e}"))?;
        if model.seq() != *seq {
            return Err(format!("replay drift at seq {seq} (model {})", model.seq()));
        }
    }
    Ok(model)
}

fn verify_prefix(recovered: &LiveModel, acked: usize, ref_states: &[String]) -> Option<String> {
    let n = recovered.seq() as usize;
    if n < acked {
        return Some(format!(
            "lost acknowledged mutations: recovered seq {n} < acked {acked}"
        ));
    }
    if n >= ref_states.len() {
        return Some(format!(
            "recovered past the session: seq {n} of {} mutations",
            ref_states.len() - 1
        ));
    }
    let got = recovered.state_json().to_string_compact();
    if got != ref_states[n] {
        return Some(format!("state at seq {n} diverges from the reference"));
    }
    None
}

fn recovered_seq_of(dir: &std::path::Path, model_name: &str) -> u64 {
    store::read_recovered(dir)
        .and_then(|rec| rebuild(model_name, &rec))
        .map_or(0, |m| m.seq())
}

/// Runs the full crash-point matrix for `model_name`.
///
/// # Errors
///
/// Setup failures (unknown model, un-writable temp dir) — never a
/// durability violation, which is reported per-case instead.
pub fn run_matrix(model_name: &str, quick: bool) -> Result<DrillReport, String> {
    let session = golden_session(model_name, quick)?;
    let (trace, ref_states) = reference_run(model_name, &session)?;
    let mut cases = Vec::new();
    for (k, site) in trace.iter().enumerate() {
        cases.push(crash_case(model_name, &session, k as u64, site, false, &ref_states)?);
        // Byte-write sites get a second, nastier variant: die mid-write
        // with a strict prefix of the payload on disk.
        if site.ends_with(".write") {
            cases.push(crash_case(model_name, &session, k as u64, site, true, &ref_states)?);
        }
    }
    Ok(DrillReport {
        model: model_name.to_string(),
        trace,
        cases,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_session_is_deterministic_and_nonempty() {
        let a = golden_session("paper", false).unwrap();
        let b = golden_session("paper", false).unwrap();
        assert_eq!(
            a.iter().map(crate::proto::mutation_to_json).map(|j| j.to_string_compact()).collect::<Vec<_>>(),
            b.iter().map(crate::proto::mutation_to_json).map(|j| j.to_string_compact()).collect::<Vec<_>>(),
        );
        assert!(a.len() >= 10, "full session has enough mutations: {}", a.len());
        let q = golden_session("paper", true).unwrap();
        assert!(q.len() < a.len(), "quick session is a trimmed script");
    }

    #[test]
    fn reference_trace_covers_every_site_kind() {
        let session = golden_session("paper", false).unwrap();
        let (trace, states) = reference_run("paper", &session).unwrap();
        assert_eq!(states.len(), session.len() + 1);
        for site in [
            "journal.append.write",
            "journal.append.flush",
            "snapshot.tmp.write",
            "snapshot.tmp.fsync",
            "snapshot.rename",
            "snapshot.dir.fsync",
        ] {
            assert!(trace.iter().any(|s| s == site), "session never hits {site}");
        }
    }
}
