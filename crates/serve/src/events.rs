//! The serve-layer event bus: writer-serialized telemetry events
//! fanned out to per-session subscribers and the flight recorder.
//!
//! # Ordering
//!
//! Every event gets a global `eseq` from [`EventBus::publish`], which
//! is called from the writer thread's serialization point (and, for
//! degraded/re-arm transitions, from the same thread) — so the event
//! order every subscriber observes is *the* mutation order, and two
//! subscribers never see events transposed.
//!
//! # Backpressure
//!
//! Publishing never blocks and never waits on a socket: each subscriber
//! owns a bounded queue that overwrites its oldest entry when full,
//! counting the drop. A slow subscriber therefore costs the writer one
//! queue push per event, never a stall. Delivered events carry a
//! cumulative `"dropped"` field stamped at *pop* time; because drops
//! always evict the oldest queued event, every dropped event's `eseq`
//! is smaller than that of any event delivered later, which makes the
//! accounting exact: for consecutive deliveries `a` then `b`,
//! `b.eseq − a.eseq − 1 == b.dropped − a.dropped`. `servegen
//! --subscribe` asserts exactly this identity under load.
//!
//! Subscriptions are off by default and events are observations, never
//! inputs: nothing in the reply path reads the bus. When no subscriber
//! is attached and the flight recorder is off, [`EventBus::publish`]
//! is one atomic load plus an early return.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use fcm_substrate::Json;

/// Default per-subscriber queue bound.
pub const DEFAULT_SUB_QUEUE: usize = 1024;

/// One queued (not yet delivered) event.
struct QueuedEvent {
    eseq: u64,
    name: &'static str,
    /// Shared, unrendered payload: publish pushes one refcount per
    /// subscriber; the deep clone and JSON render happen at pop time,
    /// on the streamer's thread, never the writer's.
    detail: Arc<Json>,
}

struct SubState {
    queue: VecDeque<QueuedEvent>,
    /// Cumulative events dropped from this queue (oldest-evicted).
    dropped: u64,
    /// Events popped by the streamer.
    delivered: u64,
    closed: bool,
}

/// One session's subscription: a bounded queue drained by a dedicated
/// streamer thread.
pub struct Subscriber {
    id: u64,
    capacity: usize,
    max_events: Option<u64>,
    state: Mutex<SubState>,
    cv: Condvar,
}

/// What [`Subscriber::pop`] yields.
pub enum Pop {
    /// A rendered event line (newline-terminated).
    Line(String),
    /// The subscription is closed and the queue is drained.
    Closed,
}

/// What [`Subscriber::pop_batch`] yields.
pub enum PopBatch {
    /// Concatenated newline-terminated event lines plus the line count.
    Lines(String, u64),
    /// The subscription is closed and the queue is drained.
    Closed,
}

impl Subscriber {
    /// This subscription's bus id.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The delivery cut-off, when one was requested.
    #[must_use]
    pub fn max_events(&self) -> Option<u64> {
        self.max_events
    }

    /// Blocks for the next event; renders it with the *current*
    /// cumulative drop count (see the module docs for why that makes
    /// gap accounting exact). Returns [`Pop::Closed`] once the
    /// subscription is closed and drained.
    pub fn pop(&self) -> Pop {
        let mut st = self.state.lock().expect("subscriber lock");
        loop {
            if let Some(ev) = st.queue.pop_front() {
                st.delivered += 1;
                let mut line = (*ev.detail)
                    .clone()
                    .set("event", ev.name)
                    .set("eseq", ev.eseq)
                    .set("dropped", st.dropped)
                    .to_string_compact();
                line.push('\n');
                return Pop::Line(line);
            }
            if st.closed {
                return Pop::Closed;
            }
            st = self.cv.wait(st).expect("subscriber lock");
        }
    }

    /// Like [`Subscriber::pop`], but drains up to `max` queued events
    /// into one buffer — one socket write per batch instead of per
    /// line. Blocks until at least one event (or close) arrives, then
    /// sleeps `coalesce` before draining so a busy writer's burst lands
    /// in one batch: event *content and order* are untouched, delivery
    /// just lags by at most the coalesce window. (Telemetry consumers
    /// trade that lag for an order of magnitude fewer wakeups — on a
    /// small host, per-event streamer wakeups visibly tax the serving
    /// path they observe.) Returns the concatenated newline-terminated
    /// lines plus the line count.
    pub fn pop_batch(&self, max: u64, coalesce: std::time::Duration) -> PopBatch {
        loop {
            {
                let mut st = self.state.lock().expect("subscriber lock");
                loop {
                    if !st.queue.is_empty() {
                        break;
                    }
                    if st.closed {
                        return PopBatch::Closed;
                    }
                    st = self.cv.wait(st).expect("subscriber lock");
                }
            }
            if !coalesce.is_zero() {
                std::thread::sleep(coalesce);
            }
            // Pop under the lock, render outside it: a publisher
            // (holding the bus lock) must never wait on a subscriber
            // mid-render.
            let mut batch = Vec::new();
            {
                let mut st = self.state.lock().expect("subscriber lock");
                while (batch.len() as u64) < max {
                    let Some(ev) = st.queue.pop_front() else { break };
                    st.delivered += 1;
                    batch.push((ev, st.dropped));
                }
            }
            if batch.is_empty() {
                continue;
            }
            let n = batch.len() as u64;
            let mut lines = String::new();
            for (ev, dropped) in batch {
                lines.push_str(
                    &(*ev.detail)
                        .clone()
                        .set("event", ev.name)
                        .set("eseq", ev.eseq)
                        .set("dropped", dropped)
                        .to_string_compact(),
                );
                lines.push('\n');
            }
            return PopBatch::Lines(lines, n);
        }
    }

    /// `(delivered, dropped)` so far.
    #[must_use]
    pub fn counts(&self) -> (u64, u64) {
        let st = self.state.lock().expect("subscriber lock");
        (st.delivered, st.dropped)
    }

    /// Closes the subscription and wakes the streamer.
    pub fn close(&self) {
        self.state.lock().expect("subscriber lock").closed = true;
        self.cv.notify_all();
    }
}

struct BusInner {
    next_eseq: u64,
    next_sub_id: u64,
    subs: Vec<Arc<Subscriber>>,
}

/// The process-wide event bus (one per daemon).
pub struct EventBus {
    inner: Mutex<BusInner>,
    /// Live subscriber count, readable without the bus lock — the
    /// publish fast path when nobody is listening.
    consumers: AtomicUsize,
}

impl Default for EventBus {
    fn default() -> EventBus {
        EventBus::new()
    }
}

impl EventBus {
    /// An empty bus.
    #[must_use]
    pub fn new() -> EventBus {
        EventBus {
            inner: Mutex::new(BusInner {
                next_eseq: 0,
                next_sub_id: 0,
                subs: Vec::new(),
            }),
            consumers: AtomicUsize::new(0),
        }
    }

    /// Whether publishing has any observer (a subscriber or the flight
    /// recorder). When false, publishers may skip building event
    /// payloads entirely.
    #[must_use]
    pub fn has_consumers(&self) -> bool {
        self.consumers.load(Ordering::Relaxed) > 0 || fcm_obs::recorder::enabled()
    }

    /// Registers a subscriber; returns it plus the `eseq` its first
    /// observable event will carry.
    pub fn subscribe(&self, capacity: usize, max_events: Option<u64>) -> (Arc<Subscriber>, u64) {
        let mut bus = self.inner.lock().expect("bus lock");
        let sub = Arc::new(Subscriber {
            id: bus.next_sub_id,
            capacity: capacity.max(1),
            max_events,
            state: Mutex::new(SubState {
                queue: VecDeque::new(),
                dropped: 0,
                delivered: 0,
                closed: false,
            }),
            cv: Condvar::new(),
        });
        bus.next_sub_id += 1;
        bus.subs.push(Arc::clone(&sub));
        self.consumers.fetch_add(1, Ordering::Relaxed);
        (sub, bus.next_eseq)
    }

    /// Deregisters (and closes) a subscriber by id.
    pub fn unsubscribe(&self, id: u64) {
        let mut bus = self.inner.lock().expect("bus lock");
        if let Some(pos) = bus.subs.iter().position(|s| s.id == id) {
            let sub = bus.subs.remove(pos);
            self.consumers.fetch_sub(1, Ordering::Relaxed);
            sub.close();
        }
    }

    /// Publishes one event: assigns the next `eseq`, mirrors it into
    /// the flight recorder, and enqueues it on every open subscriber
    /// (overwrite-oldest + drop count when a queue is full). Returns
    /// the assigned `eseq`, or `None` when nothing observed it.
    pub fn publish(&self, name: &'static str, detail: Json) -> Option<u64> {
        if !self.has_consumers() {
            return None;
        }
        let mut bus = self.inner.lock().expect("bus lock");
        let eseq = bus.next_eseq;
        bus.next_eseq += 1;
        // One shared payload (with `eseq` baked in) for the recorder
        // and every subscriber: the whole fan-out is refcounts, no deep
        // copies on the writer thread. Pop-time rendering re-sets the
        // same `eseq`, so delivered bytes are unchanged.
        let detail = Arc::new(detail.set("eseq", eseq));
        if fcm_obs::recorder::enabled() {
            fcm_obs::recorder::record_arc(name, Arc::clone(&detail));
        }
        for sub in &bus.subs {
            let mut st = sub.state.lock().expect("subscriber lock");
            if st.closed {
                continue;
            }
            let was_empty = st.queue.is_empty();
            if st.queue.len() >= sub.capacity {
                st.queue.pop_front();
                st.dropped += 1;
            }
            st.queue.push_back(QueuedEvent {
                eseq,
                name,
                detail: Arc::clone(&detail),
            });
            drop(st);
            // Edge-triggered: a streamer that saw a non-empty queue is
            // already awake (or runnable) and will drain this event in
            // its current batch; waking it again per event only buys
            // context switches. (The lost-wakeup race is benign: a
            // streamer between its last pop and its next wait re-checks
            // the queue under the lock before sleeping.)
            if was_empty {
                sub.cv.notify_all();
            }
        }
        Some(eseq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_without_consumers_is_skipped() {
        let bus = EventBus::new();
        assert_eq!(bus.publish("ev", Json::object()), None);
        let (sub, next) = bus.subscribe(8, None);
        assert_eq!(next, 0, "eseq only advances when observed");
        assert_eq!(bus.publish("ev", Json::object()), Some(0));
        bus.unsubscribe(sub.id());
        assert_eq!(bus.publish("ev", Json::object()), None);
    }

    #[test]
    fn events_deliver_in_eseq_order_with_exact_drop_accounting() {
        let bus = EventBus::new();
        let (sub, _) = bus.subscribe(3, None);
        for i in 0..8u64 {
            bus.publish("tick", Json::object().set("i", i));
        }
        // Queue capacity 3: events 0..5 dropped, 5,6,7 retained.
        let mut prev: Option<(u64, u64)> = None;
        let mut seen = 0;
        sub.close();
        while let Pop::Line(line) = sub.pop() {
            let j = Json::parse(line.trim()).expect("event line");
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let eseq = j.get("eseq").and_then(Json::as_f64).unwrap() as u64;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let dropped = j.get("dropped").and_then(Json::as_f64).unwrap() as u64;
            if let Some((pe, pd)) = prev {
                assert_eq!(eseq - pe - 1, dropped - pd, "gap == drops");
            } else {
                assert_eq!(eseq, 5);
                assert_eq!(dropped, 5);
            }
            prev = Some((eseq, dropped));
            seen += 1;
        }
        assert_eq!(seen, 3);
        let (delivered, dropped) = sub.counts();
        assert_eq!((delivered, dropped), (3, 5));
    }

    #[test]
    fn closed_subscriber_stops_accumulating() {
        let bus = EventBus::new();
        let (sub, _) = bus.subscribe(8, None);
        bus.publish("a", Json::object());
        sub.close();
        bus.publish("b", Json::object());
        let mut n = 0;
        while let Pop::Line(_) = sub.pop() {
            n += 1;
        }
        assert_eq!(n, 1, "events after close are not queued");
    }
}
