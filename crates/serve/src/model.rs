//! The live model: gate-checked mutations with incremental Eq. 4
//! re-analysis, plus the read-only query surface.
//!
//! A [`LiveModel`] owns a mutable [`SwGraph`] together with the
//! node-level influence matrix, maintained **incrementally** through the
//! `fcm_alloc::pipeline` helpers: `add_fcm` grows the matrix by one
//! zero row/column and recombines only that row/column via Eq. 4
//! ([`pipeline::eq4_recombine_row_col`]); `remove_fcm` drops one
//! row/column ([`pipeline::shrink_row_col`]). No mutation ever performs
//! a full condensation — the one full condense happens at construction
//! and is counted, so callers can assert the hot path stays incremental.
//!
//! # The bitwise contract
//!
//! After any mutation sequence the matrix equals — bitwise — a full
//! `condense` over the current graph's singleton partition. This holds
//! because (a) `add_fcm` only adds edges incident to the new node, so
//! every other entry's edge bucket is untouched, and the new row/column
//! folds complement products over the edge list in insertion order —
//! the same association `condense` uses; (b) `remove_fcm` removes only
//! edges incident to the removed node and preserves the relative order
//! of the survivors. The protocol property tests pin this.
//!
//! Every mutation is validated through the PR 5 pre-flight gate
//! ([`fcm_check::gates::check_sw_graph`]) against a candidate graph
//! before anything is committed: a rejected mutation leaves the model
//! untouched and reports the rendered diagnostics.
//!
//! Placement is kept concrete per edit: each HW node carries the member
//! list, an exact [`Admission`] controller, and its throughput load.
//! `add_fcm` admission-probes and commits a host; `fail_node` re-places
//! victims with the same scoring the failover path uses (criticality
//! co-location burden, then load, then index) including the
//! displacement pass for protected victims.

use std::collections::{BTreeMap, BTreeSet};

use fcm_alloc::failover::{self, ShedPolicy};
use fcm_alloc::pipeline;
use fcm_alloc::sw::{SwEdge, SwGraph, SwNode};
use fcm_alloc::{Clustering, HwGraph, Mapping};
use fcm_check::{CertView, Certification, Certifier, Contract, ContractSet, Dirty, Severity};
use fcm_core::AttributeSet;
use fcm_graph::{condense, CombineRule, InfluenceMatrix, NodeIdx};
use fcm_sched::{Admission, Job, JobId};
use fcm_substrate::Json;
use fcm_workloads::{avionics, paper};

use crate::proto::{Mutation, Query};

/// State-schema tag embedded in dumps and snapshots.
pub const STATE_SCHEMA: &str = "fcm-serve-state/v1";

/// Names of the models a daemon can start from.
pub const MODEL_NAMES: [&str; 2] = ["paper", "avionics"];

/// Per-HW-node placement state (derived from the model; never
/// serialized — rebuilt deterministically on resume).
#[derive(Debug, Clone)]
struct HostState {
    /// Dense FCM indices hosted here.
    members: Vec<usize>,
    /// Exact EDF admission controller (job id = FCM dense index).
    admission: Admission,
    /// Summed throughput of the members.
    throughput: f64,
}

impl HostState {
    fn empty() -> HostState {
        HostState {
            members: Vec::new(),
            admission: Admission::new(),
            throughput: 0.0,
        }
    }
}

/// The long-lived mutable model behind the daemon.
#[derive(Debug, Clone)]
pub struct LiveModel {
    name: String,
    hw: HwGraph,
    graph: SwGraph,
    /// FCM name → dense node index.
    index: BTreeMap<String, usize>,
    /// Node-level Eq. 4 influence matrix, incrementally maintained.
    /// Dense for the committed workloads; flips to CSR automatically
    /// when a session grows past the sparse-policy threshold.
    influence: InfluenceMatrix,
    /// Host (HW index) per FCM; `None` = shed / unhosted.
    host_of: Vec<Option<usize>>,
    hosts: Vec<HostState>,
    failed: BTreeSet<usize>,
    shed: ShedPolicy,
    /// Accepted mutations (journal cursor).
    seq: u64,
    /// Full condensations performed by *this model* (1 at startup,
    /// carried over by resume; never incremented by a mutation).
    full_condenses: u64,
    /// Per-FCM rely-guarantee contracts (serialized with the state;
    /// empty = contracts not in use, certification skipped entirely).
    contracts: ContractSet,
    /// Incremental certifier. Derived state (a verdict cache over the
    /// graph + contracts), never serialized — resume re-certifies.
    certifier: Certifier,
    /// The certification from the last (re-)certification pass; `None`
    /// while no contracts are loaded.
    cert: Option<Certification>,
}

fn timing_job(attrs: &AttributeSet, id: usize) -> Option<Job> {
    attrs.timing.map(|t| t.to_job(id as JobId))
}

fn criticality(g: &SwGraph, v: usize) -> u32 {
    g.node(NodeIdx(v)).expect("valid index").attributes.criticality.0
}

fn throughput_of(g: &SwGraph, v: usize) -> f64 {
    g.node(NodeIdx(v)).expect("valid index").attributes.throughput.0
}

/// Whether `a` and `b` may never share a HW node (replica/separation
/// tags or an explicit replica link either way).
fn separated(g: &SwGraph, a: usize, b: usize) -> bool {
    let (a, b) = (NodeIdx(a), NodeIdx(b));
    let na = g.node(a).expect("valid index");
    let nb = g.node(b).expect("valid index");
    if na.must_separate_from(nb) {
        return true;
    }
    g.out_edges(a)
        .any(|(_, e)| e.to == b && matches!(e.weight, SwEdge::ReplicaLink))
        || g.out_edges(b)
            .any(|(_, e)| e.to == a && matches!(e.weight, SwEdge::ReplicaLink))
}

/// Anti-affinity, resources, pin and capacity (the constraints shedding
/// never relaxes), mirroring the failover path.
fn hard_constraints_ok(g: &SwGraph, hw: &HwGraph, hosts: &[HostState], h: usize, v: usize) -> bool {
    let node = hw.node(NodeIdx(h)).expect("host exists");
    let sw = g.node(NodeIdx(v)).expect("valid index");
    if !sw.required_resources.is_subset(&node.resources) {
        return false;
    }
    if let Some(pin) = &sw.pinned_to {
        if pin != &node.name {
            return false;
        }
    }
    if hosts[h].members.iter().any(|&m| separated(g, v, m)) {
        return false;
    }
    hosts[h].throughput + sw.attributes.throughput.0 <= node.capacity
}

/// Host preference score: (criticality co-location burden, load, index)
/// — identical to the failover path's, so online placement and
/// `propose_placement` agree.
type HostScore = (u64, f64, usize);

fn host_score(g: &SwGraph, host: &HostState, h: usize, v: usize, crit_v: u32) -> HostScore {
    let burden: u64 = host
        .members
        .iter()
        .map(|&m| u64::from(crit_v.min(criticality(g, m))))
        .sum();
    (burden, host.throughput + throughput_of(g, v), h)
}

fn score_lt(a: HostScore, b: HostScore) -> bool {
    a.0.cmp(&b.0)
        .then(a.1.partial_cmp(&b.1).expect("finite load"))
        .then(a.2.cmp(&b.2))
        .is_lt()
}

fn commit_to(g: &SwGraph, hosts: &mut [HostState], h: usize, v: usize) {
    let attrs = &g.node(NodeIdx(v)).expect("valid index").attributes;
    if let Some(job) = timing_job(attrs, v) {
        let ok = hosts[h].admission.try_admit(job);
        debug_assert!(ok, "probe admitted but commit failed");
    }
    hosts[h].throughput += attrs.throughput.0;
    hosts[h].members.push(v);
}

/// Best feasible host for `v` among the non-failed nodes, or `None`.
fn find_host(
    g: &SwGraph,
    hw: &HwGraph,
    hosts: &[HostState],
    failed: &BTreeSet<usize>,
    v: usize,
) -> Option<usize> {
    let crit_v = criticality(g, v);
    let attrs = &g.node(NodeIdx(v)).expect("valid index").attributes;
    let mut best: Option<(usize, HostScore)> = None;
    for h in 0..hosts.len() {
        if failed.contains(&h) || !hard_constraints_ok(g, hw, hosts, h, v) {
            continue;
        }
        if let Some(job) = timing_job(attrs, v) {
            if !hosts[h].admission.would_admit(job) {
                continue;
            }
        }
        let score = host_score(g, &hosts[h], h, v, crit_v);
        if best.is_none_or(|(_, s)| score_lt(score, s)) {
            best = Some((h, score));
        }
    }
    best.map(|(h, _)| h)
}

/// The sheddable members (lowest criticality first) whose removal lets
/// `v` fit on host `h`; `None` when even shedding everything allowed
/// does not help. Mirrors the failover displacement plan.
fn displacement_plan(
    g: &SwGraph,
    hw: &HwGraph,
    hosts: &[HostState],
    h: usize,
    v: usize,
    policy: ShedPolicy,
) -> Option<Vec<usize>> {
    let may_shed = |c: u32| match policy {
        ShedPolicy::Never => false,
        ShedPolicy::ShedBelow { critical_at } => c < critical_at,
    };
    let mut sheddable: Vec<usize> = hosts[h]
        .members
        .iter()
        .copied()
        .filter(|&m| may_shed(criticality(g, m)))
        .collect();
    sheddable.sort_by_key(|&m| (criticality(g, m), m));
    let node = hw.node(NodeIdx(h)).expect("host exists");
    let attrs = &g.node(NodeIdx(v)).expect("valid index").attributes;
    let mut removed = Vec::new();
    let mut admission = hosts[h].admission.clone();
    let mut throughput = hosts[h].throughput;
    for m in sheddable {
        removed.push(m);
        admission.release(m as JobId);
        throughput -= throughput_of(g, m);
        let admits = timing_job(attrs, v).is_none_or(|job| admission.would_admit(job));
        if throughput + attrs.throughput.0 <= node.capacity && admits {
            return Some(removed);
        }
    }
    None
}

/// Rebuilds the per-host placement state from `host_of`. Member lists
/// come out in dense order; every scoring/admission decision downstream
/// is order-independent, so this matches incrementally-built state.
fn rebuild_hosts(g: &SwGraph, hw: &HwGraph, host_of: &[Option<usize>]) -> Result<Vec<HostState>, String> {
    let mut hosts = vec![HostState::empty(); hw.len()];
    for (v, host) in host_of.iter().enumerate() {
        if let Some(h) = *host {
            if h >= hosts.len() {
                return Err(format!("fcm {v} hosted on unknown hw node {h}"));
            }
            hosts[h].members.push(v);
        }
    }
    for (h, host) in hosts.iter_mut().enumerate() {
        let jobs: Vec<Job> = host
            .members
            .iter()
            .filter_map(|&m| timing_job(&g.node(NodeIdx(m)).expect("member exists").attributes, m))
            .collect();
        host.admission = Admission::with_baseline(&jobs)
            .ok_or_else(|| format!("infeasible job set on hw node {h}"))?;
        host.throughput = host.members.iter().map(|&m| throughput_of(g, m)).sum();
    }
    Ok(hosts)
}

/// The graph's edges as `(from, to, weight)` triples in global edge-id
/// order — the fold order of the bitwise contract.
fn edge_triples(g: &SwGraph) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
    g.edges()
        .map(|(_, e)| (e.from.index(), e.to.index(), e.weight.influence()))
}

impl LiveModel {
    /// Builds the named committed workload (`paper` or `avionics`),
    /// places every FCM, and performs the one full condensation.
    ///
    /// # Errors
    ///
    /// Unknown model name, a pre-flight gate rejection, or an FCM with
    /// no feasible initial placement.
    pub fn new(model: &str) -> Result<LiveModel, String> {
        let (graph, hw) = match model {
            "paper" => (paper::fig4_expansion().graph, paper::hw_platform()),
            "avionics" => (avionics::expanded_suite().0.graph, avionics::platform()),
            other => {
                return Err(format!(
                    "unknown model \"{other}\" (expected one of: {})",
                    MODEL_NAMES.join(", ")
                ))
            }
        };
        let report = fcm_check::gates::check_sw_graph(&graph);
        if report.has_errors() {
            return Err(report.error_lines());
        }
        let groups: Vec<Vec<NodeIdx>> = graph.node_indices().map(|n| vec![n]).collect();
        let influence = InfluenceMatrix::from_dense_auto(
            condense(&graph, &groups, CombineRule::Probabilistic)
                .expect("singletons always form a partition")
                .influence_matrix(),
        );
        pipeline::note_full_condense();

        let index = graph
            .nodes()
            .map(|(n, sw)| (sw.name.clone(), n.index()))
            .collect();
        let mut model = LiveModel {
            name: model.to_string(),
            graph,
            index,
            influence,
            host_of: Vec::new(),
            hosts: vec![HostState::empty(); hw.len()],
            hw,
            failed: BTreeSet::new(),
            shed: ShedPolicy::ShedBelow { critical_at: 3 },
            seq: 0,
            full_condenses: 1,
            contracts: ContractSet::new(),
            certifier: Certifier::new(),
            cert: None,
        };
        // Initial placement: most critical first (index breaks ties), the
        // same order failover uses, so every replica lands before the
        // bulk fills the hosts up.
        let mut order: Vec<usize> = (0..model.graph.node_count()).collect();
        order.sort_by_key(|&v| (std::cmp::Reverse(criticality(&model.graph, v)), v));
        model.host_of = vec![None; model.graph.node_count()];
        for v in order {
            let h = find_host(&model.graph, &model.hw, &model.hosts, &model.failed, v)
                .ok_or_else(|| {
                    format!(
                        "no feasible initial placement for {}",
                        model.graph.node(NodeIdx(v)).expect("valid index").name
                    )
                })?;
            commit_to(&model.graph, &mut model.hosts, h, v);
            model.host_of[v] = Some(h);
        }
        Ok(model)
    }

    /// Model name (`paper` / `avionics`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Accepted-mutation count — the journal cursor.
    #[must_use]
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Number of live FCMs.
    #[must_use]
    pub fn fcm_count(&self) -> usize {
        self.graph.node_count()
    }

    /// The live SW graph (read-only — all mutation goes through
    /// [`LiveModel::apply`] so the influence matrix stays in step).
    #[must_use]
    pub fn graph(&self) -> &SwGraph {
        &self.graph
    }

    /// Number of HW nodes.
    #[must_use]
    pub fn hw_count(&self) -> usize {
        self.hw.len()
    }

    /// Full condensations performed by this model (stays 1 forever: the
    /// mutation path is exclusively incremental).
    #[must_use]
    pub fn full_condenses(&self) -> u64 {
        self.full_condenses
    }

    fn fcm(&self, name: &str) -> Result<usize, String> {
        self.index
            .get(name)
            .copied()
            .ok_or_else(|| format!("unknown fcm \"{name}\""))
    }

    fn hw_by_name(&self, name: &str) -> Result<usize, String> {
        self.hw
            .nodes()
            .find(|(_, n)| n.name == name)
            .map(|(h, _)| h.index())
            .ok_or_else(|| format!("unknown hw node \"{name}\""))
    }

    fn hw_name(&self, h: usize) -> String {
        self.hw.node(NodeIdx(h)).expect("valid index").name.clone()
    }

    /// Certifies a candidate (graph, influence, contracts) triple on a
    /// clone of the verdict cache: the contract half of the mutation
    /// gate. `Error` findings (a broken guarantee, rely, floor or cap,
    /// a dangling name) reject the mutation; warnings (partial
    /// coverage, a non-converging bound) pass — partial adoption never
    /// blocks. Returns the advanced certifier and certification to
    /// commit on success, so a rejected candidate never pollutes the
    /// committed cache.
    fn gate_contracts(
        &self,
        op: &str,
        graph: &SwGraph,
        influence: &InfluenceMatrix,
        contracts: &ContractSet,
        dirty: Dirty,
    ) -> Result<(Certifier, Option<Certification>), String> {
        if contracts.is_empty() {
            return Ok((Certifier::new(), None));
        }
        let (names, crits) = fcm_columns(graph);
        let view = CertView {
            model: &self.name,
            names: &names,
            crits: &crits,
            influence,
            contracts,
        };
        // Single-threaded like the pre-flight gate: the certifier runs
        // inside the writer thread, so nesting a fan-out buys nothing.
        let mut certifier = self.certifier.clone();
        let cert = certifier.certify(&view, dirty, 1);
        if cert.report.has_errors() {
            return Err(format!("contracts rejected {op}: {}", cert.report.error_lines()));
        }
        Ok((certifier, Some(cert)))
    }

    /// Re-certifies the committed state from a cold cache — the resume
    /// path (the verdict cache is derived state, never serialized).
    fn recertify_full(&mut self) {
        if self.contracts.is_empty() {
            self.certifier = Certifier::new();
            self.cert = None;
            return;
        }
        let (names, crits) = fcm_columns(&self.graph);
        let view = CertView {
            model: &self.name,
            names: &names,
            crits: &crits,
            influence: &self.influence,
            contracts: &self.contracts,
        };
        self.cert = Some(self.certifier.certify(&view, Dirty::Full, 1));
    }

    /// Applies one mutation: validate → gate-check a candidate → commit
    /// with incremental re-analysis. On success the seq advances and the
    /// op-specific response payload is returned; on error the model is
    /// untouched.
    ///
    /// # Errors
    ///
    /// The rejection reason (domain violation, gate diagnostics, or no
    /// feasible placement), suitable for the wire `"error"` field.
    pub fn apply(&mut self, m: &Mutation) -> Result<Json, String> {
        let payload = match m {
            Mutation::AddFcm {
                name,
                criticality,
                throughput,
                security,
                timing,
                influences,
                influenced_by,
                contract,
            } => self.add_fcm(
                name,
                *criticality,
                *throughput,
                *security,
                *timing,
                influences,
                influenced_by,
                contract.as_ref(),
            )?,
            Mutation::RemoveFcm { name } => self.remove_fcm(name)?,
            Mutation::SetAttr {
                name,
                criticality,
                throughput,
                timing,
            } => self.set_attr(name, *criticality, *throughput, *timing)?,
            Mutation::FailNode { node } => self.fail_node(node)?,
            Mutation::RestoreNode { node } => self.restore_node(node)?,
        };
        self.seq += 1;
        Ok(payload.set("seq", self.seq))
    }

    #[allow(clippy::too_many_arguments)]
    fn add_fcm(
        &mut self,
        name: &str,
        crit: u32,
        throughput: f64,
        security: u8,
        timing: Option<(u64, u64, u64)>,
        influences: &[(String, f64)],
        influenced_by: &[(String, f64)],
        contract: Option<&Contract>,
    ) -> Result<Json, String> {
        if name.is_empty() || name.contains(char::is_whitespace) {
            return Err("fcm name must be non-empty without whitespace".to_string());
        }
        if self.index.contains_key(name) {
            return Err(format!("fcm \"{name}\" already exists"));
        }
        if !(throughput.is_finite() && throughput >= 0.0) {
            return Err("\"throughput\" must be finite and non-negative".to_string());
        }
        let mut attrs = AttributeSet::default()
            .with_criticality(crit)
            .with_throughput(throughput)
            .with_security(security);
        if let Some((est, tcd, ct)) = timing {
            attrs = attrs.with_timing(est, tcd, ct);
        }
        // Candidate graph: the mutation applied on a clone; committed
        // only after the gate passes and a host admits the FCM.
        let mut candidate = self.graph.clone();
        let new = candidate.add_node(SwNode::new(name, attrs));
        for (to, w) in influences {
            let t = self.fcm(to)?;
            check_weight(*w)?;
            candidate
                .try_add_edge(new, NodeIdx(t), SwEdge::Influence(*w))
                .map_err(|e| e.to_string())?;
        }
        for (from, w) in influenced_by {
            let f = self.fcm(from)?;
            check_weight(*w)?;
            candidate
                .try_add_edge(NodeIdx(f), new, SwEdge::Influence(*w))
                .map_err(|e| e.to_string())?;
        }
        let report = fcm_check::gates::check_sw_graph(&candidate);
        if report.has_errors() {
            return Err(format!("preflight rejected add_fcm: {}", report.error_lines()));
        }
        let v = new.index();
        let h = find_host(&candidate, &self.hw, &self.hosts, &self.failed, v)
            .ok_or_else(|| format!("no feasible placement for \"{name}\""))?;

        // Candidate influence: incremental Eq. 4 — grow by a zero
        // row/column, then recombine only the new node's row and column
        // (in the current representation; the policy re-check may flip
        // it afterwards).
        let mut influence = self.influence.grow_row_col();
        pipeline::eq4_recombine_row_col_im(edge_triples(&candidate), v, &mut influence);
        influence.rebalance();
        let mut contracts = self.contracts.clone();
        if let Some(c) = contract {
            if c.fcm != name {
                return Err(format!(
                    "contract is for \"{}\", not the added fcm \"{name}\"",
                    c.fcm
                ));
            }
            contracts.insert(c.clone());
        }
        let (certifier, cert) =
            self.gate_contracts("add_fcm", &candidate, &influence, &contracts, Dirty::Full)?;

        self.influence = influence;
        self.graph = candidate;
        self.contracts = contracts;
        self.certifier = certifier;
        self.cert = cert;
        commit_to(&self.graph, &mut self.hosts, h, v);
        self.host_of.push(Some(h));
        self.index.insert(name.to_string(), v);
        Ok(Json::object()
            .set("fcm", name)
            .set("host", self.hw_name(h).as_str()))
    }

    fn remove_fcm(&mut self, name: &str) -> Result<Json, String> {
        let v = self.fcm(name)?;
        // Rebuild the graph without `v`: survivors keep their relative
        // node and edge order, so every remaining influence entry's edge
        // bucket is untouched (the bitwise contract's removal half).
        let mut next: SwGraph = SwGraph::new();
        let mut remap = vec![usize::MAX; self.graph.node_count()];
        for (n, sw) in self.graph.nodes() {
            if n.index() != v {
                remap[n.index()] = next.add_node(sw.clone()).index();
            }
        }
        for (_, e) in self.graph.edges() {
            let (f, t) = (e.from.index(), e.to.index());
            if f != v && t != v {
                next.add_edge(NodeIdx(remap[f]), NodeIdx(remap[t]), e.weight);
            }
        }
        let host_of: Vec<Option<usize>> = self
            .host_of
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != v)
            .map(|(_, h)| *h)
            .collect();
        // Admission job ids are dense indices, which just shifted:
        // rebuild the host state wholesale (removal is off the hot path).
        let hosts = rebuild_hosts(&next, &self.hw, &host_of)?;
        let mut influence = self.influence.shrink_row_col(v);
        influence.rebalance();
        // The FCM's own contract leaves with it; survivors' caps naming
        // it would dangle (a C021 error), which rejects the removal.
        let mut contracts = self.contracts.clone();
        contracts.remove(name);
        let (certifier, cert) =
            self.gate_contracts("remove_fcm", &next, &influence, &contracts, Dirty::Full)?;
        self.influence = influence;
        self.contracts = contracts;
        self.certifier = certifier;
        self.cert = cert;
        self.graph = next;
        self.host_of = host_of;
        self.hosts = hosts;
        self.index = self
            .graph
            .nodes()
            .map(|(n, sw)| (sw.name.clone(), n.index()))
            .collect();
        Ok(Json::object().set("removed", name))
    }

    fn set_attr(
        &mut self,
        name: &str,
        crit: Option<u32>,
        throughput: Option<f64>,
        timing: Option<Option<(u64, u64, u64)>>,
    ) -> Result<Json, String> {
        let v = self.fcm(name)?;
        if let Some(t) = throughput {
            if !(t.is_finite() && t >= 0.0) {
                return Err("\"throughput\" must be finite and non-negative".to_string());
            }
        }
        let mut attrs = self.graph.node(NodeIdx(v)).expect("valid index").attributes;
        if let Some(c) = crit {
            attrs.criticality.0 = c;
        }
        if let Some(t) = throughput {
            attrs.throughput.0 = t;
        }
        if let Some(t) = timing {
            attrs.timing = t.map(|(est, tcd, ct)| {
                AttributeSet::default().with_timing(est, tcd, ct).timing.expect("just set")
            });
        }
        let mut candidate = self.graph.clone();
        candidate.node_mut(NodeIdx(v)).expect("valid index").attributes = attrs;
        let report = fcm_check::gates::check_sw_graph(&candidate);
        if report.has_errors() {
            return Err(format!("preflight rejected set_attr: {}", report.error_lines()));
        }
        // Contract gate on the candidate attributes: only row `v` is
        // dirty (the state hash folds the criticality), so this is the
        // O(degree) re-certification path.
        let (certifier, cert) = self.gate_contracts(
            "set_attr",
            &candidate,
            &self.influence,
            &self.contracts,
            Dirty::Rows(&[v]),
        )?;
        // Re-validate the FCM's host under the new attributes: the
        // rely-guarantee per-edit admission check.
        if let Some(h) = self.host_of[v] {
            let host_of = self.host_of.clone();
            let hosts = rebuild_hosts(&candidate, &self.hw, &host_of).map_err(|_| {
                format!(
                    "set_attr would make {} EDF-infeasible on {}",
                    name,
                    self.hw_name(h)
                )
            })?;
            let node = self.hw.node(NodeIdx(h)).expect("valid index");
            if hosts[h].throughput > node.capacity {
                return Err(format!(
                    "set_attr would exceed {} capacity {}",
                    node.name, node.capacity
                ));
            }
            self.hosts = hosts;
        }
        self.graph = candidate;
        self.certifier = certifier;
        self.cert = cert;
        Ok(Json::object().set("fcm", name))
    }

    fn fail_node(&mut self, node: &str) -> Result<Json, String> {
        let h = self.hw_by_name(node)?;
        if self.failed.contains(&h) {
            return Err(format!("hw node \"{node}\" is already failed"));
        }
        // Work on candidates: the whole failover either commits or the
        // mutation is rejected (a protected victim fit nowhere).
        let mut hosts = self.hosts.clone();
        let mut host_of = self.host_of.clone();
        let mut failed = self.failed.clone();
        failed.insert(h);
        let mut victims = std::mem::replace(&mut hosts[h], HostState::empty()).members;
        victims.sort_by_key(|&v| (std::cmp::Reverse(criticality(&self.graph, v)), v));
        for &v in &victims {
            host_of[v] = None;
        }
        let mut moved: Vec<(usize, usize)> = Vec::new();
        let mut shed: Vec<usize> = Vec::new();
        let may_shed = |c: u32| match self.shed {
            ShedPolicy::Never => false,
            ShedPolicy::ShedBelow { critical_at } => c < critical_at,
        };
        for &v in &victims {
            if let Some(dest) = find_host(&self.graph, &self.hw, &hosts, &failed, v) {
                commit_to(&self.graph, &mut hosts, dest, v);
                host_of[v] = Some(dest);
                moved.push((v, dest));
                continue;
            }
            if may_shed(criticality(&self.graph, v)) {
                shed.push(v);
                continue;
            }
            // Protected victim: displace sheddable load, as in failover
            // (fewest displaced wins; host score breaks ties).
            let crit_v = criticality(&self.graph, v);
            let mut best: Option<(usize, Vec<usize>, HostScore)> = None;
            for cand in 0..hosts.len() {
                if failed.contains(&cand)
                    || !hard_constraints_ok(&self.graph, &self.hw, &hosts, cand, v)
                {
                    continue;
                }
                if let Some(plan) =
                    displacement_plan(&self.graph, &self.hw, &hosts, cand, v, self.shed)
                {
                    let score = host_score(&self.graph, &hosts[cand], cand, v, crit_v);
                    let better = best.as_ref().is_none_or(|(_, b, s)| {
                        plan.len() < b.len() || (plan.len() == b.len() && score_lt(score, *s))
                    });
                    if better {
                        best = Some((cand, plan, score));
                    }
                }
            }
            let Some((dest, displaced, _)) = best else {
                return Err(format!(
                    "fail_node rejected: no feasible placement for protected \"{}\"",
                    self.graph.node(NodeIdx(v)).expect("valid index").name
                ));
            };
            for &d in &displaced {
                hosts[dest].members.retain(|&m| m != d);
                hosts[dest].admission.release(d as JobId);
                hosts[dest].throughput -= throughput_of(&self.graph, d);
                host_of[d] = None;
                shed.push(d);
            }
            commit_to(&self.graph, &mut hosts, dest, v);
            host_of[v] = Some(dest);
            moved.push((v, dest));
        }
        shed.sort_unstable();
        shed.dedup();
        let degraded = !shed.is_empty();
        self.hosts = hosts;
        self.host_of = host_of;
        self.failed = failed;
        Ok(Json::object()
            .set("degraded", degraded)
            .set("failed", node)
            .set(
                "moved",
                Json::array(moved.iter().map(|&(v, dest)| {
                    Json::array([
                        Json::from(self.fcm_name(v)),
                        Json::from(self.hw_name(dest)),
                    ])
                })),
            )
            .set(
                "shed",
                Json::array(shed.iter().map(|&v| Json::from(self.fcm_name(v)))),
            ))
    }

    fn restore_node(&mut self, node: &str) -> Result<Json, String> {
        let h = self.hw_by_name(node)?;
        if !self.failed.remove(&h) {
            return Err(format!("hw node \"{node}\" is not failed"));
        }
        let mut unhosted: Vec<usize> = (0..self.host_of.len())
            .filter(|&v| self.host_of[v].is_none())
            .collect();
        unhosted.sort_by_key(|&v| (std::cmp::Reverse(criticality(&self.graph, v)), v));
        let mut placed: Vec<(usize, usize)> = Vec::new();
        let mut unplaced: Vec<usize> = Vec::new();
        for &v in &unhosted {
            match find_host(&self.graph, &self.hw, &self.hosts, &self.failed, v) {
                Some(dest) => {
                    commit_to(&self.graph, &mut self.hosts, dest, v);
                    self.host_of[v] = Some(dest);
                    placed.push((v, dest));
                }
                None => unplaced.push(v),
            }
        }
        unplaced.sort_unstable();
        Ok(Json::object()
            .set(
                "placed",
                Json::array(placed.iter().map(|&(v, dest)| {
                    Json::array([
                        Json::from(self.fcm_name(v)),
                        Json::from(self.hw_name(dest)),
                    ])
                })),
            )
            .set("restored", node)
            .set(
                "unplaced",
                Json::array(unplaced.iter().map(|&v| Json::from(self.fcm_name(v)))),
            ))
    }

    fn fcm_name(&self, v: usize) -> String {
        self.graph.node(NodeIdx(v)).expect("valid index").name.clone()
    }

    /// Answers a read-only query ([`Query::Snapshot`] is handled by the
    /// server layer, which owns the store).
    ///
    /// # Errors
    ///
    /// Unknown names or an unsatisfiable precondition, as the wire
    /// `"error"` string.
    pub fn query(&self, q: &Query) -> Result<Json, String> {
        match q {
            Query::Influence { from, to, order } => {
                let (i, j) = (self.fcm(from)?, self.fcm(to)?);
                Ok(Json::object()
                    .set("direct", self.influence[(i, j)])
                    .set("from", from.as_str())
                    .set("order", *order as u64)
                    .set("to", to.as_str())
                    .set(
                        "transitive",
                        self.influence.transitive_influence(i, j, *order),
                    ))
            }
            Query::Separation { from, to, order } => {
                let (i, j) = (self.fcm(from)?, self.fcm(to)?);
                let t = self.influence.transitive_influence(i, j, *order);
                Ok(Json::object()
                    .set("from", from.as_str())
                    .set("order", *order as u64)
                    .set("separation", 1.0 - t)
                    .set("to", to.as_str()))
            }
            Query::Check => Ok(self.run_check()),
            Query::Certify => Ok(self.certify_json()),
            Query::Admit {
                node,
                timing,
                throughput,
            } => self.admit(node, *timing, *throughput),
            Query::ProposePlacement { node } => self.propose_placement(node),
            Query::Stats => Ok(self.stats()),
            Query::List => Ok(Json::object()
                .set(
                    "fcms",
                    Json::array(self.graph.nodes().map(|(_, sw)| Json::from(sw.name.as_str()))),
                )
                .set(
                    "hw",
                    Json::array(self.hw.nodes().map(|(_, n)| Json::from(n.name.as_str()))),
                )),
            Query::Dump => Ok(Json::object()
                .set("matrix", self.matrix_info())
                .set("state", self.state_json())),
            Query::Ping => Ok(Json::object()),
            Query::Snapshot => Err("snapshot is handled by the server layer".to_string()),
            Query::Metrics => Err("metrics is handled by the server layer".to_string()),
        }
    }

    fn run_check(&self) -> Json {
        let (report, scope) = match self.placed_view() {
            Some((c, m)) => (
                fcm_check::gates::check_placed_model(
                    &self.name,
                    &self.graph,
                    c,
                    m,
                    self.hw.clone(),
                    self.shed,
                ),
                "placed",
            ),
            None => (fcm_check::gates::check_sw_graph(&self.graph), "graph"),
        };
        Json::object()
            .set(
                "diagnostics",
                Json::array(report.diagnostics.iter().map(|d| Json::from(d.render()))),
            )
            .set("errors", report.count(Severity::Error) as u64)
            .set("infos", report.count(Severity::Info) as u64)
            .set("scope", scope)
            .set("warnings", report.count(Severity::Warn) as u64)
    }

    fn admit(&self, node: &str, timing: Option<(u64, u64, u64)>, throughput: f64) -> Result<Json, String> {
        let h = self.hw_by_name(node)?;
        let verdict = |admit: bool, reason: &str| {
            Ok(Json::object()
                .set("admit", admit)
                .set("node", node)
                .set("reason", reason))
        };
        if self.failed.contains(&h) {
            return verdict(false, "hw node is failed");
        }
        let cap = self.hw.node(NodeIdx(h)).expect("valid index").capacity;
        if self.hosts[h].throughput + throughput > cap {
            return verdict(false, "throughput capacity exceeded");
        }
        if let Some((est, tcd, ct)) = timing {
            let probe = AttributeSet::default().with_timing(est, tcd, ct);
            let job = timing_job(&probe, self.graph.node_count()).expect("just set");
            if !self.hosts[h].admission.would_admit(job) {
                return verdict(false, "EDF admission rejected the timing constraint");
            }
        }
        verdict(true, "feasible")
    }

    /// The current placement as a validated `(Clustering, Mapping)` pair
    /// — only available when every FCM is hosted (clusters must
    /// partition the graph).
    fn placed_view(&self) -> Option<(Clustering, Mapping)> {
        if self.host_of.iter().any(Option::is_none) {
            return None;
        }
        let mut groups: Vec<Vec<NodeIdx>> = Vec::new();
        let mut assignment: Vec<NodeIdx> = Vec::new();
        for (h, host) in self.hosts.iter().enumerate() {
            if host.members.is_empty() {
                continue;
            }
            groups.push(host.members.iter().map(|&v| NodeIdx(v)).collect());
            assignment.push(NodeIdx(h));
        }
        let clustering = Clustering::new(&self.graph, groups).ok()?;
        Some((clustering, Mapping::from_assignment(assignment)))
    }

    fn propose_placement(&self, node: &str) -> Result<Json, String> {
        let h = self.hw_by_name(node)?;
        if !self.failed.is_empty() {
            return Err("propose_placement requires no already-failed hw nodes".to_string());
        }
        let (clustering, mapping) = self.placed_view().ok_or_else(|| {
            "propose_placement requires a fully-placed model".to_string()
        })?;
        let out = failover::remap(&self.graph, &clustering, &mapping, &self.hw, NodeIdx(h), self.shed)
            .map_err(|e| e.to_string())?;
        Ok(Json::object()
            .set("degraded", out.degraded)
            .set(
                "moved",
                Json::array(out.placement.iter().filter_map(|&(v, dest)| {
                    dest.map(|d| {
                        Json::array([
                            Json::from(self.fcm_name(v.index())),
                            Json::from(self.hw_name(d.index())),
                        ])
                    })
                })),
            )
            .set("node", node)
            .set(
                "shed",
                Json::array(out.shed.iter().map(|&v| Json::from(self.fcm_name(v.index())))),
            ))
    }

    /// `(repr, nnz)` of the influence matrix — the cheap pre/post-apply
    /// probe the writer thread uses to stamp subscription events with
    /// the incremental Eq. 4 delta and detect live repr flips.
    #[must_use]
    pub(crate) fn matrix_brief(&self) -> (&'static str, u64) {
        (self.influence.repr(), self.influence.nnz() as u64)
    }

    /// The influence matrix's representation facts: which engine is
    /// serving queries, how many entries are stored, how full it is.
    fn matrix_info(&self) -> Json {
        Json::object()
            .set("density", self.influence.density())
            .set("nnz", self.influence.nnz() as u64)
            .set("repr", self.influence.repr())
    }

    /// The `stats`/`certify` `"certified"` block: contract count, the
    /// certified bound, and the incremental certifier's dirty/reused
    /// split from the last re-certification pass.
    fn certified_json(&self) -> Json {
        let base = Json::object().set("contracts", self.contracts.len() as u64);
        match &self.cert {
            Some(c) => base
                .set("bound", c.bound.to_json())
                .set("certified", c.certified)
                .set("dirty", c.verified as u64)
                .set("reused", c.reused as u64),
            None => base.set("certified", false),
        }
    }

    /// The `certify` query: the `"certified"` block plus the rendered
    /// C017–C022 findings of the last certification pass.
    fn certify_json(&self) -> Json {
        let base = self.certified_json();
        match &self.cert {
            Some(c) => base
                .set(
                    "diagnostics",
                    Json::array(c.report.diagnostics.iter().map(|d| Json::from(d.render()))),
                )
                .set("errors", c.report.count(Severity::Error) as u64)
                .set("warnings", c.report.count(Severity::Warn) as u64),
            None => base
                .set("diagnostics", Json::array(std::iter::empty::<Json>()))
                .set("errors", 0u64)
                .set("warnings", 0u64),
        }
    }

    fn stats(&self) -> Json {
        let unhosted = self.host_of.iter().filter(|h| h.is_none()).count();
        Json::object()
            .set("certified", self.certified_json())
            .set("edges", self.graph.edge_count() as u64)
            .set(
                "failed",
                Json::array(self.failed.iter().map(|&h| Json::from(self.hw_name(h)))),
            )
            .set("fcms", self.graph.node_count() as u64)
            .set("full_condenses", self.full_condenses)
            .set("matrix", self.matrix_info())
            .set("model", self.name.as_str())
            .set("seq", self.seq)
            .set("unhosted", unhosted as u64)
    }

    /// The full canonical state: everything needed to reconstruct the
    /// model bit-for-bit (substrate JSON emits `f64`s shortest-exact, so
    /// matrix entries round-trip exactly).
    #[must_use]
    pub fn state_json(&self) -> Json {
        let fcms = Json::array(self.graph.nodes().map(|(n, sw)| {
            let a = &sw.attributes;
            Json::object()
                .set("crit", a.criticality.0)
                .set("ft", u64::from(a.fault_tolerance.0))
                .set(
                    "host",
                    self.host_of[n.index()].map_or(Json::Null, |h| Json::from(self.hw_name(h))),
                )
                .set("name", sw.name.as_str())
                .set("pin", sw.pinned_to.clone().map_or(Json::Null, Json::from))
                .set("rep", sw.replica_group.map_or(Json::Null, Json::from))
                .set(
                    "res",
                    Json::array(sw.required_resources.iter().map(|r| Json::from(r.as_str()))),
                )
                .set("sec", u64::from(a.security.0))
                .set("sep", sw.separation_group.map_or(Json::Null, Json::from))
                .set("thr", a.throughput.0)
                .set(
                    "timing",
                    a.timing.map_or(Json::Null, |t| {
                        Json::array([Json::from(t.est), Json::from(t.tcd), Json::from(t.ct)])
                    }),
                )
        }));
        let edges = Json::array(self.graph.edges().map(|(_, e)| {
            Json::array([
                Json::from(e.from.index() as u64),
                Json::from(e.to.index() as u64),
                Json::from(e.weight.influence()),
            ])
        }));
        // Dense emits the legacy array-of-rows byte-for-byte; CSR emits
        // the `{"format":"csr",...}` object — both round-trip exactly.
        let influence = self.influence.to_state_json();
        let mut doc = Json::object()
            .set("edges", edges)
            .set(
                "failed",
                Json::array(self.failed.iter().map(|&h| Json::from(self.hw_name(h)))),
            )
            .set("fcms", fcms)
            .set("full_condenses", self.full_condenses)
            .set("influence", influence)
            .set("model", self.name.as_str())
            .set("schema", STATE_SCHEMA)
            .set("seq", self.seq);
        // Contracts ride along only once in use, so pre-contract
        // snapshots and contract-free sessions stay byte-identical.
        if !self.contracts.is_empty() {
            doc = doc.set("contracts", self.contracts.to_json());
        }
        doc
    }

    /// Reconstructs a model from [`LiveModel::state_json`] output: the
    /// snapshot-load half of `--resume`. The influence matrix is read
    /// back verbatim (no recondensation — the full-condense count is
    /// carried over), and host state is rebuilt deterministically.
    ///
    /// # Errors
    ///
    /// A malformed or internally inconsistent state object.
    pub fn from_state(state: &Json) -> Result<LiveModel, String> {
        let want = |key: &str| format!("snapshot state missing \"{key}\"");
        if state.get("schema").and_then(Json::as_str) != Some(STATE_SCHEMA) {
            return Err(format!("snapshot state is not {STATE_SCHEMA}"));
        }
        let name = state.get("model").and_then(Json::as_str).ok_or_else(|| want("model"))?;
        let hw = match name {
            "paper" => paper::hw_platform(),
            "avionics" => avionics::platform(),
            other => return Err(format!("unknown model \"{other}\" in snapshot")),
        };
        let hw_index: BTreeMap<String, usize> = hw
            .nodes()
            .map(|(h, n)| (n.name.clone(), h.index()))
            .collect();

        let fcms = state.get("fcms").and_then(Json::as_array).ok_or_else(|| want("fcms"))?;
        let mut graph: SwGraph = SwGraph::new();
        let mut host_of: Vec<Option<usize>> = Vec::with_capacity(fcms.len());
        for f in fcms {
            let fname = f.get("name").and_then(Json::as_str).ok_or_else(|| want("fcms[].name"))?;
            let num = |key: &str| {
                f.get(key)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("snapshot fcm \"{fname}\" missing \"{key}\""))
            };
            let mut attrs = AttributeSet::default()
                .with_criticality(num("crit")? as u32)
                .with_throughput(num("thr")?)
                .with_security(num("sec")? as u8)
                .with_fault_tolerance(fcm_core::FaultTolerance(num("ft")? as u8));
            if let Some(t) = f.get("timing").filter(|t| !matches!(t, Json::Null)) {
                let arr = t.as_array().filter(|a| a.len() == 3).ok_or_else(|| want("timing"))?;
                let g = |i: usize| arr[i].as_f64().map(|x| x as u64).ok_or_else(|| want("timing"));
                attrs = attrs.with_timing(g(0)?, g(1)?, g(2)?);
            }
            let n = graph.add_node(SwNode::new(fname, attrs));
            let sw = graph.node_mut(n).expect("just added");
            sw.replica_group = f.get("rep").and_then(Json::as_f64).map(|x| x as u32);
            sw.separation_group = f.get("sep").and_then(Json::as_f64).map(|x| x as u32);
            sw.pinned_to = f.get("pin").and_then(Json::as_str).map(str::to_string);
            if let Some(res) = f.get("res").and_then(Json::as_array) {
                for r in res {
                    if let Some(tag) = r.as_str() {
                        sw.required_resources.insert(tag.to_string());
                    }
                }
            }
            host_of.push(match f.get("host") {
                Some(Json::Str(h)) => Some(
                    *hw_index
                        .get(h)
                        .ok_or_else(|| format!("snapshot fcm \"{fname}\" on unknown hw \"{h}\""))?,
                ),
                _ => None,
            });
        }

        let edges = state.get("edges").and_then(Json::as_array).ok_or_else(|| want("edges"))?;
        for e in edges {
            let t = e.as_array().filter(|a| a.len() == 3).ok_or_else(|| want("edges[]"))?;
            let f = t[0].as_f64().ok_or_else(|| want("edges[]"))? as usize;
            let to = t[1].as_f64().ok_or_else(|| want("edges[]"))? as usize;
            let w = t[2].as_f64().ok_or_else(|| want("edges[]"))?;
            if f >= graph.node_count() || to >= graph.node_count() {
                return Err("snapshot edge endpoint out of range".to_string());
            }
            let weight = if w == 0.0 { SwEdge::ReplicaLink } else { SwEdge::Influence(w) };
            graph.add_edge(NodeIdx(f), NodeIdx(to), weight);
        }

        let influence = state
            .get("influence")
            .and_then(InfluenceMatrix::from_state_json)
            .ok_or_else(|| want("influence"))?;
        let n = graph.node_count();
        if influence.rows() != n || influence.cols() != n {
            return Err("snapshot influence matrix has wrong dimensions".to_string());
        }

        let mut failed = BTreeSet::new();
        for h in state
            .get("failed")
            .and_then(Json::as_array)
            .ok_or_else(|| want("failed"))?
        {
            let hname = h.as_str().ok_or_else(|| want("failed[]"))?;
            failed.insert(
                *hw_index
                    .get(hname)
                    .ok_or_else(|| format!("snapshot failed unknown hw \"{hname}\""))?,
            );
        }

        let seq = state.get("seq").and_then(Json::as_f64).ok_or_else(|| want("seq"))? as u64;
        let full_condenses = state
            .get("full_condenses")
            .and_then(Json::as_f64)
            .ok_or_else(|| want("full_condenses"))? as u64;
        let contracts = match state.get("contracts") {
            Some(doc) => {
                ContractSet::from_json(doc).map_err(|e| format!("snapshot contracts: {e}"))?
            }
            None => ContractSet::new(),
        };
        let hosts = rebuild_hosts(&graph, &hw, &host_of)?;
        let index = graph
            .nodes()
            .map(|(ni, sw)| (sw.name.clone(), ni.index()))
            .collect();
        let mut model = LiveModel {
            name: name.to_string(),
            graph,
            index,
            influence,
            host_of,
            hosts,
            hw,
            failed,
            shed: ShedPolicy::ShedBelow { critical_at: 3 },
            seq,
            full_condenses,
            contracts,
            certifier: Certifier::new(),
            cert: None,
        };
        model.recertify_full();
        Ok(model)
    }
}

fn fcm_columns(g: &SwGraph) -> (Vec<String>, Vec<u32>) {
    (
        g.nodes().map(|(_, sw)| sw.name.clone()).collect(),
        g.nodes().map(|(_, sw)| sw.attributes.criticality.0).collect(),
    )
}

fn check_weight(w: f64) -> Result<(), String> {
    if w.is_finite() && w > 0.0 && w <= 1.0 {
        Ok(())
    } else {
        Err(format!("influence weight {w} outside (0, 1]"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::Mutation;
    use fcm_graph::Matrix;

    fn add(name: &str, crit: u32, influences: &[(&str, f64)]) -> Mutation {
        Mutation::AddFcm {
            name: name.to_string(),
            criticality: crit,
            throughput: 0.0,
            security: 0,
            timing: None,
            influences: influences.iter().map(|&(n, w)| (n.to_string(), w)).collect(),
            influenced_by: Vec::new(),
            contract: None,
        }
    }

    fn full_recompute(g: &SwGraph) -> Matrix {
        let groups: Vec<Vec<NodeIdx>> = g.node_indices().map(|n| vec![n]).collect();
        condense(g, &groups, CombineRule::Probabilistic)
            .expect("partition")
            .influence_matrix()
    }

    #[test]
    fn models_start_fully_placed_with_one_full_condense() {
        for name in MODEL_NAMES {
            let m = LiveModel::new(name).expect("committed model builds");
            assert_eq!(m.full_condenses(), 1, "{name}");
            assert!(m.host_of.iter().all(Option::is_some), "{name} fully placed");
            assert_eq!(m.influence, full_recompute(&m.graph), "{name} matrix");
            // Replicas landed on distinct nodes.
            for a in 0..m.graph.node_count() {
                for b in a + 1..m.graph.node_count() {
                    if separated(&m.graph, a, b) {
                        assert_ne!(m.host_of[a], m.host_of[b], "{name}: {a} vs {b}");
                    }
                }
            }
        }
        assert!(LiveModel::new("nope").is_err());
    }

    #[test]
    fn add_and_remove_keep_the_matrix_bitwise_exact() {
        let mut m = LiveModel::new("paper").unwrap();
        m.apply(&add("x1", 2, &[("p2a", 0.4)])).unwrap();
        assert_eq!(m.influence, full_recompute(&m.graph));
        m.apply(&add("x2", 1, &[("x1", 0.9), ("p8", 0.05)])).unwrap();
        assert_eq!(m.influence, full_recompute(&m.graph));
        m.apply(&Mutation::RemoveFcm { name: "x1".to_string() }).unwrap();
        assert_eq!(m.influence, full_recompute(&m.graph));
        assert_eq!(m.full_condenses(), 1);
        assert_eq!(m.seq(), 3);
        // Removed name is gone, survivor reindexed consistently.
        assert!(m.fcm("x1").is_err());
        let x2 = m.fcm("x2").unwrap();
        assert_eq!(m.fcm_name(x2), "x2");
    }

    #[test]
    fn growth_past_the_policy_threshold_flips_the_matrix_to_csr() {
        let mut m = LiveModel::new("paper").unwrap();
        assert_eq!(m.influence.repr(), "dense", "committed model starts dense");
        // Grow a low-density fringe until the sparse policy fires
        // (n ≥ 64 at well under 5% density).
        let n0 = m.graph.node_count();
        for i in 0..(64 - n0) {
            m.apply(&add(&format!("w{i}"), 1, &[("p8", 0.01)])).unwrap();
        }
        assert_eq!(m.influence.repr(), "csr");
        assert_eq!(m.influence, full_recompute(&m.graph), "bitwise across the flip");
        // Stats and dump surface the representation facts.
        let stats = m.query(&Query::Stats).unwrap();
        let info = stats.get("matrix").expect("stats.matrix");
        assert_eq!(info.get("repr").and_then(Json::as_str), Some("csr"));
        let nnz = info.get("nnz").and_then(Json::as_f64).unwrap();
        assert!(nnz >= 1.0);
        let density = info.get("density").and_then(Json::as_f64).unwrap();
        assert!(density > 0.0 && density <= 0.05);
        let dump = m.query(&Query::Dump).unwrap();
        assert_eq!(
            dump.get("matrix").and_then(|x| x.get("repr")).and_then(Json::as_str),
            Some("csr")
        );
        // Queries answer identically from the CSR engine.
        let q = m
            .query(&Query::Influence {
                from: "w0".to_string(),
                to: "p8".to_string(),
                order: 4,
            })
            .unwrap();
        let direct = q.get("direct").and_then(Json::as_f64).unwrap();
        assert!((direct - 0.01).abs() < 1e-12, "Eq. 4 fold of the single edge");
        // The snapshot round-trips through the CSR state form.
        let state = m.state_json();
        assert_eq!(
            state
                .get("influence")
                .and_then(|x| x.get("format"))
                .and_then(Json::as_str),
            Some("csr")
        );
        let restored = LiveModel::from_state(&state).unwrap();
        assert_eq!(restored.influence.repr(), "csr");
        assert_eq!(restored.influence, m.influence);
        assert_eq!(restored.state_json().to_string_compact(), state.to_string_compact());
        // Shrinking back below the threshold flips the matrix home.
        for i in 0..(64 - n0) {
            m.apply(&Mutation::RemoveFcm { name: format!("w{i}") }).unwrap();
        }
        assert_eq!(m.influence.repr(), "dense");
        assert_eq!(m.influence, full_recompute(&m.graph));
    }

    #[test]
    fn rejected_mutations_leave_the_model_untouched() {
        let mut m = LiveModel::new("paper").unwrap();
        let before = m.state_json().to_string_compact();
        assert!(m.apply(&add("p1a", 0, &[])).is_err()); // duplicate name
        assert!(m.apply(&add("y", 0, &[("p1a", 1.5)])).is_err()); // bad weight
        assert!(m.apply(&add("y", 0, &[("ghost", 0.5)])).is_err()); // unknown target
        assert!(m
            .apply(&Mutation::RemoveFcm { name: "ghost".to_string() })
            .is_err());
        assert!(m
            .apply(&Mutation::FailNode { node: "hw9".to_string() })
            .is_err());
        assert_eq!(m.state_json().to_string_compact(), before);
        assert_eq!(m.seq(), 0);
    }

    #[test]
    fn fail_and_restore_round_trip_preserves_feasibility() {
        let mut m = LiveModel::new("paper").unwrap();
        let out = m.apply(&Mutation::FailNode { node: "hw0".to_string() }).unwrap();
        assert!(out.get("failed").is_some());
        // Double-fail is rejected.
        assert!(m.apply(&Mutation::FailNode { node: "hw0".to_string() }).is_err());
        m.apply(&Mutation::RestoreNode { node: "hw0".to_string() }).unwrap();
        assert!(m.apply(&Mutation::RestoreNode { node: "hw0".to_string() }).is_err());
        // Matrix was never touched by placement-only mutations.
        assert_eq!(m.influence, full_recompute(&m.graph));
        // Every replica pair still separated.
        for a in 0..m.graph.node_count() {
            for b in a + 1..m.graph.node_count() {
                if separated(&m.graph, a, b) && m.host_of[a].is_some() {
                    assert_ne!(m.host_of[a], m.host_of[b]);
                }
            }
        }
    }

    #[test]
    fn state_round_trips_byte_identically() {
        let mut m = LiveModel::new("avionics").unwrap();
        let anchor = m.fcm_name(0);
        m.apply(&add("monitor", 2, &[(anchor.as_str(), 0.2)])).unwrap();
        m.apply(&Mutation::FailNode { node: "hw3".to_string() }).unwrap();
        let state = m.state_json();
        let restored = LiveModel::from_state(&state).unwrap();
        assert_eq!(
            restored.state_json().to_string_compact(),
            state.to_string_compact()
        );
        // And the restored model keeps evolving identically.
        let mut a = m.clone();
        let mut b = restored;
        a.apply(&add("z", 1, &[])).unwrap();
        b.apply(&add("z", 1, &[])).unwrap();
        assert_eq!(
            a.state_json().to_string_compact(),
            b.state_json().to_string_compact()
        );
    }

    fn add_contracted(name: &str, crit: u32, influences: &[(&str, f64)], c: Contract) -> Mutation {
        match add(name, crit, influences) {
            Mutation::AddFcm {
                name,
                criticality,
                throughput,
                security,
                timing,
                influences,
                influenced_by,
                ..
            } => Mutation::AddFcm {
                name,
                criticality,
                throughput,
                security,
                timing,
                influences,
                influenced_by,
                contract: Some(c),
            },
            other => other,
        }
    }

    #[test]
    fn contract_lifecycle_gates_mutations_and_serves_certify() {
        let mut m = LiveModel::new("paper").unwrap();
        // No contracts loaded: certification is inert, never blocking.
        let idle = m.query(&Query::Certify).unwrap();
        assert_eq!(idle.get("certified"), Some(&Json::Bool(false)));
        assert_eq!(idle.get("contracts").and_then(Json::as_f64), Some(0.0));

        // A guarantee below the FCM's actual row sum rejects the add.
        let anchor = m.fcm_name(0);
        let before = m.state_json().to_string_compact();
        let bad = add_contracted(
            "probe",
            3,
            &[(anchor.as_str(), 0.5)],
            Contract::new("probe", 0.1, 2.0, 1),
        );
        let err = m.apply(&bad).unwrap_err();
        assert!(err.contains("C017"), "{err}");
        assert_eq!(m.state_json().to_string_compact(), before, "rejection left no trace");

        // A satisfiable contract is accepted; partial coverage warns
        // but neither errors nor certifies.
        let good = add_contracted(
            "probe",
            3,
            &[(anchor.as_str(), 0.5)],
            Contract::new("probe", 0.9, 9.0, 1),
        );
        m.apply(&good).unwrap();
        let cert = m.query(&Query::Certify).unwrap();
        assert_eq!(cert.get("certified"), Some(&Json::Bool(false)));
        assert_eq!(cert.get("errors").and_then(Json::as_f64), Some(0.0));
        assert!(cert.get("warnings").and_then(Json::as_f64).unwrap() > 0.0);
        let stats = m.query(&Query::Stats).unwrap();
        let block = stats.get("certified").expect("stats carries the certified block");
        assert_eq!(block.get("contracts").and_then(Json::as_f64), Some(1.0));

        // Dropping the criticality below the contract floor is rejected
        // in place; a compliant edit passes and re-verifies only the
        // dirty row (the O(degree) path).
        let floor_break = Mutation::SetAttr {
            name: "probe".to_string(),
            criticality: Some(0),
            throughput: None,
            timing: None,
        };
        let err = m.apply(&floor_break).unwrap_err();
        assert!(err.contains("C020"), "{err}");
        m.apply(&Mutation::SetAttr {
            name: "probe".to_string(),
            criticality: Some(4),
            throughput: None,
            timing: None,
        })
        .unwrap();
        let cert = m.query(&Query::Certify).unwrap();
        assert_eq!(cert.get("dirty").and_then(Json::as_f64), Some(1.0));
        assert_eq!(cert.get("reused").and_then(Json::as_f64), Some(m.fcm_count() as f64 - 1.0));

        // Snapshots carry the contracts and re-certify on load.
        let state = m.state_json();
        assert!(state.get("contracts").is_some());
        let restored = LiveModel::from_state(&state).unwrap();
        assert_eq!(restored.state_json().to_string_compact(), state.to_string_compact());
        assert_eq!(
            restored.query(&Query::Certify).unwrap().get("warnings"),
            m.query(&Query::Certify).unwrap().get("warnings"),
        );

        // The FCM's contract leaves with it; certification goes inert.
        m.apply(&Mutation::RemoveFcm { name: "probe".to_string() }).unwrap();
        let after = m.query(&Query::Certify).unwrap();
        assert_eq!(after.get("contracts").and_then(Json::as_f64), Some(0.0));
        assert_eq!(after.get("certified"), Some(&Json::Bool(false)));
        assert!(m.state_json().get("contracts").is_none());
    }

    #[test]
    fn queries_answer_on_the_paper_model() {
        let m = LiveModel::new("paper").unwrap();
        let inf = m
            .query(&Query::Influence {
                from: "p4".to_string(),
                to: "p5".to_string(),
                order: 4,
            })
            .unwrap();
        let direct = inf.get("direct").and_then(Json::as_f64).unwrap();
        let transitive = inf.get("transitive").and_then(Json::as_f64).unwrap();
        assert!(direct >= 0.0 && transitive >= direct - 1e-12);
        let sep = m
            .query(&Query::Separation {
                from: "p4".to_string(),
                to: "p5".to_string(),
                order: 4,
            })
            .unwrap();
        let s = sep.get("separation").and_then(Json::as_f64).unwrap();
        assert!((s - (1.0 - transitive)).abs() < 1e-15);
        let stats = m.query(&Query::Stats).unwrap();
        assert_eq!(stats.get("full_condenses").and_then(Json::as_f64), Some(1.0));
        assert_eq!(stats.get("unhosted").and_then(Json::as_f64), Some(0.0));
        let check = m.query(&Query::Check).unwrap();
        assert_eq!(check.get("errors").and_then(Json::as_f64), Some(0.0));
        assert_eq!(check.get("scope").and_then(Json::as_str), Some("placed"));
        assert!(m
            .query(&Query::Influence {
                from: "ghost".to_string(),
                to: "p5".to_string(),
                order: 4
            })
            .is_err());
    }

    #[test]
    fn propose_placement_matches_applied_fail_node() {
        let m = LiveModel::new("paper").unwrap();
        let proposal = m
            .query(&Query::ProposePlacement { node: "hw1".to_string() })
            .unwrap();
        let mut applied = m.clone();
        let out = applied
            .apply(&Mutation::FailNode { node: "hw1".to_string() })
            .unwrap();
        // Same scoring on both paths: identical destinations and sheds.
        assert_eq!(proposal.get("moved"), out.get("moved"));
        assert_eq!(proposal.get("shed"), out.get("shed"));
        assert_eq!(proposal.get("degraded"), out.get("degraded"));
    }

    #[test]
    fn admit_probe_is_consistent_with_placement() {
        let m = LiveModel::new("paper").unwrap();
        let free = m
            .query(&Query::Admit {
                node: "hw0".to_string(),
                timing: None,
                throughput: 0.0,
            })
            .unwrap();
        assert_eq!(free.get("admit"), Some(&Json::Bool(true)));
        let mut failed = m.clone();
        failed
            .apply(&Mutation::FailNode { node: "hw0".to_string() })
            .unwrap();
        let dead = failed
            .query(&Query::Admit {
                node: "hw0".to_string(),
                timing: None,
                throughput: 0.0,
            })
            .unwrap();
        assert_eq!(dead.get("admit"), Some(&Json::Bool(false)));
    }

    #[test]
    fn set_attr_guards_edf_feasibility() {
        let mut m = LiveModel::new("paper").unwrap();
        // An impossible window is rejected and leaves state untouched.
        let before = m.state_json().to_string_compact();
        let err = m.apply(&Mutation::SetAttr {
            name: "p8".to_string(),
            criticality: None,
            throughput: None,
            timing: Some(Some((0, 1, 5))),
        });
        assert!(err.is_err());
        assert_eq!(m.state_json().to_string_compact(), before);
        // A criticality tweak goes through.
        m.apply(&Mutation::SetAttr {
            name: "p8".to_string(),
            criticality: Some(2),
            throughput: None,
            timing: None,
        })
        .unwrap();
        assert_eq!(criticality(&m.graph, m.fcm("p8").unwrap()), 2);
    }
}
