//! Deterministic load generation: the engine behind the `servegen` bin
//! and the `serve_latency` bench.
//!
//! Two modes:
//!
//! * **Script** ([`run_script`]) — replay a fixed request file against a
//!   daemon and print the hello plus every response line verbatim. The
//!   output is a transcript suitable for golden-file comparison
//!   (`scripts/verify.sh` pins one).
//! * **Load** ([`run_load`]) — an open-loop generator: each client
//!   thread derives its own [`Rng`] stream from the base seed, computes
//!   the request schedule up front (`i / rate` spacing), and issues a
//!   seeded mutation/query mix, recording wall-clock round-trip
//!   latencies. Open loop means a slow server cannot slow the *offered*
//!   rate down — send times are anchored to the start instant and the
//!   sender never waits for a response (requests pipeline on the
//!   connection; a paired reader thread matches the in-order responses
//!   back to their send instants), so latency spikes show up as
//!   queueing delay rather than being hidden by coordinated omission.
//!
//! Determinism: the request *sequence* per client is a pure function of
//! `(seed, client index)`; only the measured latencies vary run to run.
//!
//! A third mode rides on load: `--subscribe N` attaches N event
//! subscribers for the duration of the run. Each one checks the exact
//! drop-accounting identity on its stream — for consecutive deliveries
//! `a` then `b`, `b.eseq − a.eseq − 1 == b.dropped − a.dropped` — so a
//! load run doubles as an end-to-end proof that overwrite-oldest
//! backpressure loses exactly what it says it loses. And
//! [`run_subscribe_transcript`] is the deterministic variant behind the
//! `scripts/serve_subscribe.golden` gate: subscribe first (eseq 0),
//! drive a fixed mutation script from a second session, and print the
//! ack plus every event line verbatim.

use std::io::{BufRead, BufReader, Write};
use std::time::{Duration, Instant};

use fcm_substrate::{Json, Rng};

use crate::server::{connect, Listen};

/// Load-mode parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Offered request rate, requests/second across all clients.
    pub rate: u64,
    /// Concurrent client connections.
    pub clients: usize,
    /// Run length in milliseconds.
    pub duration_ms: u64,
    /// Base RNG seed (client `i` uses `Rng::stream(seed, i)`).
    pub seed: u64,
    /// Percent of requests that are mutations (0..=100); the rest are
    /// queries.
    pub mutation_pct: u8,
    /// Event subscribers attached for the duration of the run (0 =
    /// none). Each validates the eseq/dropped gap identity on its
    /// stream.
    pub subscribers: usize,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            rate: 1000,
            clients: 4,
            duration_ms: 2000,
            seed: 42,
            mutation_pct: 20,
            subscribers: 0,
        }
    }
}

/// Aggregated result of a load run.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Requests sent (and answered).
    pub sent: u64,
    /// Responses with `"ok":false` (domain rejections are expected under
    /// a random mix — e.g. removing an already-removed FCM).
    pub errors: u64,
    /// Mutation round-trip latencies, ns.
    pub mutation_ns: Vec<u64>,
    /// Query round-trip latencies, ns.
    pub query_ns: Vec<u64>,
    /// Wall-clock run length, ns.
    pub elapsed_ns: u64,
    /// Events delivered across all subscribers.
    pub events_delivered: u64,
    /// Events dropped (overwrite-oldest) across all subscribers.
    pub events_dropped: u64,
}

/// Exact percentile (nearest-rank) over an unsorted sample; 0 when empty.
#[must_use]
pub fn percentile_ns(samples: &[u64], p: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut v = samples.to_vec();
    v.sort_unstable();
    let rank = ((p / 100.0) * v.len() as f64).ceil() as usize;
    v[rank.clamp(1, v.len()) - 1]
}

/// Replays `script` (one request per line; blank lines and `#` comments
/// skipped) against the daemon, writing the hello line and every
/// response to `out` verbatim.
///
/// # Errors
///
/// Connection or I/O failure (exit-code-2 class); individual request
/// rejections are *not* errors — they land in the transcript.
pub fn run_script(target: &Listen, script: &str, out: &mut dyn Write) -> Result<(), String> {
    let stream = connect(target)?;
    let mut tx = stream
        .try_clone()
        .map_err(|e| format!("clone stream: {e}"))?;
    let mut lines = BufReader::new(stream).lines();
    let hello = lines
        .next()
        .ok_or("server closed before hello")?
        .map_err(|e| format!("read hello: {e}"))?;
    writeln!(out, "{hello}").map_err(|e| format!("write transcript: {e}"))?;
    for req in script.lines() {
        let req = req.trim();
        if req.is_empty() || req.starts_with('#') {
            continue;
        }
        tx.write_all(req.as_bytes())
            .and_then(|()| tx.write_all(b"\n"))
            .map_err(|e| format!("send request: {e}"))?;
        let resp = lines
            .next()
            .ok_or("server closed mid-session")?
            .map_err(|e| format!("read response: {e}"))?;
        writeln!(out, "{resp}").map_err(|e| format!("write transcript: {e}"))?;
    }
    Ok(())
}

/// Replays `script` mutations from a second session while a
/// subscription opened *first* (so its events start at eseq 0) streams
/// to `out`: the hello, the subscribe ack, then every event line
/// through the `max_events` end marker, all verbatim. Every byte is a
/// pure function of (model, script, server event cadence), which is
/// what lets scripts/verify.sh pin the output as a golden file.
///
/// # Errors
///
/// Connection or I/O failure, a rejected subscribe, or a server that
/// closes mid-stream (all exit-code-2 class).
pub fn run_subscribe_transcript(
    target: &Listen,
    script: &str,
    max_events: u64,
    out: &mut dyn Write,
) -> Result<(), String> {
    let stream = connect(target)?;
    let mut tx = stream
        .try_clone()
        .map_err(|e| format!("clone stream: {e}"))?;
    let mut lines = BufReader::new(stream).lines();
    let hello = lines
        .next()
        .ok_or("server closed before hello")?
        .map_err(|e| format!("read hello: {e}"))?;
    writeln!(out, "{hello}").map_err(|e| format!("write transcript: {e}"))?;
    let sub_req = format!("{{\"op\":\"subscribe\",\"max_events\":{max_events}}}\n");
    tx.write_all(sub_req.as_bytes())
        .map_err(|e| format!("send subscribe: {e}"))?;
    let ack = lines
        .next()
        .ok_or("server closed before subscribe ack")?
        .map_err(|e| format!("read ack: {e}"))?;
    writeln!(out, "{ack}").map_err(|e| format!("write transcript: {e}"))?;
    let parsed = Json::parse(&ack).map_err(|e| format!("subscribe ack: {e}"))?;
    if parsed.get("ok") != Some(&Json::Bool(true)) {
        return Err(format!("subscribe rejected: {ack}"));
    }
    // Drive the mutations from a second session; its responses are not
    // part of the subscription transcript.
    run_script(target, script, &mut std::io::sink())?;
    loop {
        let line = lines
            .next()
            .ok_or("server closed mid-stream")?
            .map_err(|e| format!("read event: {e}"))?;
        writeln!(out, "{line}").map_err(|e| format!("write transcript: {e}"))?;
        let ev = Json::parse(&line).map_err(|e| format!("event line: {e}"))?;
        if ev.get("event").and_then(Json::as_str) == Some("end") {
            return Ok(());
        }
    }
}

/// Reads a `u64` field off an event/ack line.
fn event_u64(j: &Json, key: &str) -> Result<u64, String> {
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let v = j.get(key).and_then(Json::as_f64).map(|v| v as u64);
    v.ok_or_else(|| format!("event line missing \"{key}\": {}", j.to_string_compact()))
}

/// One load-run subscriber: the stream handle (shut down by the load
/// driver once the run ends) plus the thread validating the event
/// stream; the thread resolves to `(delivered, dropped)`.
struct SubWorker {
    stream: crate::server::Stream,
    thread: std::thread::JoinHandle<Result<(u64, u64), String>>,
}

/// Attaches one subscriber and spawns its validation thread: every
/// delivered event must satisfy the exact drop-accounting identity
/// (gap in eseq == growth in `dropped` — see `crate::events`).
fn spawn_subscriber(target: &Listen) -> Result<SubWorker, String> {
    let stream = connect(target)?;
    let reader = stream
        .try_clone()
        .map_err(|e| format!("clone stream: {e}"))?;
    let mut tx = stream
        .try_clone()
        .map_err(|e| format!("clone stream: {e}"))?;
    let thread = std::thread::spawn(move || -> Result<(u64, u64), String> {
        let mut lines = BufReader::new(reader).lines();
        lines
            .next()
            .ok_or("server closed before hello")?
            .map_err(|e| e.to_string())?;
        tx.write_all(b"{\"op\":\"subscribe\"}\n")
            .map_err(|e| e.to_string())?;
        let ack_line = lines
            .next()
            .ok_or("no subscribe ack")?
            .map_err(|e| e.to_string())?;
        let ack = Json::parse(&ack_line).map_err(|e| format!("subscribe ack: {e}"))?;
        if ack.get("ok") != Some(&Json::Bool(true)) {
            return Err(format!("subscribe rejected: {ack_line}"));
        }
        let next_eseq = event_u64(&ack, "next_eseq")?;
        let mut prev: Option<(u64, u64)> = None;
        let mut delivered = 0u64;
        let mut dropped = 0u64;
        // Drain until the load driver shuts the socket down.
        for line in lines {
            let Ok(line) = line else { break };
            let j = Json::parse(&line).map_err(|e| format!("event line: {e}"))?;
            let eseq = event_u64(&j, "eseq")?;
            let drops = event_u64(&j, "dropped")?;
            let consistent = match prev {
                None => eseq.checked_sub(next_eseq) == drops.checked_sub(0),
                Some((pe, pd)) => {
                    eseq.checked_sub(pe + 1)
                        .zip(drops.checked_sub(pd))
                        .is_some_and(|(gap, d)| gap == d)
                }
            };
            if !consistent {
                return Err(format!(
                    "drop accounting violated: eseq {eseq} dropped {drops} after {prev:?} (subscribed at {next_eseq})"
                ));
            }
            prev = Some((eseq, drops));
            delivered += 1;
            dropped = drops;
        }
        Ok((delivered, dropped))
    });
    Ok(SubWorker { stream, thread })
}

/// One client's deterministic request generator.
struct ClientMix {
    rng: Rng,
    /// FCM names this client added and has not yet removed.
    own: Vec<String>,
    /// Base-model FCM names (query/edge targets).
    base: Vec<String>,
    client: usize,
    created: u64,
    mutation_pct: u8,
}

impl ClientMix {
    fn next_request(&mut self) -> (String, bool) {
        let is_mutation = self.rng.gen_range(0u64..100) < u64::from(self.mutation_pct);
        let pick = |rng: &mut Rng, pool: &[String]| -> String {
            pool[rng.gen_range(0usize..pool.len())].clone()
        };
        if is_mutation {
            let roll = self.rng.gen_range(0u64..100);
            if roll < 10 {
                // Add a leaf FCM influencing one base node — unless this
                // client already carries its cap, in which case remove
                // one instead. The cap keeps the model at a steady-state
                // size: without it the per-client set random-walks
                // upward and apply cost (gate + matrix growth) climbs
                // over the run, conflating model growth with server
                // throughput.
                if self.own.len() >= 8 {
                    let name = self.own.pop().expect("cap reached implies non-empty");
                    return (format!(r#"{{"op":"remove_fcm","name":"{name}"}}"#), true);
                }
                let name = format!("g{}_{}", self.client, self.created);
                self.created += 1;
                let to = pick(&mut self.rng, &self.base);
                let w = self.rng.gen_range(0.01f64..0.5);
                self.own.push(name.clone());
                (
                    format!(
                        r#"{{"op":"add_fcm","name":"{name}","criticality":{},"influences":[["{to}",{w}]]}}"#,
                        self.rng.gen_range(0u64..3)
                    ),
                    true,
                )
            } else if roll < 20 {
                match self.own.pop() {
                    Some(name) => (format!(r#"{{"op":"remove_fcm","name":"{name}"}}"#), true),
                    None => self.set_attr(),
                }
            } else {
                self.set_attr()
            }
        } else {
            let roll = self.rng.gen_range(0u64..100);
            let from = pick(&mut self.rng, &self.base);
            let to = pick(&mut self.rng, &self.base);
            if roll < 45 {
                (
                    format!(r#"{{"op":"influence","from":"{from}","to":"{to}"}}"#),
                    false,
                )
            } else if roll < 90 {
                (
                    format!(r#"{{"op":"separation","from":"{from}","to":"{to}"}}"#),
                    false,
                )
            } else {
                (r#"{"op":"stats"}"#.to_string(), false)
            }
        }
    }

    fn set_attr(&mut self) -> (String, bool) {
        // Tweak one of this client's own FCMs when possible (avoids
        // cross-client churn on shared nodes), else nudge a base FCM's
        // throughput by a tiny amount.
        if let Some(name) = self.own.last() {
            (
                format!(
                    r#"{{"op":"set_attr","name":"{name}","criticality":{}}}"#,
                    self.rng.gen_range(0u64..3)
                ),
                true,
            )
        } else {
            let name = self.base[self.rng.gen_range(0usize..self.base.len())].clone();
            (
                format!(
                    r#"{{"op":"set_attr","name":"{name}","throughput":{}}}"#,
                    self.rng.gen_range(0.0f64..0.001)
                ),
                true,
            )
        }
    }
}

/// Runs the open-loop load against the daemon.
///
/// # Errors
///
/// Connection failure, a dead session mid-run, or a response that is
/// not valid JSON (protocol breakage — distinct from `"ok":false`).
pub fn run_load(target: &Listen, config: &LoadConfig) -> Result<LoadReport, String> {
    if config.rate == 0 || config.clients == 0 {
        return Err("rate and clients must be positive".to_string());
    }
    // Fetch the base FCM list once so the mix targets real names.
    let base: Vec<String> = {
        let stream = connect(target)?;
        let mut tx = stream.try_clone().map_err(|e| format!("clone stream: {e}"))?;
        let mut lines = BufReader::new(stream).lines();
        lines.next().ok_or("server closed before hello")?.map_err(|e| e.to_string())?;
        tx.write_all(b"{\"op\":\"list\"}\n").map_err(|e| e.to_string())?;
        let resp = lines.next().ok_or("no list response")?.map_err(|e| e.to_string())?;
        let j = Json::parse(&resp).map_err(|e| format!("list response: {e}"))?;
        j.get("fcms")
            .and_then(Json::as_array)
            .ok_or("list response missing fcms")?
            .iter()
            .filter_map(|v| v.as_str().map(str::to_string))
            .collect()
    };
    if base.is_empty() {
        return Err("model has no FCMs to target".to_string());
    }

    // Subscribers attach before the load starts so they observe the
    // whole run; they detach (socket shutdown) only after every worker
    // has drained its responses.
    let subs: Vec<SubWorker> = (0..config.subscribers)
        .map(|_| spawn_subscriber(target))
        .collect::<Result<_, _>>()?;

    let per_client_rate = config.rate as f64 / config.clients as f64;
    let total_per_client =
        ((config.duration_ms as f64 / 1000.0) * per_client_rate).floor() as u64;
    let workers: Vec<_> = (0..config.clients)
        .map(|c| {
            let target = target.clone();
            let base = base.clone();
            let seed = config.seed;
            let mutation_pct = config.mutation_pct;
            std::thread::spawn(move || -> Result<LoadReport, String> {
                let stream = connect(&target)?;
                let mut tx = stream.try_clone().map_err(|e| format!("clone stream: {e}"))?;
                // Responses come back in request order on the session, so
                // the reader half pairs each line with the send instant
                // queued by the sender half.
                let (meta_tx, meta_rx) = std::sync::mpsc::channel::<(Instant, bool)>();
                let reader = std::thread::spawn(move || -> Result<LoadReport, String> {
                    let mut lines = BufReader::new(stream).lines();
                    lines
                        .next()
                        .ok_or("server closed before hello")?
                        .map_err(|e| e.to_string())?;
                    let mut report = LoadReport::default();
                    while let Ok((t0, is_mutation)) = meta_rx.recv() {
                        let resp = lines
                            .next()
                            .ok_or("server closed mid-run")?
                            .map_err(|e| e.to_string())?;
                        let ns = t0.elapsed().as_nanos() as u64;
                        let j = Json::parse(&resp).map_err(|e| format!("bad response: {e}"))?;
                        report.sent += 1;
                        if j.get("ok") != Some(&Json::Bool(true)) {
                            report.errors += 1;
                        }
                        if is_mutation {
                            report.mutation_ns.push(ns);
                        } else {
                            report.query_ns.push(ns);
                        }
                    }
                    Ok(report)
                });
                let mut mix = ClientMix {
                    rng: Rng::stream(seed, c as u64),
                    own: Vec::new(),
                    base,
                    client: c,
                    created: 0,
                    mutation_pct,
                };
                let start = Instant::now();
                let mut line = String::new();
                for i in 0..total_per_client {
                    // Open loop: request i is *due* at i/rate seconds; the
                    // sender fires regardless of outstanding responses.
                    let due = Duration::from_secs_f64(i as f64 / per_client_rate);
                    if let Some(wait) = due.checked_sub(start.elapsed()) {
                        std::thread::sleep(wait);
                    }
                    let (req, is_mutation) = mix.next_request();
                    line.clear();
                    line.push_str(&req);
                    line.push('\n');
                    meta_tx
                        .send((Instant::now(), is_mutation))
                        .map_err(|_| "reader half exited early".to_string())?;
                    tx.write_all(line.as_bytes()).map_err(|e| format!("send: {e}"))?;
                }
                drop(meta_tx);
                let mut report = reader
                    .join()
                    .map_err(|_| "reader half panicked".to_string())??;
                // Elapsed covers the drain: achieved rate counts only
                // *answered* requests over the full wall-clock window.
                report.elapsed_ns = start.elapsed().as_nanos() as u64;
                Ok(report)
            })
        })
        .collect();

    let mut total = LoadReport::default();
    for w in workers {
        let r = w.join().map_err(|_| "load client panicked".to_string())??;
        total.sent += r.sent;
        total.errors += r.errors;
        total.mutation_ns.extend(r.mutation_ns);
        total.query_ns.extend(r.query_ns);
        total.elapsed_ns = total.elapsed_ns.max(r.elapsed_ns);
    }
    for sub in &subs {
        sub.stream.shutdown();
    }
    for sub in subs {
        let (delivered, dropped) = sub
            .thread
            .join()
            .map_err(|_| "subscriber panicked".to_string())??;
        total.events_delivered += delivered;
        total.events_dropped += dropped;
    }
    Ok(total)
}

/// Renders a load report as the `servegen` summary JSON.
#[must_use]
pub fn report_json(config: &LoadConfig, r: &LoadReport) -> Json {
    let achieved = if r.elapsed_ns == 0 {
        0.0
    } else {
        r.sent as f64 / (r.elapsed_ns as f64 / 1e9)
    };
    Json::object()
        .set("achieved_rps", achieved)
        .set("clients", config.clients as u64)
        .set("errors", r.errors)
        .set("events_delivered", r.events_delivered)
        .set("events_dropped", r.events_dropped)
        .set("subscribers", config.subscribers as u64)
        .set("mutation_p50_ns", percentile_ns(&r.mutation_ns, 50.0))
        .set("mutation_p99_ns", percentile_ns(&r.mutation_ns, 99.0))
        .set("mutations", r.mutation_ns.len() as u64)
        .set("offered_rps", config.rate)
        .set("queries", r.query_ns.len() as u64)
        .set("query_p50_ns", percentile_ns(&r.query_ns, 50.0))
        .set("query_p99_ns", percentile_ns(&r.query_ns, 99.0))
        .set("seed", config.seed)
        .set("sent", r.sent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{start, Listen, ServerConfig};

    #[test]
    fn percentiles_are_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_ns(&v, 50.0), 50);
        assert_eq!(percentile_ns(&v, 99.0), 99);
        assert_eq!(percentile_ns(&v, 100.0), 100);
        assert_eq!(percentile_ns(&[7], 99.0), 7);
        assert_eq!(percentile_ns(&[], 50.0), 0);
    }

    #[test]
    fn request_mix_is_deterministic_per_seed() {
        let gen_seq = |seed| {
            let mut mix = ClientMix {
                rng: Rng::stream(seed, 0),
                own: Vec::new(),
                base: vec!["a".to_string(), "b".to_string()],
                client: 0,
                created: 0,
                mutation_pct: 50,
            };
            (0..50).map(|_| mix.next_request().0).collect::<Vec<_>>()
        };
        assert_eq!(gen_seq(7), gen_seq(7));
        assert_ne!(gen_seq(7), gen_seq(8));
    }

    #[test]
    fn script_and_load_run_against_a_live_server() {
        let h = start(ServerConfig::new(Listen::Tcp("127.0.0.1:0".to_string()), "paper"))
            .expect("server starts");
        let target = Listen::Tcp(h.addr().to_string());

        let mut transcript = Vec::new();
        run_script(
            &target,
            "# comment\n{\"op\":\"ping\",\"id\":1}\n\n{\"op\":\"stats\"}\n",
            &mut transcript,
        )
        .expect("script runs");
        let text = String::from_utf8(transcript).unwrap();
        assert_eq!(text.lines().count(), 3, "hello + two responses:\n{text}");

        let report = run_load(
            &target,
            &LoadConfig {
                rate: 400,
                clients: 2,
                duration_ms: 250,
                seed: 11,
                mutation_pct: 30,
                subscribers: 2,
            },
        )
        .expect("load runs");
        assert!(report.sent >= 90, "sent {}", report.sent);
        assert_eq!(report.errors, 0, "seeded mix is always valid");
        assert!(!report.query_ns.is_empty() && !report.mutation_ns.is_empty());
        assert!(
            report.events_delivered > 0,
            "subscribers observed the mutation stream"
        );
        h.stop().expect("clean stop");
    }

    #[test]
    fn subscribe_transcript_is_deterministic() {
        let script = concat!(
            r#"{"op":"add_fcm","name":"t0","criticality":1,"influences":[["p8",0.3]]}"#,
            "\n",
            r#"{"op":"add_fcm","name":"t1","criticality":0,"influences":[["p2a",0.2]]}"#,
            "\n",
        );
        let run = || {
            let h = start(ServerConfig {
                heartbeat_every: 2,
                ..ServerConfig::new(Listen::Tcp("127.0.0.1:0".to_string()), "paper")
            })
            .expect("server starts");
            let target = Listen::Tcp(h.addr().to_string());
            let mut out = Vec::new();
            // 2 mutations + 1 heartbeat = 3 events, then the end line.
            run_subscribe_transcript(&target, script, 3, &mut out).expect("transcript");
            h.stop().expect("clean stop");
            String::from_utf8(out).unwrap()
        };
        let a = run();
        assert_eq!(a, run(), "byte-identical across fresh daemons");
        let lines: Vec<&str> = a.lines().collect();
        assert_eq!(lines.len(), 6, "hello + ack + 3 events + end:\n{a}");
        assert!(lines[2].contains("\"event\":\"mutation\""));
        assert!(lines[4].contains("\"event\":\"stats\""));
        assert!(lines[5].contains("\"event\":\"end\""));
    }
}
