//! Degraded-mode behaviour under injected journal failure: mutations
//! get the structured `degraded` error, queries keep serving, re-arm
//! probes restore durability once the fault clears, and shutdown while
//! degraded is still clean (exit-0 class).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use fcm_serve::server::{start, Listen, ServerConfig};
use fcm_substrate::fault::FaultPlan;
use fcm_substrate::Json;

type Session = (TcpStream, std::io::Lines<BufReader<TcpStream>>);

fn open_session(addr: &str) -> Session {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let out = stream.try_clone().expect("clone");
    let mut lines = BufReader::new(stream).lines();
    let _hello = lines.next().expect("hello").expect("read hello");
    (out, lines)
}

fn send(session: &mut Session, req: &str) -> Json {
    session.0.write_all(req.as_bytes()).expect("write");
    session.0.write_all(b"\n").expect("write");
    let line = session.1.next().expect("response").expect("read");
    Json::parse(&line).expect("valid response JSON")
}

fn state_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("fcm-serve-degraded-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

const MUTATE: &str = r#"{"op":"set_attr","name":"p8","criticality":2}"#;

#[test]
fn persistent_journal_failure_degrades_but_keeps_serving() {
    let dir = state_dir("forever");
    let h = start(ServerConfig {
        state_dir: Some(dir.clone()),
        fault: FaultPlan::parse("journal.*:eio").unwrap(),
        rearm_base_ms: 10,
        ..ServerConfig::new(Listen::Tcp("127.0.0.1:0".to_string()), "paper")
    })
    .expect("server starts");
    let mut s = open_session(h.addr());

    // First mutation trips the injected journal failure: structured
    // degraded error, machine-checkable `"degraded": true`.
    let r = send(&mut s, MUTATE);
    assert_eq!(r.get("ok"), Some(&Json::Bool(false)), "{r:?}");
    assert_eq!(r.get("degraded"), Some(&Json::Bool(true)), "{r:?}");
    let err = r.get("error").and_then(Json::as_str).unwrap();
    assert!(err.starts_with("degraded:"), "{err}");

    // Later mutations are rejected the same way (probes keep failing —
    // the plan injects forever).
    for _ in 0..5 {
        std::thread::sleep(Duration::from_millis(15));
        let r = send(&mut s, MUTATE);
        assert_eq!(r.get("degraded"), Some(&Json::Bool(true)), "{r:?}");
    }

    // The read path is untouched — and still fast. The model was rolled
    // back to the durable prefix, so seq is 0.
    let mut best = Duration::MAX;
    for _ in 0..5 {
        let t0 = Instant::now();
        let stats = send(&mut s, r#"{"op":"stats"}"#);
        best = best.min(t0.elapsed());
        assert_eq!(stats.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(stats.get("degraded"), Some(&Json::Bool(true)));
        assert_eq!(stats.get("seq").and_then(Json::as_f64), Some(0.0));
        assert_eq!(stats.get("degraded_transitions").and_then(Json::as_f64), Some(1.0));
        assert!(stats.get("rearm_attempts").and_then(Json::as_f64).unwrap() >= 1.0);
        assert!(stats.get("faults_injected").and_then(Json::as_f64).unwrap() >= 1.0);
    }
    assert!(best < Duration::from_millis(10), "degraded query took {best:?}");

    // Shutdown while degraded is still clean (the daemon's exit-0 path).
    h.stop().expect("degraded shutdown is clean");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rearm_restores_durability_after_the_fault_clears() {
    let dir = state_dir("rearm");
    // The first two journal-site hits fail: the initial append (enters
    // degraded) and the first re-arm probe; the second probe passes.
    let h = start(ServerConfig {
        state_dir: Some(dir.clone()),
        fault: FaultPlan::parse("journal.*:eio@0..2").unwrap(),
        rearm_base_ms: 5,
        ..ServerConfig::new(Listen::Tcp("127.0.0.1:0".to_string()), "paper")
    })
    .expect("server starts");
    let mut s = open_session(h.addr());

    let r = send(&mut s, MUTATE);
    assert_eq!(r.get("degraded"), Some(&Json::Bool(true)), "{r:?}");

    // Probes piggyback on incoming mutations; retry until re-armed.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut accepted = false;
    while Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
        let r = send(&mut s, MUTATE);
        if r.get("ok") == Some(&Json::Bool(true)) {
            accepted = true;
            break;
        }
        assert_eq!(r.get("degraded"), Some(&Json::Bool(true)), "{r:?}");
    }
    assert!(accepted, "daemon never re-armed");

    let stats = send(&mut s, r#"{"op":"stats"}"#);
    assert_eq!(stats.get("degraded"), Some(&Json::Bool(false)));
    assert_eq!(stats.get("degraded_transitions").and_then(Json::as_f64), Some(1.0));
    assert!(stats.get("rearm_attempts").and_then(Json::as_f64).unwrap() >= 1.0);
    assert_eq!(
        stats.get("seq").and_then(Json::as_f64),
        Some(1.0),
        "re-armed daemon journals from the durable prefix"
    );
    h.stop().expect("clean stop");

    // The accepted mutation is really on disk: exactly one journal line.
    let journal = std::fs::read_to_string(dir.join("journal.jsonl")).unwrap();
    assert_eq!(journal.lines().count(), 1, "{journal}");
    assert!(journal.contains("set_attr"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fault_free_plan_behaves_identically_to_no_plan() {
    // `FaultPlan::none()` must be byte-identical to pre-fault behaviour:
    // same responses, same journal bytes (modulo nothing — the journal
    // carries no timestamps).
    let run = |fault: FaultPlan, tag: &str| {
        let dir = state_dir(tag);
        let h = start(ServerConfig {
            state_dir: Some(dir.clone()),
            fault,
            ..ServerConfig::new(Listen::Tcp("127.0.0.1:0".to_string()), "paper")
        })
        .expect("server starts");
        let mut s = open_session(h.addr());
        let mut transcript = String::new();
        for req in [
            MUTATE,
            r#"{"op":"fail_node","node":"hw2"}"#,
            r#"{"op":"restore_node","node":"hw2"}"#,
            r#"{"op":"stats"}"#,
        ] {
            transcript.push_str(&send(&mut s, req).to_string_compact());
            transcript.push('\n');
        }
        h.stop().expect("clean stop");
        let journal = std::fs::read_to_string(dir.join("journal.jsonl")).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        (transcript, journal)
    };
    let (t_none, j_none) = run(FaultPlan::none(), "none");
    let (t_empty, j_empty) = run(FaultPlan::parse("").unwrap(), "empty");
    assert_eq!(t_none, t_empty, "transcripts diverge");
    assert_eq!(j_none, j_empty, "journal bytes diverge");
}
