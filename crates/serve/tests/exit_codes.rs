//! Exit-code contract for the serve binaries (DESIGN.md): 0 = success /
//! clean shutdown, 1 = findings, 2 = usage or IO error; `--help`
//! always exits 0. Malformed *requests* must never surface as exit
//! codes — they get structured error responses (pinned here via a
//! scripted session).

use std::io::Write;
use std::process::{Command, Output, Stdio};

fn run(bin: &str, args: &[&str]) -> Output {
    Command::new(bin)
        .args(args)
        .env_remove("FCM_OBS_OUT")
        .output()
        .unwrap_or_else(|e| panic!("cannot spawn {bin}: {e}"))
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("binary exited without a signal")
}

#[test]
fn help_exits_zero() {
    for bin in [env!("CARGO_BIN_EXE_fcm-serve"), env!("CARGO_BIN_EXE_servegen")] {
        let out = run(bin, &["--help"]);
        assert_eq!(code(&out), 0, "{bin} --help must exit 0");
        assert!(!out.stdout.is_empty(), "{bin} --help prints usage");
    }
}

#[test]
fn usage_errors_exit_two() {
    let serve = env!("CARGO_BIN_EXE_fcm-serve");
    let gen = env!("CARGO_BIN_EXE_servegen");
    let cases: [(&str, &[&str]); 7] = [
        (serve, &["--no-such-flag"]),
        (serve, &[]),                                     // --model missing
        (serve, &["--model", "paper"]),                   // no socket
        (serve, &["--model", "paper", "--resume"]),       // resume sans state-dir
        (gen, &["--no-such-flag"]),
        (gen, &[]),                                       // no target
        (gen, &["--tcp", "127.0.0.1:1", "--mutation-pct", "101"]),
    ];
    for (bin, args) in cases {
        let out = run(bin, args);
        assert_eq!(
            code(&out),
            2,
            "{bin} {args:?} must exit 2; stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn unknown_model_exits_one_unwritable_state_dir_exits_two() {
    let serve = env!("CARGO_BIN_EXE_fcm-serve");
    // Model-content findings → 1.
    let out = run(serve, &["--model", "no-such-model", "--tcp", "127.0.0.1:0"]);
    assert_eq!(code(&out), 1, "unknown model is a findings-class failure");
    // Environment failure (unwritable state dir) → 2.
    let out = run(
        serve,
        &[
            "--model",
            "paper",
            "--tcp",
            "127.0.0.1:0",
            "--state-dir",
            "/proc/fcm-serve-cannot-write-here",
        ],
    );
    assert_eq!(
        code(&out),
        2,
        "unwritable state dir must exit 2; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn servegen_timeout_on_a_hung_daemon_exits_two() {
    // A listener that accepts but never sends the hello: servegen's
    // script mode blocks reading it. The watchdog must exit 2 instead
    // of wedging.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let hang = std::thread::spawn(move || {
        let _conn = listener.accept();
        std::thread::sleep(std::time::Duration::from_secs(20));
    });

    let mut gen = Command::new(env!("CARGO_BIN_EXE_servegen"))
        .args(["--tcp", &addr, "--script", "-", "--timeout", "300"])
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("servegen spawns");
    gen.stdin
        .take()
        .unwrap()
        .write_all(b"{\"op\":\"ping\"}\n")
        .unwrap();
    let out = gen.wait_with_output().unwrap();
    assert_eq!(
        out.status.code(),
        Some(2),
        "hung daemon must trip --timeout; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("did not complete within"),
        "stderr names the timeout"
    );
    drop(hang); // detach; the sleeper dies with the test process
}

#[test]
fn resume_from_a_corrupt_journal_exits_two_with_line_number() {
    let dir = std::env::temp_dir().join(format!("fcm-serve-corrupt-exit-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("journal.jsonl"),
        "{\"mutation\":{\"criticality\":2,\"name\":\"p8\",\"op\":\"set_attr\"},\"seq\":1}\n{CORRUPT}\n",
    )
    .unwrap();
    let out = run(
        env!("CARGO_BIN_EXE_fcm-serve"),
        &[
            "--model",
            "paper",
            "--tcp",
            "127.0.0.1:0",
            "--state-dir",
            dir.to_str().unwrap(),
            "--resume",
        ],
    );
    assert_eq!(
        code(&out),
        2,
        "corrupt journal is an environment failure; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("journal line 2"),
        "diagnostic names the corrupt line; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_fault_plan_exits_two_and_degraded_daemon_sigterm_exits_zero() {
    let serve = env!("CARGO_BIN_EXE_fcm-serve");
    // Unparseable --fault-plan is a usage error.
    let out = run(
        serve,
        &["--model", "paper", "--tcp", "127.0.0.1:0", "--fault-plan", "journal.*:bogus"],
    );
    assert_eq!(code(&out), 2, "bad fault spec must exit 2");

    // A daemon degraded by a 100%-journal-failure plan still drains
    // cleanly on SIGTERM: exit 0, not a crash.
    let dir = std::env::temp_dir().join(format!("fcm-serve-degraded-exit-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let sock = dir.join("s.sock");
    let mut daemon = Command::new(serve)
        .args([
            "--model",
            "paper",
            "--socket",
            sock.to_str().unwrap(),
            "--state-dir",
            dir.to_str().unwrap(),
            "--fault-plan",
            "journal.*:eio",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("daemon spawns");
    for _ in 0..200 {
        if sock.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(sock.exists(), "daemon bound its socket");

    // Trip the fault, then confirm the read path still answers.
    let mut gen = Command::new(env!("CARGO_BIN_EXE_servegen"))
        .args(["--socket", sock.to_str().unwrap(), "--script", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("servegen spawns");
    gen.stdin
        .take()
        .unwrap()
        .write_all(
            b"{\"op\":\"set_attr\",\"name\":\"p8\",\"criticality\":2}\n{\"op\":\"stats\",\"id\":9}\n",
        )
        .unwrap();
    let out = gen.wait_with_output().unwrap();
    let text = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3, "hello + two responses:\n{text}");
    assert!(
        lines[1].contains("\"degraded\":true") && lines[1].contains("\"ok\":false"),
        "{}",
        lines[1]
    );
    assert!(
        lines[2].contains("\"ok\":true") && lines[2].contains("\"degraded\":true"),
        "{}",
        lines[2]
    );

    #[allow(clippy::cast_possible_wrap)]
    let pid = daemon.id() as i32;
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    unsafe {
        kill(pid, 15);
    }
    let status = daemon.wait().expect("daemon exits");
    assert_eq!(status.code(), Some(0), "degraded SIGTERM drain exits 0");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn servegen_connection_failure_exits_two() {
    // Port 1 on localhost: connection refused.
    let out = run(
        env!("CARGO_BIN_EXE_servegen"),
        &["--tcp", "127.0.0.1:1", "--duration-ms", "50"],
    );
    assert_eq!(code(&out), 2);
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("connect"),
        "stderr names the failure"
    );
}

/// A malformed request line yields a structured error response — the
/// session (and both processes) stay up and exit 0.
#[test]
fn malformed_requests_are_responses_not_crashes() {
    let dir = std::env::temp_dir().join(format!("fcm-serve-exit-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let sock = dir.join("s.sock");

    let mut daemon = Command::new(env!("CARGO_BIN_EXE_fcm-serve"))
        .args(["--model", "paper", "--socket", sock.to_str().unwrap()])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("daemon spawns");
    for _ in 0..200 {
        if sock.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(sock.exists(), "daemon bound its socket");

    let mut gen = Command::new(env!("CARGO_BIN_EXE_servegen"))
        .args(["--socket", sock.to_str().unwrap(), "--script", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("servegen spawns");
    gen.stdin
        .take()
        .unwrap()
        .write_all(b"{not json\n{\"op\":\"no_such_op\"}\n{\"op\":\"ping\",\"id\":3}\n")
        .unwrap();
    let out = gen.wait_with_output().unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "script mode exits 0; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 4, "hello + three responses:\n{text}");
    assert!(lines[1].contains("\"ok\":false") && lines[1].contains("parse"), "{}", lines[1]);
    assert!(lines[2].contains("\"ok\":false") && lines[2].contains("unknown op"), "{}", lines[2]);
    assert!(lines[3].contains("\"ok\":true") && lines[3].contains("\"id\":3"), "{}", lines[3]);

    // SIGTERM → graceful drain → exit 0.
    #[allow(clippy::cast_possible_wrap)]
    let pid = daemon.id() as i32;
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    unsafe {
        kill(pid, 15);
    }
    let status = daemon.wait().expect("daemon exits");
    assert_eq!(status.code(), Some(0), "SIGTERM drain exits 0");
    let _ = std::fs::remove_dir_all(&dir);
}
