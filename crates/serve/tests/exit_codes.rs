//! Exit-code contract for the serve binaries (DESIGN.md): 0 = success /
//! clean shutdown, 1 = findings, 2 = usage or IO error; `--help`
//! always exits 0. Malformed *requests* must never surface as exit
//! codes — they get structured error responses (pinned here via a
//! scripted session).

use std::io::Write;
use std::process::{Command, Output, Stdio};

fn run(bin: &str, args: &[&str]) -> Output {
    Command::new(bin)
        .args(args)
        .env_remove("FCM_OBS_OUT")
        .output()
        .unwrap_or_else(|e| panic!("cannot spawn {bin}: {e}"))
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("binary exited without a signal")
}

#[test]
fn help_exits_zero() {
    for bin in [env!("CARGO_BIN_EXE_fcm-serve"), env!("CARGO_BIN_EXE_servegen")] {
        let out = run(bin, &["--help"]);
        assert_eq!(code(&out), 0, "{bin} --help must exit 0");
        assert!(!out.stdout.is_empty(), "{bin} --help prints usage");
    }
}

#[test]
fn usage_errors_exit_two() {
    let serve = env!("CARGO_BIN_EXE_fcm-serve");
    let gen = env!("CARGO_BIN_EXE_servegen");
    let cases: [(&str, &[&str]); 7] = [
        (serve, &["--no-such-flag"]),
        (serve, &[]),                                     // --model missing
        (serve, &["--model", "paper"]),                   // no socket
        (serve, &["--model", "paper", "--resume"]),       // resume sans state-dir
        (gen, &["--no-such-flag"]),
        (gen, &[]),                                       // no target
        (gen, &["--tcp", "127.0.0.1:1", "--mutation-pct", "101"]),
    ];
    for (bin, args) in cases {
        let out = run(bin, args);
        assert_eq!(
            code(&out),
            2,
            "{bin} {args:?} must exit 2; stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn unknown_model_exits_one_unwritable_state_dir_exits_two() {
    let serve = env!("CARGO_BIN_EXE_fcm-serve");
    // Model-content findings → 1.
    let out = run(serve, &["--model", "no-such-model", "--tcp", "127.0.0.1:0"]);
    assert_eq!(code(&out), 1, "unknown model is a findings-class failure");
    // Environment failure (unwritable state dir) → 2.
    let out = run(
        serve,
        &[
            "--model",
            "paper",
            "--tcp",
            "127.0.0.1:0",
            "--state-dir",
            "/proc/fcm-serve-cannot-write-here",
        ],
    );
    assert_eq!(
        code(&out),
        2,
        "unwritable state dir must exit 2; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn servegen_connection_failure_exits_two() {
    // Port 1 on localhost: connection refused.
    let out = run(
        env!("CARGO_BIN_EXE_servegen"),
        &["--tcp", "127.0.0.1:1", "--duration-ms", "50"],
    );
    assert_eq!(code(&out), 2);
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("connect"),
        "stderr names the failure"
    );
}

/// A malformed request line yields a structured error response — the
/// session (and both processes) stay up and exit 0.
#[test]
fn malformed_requests_are_responses_not_crashes() {
    let dir = std::env::temp_dir().join(format!("fcm-serve-exit-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let sock = dir.join("s.sock");

    let mut daemon = Command::new(env!("CARGO_BIN_EXE_fcm-serve"))
        .args(["--model", "paper", "--socket", sock.to_str().unwrap()])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("daemon spawns");
    for _ in 0..200 {
        if sock.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(sock.exists(), "daemon bound its socket");

    let mut gen = Command::new(env!("CARGO_BIN_EXE_servegen"))
        .args(["--socket", sock.to_str().unwrap(), "--script", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("servegen spawns");
    gen.stdin
        .take()
        .unwrap()
        .write_all(b"{not json\n{\"op\":\"no_such_op\"}\n{\"op\":\"ping\",\"id\":3}\n")
        .unwrap();
    let out = gen.wait_with_output().unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "script mode exits 0; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 4, "hello + three responses:\n{text}");
    assert!(lines[1].contains("\"ok\":false") && lines[1].contains("parse"), "{}", lines[1]);
    assert!(lines[2].contains("\"ok\":false") && lines[2].contains("unknown op"), "{}", lines[2]);
    assert!(lines[3].contains("\"ok\":true") && lines[3].contains("\"id\":3"), "{}", lines[3]);

    // SIGTERM → graceful drain → exit 0.
    #[allow(clippy::cast_possible_wrap)]
    let pid = daemon.id() as i32;
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    unsafe {
        kill(pid, 15);
    }
    let status = daemon.wait().expect("daemon exits");
    assert_eq!(status.code(), Some(0), "SIGTERM drain exits 0");
    let _ = std::fs::remove_dir_all(&dir);
}
