//! The crash-point durability matrix as tier-1 tests: every IO site the
//! golden session reaches must recover prefix-consistently after a
//! simulated crash — zero acknowledged mutations lost, recovered state
//! byte-identical to the reference trajectory at the recovered seq.
//!
//! This is the exhaustive form of the single-point kill -9 drill in
//! scripts/verify.sh; the engine lives in `fcm_serve::drill`, also
//! behind the `crashdrill` bin.

use fcm_serve::drill;

fn assert_clean(model: &str, quick: bool) {
    let report = drill::run_matrix(model, quick).expect("matrix runs");
    assert!(
        !report.trace.is_empty(),
        "{model}: session enumerated no IO sites"
    );
    let failures: Vec<String> = report
        .cases
        .iter()
        .filter_map(|c| {
            c.failure.as_ref().map(|why| {
                format!("hit {} at {} (torn={}): {why}", c.hit, c.site, c.torn)
            })
        })
        .collect();
    assert!(
        failures.is_empty(),
        "{model}: {} of {} crash points violated durability:\n{}",
        failures.len(),
        report.cases.len(),
        failures.join("\n")
    );
}

#[test]
fn every_crash_point_recovers_prefix_consistently_on_paper() {
    assert_clean("paper", false);
}

#[test]
fn every_crash_point_recovers_prefix_consistently_on_avionics() {
    assert_clean("avionics", false);
}

#[test]
fn matrix_covers_all_write_flush_rename_sites() {
    let report = drill::run_matrix("paper", true).expect("matrix runs");
    for site in [
        "journal.append.write",
        "journal.append.flush",
        "snapshot.tmp.write",
        "snapshot.tmp.fsync",
        "snapshot.rename",
        "snapshot.dir.fsync",
    ] {
        assert!(
            report.cases.iter().any(|c| c.site == site),
            "no crash case at {site}"
        );
    }
    // Torn variants exist exactly for byte-write sites.
    assert!(report.cases.iter().any(|c| c.torn && c.site == "journal.append.write"));
    assert!(report.cases.iter().any(|c| c.torn && c.site == "snapshot.tmp.write"));
    assert!(report.cases.iter().all(|c| !c.torn || c.site.ends_with(".write")));
}
