//! Protocol and durability properties for `fcm-serve`, driven by the
//! workspace's deterministic RNG:
//!
//! 1. **Round-trip** — a mutation's canonical JSON parses back to the
//!    same mutation (`parse ∘ render = id`), and every response line the
//!    server emits is a single valid JSON object echoing the request id.
//! 2. **Replay** — a randomized accepted-mutation sequence, re-applied
//!    from its journal JSON onto a fresh model, reproduces the live
//!    model's `dump` byte-for-byte (the `--resume` guarantee).
//! 3. **Incrementality** — after any such sequence, the incrementally
//!    maintained influence matrix is *bitwise* equal to a from-scratch
//!    condensation of the final graph, with the model still reporting
//!    exactly one full condense.
//! 4. **Isolation** — concurrent reader sessions interleaved with a
//!    mutating writer never observe a torn model (dump invariants hold
//!    on every read).
//! 5. **Torn-tail tolerance** — for *every byte prefix* of a valid
//!    journal, resume succeeds, recovers exactly the complete
//!    newline-terminated lines, and lands byte-identically on the
//!    reference trajectory; a newline-*terminated* corrupt line, by
//!    contrast, is a hard error with a line-numbered diagnostic.

use std::io::{BufRead, BufReader, Write};

use fcm_check::Contract;
use fcm_serve::proto::{self, Mutation, Request};
use fcm_serve::server::{start, Listen, ServerConfig};
use fcm_serve::store::Store;
use fcm_serve::LiveModel;
use fcm_substrate::{Json, Rng};

/// A random valid-shaped mutation over a name pool (not necessarily
/// *applicable* — unknown names and duplicates are part of the space).
fn random_mutation(rng: &mut Rng, pool: &[String], fresh: &mut u64) -> Mutation {
    match rng.gen_range(0u64..5) {
        0 => {
            let name = format!("q{}", *fresh);
            *fresh += 1;
            let influences = (0..rng.gen_range(0usize..3))
                .map(|_| {
                    (
                        pool[rng.gen_range(0usize..pool.len())].clone(),
                        rng.gen_range(0.05f64..0.95),
                    )
                })
                .collect();
            let contract = rng.gen_bool(0.4).then(|| {
                let mut c = Contract::new(
                    name.clone(),
                    rng.gen_range(0.0f64..1.5),
                    rng.gen_range(0.0f64..10.0),
                    rng.gen_range(0u32..5),
                );
                if rng.gen_bool(0.5) {
                    c = c.with_cap(pool[rng.gen_range(0usize..pool.len())].clone(), rng.gen_range(0.0f64..0.5));
                }
                c
            });
            Mutation::AddFcm {
                name,
                criticality: rng.gen_range(0u32..5),
                throughput: rng.gen_range(0.0f64..2.0),
                security: rng.gen_range(0u64..4) as u8,
                timing: rng
                    .gen_bool(0.3)
                    .then(|| (0, 1000, rng.gen_range(1u64..50))),
                influences,
                influenced_by: Vec::new(),
                contract,
            }
        }
        1 => Mutation::RemoveFcm {
            name: pool[rng.gen_range(0usize..pool.len())].clone(),
        },
        2 => Mutation::SetAttr {
            name: pool[rng.gen_range(0usize..pool.len())].clone(),
            criticality: rng.gen_bool(0.5).then(|| rng.gen_range(0u32..5)),
            throughput: rng.gen_bool(0.5).then(|| rng.gen_range(0.0f64..1.0)),
            timing: rng.gen_bool(0.3).then(|| {
                rng.gen_bool(0.5)
                    .then(|| (0u64, 1000, rng.gen_range(1u64..50)))
            }),
        },
        3 => Mutation::FailNode {
            node: format!("hw{}", rng.gen_range(0u64..6)),
        },
        _ => Mutation::RestoreNode {
            node: format!("hw{}", rng.gen_range(0u64..6)),
        },
    }
}

#[test]
fn mutation_json_round_trips_exactly() {
    let mut rng = Rng::seed_from_u64(0xfc5e);
    let pool: Vec<String> = (1..=8).map(|i| format!("p{i}")).collect();
    let mut fresh = 0;
    for _ in 0..500 {
        let m = random_mutation(&mut rng, &pool, &mut fresh);
        let j = proto::mutation_to_json(&m);
        let back = proto::mutation_from_json(&j).expect("canonical JSON parses");
        assert_eq!(back, m, "round-trip mismatch for {j:?}");
        // And through the wire-line path too.
        let line = j.to_string_compact();
        let (_, req) = proto::parse_line(&line);
        assert_eq!(req, Ok(Request::Mutation(m)), "line parse mismatch: {line}");
    }
}

#[test]
fn render_response_echoes_ids_and_is_line_json() {
    let ok: Result<Json, String> = Ok(Json::object().set("x", 1u64));
    let err: Result<Json, String> = Err("boom \"quoted\"\nnewline".to_string());
    for (id, result) in [
        (Some(Json::from(7u64)), &ok),
        (Some(Json::from("req-9")), &err),
        (None, &ok),
        (None, &err),
    ] {
        let line = proto::render_response(id.as_ref(), result);
        assert!(line.ends_with('\n'), "newline-terminated");
        assert_eq!(line.matches('\n').count(), 1, "single line: {line:?}");
        let j = Json::parse(line.trim_end()).expect("response is valid JSON");
        assert_eq!(j.get("id"), id.as_ref(), "id echoed");
        match result {
            Ok(_) => assert_eq!(j.get("ok"), Some(&Json::Bool(true))),
            Err(e) => {
                assert_eq!(j.get("ok"), Some(&Json::Bool(false)));
                assert_eq!(j.get("error").and_then(Json::as_str), Some(e.as_str()));
            }
        }
    }
}

/// Applies a random mutation stream to a live model, journaling the
/// accepted ones; returns the model and the journal.
fn random_run(seed: u64, steps: usize) -> (LiveModel, Vec<Json>) {
    let mut model = LiveModel::new("paper").expect("paper model");
    let mut rng = Rng::seed_from_u64(seed);
    let mut pool: Vec<String> = (0..model.fcm_count())
        .map(|_| String::new())
        .collect();
    // Fetch real names via the list query.
    let names = model
        .query(&fcm_serve::Query::List)
        .expect("list")
        .get("fcms")
        .and_then(Json::as_array)
        .expect("fcms")
        .iter()
        .filter_map(|v| v.as_str().map(str::to_string))
        .collect::<Vec<_>>();
    pool.clone_from(&names);
    let mut fresh = 0;
    let mut journal = Vec::new();
    for _ in 0..steps {
        let m = random_mutation(&mut rng, &pool, &mut fresh);
        if model.apply(&m).is_ok() {
            if let Mutation::AddFcm { name, .. } = &m {
                pool.push(name.clone());
            }
            if let Mutation::RemoveFcm { name } = &m {
                pool.retain(|n| n != name);
            }
            journal.push(proto::mutation_to_json(&m));
        }
    }
    (model, journal)
}

#[test]
fn journal_replay_reproduces_the_model_byte_identically() {
    for seed in [1u64, 17, 4242] {
        let (model, journal) = random_run(seed, 120);
        assert!(journal.len() > 30, "seed {seed}: enough accepted mutations");
        let mut replica = LiveModel::new("paper").expect("paper model");
        for entry in &journal {
            let m = proto::mutation_from_json(entry).expect("journal entry parses");
            replica.apply(&m).expect("accepted once, accepted again");
        }
        assert_eq!(
            replica.state_json().to_string_compact(),
            model.state_json().to_string_compact(),
            "seed {seed}: replay diverged"
        );
    }
}

#[test]
fn incremental_matrix_stays_bitwise_equal_to_full_condense() {
    use fcm_graph::{condense, CombineRule};
    for seed in [3u64, 99] {
        let (model, _) = random_run(seed, 100);
        assert_eq!(model.full_condenses(), 1, "hot path never recondensed");
        // Rebuild the graph from the dump and recondense from scratch.
        let state = model.state_json();
        let replica = LiveModel::from_state(&state).expect("state loads");
        let graph = replica.graph();
        let groups: Vec<Vec<fcm_graph::NodeIdx>> =
            graph.node_indices().map(|n| vec![n]).collect();
        let full = condense(graph, &groups, CombineRule::Probabilistic)
            .expect("partition")
            .influence_matrix();
        let rows = state.get("influence").and_then(Json::as_array).unwrap();
        for (i, row) in rows.iter().enumerate() {
            for (j, v) in row.as_array().unwrap().iter().enumerate() {
                let live = v.as_f64().unwrap();
                assert_eq!(
                    live.to_bits(),
                    full[(i, j)].to_bits(),
                    "seed {seed}: entry ({i},{j}) drifted"
                );
            }
        }
    }
}

#[test]
fn every_journal_byte_prefix_resumes_to_the_reference_trajectory() {
    // Build a reference journal (no snapshot — recovery must come from
    // replay alone) and the state after each accepted mutation.
    let dir = std::env::temp_dir().join(format!("fcm-serve-prefix-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let script = [
        r#"{"op":"set_attr","name":"p8","criticality":2}"#,
        r#"{"op":"fail_node","node":"hw2"}"#,
        r#"{"op":"restore_node","node":"hw2"}"#,
        r#"{"op":"set_attr","name":"p8","criticality":3}"#,
    ];
    let mut model = LiveModel::new("paper").expect("paper model");
    let mut store = Store::create_fresh(&dir).expect("fresh store");
    let mut states = vec![model.state_json().to_string_compact()];
    for line in script {
        let (_, req) = proto::parse_line(line);
        let Ok(Request::Mutation(m)) = req else {
            panic!("script line is a mutation")
        };
        model.apply(&m).expect("script mutation accepted");
        store.append(model.seq(), &m).expect("append");
        states.push(model.state_json().to_string_compact());
    }
    drop(store);
    let journal = std::fs::read(dir.join("journal.jsonl")).expect("journal bytes");
    let _ = std::fs::remove_dir_all(&dir);
    assert!(journal.len() > 100, "journal is non-trivial");

    // Every byte prefix is a possible crash image; each must resume.
    for cut in 0..=journal.len() {
        let prefix = &journal[..cut];
        let pdir = std::env::temp_dir()
            .join(format!("fcm-serve-prefix-{}-{cut}", std::process::id()));
        let _ = std::fs::remove_dir_all(&pdir);
        std::fs::create_dir_all(&pdir).unwrap();
        std::fs::write(pdir.join("journal.jsonl"), prefix).unwrap();
        let (_store, rec) =
            Store::open_resume(&pdir).unwrap_or_else(|e| panic!("prefix {cut}: resume failed: {e}"));
        assert!(rec.snapshot.is_none());
        let complete_lines = prefix.iter().filter(|&&b| b == b'\n').count();
        assert_eq!(
            rec.replay.len(),
            complete_lines,
            "prefix {cut}: exactly the complete lines survive"
        );
        let mut recovered = LiveModel::new("paper").expect("paper model");
        for (seq, m) in &rec.replay {
            recovered.apply(m).expect("replay applies");
            assert_eq!(recovered.seq(), *seq);
        }
        assert_eq!(
            recovered.state_json().to_string_compact(),
            states[complete_lines],
            "prefix {cut}: recovered state off the reference trajectory"
        );
        // The torn tail was also physically repaired for appends.
        let repaired = std::fs::read(pdir.join("journal.jsonl")).unwrap();
        assert!(repaired.is_empty() || repaired.ends_with(b"\n"));
        let _ = std::fs::remove_dir_all(&pdir);
    }
}

#[test]
fn newline_terminated_corruption_is_a_line_numbered_error() {
    let dir = std::env::temp_dir().join(format!("fcm-serve-corrupt-{}", std::process::id()));
    for (journal, want) in [
        // Garbage mid-file, valid line after: real corruption, not a torn
        // tail — refused with the offending line number.
        (
            "{\"mutation\":{\"criticality\":2,\"name\":\"p8\",\"op\":\"set_attr\"},\"seq\":1}\n{CORRUPT}\n{\"mutation\":{\"node\":\"hw2\",\"op\":\"fail_node\"},\"seq\":2}\n",
            "journal line 2",
        ),
        // A complete line of garbage at EOF is corruption too (only a
        // newline-LESS tail is crash-consistent).
        (
            "{\"mutation\":{\"criticality\":2,\"name\":\"p8\",\"op\":\"set_attr\"},\"seq\":1}\nnot json\n",
            "journal line 2",
        ),
    ] {
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("journal.jsonl"), journal).unwrap();
        let err = Store::open_resume(&dir).expect_err("corruption refused");
        assert!(err.contains(want), "diagnostic {err:?} lacks {want:?}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn interleaved_sessions_never_observe_a_torn_model() {
    let handle = start(ServerConfig::new(Listen::Tcp("127.0.0.1:0".to_string()), "paper"))
        .expect("server starts");
    let addr = handle.addr().to_string();

    let session = |addr: &str| {
        let stream = std::net::TcpStream::connect(addr).expect("connect");
        let out = stream.try_clone().expect("clone");
        let mut lines = BufReader::new(stream).lines();
        lines.next().expect("hello").expect("read");
        (out, lines)
    };
    let roundtrip = |out: &mut std::net::TcpStream,
                     lines: &mut std::io::Lines<BufReader<std::net::TcpStream>>,
                     req: &str|
     -> Json {
        out.write_all(req.as_bytes()).expect("send");
        out.write_all(b"\n").expect("send");
        Json::parse(&lines.next().expect("response").expect("read")).expect("valid JSON")
    };

    let writer = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let (mut out, mut lines) = session(&addr);
            let mut rng = Rng::seed_from_u64(5150);
            for i in 0..40 {
                let add = format!(
                    r#"{{"op":"add_fcm","name":"t{i}","criticality":{},"influences":[["p4",{}]]}}"#,
                    rng.gen_range(0u64..3),
                    rng.gen_range(0.1f64..0.9)
                );
                assert_eq!(
                    roundtrip(&mut out, &mut lines, &add).get("ok"),
                    Some(&Json::Bool(true))
                );
                if rng.gen_bool(0.5) {
                    let rm = format!(r#"{{"op":"remove_fcm","name":"t{i}"}}"#);
                    assert_eq!(
                        roundtrip(&mut out, &mut lines, &rm).get("ok"),
                        Some(&Json::Bool(true))
                    );
                }
            }
        })
    };
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let (mut out, mut lines) = session(&addr);
                for _ in 0..60 {
                    let r = roundtrip(&mut out, &mut lines, r#"{"op":"dump"}"#);
                    assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
                    let state = r.get("state").expect("state");
                    let fcms = state.get("fcms").and_then(Json::as_array).unwrap();
                    let rows = state.get("influence").and_then(Json::as_array).unwrap();
                    // Torn-model detectors: matrix square and sized to the
                    // FCM list; every edge endpoint within range; every
                    // hosted FCM on a real HW node.
                    assert_eq!(rows.len(), fcms.len());
                    for row in rows {
                        assert_eq!(row.as_array().unwrap().len(), fcms.len());
                    }
                    for e in state.get("edges").and_then(Json::as_array).unwrap() {
                        let t = e.as_array().unwrap();
                        assert!((t[0].as_f64().unwrap() as usize) < fcms.len());
                        assert!((t[1].as_f64().unwrap() as usize) < fcms.len());
                    }
                    let stats = roundtrip(&mut out, &mut lines, r#"{"op":"stats"}"#);
                    assert_eq!(
                        stats.get("full_condenses").and_then(Json::as_f64),
                        Some(1.0),
                        "queries never trigger recondensation"
                    );
                }
            })
        })
        .collect();
    writer.join().expect("writer session clean");
    for r in readers {
        r.join().expect("reader session clean");
    }
    handle.stop().expect("clean stop");
}
