//! Property tests for the live-telemetry additions: rolling-window
//! histograms ([`fcm_obs::RollingHist`]) and the `metrics`-over-the-
//! wire JSON round trip ([`fcm_obs::MetricsSnapshot`]). Replay failures
//! with `FCM_PROP_SEED=<seed> FCM_PROP_SIZE=<size> cargo test -q <name>`.

use fcm_obs::hist::Histogram;
use fcm_obs::{MetricsSnapshot, RollingHist};
use fcm_substrate::prop::{check, Config};
use fcm_substrate::rng::Rng;
use fcm_substrate::{prop_assert, prop_assert_eq, Json};

/// Latency-shaped sample stream: mixes sub-bucket exact values with
/// mid-range and large samples so window boundaries land in every
/// bucket regime.
fn gen_samples(rng: &mut Rng, size: usize) -> Vec<u64> {
    let n = rng.gen_range(0..size.max(1) + 1);
    (0..n)
        .map(|_| match rng.gen_range(0u32..4) {
            0 => rng.gen_range(0u64..16),
            1 => rng.gen_range(0u64..1_000),
            2 => rng.gen_range(0u64..1_000_000),
            _ => rng.gen::<u64>() >> rng.gen_range(18u32..40),
        })
        .collect()
}

#[test]
fn merging_rotated_windows_reproduces_the_lifetime_histogram() {
    check(
        "windows_merge_to_lifetime",
        Config::default(),
        |rng, size| (gen_samples(rng, size), rng.gen_range(1u64..64)),
        |(samples, window_every)| {
            // Retention large enough that nothing is evicted: the
            // merge-equals-lifetime invariant is exact.
            let mut r = RollingHist::new(*window_every, samples.len() + 1);
            for &v in samples {
                r.record(v);
            }
            prop_assert_eq!(r.merged_retained(), r.lifetime().clone());
            let expected_rotations = samples.len() as u64 / r.window_every();
            prop_assert_eq!(r.rotations(), expected_rotations);
            // Every completed window holds exactly `window_every`
            // samples; the in-progress one holds the remainder.
            for w in r.windows() {
                prop_assert_eq!(w.count(), r.window_every());
            }
            prop_assert_eq!(
                r.current().count(),
                samples.len() as u64 % r.window_every()
            );
            Ok(())
        },
    );
}

#[test]
fn window_quantiles_reflect_the_window_not_the_lifetime() {
    check(
        "window_quantiles_local",
        Config::default(),
        gen_samples,
        |samples| {
            let mut r = RollingHist::new(8, 4);
            for &v in samples {
                r.record(v);
            }
            if let Some(w) = r.last_window() {
                let lo = w.min().map(|m| Histogram::bucket_low(Histogram::bucket_of(m)));
                prop_assert!(w.quantile(0.5).unwrap() >= lo.unwrap());
                prop_assert!(w.quantile(0.99).unwrap() <= w.max().unwrap());
            }
            Ok(())
        },
    );
}

#[test]
fn metrics_snapshot_round_trips_bitwise_through_substrate_json() {
    check(
        "metrics_wire_round_trip",
        Config::default(),
        |rng, size| {
            let mut snap = MetricsSnapshot::default();
            let n = rng.gen_range(0..size.clamp(1, 24) + 1);
            for i in 0..n {
                match rng.gen_range(0u32..3) {
                    0 => {
                        // Counters stay in the exact-integer JSON domain.
                        snap.counters
                            .insert(format!("c.{i}"), rng.gen::<u64>() >> 12);
                    }
                    1 => {
                        // Arbitrary finite f64 bits: the substrate's
                        // shortest-exact formatter must preserve them.
                        let v = f64::from_bits(rng.gen::<u64>());
                        let v = if v.is_finite() { v } else { rng.gen_f64() };
                        snap.gauges.insert(format!("g.{i}"), v);
                    }
                    _ => {
                        let mut h = Histogram::new();
                        for _ in 0..rng.gen_range(0u32..50) {
                            h.record(rng.gen::<u64>() >> rng.gen_range(18u32..40));
                        }
                        snap.hists.insert(format!("h.{i}"), h);
                    }
                }
            }
            snap
        },
        |snap| {
            let text = snap.to_json().to_string_compact();
            let back = MetricsSnapshot::from_json(&Json::parse(&text).map_err(|e| e.to_string())?)
                .map_err(|e| e.to_string())?;
            // Bitwise equality, including gauge f64 payloads.
            prop_assert_eq!(back.counters.clone(), snap.counters.clone());
            prop_assert_eq!(back.hists.clone(), snap.hists.clone());
            prop_assert_eq!(back.gauges.len(), snap.gauges.len());
            for (k, v) in &snap.gauges {
                let b = back.gauges.get(k).copied();
                prop_assert_eq!(b.map(f64::to_bits), Some(v.to_bits()), "gauge {}", k);
            }
            Ok(())
        },
    );
}
