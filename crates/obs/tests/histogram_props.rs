//! Property tests pinning the [`fcm_obs::Histogram`] contract on the
//! substrate prop harness (replay failures with
//! `FCM_PROP_SEED=<seed> FCM_PROP_SIZE=<size> cargo test -q <name>`).

use fcm_obs::hist::{Histogram, BUCKETS};
use fcm_substrate::prop::{check, Config};
use fcm_substrate::rng::Rng;
use fcm_substrate::{prop_assert, prop_assert_eq, Json, ToJson};

/// A sample stream spanning many orders of magnitude: mixes small exact
/// values, mid-range, and huge samples so every bucket regime is hit.
/// Samples stay below 2⁴⁶ so that even a full stream's *sum* is under
/// 2⁵³ — the exact-integer range of the substrate JSON number model,
/// which is the histogram's documented round-trip domain (nanosecond
/// observations sit orders of magnitude below it).
fn gen_samples(rng: &mut Rng, size: usize) -> Vec<u64> {
    let n = rng.gen_range(0..size.max(1) + 1);
    (0..n)
        .map(|_| match rng.gen_range(0u32..4) {
            0 => rng.gen_range(0u64..16),
            1 => rng.gen_range(0u64..1_000),
            2 => rng.gen_range(0u64..1_000_000),
            _ => rng.gen::<u64>() >> rng.gen_range(18u32..40),
        })
        .collect()
}

fn hist_of(samples: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h
}

#[test]
fn quantiles_are_monotone_in_q_and_bounded_by_extremes() {
    check(
        "quantiles_monotone",
        Config::default(),
        gen_samples,
        |samples| {
            let h = hist_of(samples);
            if samples.is_empty() {
                prop_assert!(h.quantile(0.5).is_none());
                return Ok(());
            }
            let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
            let mut prev = 0u64;
            for (i, &q) in qs.iter().enumerate() {
                let v = h.quantile(q).expect("non-empty");
                if i > 0 {
                    prop_assert!(
                        v >= prev,
                        "quantile({q}) = {v} < quantile({}) = {prev}",
                        qs[i - 1]
                    );
                }
                prev = v;
            }
            // Every quantile lies within the recorded value range
            // (lower-bounded by the min's bucket floor).
            let min = h.min().unwrap();
            let max = h.max().unwrap();
            let floor = Histogram::bucket_low(Histogram::bucket_of(min));
            prop_assert!(h.quantile(0.0).unwrap() >= floor);
            prop_assert!(h.quantile(1.0).unwrap() <= max);
            Ok(())
        },
    );
}

#[test]
fn merge_equals_recording_the_union() {
    check(
        "merge_is_union",
        Config::default(),
        |rng, size| (gen_samples(rng, size), gen_samples(rng, size)),
        |(a, b)| {
            let mut merged = hist_of(a);
            merged.merge(&hist_of(b));
            let union: Vec<u64> = a.iter().chain(b).copied().collect();
            prop_assert_eq!(merged, hist_of(&union));
            Ok(())
        },
    );
}

#[test]
fn bucket_boundaries_round_trip_through_json() {
    check(
        "hist_json_round_trip",
        Config::default(),
        gen_samples,
        |samples| {
            let h = hist_of(samples);
            let text = h.to_json().to_string_compact();
            let back = Histogram::from_json(&Json::parse(&text).map_err(|e| e.to_string())?)
                .map_err(|e| e.to_string())?;
            prop_assert_eq!(&back, &h);
            // The sparse bucket encoding preserved every boundary: each
            // recorded value still falls in a bucket whose bounds
            // contain it after the round trip.
            for (idx, count) in back.nonzero_buckets() {
                prop_assert!(count > 0);
                prop_assert!(idx < BUCKETS);
                let low = Histogram::bucket_low(idx);
                prop_assert_eq!(Histogram::bucket_of(low), idx);
            }
            Ok(())
        },
    );
}

#[test]
fn count_sum_and_extremes_match_the_stream_exactly() {
    check(
        "exact_aggregates",
        Config::default(),
        gen_samples,
        |samples| {
            let h = hist_of(samples);
            prop_assert_eq!(h.count(), samples.len() as u64);
            let sum: u64 = samples.iter().fold(0u64, |acc, &v| acc.saturating_add(v));
            prop_assert_eq!(h.sum(), sum);
            prop_assert_eq!(h.min(), samples.iter().min().copied());
            prop_assert_eq!(h.max(), samples.iter().max().copied());
            Ok(())
        },
    );
}
