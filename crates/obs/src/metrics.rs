//! The metrics registry: counters, gauges, and histograms.
//!
//! A process-wide registry keyed by metric name. Names are plain
//! strings in `BTreeMap`s, so every snapshot and export is in
//! deterministic (lexicographic) order even though the recorded
//! *values* are measurements. All recording entry points are gated on
//! [`crate::enabled`] and compile down to one relaxed atomic load when
//! observability is off — the instrumented hot paths pay nothing by
//! default.
//!
//! * counters — monotonically increasing `u64` (merge pipeline merges,
//!   pool chunk steals, sweep cell counts);
//! * gauges — last-write-wins `f64` (queue depths, configured scales);
//! * histograms — log-linear [`Histogram`]s (watchdog detection
//!   latency, retry backoff, recovery times); see [`crate::hist`].

use std::collections::BTreeMap;

use fcm_substrate::pool::Mutex;
use fcm_substrate::{Json, ToJson};

use crate::enabled;
use crate::hist::Histogram;

/// A deterministic-order snapshot of every metric.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name.
    pub hists: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Renders the snapshot as one JSON object (`counters` / `gauges` /
    /// `hists` maps, keys in lexicographic order). This is the payload
    /// the serve layer ships for the `metrics` wire op; together with
    /// [`MetricsSnapshot::from_json`] it round-trips bitwise — counter
    /// `u64`s stay exact up to 2⁵³ (the substrate JSON integer domain)
    /// and gauge `f64`s ride the substrate's shortest-exact formatter.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let counters = self
            .counters
            .iter()
            .fold(Json::object(), |j, (k, v)| j.set(k.as_str(), *v));
        let gauges = self
            .gauges
            .iter()
            .fold(Json::object(), |j, (k, v)| j.set(k.as_str(), *v));
        let hists = self
            .hists
            .iter()
            .fold(Json::object(), |j, (k, h)| j.set(k.as_str(), h.to_json()));
        Json::object()
            .set("counters", counters)
            .set("gauges", gauges)
            .set("hists", hists)
    }

    /// Parses a snapshot rendered by [`MetricsSnapshot::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed map or histogram.
    pub fn from_json(j: &Json) -> Result<MetricsSnapshot, String> {
        let entries = |key: &str| -> Result<Vec<(String, Json)>, String> {
            match j.get(key) {
                Some(Json::Obj(map)) => {
                    Ok(map.iter().map(|(k, v)| (k.clone(), v.clone())).collect())
                }
                Some(_) => Err(format!("metrics field '{key}' is not an object")),
                None => Err(format!("metrics object missing '{key}'")),
            }
        };
        let mut snap = MetricsSnapshot::default();
        for (name, v) in entries("counters")? {
            let n = v
                .as_f64()
                .ok_or_else(|| format!("counter '{name}' is not numeric"))?;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            snap.counters.insert(name, n as u64);
        }
        for (name, v) in entries("gauges")? {
            let g = v
                .as_f64()
                .ok_or_else(|| format!("gauge '{name}' is not numeric"))?;
            snap.gauges.insert(name, g);
        }
        for (name, v) in entries("hists")? {
            let h = Histogram::from_json(&v).map_err(|e| format!("hist '{name}': {e}"))?;
            snap.hists.insert(name, h);
        }
        Ok(snap)
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, Histogram>,
}

fn registry() -> &'static Mutex<RegistryInner> {
    static REGISTRY: Mutex<RegistryInner> = Mutex::new(RegistryInner {
        counters: BTreeMap::new(),
        gauges: BTreeMap::new(),
        hists: BTreeMap::new(),
    });
    &REGISTRY
}

/// Adds `n` to counter `name` (creating it at 0). No-op when disabled.
pub fn counter_add(name: &str, n: u64) {
    if !enabled() {
        return;
    }
    let mut reg = registry().lock();
    match reg.counters.get_mut(name) {
        Some(c) => *c = c.saturating_add(n),
        None => {
            reg.counters.insert(name.to_string(), n);
        }
    }
}

/// Sets gauge `name` to `v` (last write wins). No-op when disabled.
pub fn gauge_set(name: &str, v: f64) {
    if !enabled() {
        return;
    }
    let mut reg = registry().lock();
    match reg.gauges.get_mut(name) {
        Some(g) => *g = v,
        None => {
            reg.gauges.insert(name.to_string(), v);
        }
    }
}

/// Records `v` into histogram `name`. No-op when disabled.
pub fn hist_record(name: &str, v: u64) {
    if !enabled() {
        return;
    }
    let mut reg = registry().lock();
    match reg.hists.get_mut(name) {
        Some(h) => h.record(v),
        None => {
            let mut h = Histogram::new();
            h.record(v);
            reg.hists.insert(name.to_string(), h);
        }
    }
}

/// Snapshots every metric (registry unchanged).
#[must_use]
pub fn snapshot() -> MetricsSnapshot {
    let reg = registry().lock();
    MetricsSnapshot {
        counters: reg.counters.clone(),
        gauges: reg.gauges.clone(),
        hists: reg.hists.clone(),
    }
}

/// Snapshots and clears every metric.
pub fn drain() -> MetricsSnapshot {
    let mut reg = registry().lock();
    MetricsSnapshot {
        counters: std::mem::take(&mut reg.counters),
        gauges: std::mem::take(&mut reg.gauges),
        hists: std::mem::take(&mut reg.hists),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{init, set_enabled, ObsConfig};

    static GATE: Mutex<()> = Mutex::new(());

    fn with_obs(f: impl FnOnce()) {
        let _g = GATE.lock();
        init(ObsConfig::default());
        let _ = drain();
        f();
        let _ = drain();
        set_enabled(false);
    }

    #[test]
    fn counters_accumulate_and_drain() {
        with_obs(|| {
            counter_add("m.counter", 2);
            counter_add("m.counter", 3);
            counter_add("a.first", 1);
            let snap = snapshot();
            assert_eq!(snap.counters["m.counter"], 5);
            let names: Vec<&String> = snap.counters.keys().collect();
            assert!(names.windows(2).all(|w| w[0] < w[1]), "sorted order");
            drain();
            assert!(snapshot().counters.is_empty());
        });
    }

    #[test]
    fn gauges_take_the_last_write() {
        with_obs(|| {
            gauge_set("m.gauge", 1.5);
            gauge_set("m.gauge", 2.5);
            assert_eq!(snapshot().gauges["m.gauge"], 2.5);
        });
    }

    #[test]
    fn histograms_record_through_the_registry() {
        with_obs(|| {
            for v in [10u64, 20, 30] {
                hist_record("m.hist", v);
            }
            let snap = snapshot();
            let h = &snap.hists["m.hist"];
            assert_eq!(h.count(), 3);
            assert_eq!(h.sum(), 60);
            assert_eq!(h.min(), Some(10));
            assert_eq!(h.max(), Some(30));
        });
    }

    #[test]
    fn recording_is_a_noop_when_disabled() {
        let _g = GATE.lock();
        set_enabled(false);
        let before = snapshot();
        counter_add("off.counter", 1);
        gauge_set("off.gauge", 1.0);
        hist_record("off.hist", 1);
        assert_eq!(snapshot(), before);
    }
}
