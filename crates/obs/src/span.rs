//! Hierarchical span tracing with per-thread bounded rings.
//!
//! A span is an RAII guard: creating one stamps a monotonic start time
//! and pushes itself as the thread's current parent; dropping it stamps
//! the end time and appends a [`SpanRecord`] to the *recording thread's
//! own ring buffer*. The hot path therefore touches only thread-local
//! state plus one uncontended mutex push — no global lock is shared
//! between worker threads while they record ("lock-free-ish"), and the
//! ring is bounded, so recording is O(1) per span with a hard memory
//! ceiling; overflow overwrites the oldest span and counts the drop.
//!
//! Parent/child links are span ids. Within a thread the parent is
//! tracked implicitly (the innermost live span); across threads —
//! sweep cells fanned over the pool — the spawning side captures
//! [`current_span`] and the worker opens its span with
//! [`span_under`], which reparents the worker's subtree under the
//! caller's span so the inspector can render one connected tree.
//!
//! Timestamps are nanoseconds from a process-wide monotonic epoch
//! (`Instant`), so they order correctly across threads but carry no
//! wall-clock meaning. They are *observations*: nothing in the
//! workspace may read them back into an analysis result.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use fcm_substrate::pool::Mutex;

use crate::enabled;

/// One finished span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique span id (process-wide, starts at 1).
    pub id: u64,
    /// Parent span id; 0 marks a root.
    pub parent: u64,
    /// Deterministic span name (static, so identical runs emit
    /// identical name sets).
    pub name: &'static str,
    /// Optional detail index (e.g. the sweep cell number).
    pub idx: Option<u64>,
    /// Recording thread (dense index in registration order).
    pub thread: u64,
    /// Start, nanoseconds from the process epoch.
    pub start_ns: u64,
    /// End, nanoseconds from the process epoch.
    pub end_ns: u64,
}

/// A per-thread bounded ring of finished spans.
struct Ring {
    thread: u64,
    inner: Mutex<RingInner>,
}

struct RingInner {
    buf: Vec<SpanRecord>,
    /// Next overwrite position once the buffer is full.
    head: usize,
    dropped: u64,
}

impl Ring {
    fn push(&self, rec: SpanRecord, capacity: usize) {
        let mut inner = self.inner.lock();
        if inner.buf.len() < capacity {
            inner.buf.push(rec);
        } else if capacity > 0 {
            let head = inner.head;
            inner.buf[head] = rec;
            inner.head = (head + 1) % capacity;
            inner.dropped += 1;
        } else {
            inner.dropped += 1;
        }
    }

    /// Oldest-first drain; resets the ring.
    fn drain(&self) -> (Vec<SpanRecord>, u64) {
        let mut inner = self.inner.lock();
        let head = inner.head;
        let mut out: Vec<SpanRecord> = inner.buf[head..].to_vec();
        out.extend_from_slice(&inner.buf[..head]);
        inner.buf.clear();
        inner.head = 0;
        let dropped = std::mem::take(&mut inner.dropped);
        (out, dropped)
    }

    /// Oldest-first copy without resetting the ring (flight dumps peek
    /// mid-run; a regular export remains the only cut point).
    fn peek(&self) -> (Vec<SpanRecord>, u64) {
        let inner = self.inner.lock();
        let head = inner.head;
        let mut out: Vec<SpanRecord> = inner.buf[head..].to_vec();
        out.extend_from_slice(&inner.buf[..head]);
        (out, inner.dropped)
    }
}

/// All thread rings ever registered (rings outlive their threads so a
/// drain after a scoped pool joins still sees the workers' spans).
fn registry() -> &'static Mutex<Vec<Arc<Ring>>> {
    static REGISTRY: Mutex<Vec<Arc<Ring>>> = Mutex::new(Vec::new());
    &REGISTRY
}

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);
/// Ring capacity; set once by [`crate::init`], read on every push.
pub(crate) static RING_CAPACITY: AtomicU64 = AtomicU64::new(65_536);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process epoch (monotonic).
#[must_use]
pub fn now_ns() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

struct Tls {
    ring: Arc<Ring>,
    current_parent: u64,
}

thread_local! {
    static TLS: RefCell<Option<Tls>> = const { RefCell::new(None) };
}

fn with_tls<R>(f: impl FnOnce(&mut Tls) -> R) -> R {
    TLS.with(|cell| {
        let mut slot = cell.borrow_mut();
        let tls = slot.get_or_insert_with(|| {
            let ring = Arc::new(Ring {
                thread: NEXT_THREAD.fetch_add(1, Ordering::Relaxed),
                inner: Mutex::new(RingInner {
                    buf: Vec::new(),
                    head: 0,
                    dropped: 0,
                }),
            });
            registry().lock().push(Arc::clone(&ring));
            Tls {
                ring,
                current_parent: 0,
            }
        });
        f(tls)
    })
}

/// The innermost live span id on this thread (0 when none). Capture it
/// before fanning work out to other threads and pass it to
/// [`span_under`] so the workers' spans attach to the caller's tree.
#[must_use]
pub fn current_span() -> u64 {
    if !enabled() {
        return 0;
    }
    with_tls(|tls| tls.current_parent)
}

/// An RAII span guard: records a [`SpanRecord`] when dropped. A no-op
/// (`None` inside) while observability is disabled.
#[derive(Debug)]
#[must_use = "a span records on drop; binding it to _ ends it immediately"]
pub struct Span {
    active: Option<ActiveSpan>,
}

#[derive(Debug)]
struct ActiveSpan {
    id: u64,
    parent: u64,
    prev_parent: u64,
    name: &'static str,
    idx: Option<u64>,
    start_ns: u64,
}

impl Span {
    fn open(name: &'static str, parent: Option<u64>, idx: Option<u64>) -> Span {
        if !enabled() {
            return Span { active: None };
        }
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let (parent, prev_parent) = with_tls(|tls| {
            let prev = tls.current_parent;
            let parent = parent.unwrap_or(prev);
            tls.current_parent = id;
            (parent, prev)
        });
        Span {
            active: Some(ActiveSpan {
                id,
                parent,
                prev_parent,
                name,
                idx,
                start_ns: now_ns(),
            }),
        }
    }

    /// This span's id (0 when recording is disabled).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.active.as_ref().map_or(0, |a| a.id)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let end_ns = now_ns();
        let capacity = usize::try_from(RING_CAPACITY.load(Ordering::Relaxed)).unwrap_or(usize::MAX);
        with_tls(|tls| {
            tls.current_parent = active.prev_parent;
            tls.ring.push(
                SpanRecord {
                    id: active.id,
                    parent: active.parent,
                    name: active.name,
                    idx: active.idx,
                    thread: tls.ring.thread,
                    start_ns: active.start_ns,
                    end_ns,
                },
                capacity,
            );
        });
    }
}

/// Opens a span named `name` under this thread's current span.
pub fn span(name: &'static str) -> Span {
    Span::open(name, None, None)
}

/// Opens a span with a detail index (e.g. a sweep cell number).
pub fn span_idx(name: &'static str, idx: u64) -> Span {
    Span::open(name, None, Some(idx))
}

/// Opens a span explicitly parented under `parent` (use a
/// [`current_span`] id captured on the spawning thread).
pub fn span_under(name: &'static str, parent: u64, idx: Option<u64>) -> Span {
    Span::open(name, Some(parent), idx)
}

/// Drains every thread's ring: all finished spans ordered by
/// `(start_ns, id)` plus the total number of spans lost to ring
/// overflow since the previous drain.
#[must_use]
pub fn drain() -> (Vec<SpanRecord>, u64) {
    let (spans, by_thread) = drain_detailed();
    let dropped = by_thread.iter().map(|&(_, d)| d).sum();
    (spans, dropped)
}

/// [`drain`] with the drop count broken out per recording thread
/// (`(thread, dropped)` pairs in thread order, zero entries included).
#[must_use]
pub fn drain_detailed() -> (Vec<SpanRecord>, Vec<(u64, u64)>) {
    let rings: Vec<Arc<Ring>> = registry().lock().clone();
    let mut spans = Vec::new();
    let mut by_thread = Vec::new();
    for ring in rings {
        let (mut part, d) = ring.drain();
        spans.append(&mut part);
        by_thread.push((ring.thread, d));
    }
    by_thread.sort_unstable();
    spans.sort_unstable_by_key(|s| (s.start_ns, s.id));
    (spans, by_thread)
}

/// Copies every thread's ring without resetting anything: spans ordered
/// by `(start_ns, id)` plus the cumulative overflow count. Used by the
/// flight recorder, whose dumps must not disturb a later real export.
#[must_use]
pub fn peek() -> (Vec<SpanRecord>, u64) {
    let rings: Vec<Arc<Ring>> = registry().lock().clone();
    let mut spans = Vec::new();
    let mut dropped = 0u64;
    for ring in rings {
        let (mut part, d) = ring.peek();
        spans.append(&mut part);
        dropped += d;
    }
    spans.sort_unstable_by_key(|s| (s.start_ns, s.id));
    (spans, dropped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{init, set_enabled, ObsConfig};

    // The obs globals are process-wide, so every test here serialises on
    // one lock and drains before/after to avoid cross-talk.
    static GATE: Mutex<()> = Mutex::new(());

    fn with_obs(f: impl FnOnce()) {
        let _g = GATE.lock();
        init(ObsConfig::default());
        let _ = drain();
        f();
        let _ = drain();
        set_enabled(false);
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = GATE.lock();
        set_enabled(false);
        let s = span("nothing");
        assert_eq!(s.id(), 0);
        drop(s);
        // No ring activity is observable through a drain.
        let before = drain().0.len();
        drop(span("still_nothing"));
        assert_eq!(drain().0.len(), before);
    }

    #[test]
    fn nested_spans_link_parent_to_child() {
        with_obs(|| {
            {
                let outer = span("outer");
                let outer_id = outer.id();
                assert_eq!(current_span(), outer_id);
                let inner = span_idx("inner", 7);
                assert_ne!(inner.id(), outer_id);
                drop(inner);
                drop(outer);
            }
            let (spans, dropped) = drain();
            assert_eq!(dropped, 0);
            assert_eq!(spans.len(), 2);
            let outer = spans.iter().find(|s| s.name == "outer").unwrap();
            let inner = spans.iter().find(|s| s.name == "inner").unwrap();
            assert_eq!(outer.parent, 0);
            assert_eq!(inner.parent, outer.id);
            assert_eq!(inner.idx, Some(7));
            assert!(inner.start_ns >= outer.start_ns);
            assert!(inner.end_ns <= outer.end_ns);
            assert!(outer.end_ns >= outer.start_ns);
        });
    }

    #[test]
    fn sibling_spans_restore_the_parent() {
        with_obs(|| {
            let root = span("root");
            let root_id = root.id();
            drop(span("a"));
            drop(span("b"));
            drop(root);
            let (spans, _) = drain();
            for name in ["a", "b"] {
                let s = spans.iter().find(|s| s.name == name).unwrap();
                assert_eq!(s.parent, root_id, "{name} hangs off the root");
            }
        });
    }

    #[test]
    fn cross_thread_spans_attach_via_span_under() {
        with_obs(|| {
            let root = span("fanout_root");
            let root_id = root.id();
            fcm_substrate::pool::par_map_threads(&[0u64, 1, 2, 3], 4, |&i| {
                let _cell = span_under("cell", root_id, Some(i));
            });
            drop(root);
            let (spans, _) = drain();
            let cells: Vec<_> = spans.iter().filter(|s| s.name == "cell").collect();
            assert_eq!(cells.len(), 4);
            assert!(cells.iter().all(|c| c.parent == root_id));
            let mut idxs: Vec<_> = cells.iter().map(|c| c.idx.unwrap()).collect();
            idxs.sort_unstable();
            assert_eq!(idxs, [0, 1, 2, 3]);
        });
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        with_obs(|| {
            RING_CAPACITY.store(4, Ordering::Relaxed);
            for _ in 0..10 {
                drop(span("burst"));
            }
            RING_CAPACITY.store(65_536, Ordering::Relaxed);
            let (spans, dropped) = drain();
            let burst = spans.iter().filter(|s| s.name == "burst").count();
            assert_eq!(burst, 4, "ring bounded at capacity");
            assert_eq!(dropped, 6);
            // Survivors are the newest (largest ids) in oldest-first order.
            let ids: Vec<u64> = spans
                .iter()
                .filter(|s| s.name == "burst")
                .map(|s| s.id)
                .collect();
            assert!(ids.windows(2).all(|w| w[0] < w[1]));
        });
    }

    #[test]
    fn drain_is_ordered_and_resets() {
        with_obs(|| {
            drop(span("one"));
            drop(span("two"));
            let (spans, _) = drain();
            assert!(spans.len() >= 2);
            assert!(spans
                .windows(2)
                .all(|w| (w[0].start_ns, w[0].id) <= (w[1].start_ns, w[1].id)));
            assert!(drain().0.is_empty(), "drain resets the rings");
        });
    }
}
