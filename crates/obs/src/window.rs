//! Rolling-window histograms for live SLO reporting.
//!
//! A [`RollingHist`] records every sample twice: into a *lifetime*
//! histogram (what the batch export has always shipped) and into the
//! *current window*, which rotates into a bounded deque of completed
//! windows every `window_every` samples. Quantiles over the most recent
//! completed window answer "what is p99 **now**", not "what has p99
//! been since the process started" — the serving layer's `stats` SLO
//! fields read [`RollingHist::last_window`].
//!
//! Rotation is **count-based**, not time-based: the rotation points of
//! a deterministic run are themselves deterministic, so a golden
//! transcript that never completes a window renders the same bytes on
//! every machine. The structural invariant (pinned by property test):
//! merging every completed window plus the current one reproduces the
//! lifetime histogram exactly, because [`crate::Histogram::merge`] is
//! a lossless union of sample streams.

use std::collections::VecDeque;

use crate::hist::Histogram;

/// A histogram with count-based rolling windows next to its lifetime
/// aggregate.
#[derive(Debug, Clone)]
pub struct RollingHist {
    window_every: u64,
    retain: usize,
    current: Histogram,
    completed: VecDeque<Histogram>,
    lifetime: Histogram,
    rotations: u64,
}

impl RollingHist {
    /// A rolling histogram that completes a window every `window_every`
    /// samples (min 1) and retains the last `retain` completed windows.
    #[must_use]
    pub fn new(window_every: u64, retain: usize) -> RollingHist {
        RollingHist {
            window_every: window_every.max(1),
            retain,
            current: Histogram::new(),
            completed: VecDeque::new(),
            lifetime: Histogram::new(),
            rotations: 0,
        }
    }

    /// Records one sample into the current window and the lifetime
    /// histogram, rotating the window when it reaches `window_every`.
    pub fn record(&mut self, v: u64) {
        self.current.record(v);
        self.lifetime.record(v);
        if self.current.count() >= self.window_every {
            let full = std::mem::take(&mut self.current);
            self.completed.push_back(full);
            self.rotations += 1;
            while self.completed.len() > self.retain {
                self.completed.pop_front();
            }
        }
    }

    /// The most recent *completed* window (`None` until the first
    /// rotation) — the deterministic basis for live SLO fields.
    #[must_use]
    pub fn last_window(&self) -> Option<&Histogram> {
        self.completed.back()
    }

    /// All retained completed windows, oldest first.
    pub fn windows(&self) -> impl Iterator<Item = &Histogram> {
        self.completed.iter()
    }

    /// The in-progress window (fewer than `window_every` samples).
    #[must_use]
    pub fn current(&self) -> &Histogram {
        &self.current
    }

    /// The lifetime histogram over every sample ever recorded.
    #[must_use]
    pub fn lifetime(&self) -> &Histogram {
        &self.lifetime
    }

    /// Completed-window count (including evicted ones).
    #[must_use]
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    /// Samples per window.
    #[must_use]
    pub fn window_every(&self) -> u64 {
        self.window_every
    }

    /// Merge of every *retained* window plus the current one. Equals
    /// [`RollingHist::lifetime`] exactly while nothing has been evicted.
    #[must_use]
    pub fn merged_retained(&self) -> Histogram {
        let mut m = Histogram::new();
        for w in &self.completed {
            m.merge(w);
        }
        m.merge(&self.current);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_rotate_on_the_sample_count() {
        let mut r = RollingHist::new(4, 8);
        for v in 0..10u64 {
            r.record(v);
        }
        assert_eq!(r.rotations(), 2);
        assert_eq!(r.current().count(), 2);
        let last = r.last_window().expect("one full window");
        assert_eq!(last.count(), 4);
        assert_eq!(last.min(), Some(4), "last window holds samples 4..8");
        assert_eq!(last.max(), Some(7));
    }

    #[test]
    fn no_window_before_the_first_rotation() {
        let mut r = RollingHist::new(100, 4);
        for v in 0..99u64 {
            r.record(v);
        }
        assert!(r.last_window().is_none());
        r.record(99);
        assert!(r.last_window().is_some());
    }

    #[test]
    fn retention_evicts_oldest_windows() {
        let mut r = RollingHist::new(2, 3);
        for v in 0..20u64 {
            r.record(v);
        }
        assert_eq!(r.rotations(), 10);
        assert_eq!(r.windows().count(), 3);
        let oldest_retained = r.windows().next().unwrap();
        assert_eq!(oldest_retained.min(), Some(14));
        // Lifetime still covers everything.
        assert_eq!(r.lifetime().count(), 20);
    }
}
