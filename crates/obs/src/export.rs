//! JSONL event-log export and re-import.
//!
//! One schema-versioned JSON record per line, emitted through the
//! substrate JSON emitter: a `meta` header (schema id + spans lost to
//! ring overflow), then every finished span ordered by `(start_ns,
//! id)`, then the metrics registry in lexicographic name order
//! (counters, gauges, histograms). The format is append-friendly, line
//! -oriented (any JSONL tool can slice it), and self-describing enough
//! for the `obsview` inspector to rebuild the span tree, a collapsed
//! -stack flamegraph, and histogram summaries offline.
//!
//! [`render_jsonl`] *drains* the process-wide span rings and metrics
//! registry — an export is a cut point, not a peek — and
//! [`EventLog::parse`] is its exact inverse reader.

use std::collections::BTreeMap;

use fcm_substrate::{Json, ToJson};

use crate::hist::Histogram;
use crate::metrics;
use crate::span::{self, SpanRecord};

/// The event-log schema identifier emitted in the `meta` record.
pub const SCHEMA: &str = "fcm-obs/v1";

/// A span read back from a JSONL log (name owned, not `'static`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoggedSpan {
    /// Span id.
    pub id: u64,
    /// Parent span id; 0 marks a root.
    pub parent: u64,
    /// Span name.
    pub name: String,
    /// Optional detail index.
    pub idx: Option<u64>,
    /// Recording thread.
    pub thread: u64,
    /// Start, nanoseconds from the process epoch.
    pub start_ns: u64,
    /// End, nanoseconds from the process epoch.
    pub end_ns: u64,
}

impl LoggedSpan {
    /// Span duration in nanoseconds.
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// A flight-recorder event read back from a JSONL log (see
/// [`crate::recorder`]).
#[derive(Debug, Clone, PartialEq)]
pub struct LoggedEvent {
    /// Recorder-assigned sequence number.
    pub seq: u64,
    /// Nanoseconds from the process epoch at record time.
    pub ts_ns: u64,
    /// Event name.
    pub name: String,
    /// Structured payload.
    pub detail: Json,
}

/// A fully parsed event log.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventLog {
    /// Schema id from the `meta` record.
    pub schema: String,
    /// Spans lost to ring overflow before the export.
    pub spans_dropped: u64,
    /// Per-thread breakdown of `spans_dropped` (non-zero threads only;
    /// absent in logs written before the field existed).
    pub dropped_by_thread: BTreeMap<u64, u64>,
    /// Flight-recorder events lost to ring overflow (flight dumps only).
    pub events_dropped: u64,
    /// Dump reason from a flight dump's meta record (`None` for a
    /// regular export).
    pub flight: Option<String>,
    /// All spans, in file order (the exporter sorts by `(start_ns, id)`).
    pub spans: Vec<LoggedSpan>,
    /// Flight-recorder events, in file (= seq) order.
    pub events: Vec<LoggedEvent>,
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name.
    pub hists: BTreeMap<String, Histogram>,
}

fn span_json(s: &SpanRecord) -> Json {
    Json::object()
        .set("kind", "span")
        .set("id", s.id)
        .set("parent", s.parent)
        .set("name", s.name)
        .set("idx", s.idx.map(Json::from))
        .set("thread", s.thread)
        .set("start_ns", s.start_ns)
        .set("end_ns", s.end_ns)
}

/// Drains the process-wide spans and metrics into one JSONL document.
#[must_use]
pub fn render_jsonl() -> String {
    let (spans, by_thread) = span::drain_detailed();
    let dropped: u64 = by_thread.iter().map(|&(_, d)| d).sum();
    let snap = metrics::drain();
    let mut out = String::new();
    let mut line = |j: Json| {
        out.push_str(&j.to_string_compact());
        out.push('\n');
    };
    let mut meta = Json::object()
        .set("kind", "meta")
        .set("schema", SCHEMA)
        .set("spans_dropped", dropped);
    if dropped > 0 {
        let detail = by_thread
            .iter()
            .filter(|&&(_, d)| d > 0)
            .fold(Json::object(), |j, &(t, d)| j.set(&t.to_string(), d));
        meta = meta.set("dropped_by_thread", detail);
    }
    line(meta);
    for s in &spans {
        line(span_json(s));
    }
    for (name, value) in &snap.counters {
        line(Json::object()
            .set("kind", "counter")
            .set("name", name.as_str())
            .set("value", *value));
    }
    for (name, value) in &snap.gauges {
        line(Json::object()
            .set("kind", "gauge")
            .set("name", name.as_str())
            .set("value", *value));
    }
    for (name, h) in &snap.hists {
        let mut j = h.to_json();
        j = j.set("kind", "hist").set("name", name.as_str());
        line(j);
    }
    out
}

impl EventLog {
    /// Parses a JSONL event log produced by [`render_jsonl`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line (1-based) or a
    /// missing/unsupported schema header.
    pub fn parse(text: &str) -> Result<EventLog, String> {
        let mut log = EventLog::default();
        let mut saw_meta = false;
        for (lineno, raw) in text.lines().enumerate() {
            let lineno = lineno + 1;
            if raw.trim().is_empty() {
                continue;
            }
            let j = Json::parse(raw).map_err(|e| format!("line {lineno}: {e}"))?;
            let kind = j
                .get("kind")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("line {lineno}: record without a 'kind'"))?;
            let name = || {
                j.get("name")
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("line {lineno}: record without a 'name'"))
            };
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let num = |key: &str| {
                j.get(key)
                    .and_then(Json::as_f64)
                    .map(|v| v as u64)
                    .ok_or_else(|| format!("line {lineno}: missing numeric '{key}'"))
            };
            match kind {
                "meta" => {
                    let schema = j
                        .get("schema")
                        .and_then(Json::as_str)
                        .ok_or_else(|| format!("line {lineno}: meta without a schema"))?;
                    if !schema.starts_with("fcm-obs/") {
                        return Err(format!("line {lineno}: unsupported schema {schema:?}"));
                    }
                    log.schema = schema.to_string();
                    log.spans_dropped = num("spans_dropped")?;
                    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                    if let Some(Json::Obj(map)) = j.get("dropped_by_thread") {
                        for (t, d) in map {
                            let thread = t
                                .parse::<u64>()
                                .map_err(|_| format!("line {lineno}: bad thread id {t:?}"))?;
                            let d = d
                                .as_f64()
                                .ok_or_else(|| format!("line {lineno}: non-numeric drop count"))?;
                            log.dropped_by_thread.insert(thread, d as u64);
                        }
                    }
                    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                    if let Some(d) = j.get("events_dropped").and_then(Json::as_f64) {
                        log.events_dropped = d as u64;
                    }
                    log.flight = j
                        .get("flight")
                        .and_then(Json::as_str)
                        .map(str::to_string);
                    saw_meta = true;
                }
                "event" => {
                    log.events.push(LoggedEvent {
                        seq: num("seq")?,
                        ts_ns: num("ts_ns")?,
                        name: name()?,
                        detail: j.get("detail").cloned().unwrap_or_else(Json::object),
                    });
                }
                "span" => {
                    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                    let idx = j.get("idx").and_then(Json::as_f64).map(|v| v as u64);
                    log.spans.push(LoggedSpan {
                        id: num("id")?,
                        parent: num("parent")?,
                        name: name()?,
                        idx,
                        thread: num("thread")?,
                        start_ns: num("start_ns")?,
                        end_ns: num("end_ns")?,
                    });
                }
                "counter" => {
                    log.counters.insert(name()?, num("value")?);
                }
                "gauge" => {
                    let v = j
                        .get("value")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| format!("line {lineno}: gauge without a value"))?;
                    log.gauges.insert(name()?, v);
                }
                "hist" => {
                    let h = Histogram::from_json(&j).map_err(|e| format!("line {lineno}: {e}"))?;
                    log.hists.insert(name()?, h);
                }
                other => return Err(format!("line {lineno}: unknown record kind {other:?}")),
            }
        }
        if !saw_meta {
            return Err("no meta record: not an fcm-obs event log".into());
        }
        Ok(log)
    }
}

/// Drains the process-wide observability state into `path` as JSONL.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn export_to(path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, render_jsonl())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{init, metrics, set_enabled, span, ObsConfig};
    use fcm_substrate::pool::Mutex;

    static GATE: Mutex<()> = Mutex::new(());

    fn with_obs(f: impl FnOnce()) {
        let _g = GATE.lock();
        init(ObsConfig::default());
        let _ = span::drain();
        let _ = metrics::drain();
        f();
        let _ = span::drain();
        let _ = metrics::drain();
        set_enabled(false);
    }

    #[test]
    fn render_and_parse_round_trip() {
        with_obs(|| {
            {
                let _root = span::span("root");
                let _child = span::span_idx("child", 3);
            }
            metrics::counter_add("c.one", 5);
            metrics::gauge_set("g.depth", 2.5);
            metrics::hist_record("h.lat", 100);
            metrics::hist_record("h.lat", 10_000);
            let text = render_jsonl();
            assert!(text.starts_with(r#"{"kind":"meta""#));
            assert!(text.contains(r#""schema":"fcm-obs/v1""#));
            let log = EventLog::parse(&text).expect("parses");
            assert_eq!(log.schema, SCHEMA);
            assert_eq!(log.spans_dropped, 0);
            assert_eq!(log.spans.len(), 2);
            let root = log.spans.iter().find(|s| s.name == "root").unwrap();
            let child = log.spans.iter().find(|s| s.name == "child").unwrap();
            assert_eq!(child.parent, root.id);
            assert_eq!(child.idx, Some(3));
            assert_eq!(log.counters["c.one"], 5);
            assert_eq!(log.gauges["g.depth"], 2.5);
            assert_eq!(log.hists["h.lat"].count(), 2);
            assert_eq!(log.hists["h.lat"].sum(), 10_100);
        });
    }

    #[test]
    fn render_drains_the_state() {
        with_obs(|| {
            drop(span::span("once"));
            metrics::counter_add("once", 1);
            let first = render_jsonl();
            assert!(first.contains("once"));
            let second = render_jsonl();
            assert!(!second.contains("once"), "state drained by the export");
        });
    }

    #[test]
    fn parse_rejects_malformed_logs() {
        assert!(EventLog::parse("").is_err(), "no meta record");
        assert!(EventLog::parse("{\"kind\":\"span\"}").is_err());
        let bad_schema = "{\"kind\":\"meta\",\"schema\":\"other/v9\",\"spans_dropped\":0}";
        assert!(EventLog::parse(bad_schema).is_err());
        let meta = "{\"kind\":\"meta\",\"schema\":\"fcm-obs/v1\",\"spans_dropped\":0}";
        assert!(EventLog::parse(meta).is_ok());
        assert!(EventLog::parse(&format!("{meta}\nnot json")).is_err());
        assert!(
            EventLog::parse(&format!("{meta}\n{{\"kind\":\"mystery\"}}")).is_err(),
            "unknown record kinds are rejected, not skipped"
        );
    }

    #[test]
    fn export_to_writes_a_parseable_file() {
        with_obs(|| {
            drop(span::span("file_span"));
            let dir = std::env::temp_dir().join("fcm_obs_export_test");
            std::fs::create_dir_all(&dir).unwrap();
            let path = dir.join("log.jsonl");
            export_to(&path).expect("writes");
            let log = EventLog::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
            assert_eq!(log.spans.len(), 1);
            let _ = std::fs::remove_dir_all(&dir);
        });
    }
}
