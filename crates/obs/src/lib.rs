//! `fcm-obs` — the observability layer.
//!
//! De Florio's survey of application-level fault tolerance argues that
//! a dependability mechanism you cannot observe is one you cannot
//! tune; Rugina/Kanoun/Kaâniche's AADL framework shows the leverage of
//! a *structured* dependability-event model over flat timers. This
//! crate supplies that model for the whole workspace, on top of
//! `fcm-substrate` and nothing else:
//!
//! * [`span`] — hierarchical span tracing: per-thread bounded rings,
//!   parent/child ids, deterministic static names, monotonic
//!   nanosecond timestamps; O(1) per span;
//! * [`metrics`] — a registry of counters, gauges, and log-linear
//!   [`hist::Histogram`]s (record / merge / quantile);
//! * [`export`] — schema-versioned JSONL event-log export
//!   (`fcm-obs/v1`) and its reader, consumed by the `obsview`
//!   inspector in `fcm-bench`;
//! * [`recorder`] — a bounded flight-recorder event ring the serving
//!   layer dumps (`flight.jsonl`, same `fcm-obs/v1` format) on
//!   degraded entry, crash-drill crash points, and SIGTERM drain;
//! * [`window`] — count-based rolling-window histograms behind the
//!   serve layer's live `stats` SLO fields.
//!
//! # The observation contract
//!
//! Observability is **off by default** and runtime-enabled via
//! [`init`] (an [`ObsConfig`], typically driven by `FCM_OBS_OUT` /
//! `repro --obs-out`). Every recording entry point early-returns on a
//! single relaxed atomic load while disabled. Recorded data is an
//! *observation*, never an input: no analysis result may read a span
//! or metric back, which is what keeps experiment tables byte
//! -identical with observability on or off (`scripts/verify.sh`
//! compares exactly that).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod hist;
pub mod metrics;
pub mod recorder;
pub mod span;
pub mod window;

use std::sync::atomic::{AtomicBool, Ordering};

pub use export::{EventLog, LoggedEvent, LoggedSpan};
pub use hist::Histogram;
pub use metrics::{counter_add, gauge_set, hist_record, MetricsSnapshot};
pub use recorder::FlightEvent;
pub use span::{current_span, span, span_idx, span_under, Span, SpanRecord};
pub use window::RollingHist;

/// The environment variable naming the JSONL event-log output path.
/// Setting it (or passing `repro --obs-out`) enables recording.
pub const OBS_OUT_ENV: &str = "FCM_OBS_OUT";

/// Runtime observability configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Per-thread span ring capacity; overflow overwrites the oldest
    /// span and is counted in the export's `spans_dropped`.
    pub ring_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> ObsConfig {
        ObsConfig {
            ring_capacity: 65_536,
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether recording is currently enabled. One relaxed atomic load —
/// this is the entire disabled-path cost of every instrumentation
/// point.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enables recording with `config`, and hooks the substrate pool's
/// per-worker counters into the metrics registry.
pub fn init(config: ObsConfig) {
    span::RING_CAPACITY.store(config.ring_capacity as u64, Ordering::Relaxed);
    fcm_substrate::pool::set_counter_hook(Some(pool_hook));
    ENABLED.store(true, Ordering::Relaxed);
}

/// Toggles recording without touching buffered data (benches use this
/// to time the same code with observability on and off).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// The pool's counter hook: per-worker pool counters land in the
/// registry as `<name>.w<worker>`.
fn pool_hook(name: &'static str, worker: usize, n: u64) {
    metrics::counter_add(&format!("{name}.w{worker}"), n);
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcm_substrate::pool::{self, Mutex};

    static GATE: Mutex<()> = Mutex::new(());

    #[test]
    fn off_by_default_costs_one_atomic_load() {
        let _g = GATE.lock();
        set_enabled(false);
        assert!(!enabled());
        // All entry points are inert.
        counter_add("lib.off", 1);
        hist_record("lib.off", 1);
        assert_eq!(span::current_span(), 0);
        assert!(!metrics::snapshot().counters.contains_key("lib.off"));
    }

    #[test]
    fn init_installs_the_pool_counter_hook() {
        let _g = GATE.lock();
        init(ObsConfig::default());
        let _ = metrics::drain();
        let items: Vec<u64> = (0..256).collect();
        let out = pool::par_map_threads(&items, 4, |&x| x + 1);
        assert_eq!(out.len(), 256);
        let snap = metrics::drain();
        let executed: u64 = snap
            .counters
            .iter()
            .filter(|(k, _)| k.starts_with("pool.execute.w"))
            .map(|(_, &v)| v)
            .sum();
        assert_eq!(executed, 256, "every item accounted to some worker");
        let parks: u64 = snap
            .counters
            .iter()
            .filter(|(k, _)| k.starts_with("pool.park.w"))
            .map(|(_, &v)| v)
            .sum();
        assert!(parks >= 1, "workers record their park on exit");
        set_enabled(false);
        pool::set_counter_hook(None);
    }
}
