//! Log-linear-bucket histograms.
//!
//! The latency distributions the observability layer records (watchdog
//! detection latency, retry backoff, per-merge pipeline cost) span many
//! orders of magnitude, so fixed-width buckets are useless and exact
//! reservoirs are too expensive for hot paths. A [`Histogram`] uses the
//! HDR-style *log-linear* scheme: values below 2⁴ get exact unit
//! buckets; every octave `[2^o, 2^(o+1))` above that is split into 16
//! linear sub-buckets, so relative bucket error is bounded by 1/16
//! (~6%) at every scale while `record` stays a constant-time index
//! computation — no allocation, no comparison ladder.
//!
//! Merging two histograms is element-wise bucket addition, which makes
//! `merge(a, b)` *exactly* equal to having recorded the union of both
//! sample streams into one histogram — the property the sweep driver
//! relies on when per-worker histograms are folded into one, and the
//! contract pinned by `tests/histogram_props.rs`.

use fcm_substrate::{Json, ToJson};

/// Linear sub-buckets per octave (2⁴): values < 16 are exact.
const SUB: u64 = 16;
/// log2(SUB).
const SUB_BITS: u32 = 4;
/// Total bucket count: 16 exact + 60 octaves × 16 sub-buckets.
pub const BUCKETS: usize = (SUB as usize) * 61;

/// A log-linear-bucket histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: Vec<u64>,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Histogram {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: vec![0; BUCKETS],
        }
    }

    /// Records one sample. O(1): one index computation, one increment.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[Self::bucket_of(v)] += 1;
    }

    /// The bucket index of value `v`.
    #[must_use]
    pub fn bucket_of(v: u64) -> usize {
        if v < SUB {
            v as usize
        } else {
            let msb = 63 - v.leading_zeros(); // >= SUB_BITS
            let group = (msb - SUB_BITS + 1) as usize;
            let sub = ((v >> (msb - SUB_BITS)) - SUB) as usize;
            group * SUB as usize + sub
        }
    }

    /// The smallest value mapping to bucket `idx` (the bucket's lower
    /// boundary; quantiles report this value).
    #[must_use]
    pub fn bucket_low(idx: usize) -> u64 {
        let (group, sub) = (idx / SUB as usize, (idx % SUB as usize) as u64);
        if group == 0 {
            sub
        } else {
            (SUB + sub) << (group - 1)
        }
    }

    /// Samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact minimum sample; `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum sample; `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean; `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        #[allow(clippy::cast_precision_loss)]
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`, nearest-rank), reported as the
    /// lower boundary of the bucket holding that rank — so the result
    /// is at most one bucket width (≤ ~6%) below the true order
    /// statistic, is monotone in `q`, and `quantile(0.0)` through
    /// `quantile(1.0)` all lie within `[bucket_low(bucket_of(min)),
    /// max]`. `None` when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                return Some(Self::bucket_low(idx));
            }
        }
        Some(Self::bucket_low(BUCKETS - 1))
    }

    /// Merges `other` into `self`: bucket-wise addition, so the result
    /// is exactly the histogram of the union of both sample streams.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    /// Non-empty buckets as `(index, count)` pairs, ascending.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, &n)| (i, n))
            .collect()
    }

    /// Rebuilds a histogram from its [`ToJson`] form.
    ///
    /// # Errors
    ///
    /// Returns a message when a required field is missing or malformed.
    pub fn from_json(j: &Json) -> Result<Histogram, String> {
        let num = |key: &str| -> Result<u64, String> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            j.get(key)
                .and_then(Json::as_f64)
                .map(|v| v as u64)
                .ok_or_else(|| format!("histogram missing numeric '{key}'"))
        };
        let mut h = Histogram::new();
        h.count = num("count")?;
        h.sum = num("sum")?;
        h.min = match j.get("min") {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Some(Json::Num(v)) => *v as u64,
            _ => u64::MAX,
        };
        h.max = match j.get("max") {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Some(Json::Num(v)) => *v as u64,
            _ => 0,
        };
        let pairs = j
            .get("buckets")
            .and_then(Json::as_array)
            .ok_or("histogram missing 'buckets' array")?;
        for pair in pairs {
            let cells = pair.as_array().ok_or("bucket entry is not a pair")?;
            if cells.len() != 2 {
                return Err("bucket entry is not a [index, count] pair".into());
            }
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let (idx, n) = (
                cells[0].as_f64().ok_or("bucket index not numeric")? as usize,
                cells[1].as_f64().ok_or("bucket count not numeric")? as u64,
            );
            if idx >= BUCKETS {
                return Err(format!("bucket index {idx} out of range"));
            }
            h.buckets[idx] = n;
        }
        Ok(h)
    }
}

impl ToJson for Histogram {
    /// Sparse form: exact `count`/`sum`/`min`/`max` plus non-empty
    /// `[index, count]` bucket pairs. Bucket boundaries are implied by
    /// the fixed log-linear scheme, so indices round-trip losslessly.
    ///
    /// JSON numbers are `f64`, so `sum`/`min`/`max` round-trip exactly
    /// only up to 2⁵³ (the substrate JSON number model). Nanosecond
    /// observations sit orders of magnitude below that (2⁵³ ns ≈ 104
    /// days); `tests/histogram_props.rs` pins the contract over this
    /// domain.
    fn to_json(&self) -> Json {
        Json::object()
            .set("count", self.count)
            .set("sum", self.sum)
            .set("min", self.min().map(|v| Json::Num(v as f64)))
            .set("max", self.max().map(|v| Json::Num(v as f64)))
            .set(
                "buckets",
                Json::Arr(
                    self.nonzero_buckets()
                        .into_iter()
                        .map(|(i, n)| Json::array([i as u64, n]))
                        .collect(),
                ),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_sixteen() {
        for v in 0..SUB {
            assert_eq!(Histogram::bucket_of(v), v as usize);
            assert_eq!(Histogram::bucket_low(v as usize), v);
        }
    }

    #[test]
    fn bucket_low_is_the_smallest_value_in_its_bucket() {
        for idx in 0..BUCKETS {
            let low = Histogram::bucket_low(idx);
            assert_eq!(Histogram::bucket_of(low), idx, "low of bucket {idx}");
            if low > 0 {
                assert!(Histogram::bucket_of(low - 1) < idx);
            }
        }
    }

    #[test]
    fn bucket_error_is_bounded() {
        for v in [17u64, 100, 1_000, 123_456, 10_u64.pow(12), u64::MAX / 3] {
            let low = Histogram::bucket_low(Histogram::bucket_of(v));
            assert!(low <= v);
            #[allow(clippy::cast_precision_loss)]
            let rel = (v - low) as f64 / v as f64;
            assert!(rel <= 1.0 / 16.0 + 1e-12, "v={v} low={low} rel={rel}");
        }
    }

    #[test]
    fn quantiles_of_known_stream() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(100));
        let p50 = h.quantile(0.5).unwrap();
        // True median 50 lives in bucket [48, 52).
        assert!((45..=50).contains(&p50), "p50 = {p50}");
        assert!(h.quantile(0.0).unwrap() <= h.quantile(1.0).unwrap());
        assert!(h.quantile(1.0).unwrap() <= 100);
    }

    #[test]
    fn empty_histogram_has_no_statistics() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn merge_equals_union() {
        let (mut a, mut b, mut u) = (Histogram::new(), Histogram::new(), Histogram::new());
        for v in [0u64, 3, 17, 900, 1_000_000] {
            a.record(v);
            u.record(v);
        }
        for v in [5u64, 17, 40_000] {
            b.record(v);
            u.record(v);
        }
        a.merge(&b);
        assert_eq!(a, u);
    }

    #[test]
    fn json_round_trips() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 15, 16, 17, 1023, 1024, 99_999] {
            h.record(v);
        }
        let j = h.to_json();
        let text = j.to_string_compact();
        let back = Histogram::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn from_json_rejects_malformed_input() {
        assert!(Histogram::from_json(&Json::parse("{}").unwrap()).is_err());
        let no_pairs = Json::parse(r#"{"count":1,"sum":2,"buckets":[3]}"#).unwrap();
        assert!(Histogram::from_json(&no_pairs).is_err());
        let bad_idx = Json::parse(r#"{"count":1,"sum":2,"buckets":[[99999,1]]}"#).unwrap();
        assert!(Histogram::from_json(&bad_idx).is_err());
    }
}
