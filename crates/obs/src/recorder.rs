//! The flight recorder: a bounded, always-available ring of discrete
//! events that can be dumped as an `fcm-obs/v1` JSONL document at any
//! moment — without disturbing the regular span/metrics export.
//!
//! The serving layer records one [`FlightEvent`] per interesting moment
//! (accepted mutation, degraded transition, re-arm probe, repr flip,
//! stats heartbeat) and registers a dump path; when the daemon enters
//! degraded mode, hits a crash-drill crash point, or drains on SIGTERM,
//! [`auto_dump`] writes `flight.jsonl`: the last `capacity` events plus
//! a *peek* of the span rings (aggregated per name into histograms) and
//! the metric registry (counters as deltas since the previous dump).
//! The result parses with [`crate::EventLog::parse`] and renders in
//! `obsview`, so a post-mortem starts from one self-describing file.
//!
//! Contract (mirrors the span rings): recording is gated on one relaxed
//! atomic load and is off by default; the ring overwrites its oldest
//! entry when full and counts the drop; a dump is a peek, not a cut —
//! it never resets the spans or metrics it embeds. Telemetry stays
//! output-only: nothing here is readable by an analysis path.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use fcm_substrate::pool::Mutex;
use fcm_substrate::{Json, ToJson};

use crate::export::SCHEMA;
use crate::hist::Histogram;
use crate::metrics;
use crate::span;

/// Default ring capacity (events retained for a dump).
pub const DEFAULT_CAPACITY: usize = 4096;

/// One recorded flight event.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEvent {
    /// Recorder-assigned sequence number (0-based, monotonic).
    pub seq: u64,
    /// Nanoseconds from the process epoch at record time.
    pub ts_ns: u64,
    /// Event name (e.g. `mutation`, `degraded`, `rearm`).
    pub name: &'static str,
    /// Structured payload (never read back into an analysis). Shared —
    /// a publisher fanning the same payload to subscribers hands the
    /// recorder a refcount, not a deep copy, keeping the record path
    /// allocation-free beyond the ring slot itself.
    pub detail: Arc<Json>,
}

static REC_ON: AtomicBool = AtomicBool::new(false);

struct RecInner {
    buf: Vec<FlightEvent>,
    /// Next overwrite position once the buffer is full.
    head: usize,
    capacity: usize,
    dropped: u64,
    next_seq: u64,
    dump_path: Option<PathBuf>,
    /// Counter totals embedded in the previous dump, so each dump
    /// carries counter *deltas* instead of repeating lifetime totals.
    last_counters: BTreeMap<String, u64>,
}

static REC: Mutex<RecInner> = Mutex::new(RecInner {
    buf: Vec::new(),
    head: 0,
    capacity: DEFAULT_CAPACITY,
    dropped: 0,
    next_seq: 0,
    dump_path: None,
    last_counters: BTreeMap::new(),
});

/// Whether the flight recorder is recording (one relaxed atomic load —
/// this is the entire fast path while disabled).
#[must_use]
pub fn enabled() -> bool {
    REC_ON.load(Ordering::Relaxed)
}

/// Turns the recorder on or off. Independent of [`crate::enabled`]:
/// the serving layer keeps its flight recorder armed even when full
/// span tracing is off.
pub fn set_enabled(on: bool) {
    REC_ON.store(on, Ordering::Relaxed);
}

/// Sets the ring capacity and resets the recorder: events, drop count,
/// sequence numbers, and the counter-delta baseline all start fresh.
pub fn configure(capacity: usize) {
    let mut rec = REC.lock();
    rec.capacity = capacity;
    rec.buf.clear();
    rec.head = 0;
    rec.dropped = 0;
    rec.next_seq = 0;
    rec.last_counters.clear();
}

/// Registers (or clears) the path [`auto_dump`] writes to.
pub fn set_dump_path(path: Option<PathBuf>) {
    REC.lock().dump_path = path;
}

/// Records one event. No-op (one relaxed load) while disabled; when the
/// ring is full the oldest event is overwritten and counted as dropped.
pub fn record(name: &'static str, detail: Json) {
    record_arc(name, Arc::new(detail));
}

/// [`record`] for payloads already shared elsewhere (e.g. fanned out to
/// event subscribers): the ring takes a refcount, not a deep copy.
pub fn record_arc(name: &'static str, detail: Arc<Json>) {
    if !enabled() {
        return;
    }
    let ts_ns = span::now_ns();
    let mut rec = REC.lock();
    let seq = rec.next_seq;
    rec.next_seq += 1;
    let ev = FlightEvent {
        seq,
        ts_ns,
        name,
        detail,
    };
    if rec.buf.len() < rec.capacity {
        rec.buf.push(ev);
    } else if rec.capacity > 0 {
        let head = rec.head;
        rec.buf[head] = ev;
        rec.head = (head + 1) % rec.capacity;
        rec.dropped += 1;
    } else {
        rec.dropped += 1;
    }
}

/// Oldest-first copy of the ring plus the cumulative drop count. Does
/// not reset anything.
#[must_use]
pub fn snapshot() -> (Vec<FlightEvent>, u64) {
    let rec = REC.lock();
    let mut out: Vec<FlightEvent> = rec.buf[rec.head..].to_vec();
    out.extend_from_slice(&rec.buf[..rec.head]);
    (out, rec.dropped)
}

fn event_json(ev: &FlightEvent) -> Json {
    Json::object()
        .set("kind", "event")
        .set("seq", ev.seq)
        .set("ts_ns", ev.ts_ns)
        .set("name", ev.name)
        .set("detail", (*ev.detail).clone())
}

/// Renders the flight dump: meta (with the dump `reason`), the ring's
/// events, per-name span-duration histograms from a span-ring *peek*,
/// and the metric registry (counters as deltas since the last dump).
/// The output parses with [`crate::EventLog::parse`].
#[must_use]
pub fn render_flight(reason: &str) -> String {
    let (spans, spans_dropped) = span::peek();
    let snap = metrics::snapshot();
    let (events, events_dropped, counter_deltas) = {
        let mut rec = REC.lock();
        let mut events: Vec<FlightEvent> = rec.buf[rec.head..].to_vec();
        let head = rec.head;
        events.extend_from_slice(&rec.buf[..head]);
        let mut deltas: BTreeMap<String, u64> = BTreeMap::new();
        for (name, total) in &snap.counters {
            let prev = rec.last_counters.get(name).copied().unwrap_or(0);
            deltas.insert(name.clone(), total.saturating_sub(prev));
        }
        rec.last_counters = snap.counters.clone();
        (events, rec.dropped, deltas)
    };

    let mut span_hists: BTreeMap<&'static str, Histogram> = BTreeMap::new();
    for s in &spans {
        span_hists
            .entry(s.name)
            .or_default()
            .record(s.end_ns.saturating_sub(s.start_ns));
    }

    let mut out = String::new();
    let mut line = |j: Json| {
        out.push_str(&j.to_string_compact());
        out.push('\n');
    };
    line(
        Json::object()
            .set("kind", "meta")
            .set("schema", SCHEMA)
            .set("spans_dropped", spans_dropped)
            .set("events_dropped", events_dropped)
            .set("flight", reason),
    );
    for ev in &events {
        line(event_json(ev));
    }
    for (name, h) in &span_hists {
        line(
            h.to_json()
                .set("kind", "hist")
                .set("name", format!("span.{name}_ns").as_str()),
        );
    }
    for (name, delta) in &counter_deltas {
        line(
            Json::object()
                .set("kind", "counter")
                .set("name", name.as_str())
                .set("value", *delta),
        );
    }
    for (name, value) in &snap.gauges {
        line(
            Json::object()
                .set("kind", "gauge")
                .set("name", name.as_str())
                .set("value", *value),
        );
    }
    for (name, h) in &snap.hists {
        line(h.to_json().set("kind", "hist").set("name", name.as_str()));
    }
    out
}

/// Writes [`render_flight`] to `path`.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn dump_to(path: &Path, reason: &str) -> std::io::Result<()> {
    std::fs::write(path, render_flight(reason))
}

/// Best-effort dump to the registered path: no-op unless the recorder
/// is enabled and a path is set; I/O errors are swallowed (the callers
/// — degraded entry, crash points, SIGTERM drain — must never fail
/// because the flight dump could not be written). Returns the path on
/// a successful write.
pub fn auto_dump(reason: &str) -> Option<PathBuf> {
    if !enabled() {
        return None;
    }
    let path = REC.lock().dump_path.clone()?;
    dump_to(&path, reason).ok()?;
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::EventLog;

    // The recorder is process-global state shared across tests in this
    // binary; serialise on one lock and reset around each body.
    static GATE: Mutex<()> = Mutex::new(());

    fn with_recorder(capacity: usize, f: impl FnOnce()) {
        let _g = GATE.lock();
        configure(capacity);
        set_dump_path(None);
        set_enabled(true);
        f();
        set_enabled(false);
        configure(DEFAULT_CAPACITY);
    }

    #[test]
    fn disabled_recording_is_a_noop() {
        let _g = GATE.lock();
        set_enabled(false);
        configure(8);
        record("ghost", Json::object());
        let (events, dropped) = snapshot();
        assert!(events.is_empty());
        assert_eq!(dropped, 0);
        configure(DEFAULT_CAPACITY);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        with_recorder(3, || {
            for i in 0..5u64 {
                record("tick", Json::object().set("i", i));
            }
            let (events, dropped) = snapshot();
            assert_eq!(dropped, 2);
            let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
            assert_eq!(seqs, vec![2, 3, 4], "oldest-first, oldest two gone");
        });
    }

    #[test]
    fn flight_dump_parses_as_an_event_log() {
        with_recorder(16, || {
            record("mutation", Json::object().set("seq", 1u64).set("op", "add_fcm"));
            record("degraded", Json::object().set("transitions", 1u64));
            let text = render_flight("test");
            let log = EventLog::parse(&text).expect("flight dump parses");
            assert_eq!(log.schema, SCHEMA);
            assert_eq!(log.events.len(), 2);
            assert_eq!(log.events[0].name, "mutation");
            assert_eq!(log.events[0].seq, 0);
            assert_eq!(
                log.events[1].detail.get("transitions").and_then(Json::as_f64),
                Some(1.0)
            );
            assert_eq!(log.events_dropped, 0);
        });
    }

    #[test]
    fn dumps_are_peeks_not_cuts() {
        with_recorder(16, || {
            record("once", Json::object());
            let first = render_flight("a");
            let second = render_flight("b");
            let a = EventLog::parse(&first).unwrap();
            let b = EventLog::parse(&second).unwrap();
            assert_eq!(a.events, b.events, "dumping does not drain the ring");
        });
    }

    #[test]
    fn auto_dump_needs_a_registered_path() {
        with_recorder(16, || {
            record("ev", Json::object());
            assert_eq!(auto_dump("nowhere"), None);
            let dir = std::env::temp_dir().join(format!("fcm-rec-{}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            let path = dir.join("flight.jsonl");
            set_dump_path(Some(path.clone()));
            assert_eq!(auto_dump("sigterm"), Some(path.clone()));
            let log = EventLog::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
            assert_eq!(log.events.len(), 1);
            set_dump_path(None);
            let _ = std::fs::remove_dir_all(&dir);
        });
    }
}
