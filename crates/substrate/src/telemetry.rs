//! Stage telemetry: monotonic stage timers and counters.
//!
//! De Florio's survey of application-level fault tolerance argues that a
//! dependability mechanism you cannot observe is one you cannot tune;
//! this module gives the analysis engine that observability without
//! perturbing it. A [`Telemetry`] sink accumulates, per named stage,
//! wall-clock spans (measured with the monotonic [`Instant`] clock) and
//! plain counters. Stages live in a `BTreeMap`, so every rendering —
//! [`summary_lines`](Telemetry::summary_lines) and [`ToJson`] — is in
//! deterministic (lexicographic) stage order even though the *numbers*
//! are wall-clock measurements.
//!
//! Two recording styles:
//!
//! * [`Telemetry::time`] — wrap a closure;
//! * [`Telemetry::start`] — an RAII [`SpanGuard`] for spans that cross
//!   a scope boundary (recorded on drop).
//!
//! The process-wide sink is [`global`]; `repro` resets it per
//! experiment and prints its summary, and bench suites embed a snapshot
//! in their `BENCH_*.json` artefact via
//! [`Suite::embed_telemetry`](crate::bench::Suite::embed_telemetry).
//! Timing numbers are *observations*, never inputs: no analysis result
//! may depend on them, which is what keeps the experiments reproducible
//! from their seeds alone.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use crate::json::{Json, ToJson};
use crate::pool::Mutex;

/// Accumulated statistics for one named stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageStat {
    /// Spans recorded (calls to `time` / guard drops / `record`).
    pub spans: u64,
    /// Total wall-clock nanoseconds across all spans.
    pub total_ns: u64,
    /// Counter total (from [`Telemetry::add`]); 0 for pure timers.
    pub count: u64,
}

/// A thread-safe sink of per-stage timers and counters.
#[derive(Debug, Default)]
pub struct Telemetry {
    stages: Mutex<BTreeMap<String, StageStat>>,
}

impl Telemetry {
    /// Creates an empty sink. `const`, so a `static` sink needs no
    /// lazy-init machinery.
    #[must_use]
    pub const fn new() -> Telemetry {
        Telemetry {
            stages: Mutex::new(BTreeMap::new()),
        }
    }

    /// Times `f` as one span of `stage`.
    ///
    /// Panic-safe: the span is recorded by an RAII guard, so a
    /// panicking closure still contributes its elapsed time before the
    /// unwind continues — a stage cannot silently lose spans to the
    /// pool's panic-containment path.
    pub fn time<R>(&self, stage: &str, f: impl FnOnce() -> R) -> R {
        let _guard = self.start(stage);
        f()
    }

    /// Starts a span of `stage`; the span is recorded when the returned
    /// guard drops.
    #[must_use]
    pub fn start<'a>(&'a self, stage: &str) -> SpanGuard<'a> {
        SpanGuard {
            sink: self,
            stage: stage.to_string(),
            t0: Instant::now(),
        }
    }

    /// Records one finished span of `stage`.
    pub fn record(&self, stage: &str, elapsed: Duration) {
        let mut stages = self.stages.lock();
        let stat = stages.entry(stage.to_string()).or_default();
        stat.spans += 1;
        stat.total_ns = stat
            .total_ns
            .saturating_add(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Adds `n` to the counter of `stage` (creating it if absent).
    pub fn add(&self, stage: &str, n: u64) {
        let mut stages = self.stages.lock();
        let stat = stages.entry(stage.to_string()).or_default();
        stat.count = stat.count.saturating_add(n);
    }

    /// A snapshot of every stage, in lexicographic stage order.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(String, StageStat)> {
        self.stages
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// True when nothing has been recorded since the last reset.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.stages.lock().is_empty()
    }

    /// Clears all stages.
    pub fn reset(&self) {
        self.stages.lock().clear();
    }

    /// One human-readable line per stage, in deterministic stage order:
    /// `<stage>  spans=<n>  total=<t>  count=<c>` (count omitted when 0,
    /// total omitted for pure counters).
    #[must_use]
    pub fn summary_lines(&self) -> Vec<String> {
        self.snapshot()
            .into_iter()
            .map(|(stage, s)| {
                let mut line = format!("{stage}  spans={}", s.spans);
                if s.spans > 0 {
                    line.push_str(&format!("  total={}", fmt_ns(s.total_ns)));
                }
                if s.count > 0 {
                    line.push_str(&format!("  count={}", s.count));
                }
                line
            })
            .collect()
    }
}

impl ToJson for Telemetry {
    fn to_json(&self) -> Json {
        Json::Arr(
            self.snapshot()
                .into_iter()
                .map(|(stage, s)| {
                    Json::object()
                        .set("stage", stage.as_str())
                        .set("spans", s.spans)
                        .set("total_ns", s.total_ns)
                        .set("count", s.count)
                })
                .collect(),
        )
    }
}

/// RAII span: records its stage on drop. Obtained from
/// [`Telemetry::start`].
#[derive(Debug)]
pub struct SpanGuard<'a> {
    sink: &'a Telemetry,
    stage: String,
    t0: Instant,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.sink.record(&self.stage, self.t0.elapsed());
    }
}

/// The process-wide telemetry sink.
#[must_use]
pub fn global() -> &'static Telemetry {
    static GLOBAL: Telemetry = Telemetry::new();
    &GLOBAL
}

fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.3}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_accumulates_spans() {
        let t = Telemetry::new();
        assert!(t.is_empty());
        let v = t.time("work", || 41 + 1);
        assert_eq!(v, 42);
        t.time("work", || ());
        let snap = t.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].0, "work");
        assert_eq!(snap[0].1.spans, 2);
    }

    #[test]
    fn guard_records_on_drop() {
        let t = Telemetry::new();
        {
            let _g = t.start("span");
            assert!(t.is_empty(), "not recorded until drop");
        }
        assert_eq!(t.snapshot()[0].1.spans, 1);
    }

    #[test]
    fn time_records_the_span_even_when_the_closure_panics() {
        // Regression companion to the pool's panic-containment tests:
        // a worker chunk that panics under `Telemetry::time` must still
        // record its span before the pool re-raises the panic.
        let t = Telemetry::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            t.time("exploding_stage", || -> u32 { panic!("injected failure") })
        }));
        assert!(result.is_err(), "the panic still propagates");
        let snap = t.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].0, "exploding_stage");
        assert_eq!(snap[0].1.spans, 1, "span recorded despite the unwind");
    }

    #[test]
    fn time_records_spans_across_pool_panic_containment() {
        // End to end with the pool: one chunk panics, the panic is
        // re-raised after join, and every chunk that ran — including
        // the panicking one — recorded its span.
        let t = Telemetry::new();
        let items: Vec<u32> = (0..64).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            crate::pool::par_map(&items, |&x| {
                t.time("chunk", || assert!(x != 13, "injected failure"));
                x
            })
        }));
        assert!(result.is_err());
        let spans = t.snapshot()[0].1.spans;
        assert!(spans >= 1, "panicking chunk still recorded");
    }

    #[test]
    fn counters_accumulate_independently_of_timers() {
        let t = Telemetry::new();
        t.add("merges", 3);
        t.add("merges", 4);
        let (name, s) = &t.snapshot()[0];
        assert_eq!(name, "merges");
        assert_eq!(s.count, 7);
        assert_eq!(s.spans, 0);
    }

    #[test]
    fn snapshot_and_lines_are_in_lexicographic_order() {
        let t = Telemetry::new();
        t.add("zeta", 1);
        t.add("alpha", 1);
        t.time("mid", || ());
        let names: Vec<String> = t.snapshot().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["alpha", "mid", "zeta"]);
        let lines = t.summary_lines();
        assert!(lines[0].starts_with("alpha"));
        assert!(lines[2].starts_with("zeta"));
        assert!(lines[0].contains("count=1"));
        assert!(!lines[0].contains("total="), "pure counter has no time");
    }

    #[test]
    fn reset_clears_everything() {
        let t = Telemetry::new();
        t.time("x", || ());
        t.reset();
        assert!(t.is_empty());
        assert!(t.summary_lines().is_empty());
    }

    #[test]
    fn json_snapshot_round_trips() {
        let t = Telemetry::new();
        t.time("stage_a", || ());
        t.add("stage_a", 5);
        let j = t.to_json();
        let back = Json::parse(&j.to_string_pretty()).expect("parses");
        assert_eq!(back, j);
        let arr = back.as_array().unwrap();
        assert_eq!(arr[0].get("stage").and_then(Json::as_str), Some("stage_a"));
        assert_eq!(arr[0].get("count").and_then(Json::as_f64), Some(5.0));
    }

    #[test]
    fn global_sink_is_shared_and_resettable() {
        // Serialise against other tests touching the global sink by
        // using a stage name unique to this test.
        global().add("telemetry_test_unique_stage", 2);
        let found = global()
            .snapshot()
            .into_iter()
            .any(|(n, s)| n == "telemetry_test_unique_stage" && s.count == 2);
        assert!(found);
    }

    #[test]
    fn recording_is_thread_safe() {
        let t = Telemetry::new();
        crate::pool::par_for(64, |_| {
            t.time("par", || std::hint::black_box(1 + 1));
            t.add("par", 1);
        });
        let (_, s) = t.snapshot().pop().unwrap();
        assert_eq!(s.spans, 64);
        assert_eq!(s.count, 64);
    }

    #[test]
    fn fmt_ns_picks_sensible_units() {
        assert_eq!(fmt_ns(12), "12ns");
        assert_eq!(fmt_ns(12_500), "12.500µs");
        assert_eq!(fmt_ns(12_500_000), "12.500ms");
        assert_eq!(fmt_ns(2_500_000_000), "2.500s");
    }
}
