//! Deterministic, seedable pseudo-random numbers.
//!
//! The generator is xoshiro256++ seeded through SplitMix64, the standard
//! pairing recommended by the xoshiro authors: SplitMix64 equidistributes
//! even poor seeds (0, small integers, sequential campaign ids) across
//! the full 256-bit state space, and xoshiro256++ then provides a fast,
//! high-quality stream with period 2²⁵⁶ − 1.
//!
//! Everything downstream of this module (fault-injection campaigns,
//! Monte-Carlo reliability, workload generation, property tests) draws
//! exclusively from [`Rng`], so a run is reproducible from its seed alone
//! on any platform — no OS entropy, no pointer hashing, no global state.
//!
//! For parallel work use [`Rng::split`] / [`Rng::stream`]: each worker
//! gets an independent stream derived deterministically from the parent
//! seed, so campaigns stay byte-identical regardless of thread count or
//! interleaving.

/// SplitMix64 step: advances `state` and returns the next output.
///
/// Used for seeding and stream derivation; also usable directly as a tiny
/// standalone generator for non-statistical needs (jitter, tie-breaking).
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ generator.
///
/// Construct with [`Rng::seed_from_u64`]; every consumer in the workspace
/// seeds explicitly so runs replay exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state is the one fixed point of xoshiro; SplitMix64
        // cannot produce four zero outputs in a row, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        Rng { s }
    }

    /// The next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next raw 32-bit output (upper half of a 64-bit draw).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A value of any [`Sample`] type: `rng.gen::<f64>()` is uniform in
    /// `[0, 1)`, `rng.gen::<bool>()` is a fair coin, integers are uniform
    /// over their full range.
    #[inline]
    pub fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// A uniform value from a half-open (`lo..hi`) or inclusive
    /// (`lo..=hi`) range. Panics on an empty range, like `rand`.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    /// A uniform `u64` below `bound` (> 0) without modulo bias, via
    /// Lemire's multiply-shift rejection method.
    #[inline]
    pub fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.bounded_u64(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// A uniform sample of `k` distinct items (selection sampling; output
    /// preserves the slice order). Returns all items when `k ≥ len`.
    pub fn sample<'a, T>(&mut self, slice: &'a [T], k: usize) -> Vec<&'a T> {
        let n = slice.len();
        let k = k.min(n);
        let mut out = Vec::with_capacity(k);
        let mut remaining = n;
        let mut needed = k;
        for item in slice {
            if needed == 0 {
                break;
            }
            if self.bounded_u64(remaining as u64) < needed as u64 {
                out.push(item);
                needed -= 1;
            }
            remaining -= 1;
        }
        out
    }

    /// A uniformly chosen element, or `None` for an empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.bounded_u64(slice.len() as u64) as usize])
        }
    }

    /// Splits off an independent child generator.
    ///
    /// The child is seeded from a fresh draw of the parent, so repeated
    /// splits yield pairwise independent streams while the parent remains
    /// usable. Deterministic: the same parent state always yields the
    /// same sequence of children.
    #[must_use]
    pub fn split(&mut self) -> Rng {
        Rng::seed_from_u64(self.next_u64())
    }

    /// The `i`-th derived stream of a base seed, without constructing the
    /// parent: `Rng::stream(seed, i)` equals the state a worker `i` should
    /// use so that parallel campaigns are reproducible regardless of how
    /// trials are divided among threads.
    #[must_use]
    pub fn stream(seed: u64, i: u64) -> Rng {
        // Golden-ratio spacing keeps neighbouring stream seeds far apart
        // in SplitMix64's input space.
        Rng::seed_from_u64(seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17))
    }
}

/// Types drawable uniformly from an [`Rng`] via [`Rng::gen`].
pub trait Sample {
    /// Draws one uniform value.
    fn sample(rng: &mut Rng) -> Self;
}

impl Sample for f64 {
    #[inline]
    fn sample(rng: &mut Rng) -> f64 {
        rng.gen_f64()
    }
}

impl Sample for f32 {
    #[inline]
    fn sample(rng: &mut Rng) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Sample for bool {
    #[inline]
    fn sample(rng: &mut Rng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl Sample for $t {
            #[inline]
            fn sample(rng: &mut Rng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Sample for u128 {
    #[inline]
    fn sample(rng: &mut Rng) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one uniform value from the range.
    fn sample_from(self, rng: &mut Rng) -> Self::Output;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.bounded_u64(span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.bounded_u64(span + 1) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_sint {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(rng.bounded_u64(span) as $t)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.bounded_u64(span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_sint!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let v = self.start + <$t as Sample>::sample(rng) * (self.end - self.start);
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                lo + <$t as Sample>::sample(rng) * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Rng::seed_from_u64(0);
        let draws: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(draws.iter().any(|&d| d != 0));
        let mut uniq = draws.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), draws.len());
    }

    #[test]
    fn f64_is_in_unit_interval_with_sane_mean() {
        let mut r = Rng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = r.gen_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / f64::from(n);
        // Uniform mean 0.5, sd of the mean ≈ 0.0009; allow 5 sigma.
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn chi_square_over_256_buckets_is_plausible() {
        // Bucket 2¹⁸ draws by their top byte; chi-square with 255 degrees
        // of freedom has mean 255 and sd ≈ 22.6. Accept within ±8 sigma —
        // loose enough to be stable, tight enough to catch a broken
        // generator (a constant, a counter, or a short cycle all blow up).
        let mut r = Rng::seed_from_u64(123);
        let n = 1 << 18;
        let mut buckets = [0u32; 256];
        for _ in 0..n {
            buckets[(r.next_u64() >> 56) as usize] += 1;
        }
        let expected = f64::from(n) / 256.0;
        let chi2: f64 = buckets
            .iter()
            .map(|&c| {
                let d = f64::from(c) - expected;
                d * d / expected
            })
            .sum();
        assert!((74.0..436.0).contains(&chi2), "chi² {chi2}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = Rng::seed_from_u64(5);
        for _ in 0..2000 {
            let v = r.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(3u64..=17);
            assert!((3..=17).contains(&w));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_every_value_of_a_small_range() {
        let mut r = Rng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[r.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn singleton_inclusive_range_is_constant() {
        let mut r = Rng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(r.gen_range(4u32..=4), 4);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = Rng::seed_from_u64(1);
        let _ = r.gen_range(5u64..5);
    }

    #[test]
    fn bounded_u64_is_unbiased_enough() {
        let mut r = Rng::seed_from_u64(77);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[r.bounded_u64(3) as usize] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements shuffled into identity");
    }

    #[test]
    fn sample_returns_distinct_items_in_order() {
        let mut r = Rng::seed_from_u64(4);
        let items: Vec<u32> = (0..20).collect();
        let picked = r.sample(&items, 5);
        assert_eq!(picked.len(), 5);
        for w in picked.windows(2) {
            assert!(w[0] < w[1], "selection sampling preserves order");
        }
        assert_eq!(r.sample(&items, 99).len(), 20);
        assert!(r.sample(&items, 0).is_empty());
    }

    #[test]
    fn choose_handles_empty_and_singleton() {
        let mut r = Rng::seed_from_u64(4);
        let empty: [u8; 0] = [];
        assert_eq!(r.choose(&empty), None);
        assert_eq!(r.choose(&[42u8]), Some(&42));
    }

    #[test]
    fn split_streams_are_independent_and_deterministic() {
        let mut parent1 = Rng::seed_from_u64(99);
        let mut parent2 = Rng::seed_from_u64(99);
        let mut c1 = parent1.split();
        let mut c2 = parent2.split();
        // Determinism: same parent state, same child.
        for _ in 0..100 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
        // Independence smoke: child and a second child disagree.
        let mut d1 = parent1.split();
        let matches = (0..256).filter(|_| c1.next_u64() == d1.next_u64()).count();
        assert_eq!(matches, 0);
    }

    #[test]
    fn stream_split_correlation_is_negligible() {
        // Neighbouring streams of the same base seed must look unrelated:
        // correlate normalised draws from streams i and i+1.
        for i in 0..4u64 {
            let mut a = Rng::stream(2024, i);
            let mut b = Rng::stream(2024, i + 1);
            let n = 10_000;
            let (mut sa, mut sb, mut sab, mut saa, mut sbb) = (0.0, 0.0, 0.0, 0.0, 0.0);
            for _ in 0..n {
                let x = a.gen_f64();
                let y = b.gen_f64();
                sa += x;
                sb += y;
                sab += x * y;
                saa += x * x;
                sbb += y * y;
            }
            let nf = f64::from(n);
            let cov = sab / nf - (sa / nf) * (sb / nf);
            let var_a = saa / nf - (sa / nf) * (sa / nf);
            let var_b = sbb / nf - (sb / nf) * (sb / nf);
            let corr = cov / (var_a * var_b).sqrt();
            assert!(corr.abs() < 0.05, "stream {i}: corr {corr}");
        }
    }

    #[test]
    fn stream_is_stable_across_calls() {
        let mut a = Rng::stream(7, 3);
        let mut b = Rng::stream(7, 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = Rng::stream(7, 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from the public-domain
        // SplitMix64 C implementation.
        let mut s = 1234567u64;
        let first = splitmix64(&mut s);
        let second = splitmix64(&mut s);
        assert_ne!(first, second);
        let mut s2 = 1234567u64;
        assert_eq!(splitmix64(&mut s2), first);
    }
}
