//! A minimal JSON value, emitter and parser.
//!
//! Replaces the `serde` derive machinery with an explicit builder API:
//! report types implement [`ToJson`] by assembling a [`Json`] value, which
//! serialises with correct string escaping and round-trips through
//! [`Json::parse`]. No derives, no monomorphisation blow-up, no external
//! dependency — the emitter exists so experiment artefacts
//! (`BENCH_*.json`, campaign reports) are machine-readable.
//!
//! Numbers are `f64` (JSON's native model); integers up to 2⁵³ round-trip
//! exactly, which covers every counter in this workspace.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (emitted shortest-exact via Rust's `f64` Display).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys are sorted (BTreeMap) so emission is canonical.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// An empty object, for builder-style assembly with [`Json::set`].
    #[must_use]
    pub fn object() -> Json {
        Json::Obj(BTreeMap::new())
    }

    /// An array from anything iterable over `Into<Json>`.
    pub fn array<T: Into<Json>>(items: impl IntoIterator<Item = T>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }

    /// Inserts `key` into an object (builder style). Panics when `self`
    /// is not an object — that is a programming error, not data.
    #[must_use]
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(map) => {
                map.insert(key.to_string(), value.into());
            }
            other => panic!("Json::set on non-object {other:?}"),
        }
        self
    }

    /// Member lookup on objects; `None` elsewhere.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as `f64`, if numeric.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `&str`, if a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice, if an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialises to a compact JSON string.
    #[must_use]
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialises with 2-space indentation (for committed artefacts whose
    /// diffs should be reviewable).
    #[must_use]
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    if *n == n.trunc() && n.abs() < 9.0e15 {
                        let _ = fmt::Write::write_fmt(out, format_args!("{}", *n as i64));
                    } else {
                        let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
                    }
                } else {
                    // JSON has no NaN/Inf; null is the least-bad encoding.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                if !map.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (strict enough for round-tripping our own
    /// emitter and reading hand-written configs).
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------- conversions

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

macro_rules! impl_from_num {
    ($($t:ty),*) => {$(
        impl From<$t> for Json {
            #[allow(clippy::cast_precision_loss, clippy::cast_lossless)]
            fn from(n: $t) -> Json {
                Json::Num(n as f64)
            }
        }
    )*};
}
impl_from_num!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::array(v)
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }
}

/// Types that render themselves as a [`Json`] value.
pub trait ToJson {
    /// The JSON representation.
    fn to_json(&self) -> Json;
}

impl<T: ToJson> From<&T> for Json {
    fn from(t: &T) -> Json {
        t.to_json()
    }
}

// ------------------------------------------------------------------ parser

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                map.insert(key, parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len() && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        // Surrogate pairs are not emitted by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so valid).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assembles_nested_objects() {
        let j = Json::object()
            .set("name", "e1")
            .set("trials", 3000u64)
            .set("ok", true)
            .set("nested", Json::object().set("p95_ns", 123.5))
            .set("tags", Json::array(["a", "b"]));
        assert_eq!(j.get("name").and_then(Json::as_str), Some("e1"));
        assert_eq!(j.get("trials").and_then(Json::as_f64), Some(3000.0));
        assert_eq!(
            j.get("nested").and_then(|n| n.get("p95_ns")).and_then(Json::as_f64),
            Some(123.5)
        );
    }

    #[test]
    fn compact_emission_is_canonical() {
        let j = Json::object().set("b", 1u32).set("a", Json::Null);
        // BTreeMap keys sort: a before b.
        assert_eq!(j.to_string_compact(), r#"{"a":null,"b":1}"#);
    }

    #[test]
    fn integers_emit_without_decimal_point() {
        assert_eq!(Json::from(42u64).to_string_compact(), "42");
        assert_eq!(Json::from(-3i64).to_string_compact(), "-3");
        assert_eq!(Json::from(0.5f64).to_string_compact(), "0.5");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string_compact(), "null");
    }

    #[test]
    fn escaping_round_trips() {
        let nasty = "quote\" backslash\\ newline\n tab\t ctrl\u{01} unicode\u{2603}";
        let j = Json::object().set(nasty, nasty);
        let text = j.to_string_compact();
        let back = Json::parse(&text).expect("parses");
        assert_eq!(back, j);
        assert_eq!(back.get(nasty).and_then(Json::as_str), Some(nasty));
    }

    #[test]
    fn pretty_and_compact_parse_identically() {
        let j = Json::object()
            .set("rows", Json::array([1u32, 2, 3]))
            .set("label", "x\ny")
            .set("empty_arr", Json::Arr(vec![]))
            .set("empty_obj", Json::object());
        let compact = Json::parse(&j.to_string_compact()).unwrap();
        let pretty = Json::parse(&j.to_string_pretty()).unwrap();
        assert_eq!(compact, pretty);
        assert_eq!(compact, j);
    }

    #[test]
    fn parses_plain_documents() {
        let j = Json::parse(r#" {"a": [1, 2.5, -3e2], "b": {"c": null}, "d": false} "#).unwrap();
        assert_eq!(
            j.get("a").and_then(Json::as_array).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(j.get("a").unwrap().as_array().unwrap()[2], Json::Num(-300.0));
        assert_eq!(j.get("b").unwrap().get("c"), Some(&Json::Null));
        assert_eq!(j.get("d"), Some(&Json::Bool(false)));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse(r#"{"a": }"#).is_err());
        assert!(Json::parse("[1, 2,,]").is_err());
        assert!(Json::parse("123 456").is_err());
        assert!(Json::parse(r#""unterminated"#).is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn from_conversions_cover_common_types() {
        assert_eq!(Json::from(Some(1u8)).to_string_compact(), "1");
        assert_eq!(Json::from(None::<u8>).to_string_compact(), "null");
        assert_eq!(
            Json::from(vec![1u8, 2]).to_string_compact(),
            "[1,2]"
        );
        assert_eq!(Json::from("s".to_string()).to_string_compact(), r#""s""#);
    }

    #[test]
    fn to_json_trait_feeds_builder() {
        struct P(u32);
        impl ToJson for P {
            fn to_json(&self) -> Json {
                Json::object().set("v", self.0)
            }
        }
        let j = Json::object().set("p", &P(7));
        assert_eq!(j.to_string_compact(), r#"{"p":{"v":7}}"#);
    }
}
