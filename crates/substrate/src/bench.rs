//! A micro-benchmark harness with JSON artefact output.
//!
//! Replaces `criterion` for the workspace's timing benches. Each
//! benchmark warms up, then runs a fixed number of timed iterations and
//! reports min / mean / median / p95 / max wall-clock nanoseconds per
//! iteration. A whole suite serialises to `BENCH_<suite>.json` via the
//! in-tree [`crate::json`] emitter, starting the benchmark trajectory the
//! ROADMAP asks for — every future perf PR appends a comparable artefact.
//!
//! ```no_run
//! use fcm_substrate::bench::Suite;
//! let mut suite = Suite::new("substrate");
//! suite.bench("shuffle_1k", || {
//!     let mut rng = fcm_substrate::rng::Rng::seed_from_u64(7);
//!     let mut v: Vec<u32> = (0..1000).collect();
//!     rng.shuffle(&mut v);
//!     v
//! });
//! suite.finish(); // prints a table, writes BENCH_substrate.json
//! ```

use std::hint::black_box;
use std::time::Instant;

use crate::json::{Json, ToJson};
use crate::telemetry::Telemetry;

/// Per-benchmark timing statistics, in nanoseconds per iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct Stats {
    /// Benchmark id (`group/name` style).
    pub name: String,
    /// Timed iterations measured.
    pub iters: u32,
    /// Minimum observed.
    pub min_ns: f64,
    /// Arithmetic mean.
    pub mean_ns: f64,
    /// Median (p50).
    pub median_ns: f64,
    /// 95th percentile.
    pub p95_ns: f64,
    /// Maximum observed.
    pub max_ns: f64,
}

impl Stats {
    fn from_samples(name: String, mut samples: Vec<f64>) -> Stats {
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let n = samples.len();
        let pct = |q: f64| samples[(((n - 1) as f64) * q).round() as usize];
        Stats {
            name,
            iters: n as u32,
            min_ns: samples[0],
            mean_ns: samples.iter().sum::<f64>() / n as f64,
            median_ns: pct(0.50),
            p95_ns: pct(0.95),
            max_ns: samples[n - 1],
        }
    }
}

impl ToJson for Stats {
    fn to_json(&self) -> Json {
        Json::object()
            .set("name", self.name.as_str())
            .set("iters", self.iters)
            .set("min_ns", self.min_ns)
            .set("mean_ns", self.mean_ns)
            .set("median_ns", self.median_ns)
            .set("p95_ns", self.p95_ns)
            .set("max_ns", self.max_ns)
    }
}

/// A benchmark suite: collects [`Stats`] and emits one JSON artefact.
#[derive(Debug)]
pub struct Suite {
    name: String,
    warmup_iters: u32,
    sample_size: u32,
    results: Vec<Stats>,
    telemetry: Option<Json>,
    quiet: bool,
}

impl Suite {
    /// Creates a suite named `name` (artefact `BENCH_<name>.json`).
    ///
    /// Defaults: 3 warmup iterations, 30 timed samples. Honour
    /// `FCM_BENCH_QUICK=1` by cutting samples to 10 for CI smoke runs.
    #[must_use]
    pub fn new(name: &str) -> Suite {
        let quick = std::env::var("FCM_BENCH_QUICK").is_ok_and(|v| v == "1");
        Suite {
            name: name.to_string(),
            warmup_iters: 3,
            sample_size: if quick { 10 } else { 30 },
            results: Vec::new(),
            telemetry: None,
            quiet: false,
        }
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: u32) -> &mut Suite {
        self.sample_size = n.max(1);
        self
    }

    /// Sets warmup iterations per benchmark.
    pub fn warmup(&mut self, n: u32) -> &mut Suite {
        self.warmup_iters = n;
        self
    }

    /// Suppresses per-benchmark stdout (JSON artefact still written).
    pub fn quiet(&mut self) -> &mut Suite {
        self.quiet = true;
        self
    }

    /// Times `f`, recording one sample per call. The return value is
    /// passed through [`black_box`] so the work is not optimised away.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        for _ in 0..self.warmup_iters {
            black_box(f());
        }
        let mut samples = Vec::with_capacity(self.sample_size as usize);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            samples.push(t0.elapsed().as_nanos() as f64);
        }
        let stats = Stats::from_samples(name.to_string(), samples);
        if !self.quiet {
            println!(
                "{:<44} median {:>12}  p95 {:>12}  ({} iters)",
                stats.name,
                fmt_ns(stats.median_ns),
                fmt_ns(stats.p95_ns),
                stats.iters
            );
        }
        self.results.push(stats);
    }

    /// The collected statistics so far.
    #[must_use]
    pub fn results(&self) -> &[Stats] {
        &self.results
    }

    /// Snapshots `telemetry` into the artefact (a `"telemetry"` key
    /// holding the per-stage span/counter array). Call it after the
    /// benches have run; a later call replaces the earlier snapshot.
    pub fn embed_telemetry(&mut self, telemetry: &Telemetry) -> &mut Suite {
        self.telemetry = Some(telemetry.to_json());
        self
    }

    /// The suite as a JSON artefact value.
    #[must_use]
    pub fn to_artifact(&self) -> Json {
        let artifact = Json::object()
            .set("suite", self.name.as_str())
            .set("schema", "fcm-bench/v1")
            .set(
                "benchmarks",
                Json::Arr(self.results.iter().map(ToJson::to_json).collect()),
            );
        match &self.telemetry {
            Some(t) => artifact.set("telemetry", t.clone()),
            None => artifact,
        }
    }

    /// Writes `BENCH_<suite>.json` into `dir` and returns the path.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_artifact(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        let path = dir.join(format!("BENCH_{}.json", self.name));
        let mut text = self.to_artifact().to_string_pretty();
        text.push('\n');
        std::fs::write(&path, text)?;
        Ok(path)
    }

    /// Prints the summary and writes the artefact next to the current
    /// working directory (or `$FCM_BENCH_DIR` when set). Panics on I/O
    /// failure — a bench run that cannot record its artefact is failed.
    pub fn finish(self) {
        let dir = std::env::var("FCM_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
        let path = self
            .write_artifact(std::path::Path::new(&dir))
            .expect("write bench artifact");
        if !self.quiet {
            println!("wrote {}", path.display());
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn stats_are_ordered_and_sane() {
        let mut suite = Suite::new("test_stats");
        suite.quiet().sample_size(20).warmup(1);
        suite.bench("spin", || {
            let mut x = 0u64;
            for i in 0..1000 {
                x = x.wrapping_add(i);
            }
            x
        });
        let s = &suite.results()[0];
        assert_eq!(s.iters, 20);
        assert!(s.min_ns > 0.0);
        assert!(s.min_ns <= s.median_ns);
        assert!(s.median_ns <= s.p95_ns);
        assert!(s.p95_ns <= s.max_ns);
        assert!(s.mean_ns >= s.min_ns && s.mean_ns <= s.max_ns);
    }

    #[test]
    fn artifact_round_trips_through_the_parser() {
        let mut suite = Suite::new("test_artifact");
        suite.quiet().sample_size(3).warmup(0);
        suite.bench("noop", || 1u8);
        suite.bench("noop2", || 2u8);
        let j = suite.to_artifact();
        let back = Json::parse(&j.to_string_pretty()).expect("parses");
        assert_eq!(back, j);
        assert_eq!(back.get("suite").and_then(Json::as_str), Some("test_artifact"));
        let benches = back.get("benchmarks").and_then(Json::as_array).unwrap();
        assert_eq!(benches.len(), 2);
        assert_eq!(
            benches[0].get("name").and_then(Json::as_str),
            Some("noop")
        );
        assert!(benches[0].get("median_ns").and_then(Json::as_f64).is_some());
    }

    #[test]
    fn artifact_embeds_a_telemetry_snapshot() {
        use crate::telemetry::Telemetry;
        let mut suite = Suite::new("test_tel");
        suite.quiet().sample_size(2).warmup(0);
        suite.bench("noop", || ());
        assert!(suite.to_artifact().get("telemetry").is_none());
        let t = Telemetry::new();
        t.time("stage_x", || ());
        t.add("stage_x", 9);
        suite.embed_telemetry(&t);
        let j = suite.to_artifact();
        let stages = j.get("telemetry").and_then(Json::as_array).unwrap();
        assert_eq!(stages[0].get("stage").and_then(Json::as_str), Some("stage_x"));
        assert_eq!(stages[0].get("count").and_then(Json::as_f64), Some(9.0));
        // Still round-trips through the parser.
        assert_eq!(Json::parse(&j.to_string_pretty()).unwrap(), j);
    }

    #[test]
    fn write_artifact_emits_a_parseable_file() {
        let dir = std::env::temp_dir().join("fcm_substrate_bench_test");
        std::fs::create_dir_all(&dir).unwrap();
        let mut suite = Suite::new("unit");
        suite.quiet().sample_size(2).warmup(0);
        suite.bench("noop", || ());
        let path = suite.write_artifact(&dir).expect("writes");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(Json::parse(&text).is_ok());
        assert!(path.file_name().unwrap().to_str().unwrap() == "BENCH_unit.json");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn percentiles_of_known_samples() {
        let s = Stats::from_samples(
            "known".into(),
            (1..=100).map(f64::from).collect(),
        );
        assert_eq!(s.min_ns, 1.0);
        assert_eq!(s.max_ns, 100.0);
        assert_eq!(s.median_ns, 51.0); // nearest-rank at (n-1)*0.5 rounded
        assert_eq!(s.p95_ns, 95.0);
        assert!((s.mean_ns - 50.5).abs() < 1e-9);
    }
}
