//! A small seeded property-test harness.
//!
//! Replaces `proptest` for this workspace's suites. A property is a pair
//! of closures: a *generator* `Fn(&mut Rng, usize) -> T` that builds a
//! random case at a given size budget, and a *predicate*
//! `Fn(&T) -> Result<(), String>` (use [`prop_assert!`] /
//! [`prop_assert_eq!`] inside it).
//!
//! The runner draws `cases` cases with sizes ramping from small to
//! [`Config::max_size`], each from its own deterministically derived
//! seed. On failure it **shrinks by bisection on the size budget**:
//! regenerating the same case seed at smaller sizes, binary-searching the
//! smallest size that still fails, then reports a replay command.
//!
//! Replay a failure exactly with environment variables:
//!
//! ```text
//! FCM_PROP_SEED=<seed> FCM_PROP_SIZE=<size> cargo test -q <test_name>
//! ```
//!
//! `FCM_PROP_SEED` pins the per-case seed (the runner then executes just
//! that one case); `FCM_PROP_SIZE` optionally pins the size budget.

use crate::rng::Rng;

/// Runner configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of random cases to run.
    pub cases: u32,
    /// Largest size budget passed to the generator (sizes ramp up to
    /// this across the run).
    pub max_size: usize,
    /// Base seed; per-case seeds derive from it. Fixed by default so CI
    /// is reproducible; override per-run with `FCM_PROP_SEED`.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 64,
            max_size: 100,
            seed: 0x5eed_cafe_f00d_0001,
        }
    }
}

impl Config {
    /// A config running `cases` cases with defaults otherwise.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }
}

/// The outcome of one case.
pub type CaseResult = Result<(), String>;

/// Runs the property `prop` over `cfg.cases` generated cases.
///
/// Panics (failing the enclosing `#[test]`) on the first failing case,
/// after shrinking, with a replay recipe in the message. The generated
/// value's `Debug` form is included for both the original and the
/// shrunken failure.
pub fn check<T: std::fmt::Debug>(
    name: &str,
    cfg: Config,
    gen: impl Fn(&mut Rng, usize) -> T,
    prop: impl Fn(&T) -> CaseResult,
) {
    // Replay mode: a pinned seed runs exactly one case, no shrinking of
    // the seed space, sizes still shrinkable unless pinned too.
    if let Ok(seed_str) = std::env::var("FCM_PROP_SEED") {
        let seed: u64 = seed_str
            .parse()
            .unwrap_or_else(|_| panic!("FCM_PROP_SEED must be a u64, got {seed_str:?}"));
        let size: usize = std::env::var("FCM_PROP_SIZE")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(cfg.max_size);
        let value = gen(&mut Rng::seed_from_u64(seed), size);
        if let Err(msg) = prop(&value) {
            panic!(
                "property '{name}' failed on replay \
                 (FCM_PROP_SEED={seed} FCM_PROP_SIZE={size}):\n  {msg}\n  case: {value:?}"
            );
        }
        return;
    }

    let mut seed_source = Rng::seed_from_u64(cfg.seed ^ hash_name(name));
    for case in 0..cfg.cases {
        // Ramp sizes: early cases small (fast, catch trivial bugs with
        // trivial counterexamples), later cases up to max_size.
        let size = ramp_size(case, cfg.cases, cfg.max_size);
        let case_seed = seed_source.next_u64();
        let value = gen(&mut Rng::seed_from_u64(case_seed), size);
        if let Err(msg) = prop(&value) {
            let (min_size, min_value, min_msg) =
                shrink_by_bisection(case_seed, size, &gen, &prop, value, msg);
            panic!(
                "property '{name}' failed (case {case}/{total}).\n\
                 minimal failing size {min_size} (original size {size}):\n  {min_msg}\n  \
                 case: {min_value:?}\n\
                 replay: FCM_PROP_SEED={case_seed} FCM_PROP_SIZE={min_size}",
                total = cfg.cases,
            );
        }
    }
}

/// Convenience wrapper: run with `Config::with_cases(cases)`.
pub fn check_cases<T: std::fmt::Debug>(
    name: &str,
    cases: u32,
    gen: impl Fn(&mut Rng, usize) -> T,
    prop: impl Fn(&T) -> CaseResult,
) {
    check(name, Config::with_cases(cases), gen, prop);
}

/// Size for `case` of `total`: linear ramp from 1/8 of max to max, with
/// the first case pinned tiny.
fn ramp_size(case: u32, total: u32, max_size: usize) -> usize {
    if case == 0 {
        return (max_size / 8).max(1);
    }
    let frac = f64::from(case + 1) / f64::from(total.max(1));
    ((max_size as f64 * frac).ceil() as usize).clamp(1, max_size)
}

/// Bisects the size budget down to the smallest size (same case seed)
/// that still fails, returning `(size, value, message)` of the minimal
/// failure found.
fn shrink_by_bisection<T: std::fmt::Debug>(
    case_seed: u64,
    failing_size: usize,
    gen: &impl Fn(&mut Rng, usize) -> T,
    prop: &impl Fn(&T) -> CaseResult,
    failing_value: T,
    failing_msg: String,
) -> (usize, T, String) {
    let mut best = (failing_size, failing_value, failing_msg);
    // Invariant: best.0 fails. Search sizes in [lo, best.0).
    let mut lo = 1usize;
    while lo < best.0 {
        let mid = usize::midpoint(lo, best.0);
        let candidate = gen(&mut Rng::seed_from_u64(case_seed), mid);
        match prop(&candidate) {
            Err(msg) => {
                best = (mid, candidate, msg);
                // Keep searching below; lo unchanged.
                if mid == lo {
                    break;
                }
            }
            Ok(()) => {
                // mid passes: smallest failure is above mid.
                lo = mid + 1;
            }
        }
    }
    best
}

fn hash_name(name: &str) -> u64 {
    // FNV-1a, so each property explores a distinct seed sequence.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Asserts a condition inside a property closure, returning `Err` with
/// the condition (and optional formatted context) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({})",
                stringify!($cond),
                format!($($fmt)+)
            ));
        }
    };
}

/// Asserts equality inside a property closure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n  right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: {} == {} ({})\n  left: {:?}\n  right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                l,
                r
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u32;
        let counter = std::cell::Cell::new(0u32);
        check(
            "sum_commutes",
            Config::with_cases(32),
            |rng, size| {
                counter.set(counter.get() + 1);
                (rng.gen_range(0u64..size as u64 + 1), rng.gen::<u64>() % 100)
            },
            |&(a, b)| {
                prop_assert_eq!(a + b, b + a);
                Ok(())
            },
        );
        count += counter.get();
        assert_eq!(count, 32);
    }

    #[test]
    fn failing_property_panics_with_replay_recipe() {
        let result = std::panic::catch_unwind(|| {
            check(
                "always_small",
                Config::with_cases(64),
                |rng, size| rng.gen_range(0usize..=size),
                |&v| {
                    prop_assert!(v < 5, "v = {}", v);
                    Ok(())
                },
            );
        });
        let msg = *result.expect_err("must fail").downcast::<String>().unwrap();
        assert!(msg.contains("FCM_PROP_SEED="), "no replay recipe: {msg}");
        assert!(msg.contains("minimal failing size"), "{msg}");
    }

    #[test]
    fn known_shrink_finds_the_minimal_size() {
        // Generator: a vec of length `size`. Property: len < 10. The
        // minimal failing size is exactly 10; bisection must find it.
        let result = std::panic::catch_unwind(|| {
            check(
                "vec_shorter_than_10",
                Config {
                    cases: 64,
                    max_size: 100,
                    seed: 1,
                },
                |rng, size| (0..size).map(|_| rng.gen::<u8>()).collect::<Vec<u8>>(),
                |v| {
                    prop_assert!(v.len() < 10);
                    Ok(())
                },
            );
        });
        let msg = *result.expect_err("must fail").downcast::<String>().unwrap();
        assert!(
            msg.contains("minimal failing size 10"),
            "expected shrink to 10, got: {msg}"
        );
        assert!(msg.contains("FCM_PROP_SIZE=10"), "{msg}");
    }

    #[test]
    fn shrinking_is_deterministic() {
        // Two identical failing runs report identical messages.
        let run = || {
            std::panic::catch_unwind(|| {
                check(
                    "det",
                    Config::with_cases(16),
                    |rng, size| rng.gen_range(0usize..=size),
                    |&v| {
                        prop_assert!(v < 3);
                        Ok(())
                    },
                );
            })
            .expect_err("fails")
            .downcast::<String>()
            .unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_property_names_draw_different_cases() {
        let first = std::cell::Cell::new(0u64);
        check(
            "name_a",
            Config::with_cases(1),
            |rng, _| rng.next_u64(),
            |&v| {
                first.set(v);
                Ok(())
            },
        );
        let second = std::cell::Cell::new(0u64);
        check(
            "name_b",
            Config::with_cases(1),
            |rng, _| rng.next_u64(),
            |&v| {
                second.set(v);
                Ok(())
            },
        );
        assert_ne!(first.get(), second.get());
    }

    #[test]
    fn prop_assert_eq_reports_both_sides() {
        let r: CaseResult = (|| {
            prop_assert_eq!(1 + 1, 3, "context {}", "here");
            Ok(())
        })();
        let msg = r.expect_err("fails");
        assert!(msg.contains("left: 2"), "{msg}");
        assert!(msg.contains("right: 3"), "{msg}");
        assert!(msg.contains("context here"), "{msg}");
    }
}
