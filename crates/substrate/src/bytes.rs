//! A minimal immutable byte-string, replacing the `bytes` crate.
//!
//! The simulator uses payloads as opaque markers (clean/corrupt data in a
//! medium), so all that is needed is cheap cloning, equality, and display
//! — not the full rope machinery of the external crate. Static payloads
//! clone without allocating; owned payloads share an `Arc`.

use std::fmt;
use std::sync::Arc;

/// An immutable, cheaply cloneable byte string.
#[derive(Clone)]
pub enum Bytes {
    /// Borrowed from static storage (zero-cost clone).
    Static(&'static [u8]),
    /// Heap-allocated, reference-counted.
    Owned(Arc<[u8]>),
}

impl Bytes {
    /// Wraps a static byte slice (usable in `const` contexts).
    #[must_use]
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::Static(bytes)
    }

    /// Copies a slice into an owned payload.
    #[must_use]
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Bytes::Owned(Arc::from(bytes))
    }

    /// The payload as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        match self {
            Bytes::Static(s) => s,
            Bytes::Owned(o) => o,
        }
    }

    /// Payload length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the payload is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"{}\"", String::from_utf8_lossy(self.as_slice()))
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::Static(s.as_bytes())
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::Owned(Arc::from(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MARKER: Bytes = Bytes::from_static(b"CLEAN");

    #[test]
    fn static_and_owned_compare_by_content() {
        let owned = Bytes::copy_from_slice(b"CLEAN");
        assert_eq!(MARKER, owned);
        assert_ne!(MARKER, Bytes::from_static(b"CORRUPT"));
        assert_eq!(MARKER.len(), 5);
        assert!(!MARKER.is_empty());
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let a = Bytes::from("payload");
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(&*a, b"payload");
    }

    #[test]
    fn debug_renders_contents() {
        assert_eq!(format!("{MARKER:?}"), "b\"CLEAN\"");
    }

    #[test]
    fn vec_roundtrip() {
        let v = vec![1u8, 2, 3];
        let b = Bytes::from(v.clone());
        assert_eq!(b.as_slice(), &v[..]);
    }
}
