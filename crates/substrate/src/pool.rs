//! Scoped data-parallel helpers over `std::thread::scope`.
//!
//! The workspace's parallel workloads (fault-injection campaigns,
//! Monte-Carlo reliability) are embarrassingly parallel loops whose
//! *results must not depend on the thread count*. These helpers give
//! them a fixed contract:
//!
//! * [`par_map`] — chunked work-stealing map that returns results in
//!   input order;
//! * [`par_try_map`] — the fallible variant: first error in input order;
//! * [`par_for`] — the side-effect variant;
//! * [`par_reduce`] — map + associative fold, in input order;
//! * [`Mutex`] — a `std::sync::Mutex` with the poison-recovering
//!   `lock()` / `into_inner()` surface the code previously got from
//!   `parking_lot`.
//!
//! Scheduling is self-stealing: workers repeatedly claim the next unclaimed
//! chunk from a shared atomic cursor, so a slow chunk never idles the other
//! workers. Worker jobs run under `catch_unwind`: a panicking closure
//! cancels the remaining chunks, and exactly one panic (the one from the
//! lowest-indexed panicking chunk observed) is re-raised at the caller
//! after the scope joins — the pool itself stays usable, so a subsequent
//! `par_map` succeeds.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Default worker count: available parallelism capped at 8 (the workloads
/// here saturate memory bandwidth well before core count on big hosts).
#[must_use]
pub fn worker_count() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get().min(8))
}

/// A hook receiving `(counter name, worker index, delta)` for the pool's
/// per-worker counters. Observability layers above the substrate install
/// one (see [`set_counter_hook`]); the substrate itself depends on
/// nothing, so the hook is how pool counters reach a metrics registry
/// without inverting the crate layering.
pub type PoolCounterHook = fn(name: &'static str, worker: usize, n: u64);

static HOOK_ON: AtomicBool = AtomicBool::new(false);
static HOOK: Mutex<Option<PoolCounterHook>> = Mutex::new(None);

/// Installs (or removes, with `None`) the process-wide pool counter
/// hook. While no hook is installed the per-worker accounting costs one
/// relaxed atomic load per `par_map` worker.
pub fn set_counter_hook(hook: Option<PoolCounterHook>) {
    *HOOK.lock() = hook;
    HOOK_ON.store(hook.is_some(), Ordering::Release);
}

/// Emits one per-worker counter through the installed hook, if any.
fn emit_counter(name: &'static str, worker: usize, n: u64) {
    if HOOK_ON.load(Ordering::Acquire) {
        if let Some(hook) = *HOOK.lock() {
            hook(name, worker, n);
        }
    }
}

/// A mutual-exclusion lock with `parking_lot`'s ergonomic surface over
/// `std::sync::Mutex`: `lock()` returns the guard directly. A poisoned
/// lock (a worker panicked while holding it) is recovered rather than
/// re-panicking — the data here is always per-chunk results whose
/// integrity does not depend on the panicking critical section, and the
/// original panic is surfaced separately by the pool.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking until available; poison is recovered.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|poison| poison.into_inner())
    }

    /// Consumes the lock, returning the inner value; poison is
    /// recovered.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

/// Applies `f` to every item in parallel, returning results in input
/// order. Uses up to [`worker_count`] threads; short inputs are mapped
/// inline with no thread overhead.
///
/// # Panics
///
/// When `f` panics, the remaining chunks are cancelled and exactly one
/// panic (from the lowest-indexed panicking chunk observed) is re-raised
/// here after all workers have joined. The pool is not poisoned: a later
/// `par_map` on the same inputs works normally.
pub fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    par_map_threads(items, worker_count(), f)
}

/// [`par_map`] with an explicit worker-thread cap (clamped to ≥ 1).
///
/// Results are returned in input order whatever the cap, so the output
/// is byte-for-byte independent of `threads` — the cap only changes how
/// many workers race over the chunk cursor. This is the lever the sweep
/// determinism checks use: a run with `threads = 1` must equal a run
/// with `threads = N`.
///
/// # Panics
///
/// Same contract as [`par_map`].
pub fn par_map_threads<T: Sync, R: Send>(
    items: &[T],
    threads: usize,
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    let threads = threads.max(1);
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    // Chunks of at least 1, sized so each worker sees several chunks —
    // coarse enough to amortise the atomic claim, fine enough to steal.
    let chunk = (items.len() / (threads * 4)).max(1);
    let n_chunks = items.len().div_ceil(chunk);
    let cursor = AtomicUsize::new(0);
    let cancelled = AtomicBool::new(false);
    let collected: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::with_capacity(n_chunks));
    // First panic by chunk index; later chunks may still complete or
    // panic while cancellation propagates, so keep the smallest.
    let panicked: Mutex<Option<(usize, Box<dyn Any + Send>)>> = Mutex::new(None);
    std::thread::scope(|s| {
        // Shadow the shared state with references so the `move` below
        // captures only those references plus each worker's own index.
        let (f, cursor, cancelled, collected, panicked) =
            (&f, &cursor, &cancelled, &collected, &panicked);
        for worker in 0..threads.min(n_chunks) {
            s.spawn(move || {
                // Per-worker accounting, reported once at park time so
                // the hot claim loop pays nothing for it: items
                // executed, chunks stolen from the shared cursor beyond
                // the first claim, and the final park itself.
                let mut executed: u64 = 0;
                let mut claimed: u64 = 0;
                loop {
                    if cancelled.load(Ordering::Relaxed) {
                        break;
                    }
                    let c = cursor.fetch_add(1, Ordering::Relaxed);
                    if c >= n_chunks {
                        break;
                    }
                    claimed += 1;
                    let lo = c * chunk;
                    let hi = (lo + chunk).min(items.len());
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        items[lo..hi].iter().map(&f).collect::<Vec<R>>()
                    }));
                    match outcome {
                        Ok(out) => {
                            executed += (hi - lo) as u64;
                            collected.lock().push((c, out));
                        }
                        Err(payload) => {
                            cancelled.store(true, Ordering::Relaxed);
                            let mut slot = panicked.lock();
                            if slot.as_ref().is_none_or(|(pc, _)| c < *pc) {
                                *slot = Some((c, payload));
                            }
                            break;
                        }
                    }
                }
                emit_counter("pool.execute", worker, executed);
                emit_counter("pool.steal", worker, claimed.saturating_sub(1));
                emit_counter("pool.park", worker, 1);
            });
        }
    });
    if let Some((_, payload)) = panicked.into_inner() {
        resume_unwind(payload);
    }
    let mut parts = collected.into_inner();
    parts.sort_unstable_by_key(|&(c, _)| c);
    let mut result = Vec::with_capacity(items.len());
    for (_, mut part) in parts {
        result.append(&mut part);
    }
    result
}

/// The fallible variant of [`par_map`]: maps every item (no early
/// cancellation, so the outcome does not depend on thread timing or
/// worker count) and returns either all results in input order or the
/// error of the **first failing item in input order** — campaign code
/// can record it and continue with the rest of a sweep rather than
/// aborting wholesale.
///
/// # Errors
///
/// Returns the error produced by the lowest-indexed failing item.
pub fn par_try_map<T: Sync, R: Send, E: Send>(
    items: &[T],
    f: impl Fn(&T) -> Result<R, E> + Sync,
) -> Result<Vec<R>, E> {
    let mut out = Vec::with_capacity(items.len());
    for result in par_map(items, f) {
        out.push(result?);
    }
    Ok(out)
}

/// Runs `f` over every index `0..n` in parallel (chunked, work-stealing).
/// The closure receives the index; use it for side effects on `Sync`
/// state (e.g. accumulating into a [`Mutex`]).
pub fn par_for(n: usize, f: impl Fn(usize) + Sync) {
    let indices: Vec<usize> = (0..n).collect();
    par_map(&indices, |&i| f(i));
}

/// Parallel map followed by an in-order fold with `combine`.
///
/// `combine` is applied left-to-right over per-item results in input
/// order, so non-commutative (but associative) folds are deterministic.
pub fn par_reduce<T: Sync, R: Send>(
    items: &[T],
    map: impl Fn(&T) -> R + Sync,
    init: R,
    combine: impl Fn(R, R) -> R,
) -> R {
    par_map(items, map).into_iter().fold(init, combine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let doubled = par_map(&items, |&x| x * 2);
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_threads_output_is_independent_of_the_cap() {
        let items: Vec<u64> = (0..777).collect();
        let reference = par_map_threads(&items, 1, |&x| x.wrapping_mul(x) ^ 0xD6E8);
        for threads in [2, 3, 8, 64] {
            let out = par_map_threads(&items, threads, |&x| x.wrapping_mul(x) ^ 0xD6E8);
            assert_eq!(out, reference, "threads={threads}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_singleton() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn par_map_with_uneven_work_still_ordered() {
        // Later items finish first; order must still hold.
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&items, |&x| {
            if x < 8 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    fn par_for_visits_every_index_once() {
        let hits: Vec<AtomicU64> = (0..500).map(|_| AtomicU64::new(0)).collect();
        par_for(hits.len(), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_reduce_is_deterministic_in_order() {
        // String concatenation is associative but not commutative: any
        // out-of-order combine would scramble it.
        let items: Vec<usize> = (0..200).collect();
        let s = par_reduce(
            &items,
            |&i| format!("{i},"),
            String::new(),
            |mut a, b| {
                a.push_str(&b);
                a
            },
        );
        let expected: String = (0..200).map(|i| format!("{i},")).collect();
        assert_eq!(s, expected);
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let result = std::panic::catch_unwind(|| {
            let items: Vec<u32> = (0..100).collect();
            par_map(&items, |&x| {
                assert!(x != 57, "injected failure");
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn pool_survives_a_panicking_job() {
        let items: Vec<u32> = (0..200).collect();
        // One panicking closure must propagate exactly one panic…
        let result = std::panic::catch_unwind(|| {
            par_map(&items, |&x| {
                assert!(x != 123, "injected failure");
                x
            })
        });
        let payload = result.expect_err("the panic must reach the caller");
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("injected failure"), "payload: {msg}");
        // …and the pool must not be poisoned for the next call.
        let doubled = par_map(&items, |&x| x * 2);
        assert_eq!(doubled, (0..200).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_try_map_collects_or_reports_first_error() {
        let items: Vec<u32> = (0..300).collect();
        let ok: Result<Vec<u32>, String> = par_try_map(&items, |&x| Ok(x + 1));
        assert_eq!(ok.unwrap(), (1..=300).collect::<Vec<_>>());
        // Multiple failures: the error of the smallest failing index
        // wins, regardless of which worker saw it first.
        let err: Result<Vec<u32>, String> = par_try_map(&items, |&x| {
            if x == 250 || x == 17 || x == 140 {
                Err(format!("item {x} failed"))
            } else {
                Ok(x)
            }
        });
        assert_eq!(err.unwrap_err(), "item 17 failed");
    }

    #[test]
    fn par_try_map_handles_empty_and_singleton() {
        let empty: Vec<u32> = vec![];
        let ok: Result<Vec<u32>, ()> = par_try_map(&empty, |&x| Ok(x));
        assert!(ok.unwrap().is_empty());
        let err: Result<Vec<u32>, &str> = par_try_map(&[3u32], |_| Err("nope"));
        assert_eq!(err.unwrap_err(), "nope");
    }

    #[test]
    fn mutex_recovers_from_poison() {
        let m = Mutex::new(41u32);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let _guard = m.lock();
            panic!("poison while holding the lock");
        }));
        assert!(result.is_err());
        // The shim recovers the value instead of propagating poison.
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn mutex_shim_locks_and_unwraps() {
        let m = Mutex::new(0u64);
        par_for(100, |_| {
            *m.lock() += 1;
        });
        assert_eq!(m.into_inner(), 100);
    }

    #[test]
    fn worker_count_is_positive_and_capped() {
        let w = worker_count();
        assert!((1..=8).contains(&w));
    }
}
