//! Deterministic fault injection for named IO sites.
//!
//! De Florio's survey argues fault handling belongs in the application
//! layer as *explicit, testable structure*; the AADL dependability
//! framework makes fault/recovery behaviour a first-class model you can
//! analyze. This module is that idea applied to our own durability
//! path: every IO operation a crash could tear is a **named site**, and
//! a [`FaultPlan`] decides — deterministically, from the plan alone —
//! which site hits fail and how.
//!
//! The plan is pure data (no clocks, no randomness): rule `k` fires on
//! the `n`-th hit that matches its site pattern, so a given (plan,
//! workload) pair always injects the same faults at the same points.
//! That is what lets the crash-point matrix in `fcm-serve` enumerate
//! *every* reachable IO site of a scripted session and simulate a crash
//! at each one.
//!
//! The module decides; it never performs IO itself. Callers thread a
//! [`FaultInjector`] through their IO layer and call
//! [`FaultInjector::hit`] before each gated operation:
//!
//! ```
//! use fcm_substrate::fault::{Fault, FaultInjector, FaultPlan};
//!
//! let plan = FaultPlan::parse("journal.*:eio@0..2").unwrap();
//! let inj = FaultInjector::new(&plan);
//! assert!(matches!(inj.hit("journal.append.write"), Fault::Fail(_)));
//! assert!(matches!(inj.hit("journal.append.flush"), Fault::Fail(_)));
//! assert!(matches!(inj.hit("journal.append.write"), Fault::Pass));
//! assert!(matches!(inj.hit("snapshot.rename"), Fault::Pass));
//! ```
//!
//! A crash-kind injection **latches**: once a `crash` fires, every
//! subsequent hit fails, modelling a dead process whose IO never
//! completes. [`FaultPlan::none`] is the production configuration — the
//! injector's passive path is a single bool load, and a `none` run is
//! byte-identical to a build without the shim.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::pool::Mutex;

/// How a matched site hit fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Generic IO error before any byte is transferred (EIO class).
    Eio,
    /// Out-of-space error before any byte is transferred (ENOSPC class).
    Enospc,
    /// The operation transfers a strict prefix of the data, then fails —
    /// the torn-write case recovery must tolerate.
    ShortWrite,
    /// The data is accepted but the flush/fsync fails, so nothing is
    /// guaranteed durable.
    FailedFsync,
    /// Simulated process death at this site: the operation does not
    /// happen, and every later hit fails too (the latch).
    Crash,
    /// Process death *mid-write*: a strict prefix is transferred, then
    /// the latch engages — the worst torn-state crash.
    CrashTorn,
}

impl FaultKind {
    /// The spec-string token for this kind.
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            FaultKind::Eio => "eio",
            FaultKind::Enospc => "enospc",
            FaultKind::ShortWrite => "short",
            FaultKind::FailedFsync => "fsync",
            FaultKind::Crash => "crash",
            FaultKind::CrashTorn => "crash-torn",
        }
    }

    /// Whether this kind engages the crash latch.
    #[must_use]
    pub fn is_crash(self) -> bool {
        matches!(self, FaultKind::Crash | FaultKind::CrashTorn)
    }

    /// Whether the operation transfers a partial prefix before failing.
    #[must_use]
    pub fn is_torn(self) -> bool {
        matches!(self, FaultKind::ShortWrite | FaultKind::CrashTorn)
    }

    fn parse(token: &str) -> Result<FaultKind, String> {
        Ok(match token {
            "eio" => FaultKind::Eio,
            "enospc" => FaultKind::Enospc,
            "short" => FaultKind::ShortWrite,
            "fsync" => FaultKind::FailedFsync,
            "crash" => FaultKind::Crash,
            "crash-torn" => FaultKind::CrashTorn,
            other => {
                return Err(format!(
                    "unknown fault kind \"{other}\" (expected eio, enospc, short, fsync, crash, crash-torn)"
                ))
            }
        })
    }
}

/// One injection rule: a site pattern, a failure kind, and the window of
/// matching-hit ordinals (per rule, 0-based) on which it fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRule {
    /// Site pattern: exact id, or a prefix ending in `*`
    /// (`journal.*`), or bare `*` for every site.
    pub site: String,
    /// Failure kind injected when the rule fires.
    pub kind: FaultKind,
    /// First matching-hit ordinal that fires (inclusive).
    pub from: u64,
    /// One past the last firing ordinal; `u64::MAX` = open-ended.
    pub to: u64,
}

impl FaultRule {
    fn matches(&self, site: &str) -> bool {
        match self.site.strip_suffix('*') {
            Some(prefix) => site.starts_with(prefix),
            None => site == self.site,
        }
    }
}

/// A deterministic fault schedule: an ordered list of [`FaultRule`]s.
/// The first rule whose site matches *and* whose window covers the
/// current matching-hit ordinal decides the outcome.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// The rules, in priority order.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// The empty plan: every hit passes (production configuration).
    #[must_use]
    pub fn none() -> FaultPlan {
        FaultPlan { rules: Vec::new() }
    }

    /// Whether this plan can never inject anything.
    #[must_use]
    pub fn is_none(&self) -> bool {
        self.rules.is_empty()
    }

    /// A plan that simulates a crash on the `k`-th gated hit overall
    /// (0-based), the crash-point-matrix building block. `torn` selects
    /// [`FaultKind::CrashTorn`] (partial transfer before death).
    #[must_use]
    pub fn crash_at_hit(k: u64, torn: bool) -> FaultPlan {
        FaultPlan {
            rules: vec![FaultRule {
                site: "*".to_string(),
                kind: if torn { FaultKind::CrashTorn } else { FaultKind::Crash },
                from: k,
                to: k.saturating_add(1),
            }],
        }
    }

    /// Parses a plan spec: `;`-separated rules of the form
    /// `site[:kind][@window]` where `kind` defaults to `eio` and
    /// `window` is `N` (one hit), `N..M` (half-open), or `N..` (from N
    /// on); omitted = every matching hit.
    ///
    /// Examples: `journal.*:eio` (all journal writes fail forever),
    /// `journal.*:eio@0..6` (only the first six), `snapshot.rename:crash@0`.
    ///
    /// # Errors
    ///
    /// A malformed rule, kind, or window.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut rules = Vec::new();
        for raw in spec.split(';') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            let (head, window) = match raw.split_once('@') {
                Some((h, w)) => (h, Some(w)),
                None => (raw, None),
            };
            let (site, kind) = match head.rsplit_once(':') {
                Some((s, k)) => (s, FaultKind::parse(k)?),
                None => (head, FaultKind::Eio),
            };
            if site.is_empty() {
                return Err(format!("rule \"{raw}\" has an empty site pattern"));
            }
            let (from, to) = match window {
                None => (0, u64::MAX),
                Some(w) => parse_window(w).map_err(|e| format!("rule \"{raw}\": {e}"))?,
            };
            rules.push(FaultRule {
                site: site.to_string(),
                kind,
                from,
                to,
            });
        }
        Ok(FaultPlan { rules })
    }

    /// The canonical spec string (`parse` ∘ `spec` is the identity on
    /// the rule list).
    #[must_use]
    pub fn spec(&self) -> String {
        self.rules
            .iter()
            .map(|r| {
                let window = match (r.from, r.to) {
                    (0, u64::MAX) => String::new(),
                    (f, u64::MAX) => format!("@{f}.."),
                    (f, t) if t == f.saturating_add(1) => format!("@{f}"),
                    (f, t) => format!("@{f}..{t}"),
                };
                format!("{}:{}{}", r.site, r.kind.token(), window)
            })
            .collect::<Vec<_>>()
            .join(";")
    }
}

fn parse_window(w: &str) -> Result<(u64, u64), String> {
    let int = |s: &str| {
        s.parse::<u64>()
            .map_err(|_| format!("bad window ordinal \"{s}\""))
    };
    if let Some((a, b)) = w.split_once("..") {
        let from = int(a)?;
        let to = if b.is_empty() { u64::MAX } else { int(b)? };
        if to <= from && to != u64::MAX {
            return Err(format!("empty window \"{w}\""));
        }
        Ok((from, to))
    } else {
        let k = int(w)?;
        Ok((k, k.saturating_add(1)))
    }
}

/// The outcome of one site hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Perform the operation normally.
    Pass,
    /// Fail the operation as the kind describes.
    Fail(FaultKind),
}

/// Runtime state for a plan: per-rule matching-hit counters, the crash
/// latch, counters, and an optional site-hit trace. Thread-safe; one
/// injector is shared by everything touching a given store.
#[derive(Debug)]
pub struct FaultInjector {
    rules: Vec<(FaultRule, AtomicU64)>,
    /// Fast path: no rules, no trace — `hit` returns immediately.
    passive: bool,
    crashed: AtomicBool,
    hits: AtomicU64,
    injected: AtomicU64,
    trace: Option<Mutex<Vec<String>>>,
}

impl FaultInjector {
    /// An injector for `plan`, without tracing.
    #[must_use]
    pub fn new(plan: &FaultPlan) -> FaultInjector {
        FaultInjector::build(plan, false)
    }

    /// An injector that additionally records every site hit in order —
    /// the enumeration pass of a crash-point matrix.
    #[must_use]
    pub fn tracing(plan: &FaultPlan) -> FaultInjector {
        FaultInjector::build(plan, true)
    }

    fn build(plan: &FaultPlan, trace: bool) -> FaultInjector {
        FaultInjector {
            passive: plan.rules.is_empty() && !trace,
            rules: plan
                .rules
                .iter()
                .map(|r| (r.clone(), AtomicU64::new(0)))
                .collect(),
            crashed: AtomicBool::new(false),
            hits: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            trace: trace.then(|| Mutex::new(Vec::new())),
        }
    }

    /// Decides the fate of one hit at `site`. Must be called exactly
    /// once per gated operation, immediately before performing it.
    pub fn hit(&self, site: &str) -> Fault {
        if self.passive {
            return Fault::Pass;
        }
        if self.crashed.load(Ordering::Relaxed) {
            // Dead process: no IO completes, nothing new is counted.
            return Fault::Fail(FaultKind::Crash);
        }
        self.hits.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = &self.trace {
            t.lock().push(site.to_string());
        }
        let mut outcome = Fault::Pass;
        for (rule, count) in &self.rules {
            if !rule.matches(site) {
                continue;
            }
            // Every matching rule counts the hit, so rule ordinals do
            // not depend on which other rules fired.
            let ordinal = count.fetch_add(1, Ordering::Relaxed);
            if outcome == Fault::Pass && ordinal >= rule.from && ordinal < rule.to {
                outcome = Fault::Fail(rule.kind);
            }
        }
        if let Fault::Fail(kind) = outcome {
            self.injected.fetch_add(1, Ordering::Relaxed);
            if kind.is_crash() {
                self.crashed.store(true, Ordering::Relaxed);
            }
        }
        outcome
    }

    /// Whether a crash-kind injection has latched.
    #[must_use]
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::Relaxed)
    }

    /// Total gated hits observed (pre-latch).
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total faults injected.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// The recorded site-hit sequence (empty unless built with
    /// [`FaultInjector::tracing`]).
    #[must_use]
    pub fn trace(&self) -> Vec<String> {
        self.trace.as_ref().map_or_else(Vec::new, |t| t.lock().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_spec_round_trip() {
        for spec in [
            "journal.*:eio",
            "journal.append.write:short@3",
            "snapshot.rename:crash@0",
            "*:crash-torn@17",
            "journal.*:enospc@2..9;snapshot.tmp.write:fsync@1..",
        ] {
            let plan = FaultPlan::parse(spec).unwrap();
            assert_eq!(plan.spec(), spec, "round-trip of {spec}");
            assert_eq!(FaultPlan::parse(&plan.spec()).unwrap(), plan);
        }
        assert!(FaultPlan::parse("x:nope").is_err());
        assert!(FaultPlan::parse(":eio").is_err());
        assert!(FaultPlan::parse("x:eio@5..3").is_err());
        assert!(FaultPlan::parse("x:eio@z").is_err());
        assert!(FaultPlan::parse("").unwrap().is_none());
    }

    #[test]
    fn windows_fire_on_matching_hit_ordinals_only() {
        let plan = FaultPlan::parse("journal.*:eio@1..3").unwrap();
        let inj = FaultInjector::new(&plan);
        // Ordinals count matching hits only: snapshot hits are invisible.
        assert_eq!(inj.hit("journal.append.write"), Fault::Pass); // ordinal 0
        assert_eq!(inj.hit("snapshot.rename"), Fault::Pass);
        assert_eq!(inj.hit("journal.append.flush"), Fault::Fail(FaultKind::Eio)); // 1
        assert_eq!(inj.hit("journal.append.write"), Fault::Fail(FaultKind::Eio)); // 2
        assert_eq!(inj.hit("journal.append.write"), Fault::Pass); // 3
        assert_eq!(inj.injected(), 2);
        assert!(!inj.crashed());
    }

    #[test]
    fn crash_latches_every_later_hit() {
        let inj = FaultInjector::new(&FaultPlan::crash_at_hit(2, false));
        assert_eq!(inj.hit("a"), Fault::Pass);
        assert_eq!(inj.hit("b"), Fault::Pass);
        assert_eq!(inj.hit("c"), Fault::Fail(FaultKind::Crash));
        assert!(inj.crashed());
        assert_eq!(inj.hit("a"), Fault::Fail(FaultKind::Crash));
        assert_eq!(inj.hit("zzz"), Fault::Fail(FaultKind::Crash));
        // Post-latch hits are not re-counted: the process is dead.
        assert_eq!(inj.hits(), 3);
        assert_eq!(inj.injected(), 1);
    }

    #[test]
    fn tracing_records_the_site_sequence() {
        let inj = FaultInjector::tracing(&FaultPlan::none());
        inj.hit("journal.append.write");
        inj.hit("journal.append.flush");
        inj.hit("snapshot.tmp.write");
        assert_eq!(
            inj.trace(),
            ["journal.append.write", "journal.append.flush", "snapshot.tmp.write"]
        );
        assert_eq!(inj.hits(), 3);
        assert_eq!(inj.injected(), 0);
    }

    #[test]
    fn determinism_same_plan_same_sequence_same_outcomes() {
        let plan = FaultPlan::parse("journal.*:short@2;snapshot.*:fsync@1").unwrap();
        let run = || {
            let inj = FaultInjector::new(&plan);
            let sites = [
                "journal.append.write",
                "journal.append.flush",
                "snapshot.tmp.write",
                "snapshot.tmp.fsync",
                "journal.append.write",
                "snapshot.rename",
            ];
            sites.iter().map(|s| inj.hit(s)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
        assert_eq!(
            run()[4],
            Fault::Fail(FaultKind::ShortWrite),
            "third journal hit fails short"
        );
    }

    #[test]
    fn the_none_plan_is_passive() {
        let inj = FaultInjector::new(&FaultPlan::none());
        for _ in 0..1000 {
            assert_eq!(inj.hit("journal.append.write"), Fault::Pass);
        }
        // Passive path skips all bookkeeping.
        assert_eq!(inj.hits(), 0);
        assert_eq!(inj.injected(), 0);
        assert!(inj.trace().is_empty());
    }
}
