//! `fcm-substrate` — the hermetic, zero-dependency substrate.
//!
//! Everything in this workspace that previously came from external crates
//! now lives here, so `cargo build --release --offline` works from an
//! empty registry cache and every experiment is reproducible from its
//! seed alone:
//!
//! | module | replaces | provides |
//! |---|---|---|
//! | [`rng`] | `rand` | SplitMix64-seeded xoshiro256++, `gen_range`, `shuffle`, `sample`, stream splitting |
//! | [`pool`] | `crossbeam` + `parking_lot` | scoped work-stealing `par_map` / `par_for`, poison-free `Mutex` |
//! | [`json`] | `serde` | a `Json` value with builder API, escaping emitter, round-trip parser |
//! | [`bytes`] | `bytes` | an immutable cheap-clone byte string |
//! | [`prop`] | `proptest` | seeded property harness, bisection shrinking, `FCM_PROP_SEED` replay |
//! | [`bench`] | `criterion` | warmup + timed iterations, median/p95, `BENCH_*.json` artefacts |
//! | [`telemetry`] | `tracing` timers | monotonic stage timers + counters, deterministic-order summaries |
//! | [`fault`] | `fail`/failpoints | deterministic fault plans for named IO sites, crash latch, site tracing |
//!
//! The dependability argument (after De Florio's survey of application-
//! level fault tolerance, and the self-contained evaluation pipeline of
//! Rugina et al.'s AADL framework): a dependability tool must control
//! its own randomness and concurrency, or its own measurements are not
//! reproducible evidence.

#![warn(missing_docs)]

pub mod bench;
pub mod bytes;
pub mod fault;
pub mod json;
pub mod pool;
pub mod prop;
pub mod rng;
pub mod telemetry;

pub use bytes::Bytes;
pub use fault::{Fault, FaultInjector, FaultKind, FaultPlan, FaultRule};
pub use json::{Json, ToJson};
pub use pool::{par_for, par_map, par_map_threads, par_reduce, Mutex};
pub use rng::Rng;
pub use telemetry::Telemetry;
