//! Property-based tests of the scheduling substrate.

use fcm_sched::periodic::{PeriodicTask, TaskSet};
use fcm_sched::{edf, nonpreemptive, Job, JobSet};
use proptest::prelude::*;

/// A random well-formed job set: every job feasible in isolation.
fn arb_job_set(max_jobs: usize) -> impl Strategy<Value = JobSet> {
    proptest::collection::vec((0u64..40, 1u64..10, 0u64..40), 1..=max_jobs).prop_map(|specs| {
        let jobs: Vec<Job> = specs
            .into_iter()
            .enumerate()
            .map(|(i, (est, ct, slack))| Job::new(i as u64, est, est + ct + slack, ct))
            .collect();
        JobSet::new(jobs).expect("constructed jobs are well-formed")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn edf_slices_never_overlap_and_conserve_work(set in arb_job_set(8)) {
        let s = edf::schedule(&set);
        // Chronological, non-overlapping slices.
        for w in s.slices.windows(2) {
            prop_assert!(w[0].end <= w[1].start);
        }
        // All work executes exactly once.
        prop_assert_eq!(s.busy_time(), set.total_work());
        // Every job completes exactly once.
        prop_assert_eq!(s.completions.len(), set.len());
        // No job starts before its release.
        for job in set.jobs() {
            let first_run = s
                .slices
                .iter()
                .find(|sl| sl.job == job.id)
                .expect("every job runs");
            prop_assert!(first_run.start >= job.est);
        }
    }

    #[test]
    fn nonpreemptive_feasible_implies_edf_feasible(set in arb_job_set(7)) {
        if let Ok(true) = nonpreemptive::feasible(&set) {
            prop_assert!(edf::feasible(&set), "{set}");
        }
    }

    #[test]
    fn edd_success_implies_search_success(set in arb_job_set(7)) {
        let (_, edd_ok) = nonpreemptive::edd_schedule(&set);
        if edd_ok {
            prop_assert!(nonpreemptive::feasible(&set).unwrap(), "{set}");
        }
    }

    #[test]
    fn nonpreemptive_witness_is_a_valid_schedule(set in arb_job_set(6)) {
        if let Ok(Some(sched)) = nonpreemptive::search(&set, 200_000) {
            let mut now = 0;
            prop_assert_eq!(sched.sequence.len(), set.len());
            for &(id, start, end) in &sched.sequence {
                let job = set.jobs().iter().find(|j| j.id == id).expect("job exists");
                prop_assert!(start >= job.est);
                prop_assert!(start >= now);
                prop_assert_eq!(end, start + job.ct);
                prop_assert!(end <= job.tcd, "{set}");
                now = end;
            }
        }
    }

    #[test]
    fn demand_bound_is_necessary_for_edf(set in arb_job_set(8)) {
        if edf::schedule(&set).is_feasible() {
            prop_assert!(set.demand_bound_ok(), "{set}");
        }
    }

    #[test]
    fn removing_a_job_preserves_edf_feasibility(set in arb_job_set(8)) {
        if edf::feasible(&set) && set.len() > 1 {
            let reduced = JobSet::new(set.jobs()[1..].to_vec()).expect("subset is well-formed");
            prop_assert!(edf::feasible(&reduced), "{set}");
        }
    }

    #[test]
    fn loosening_every_deadline_preserves_feasibility(set in arb_job_set(8)) {
        if edf::feasible(&set) {
            let loosened = JobSet::new(
                set.jobs()
                    .iter()
                    .map(|j| Job::new(j.id, j.est, j.tcd + 7, j.ct))
                    .collect(),
            )
            .expect("loosened jobs are well-formed");
            prop_assert!(edf::feasible(&loosened));
        }
    }

    #[test]
    fn rm_response_times_bound_wcet_and_respect_priority(
        periods in proptest::collection::vec(2u64..50, 1..6),
    ) {
        let tasks: Vec<PeriodicTask> = periods
            .iter()
            .map(|&p| PeriodicTask::new(p, 1 + p / 10))
            .collect();
        let set = TaskSet::new(tasks).expect("valid tasks");
        if let Some(responses) = set.rm_response_times() {
            let mut sorted = set.tasks().to_vec();
            sorted.sort_by_key(|t| t.period);
            for (t, &r) in sorted.iter().zip(&responses) {
                prop_assert!(r >= t.wcet);
                prop_assert!(r <= t.period);
            }
            // The highest-priority task suffers no interference.
            prop_assert_eq!(responses[0], sorted[0].wcet);
        }
    }

    #[test]
    fn edf_utilisation_test_matches_rta_on_harmonic_sets(base in 2u64..8) {
        // Harmonic periods: RM achieves full utilisation, so whenever the
        // EDF bound accepts, exact RTA must also accept.
        let tasks = vec![
            PeriodicTask::new(base, 1),
            PeriodicTask::new(base * 2, base / 2),
            PeriodicTask::new(base * 4, base),
        ];
        let set = TaskSet::new(tasks).expect("valid harmonics");
        if set.edf_feasible() {
            prop_assert!(set.rm_response_time_feasible(), "U = {}", set.utilisation());
        }
    }
}
