//! Property-based tests of the scheduling substrate.

use fcm_sched::periodic::{PeriodicTask, TaskSet};
use fcm_sched::{edf, nonpreemptive, Job, JobSet};
use fcm_substrate::prop;
use fcm_substrate::rng::Rng;
use fcm_substrate::{prop_assert, prop_assert_eq};

/// A random well-formed job set: every job feasible in isolation. The
/// job count grows with the shrinkable size budget up to `max_jobs`.
fn arb_job_set(rng: &mut Rng, size: usize, max_jobs: usize) -> JobSet {
    let hi = max_jobs.min(1 + size * max_jobs / 100).max(1);
    let count = rng.gen_range(1..=hi);
    let jobs: Vec<Job> = (0..count)
        .map(|i| {
            let est = rng.gen_range(0u64..40);
            let ct = rng.gen_range(1u64..10);
            let slack = rng.gen_range(0u64..40);
            Job::new(i as u64, est, est + ct + slack, ct)
        })
        .collect();
    JobSet::new(jobs).expect("constructed jobs are well-formed")
}

#[test]
fn edf_slices_never_overlap_and_conserve_work() {
    prop::check_cases(
        "edf_slices_never_overlap_and_conserve_work",
        128,
        |rng, size| arb_job_set(rng, size, 8),
        |set| {
            let s = edf::schedule(set);
            // Chronological, non-overlapping slices.
            for w in s.slices.windows(2) {
                prop_assert!(w[0].end <= w[1].start);
            }
            // All work executes exactly once.
            prop_assert_eq!(s.busy_time(), set.total_work());
            // Every job completes exactly once.
            prop_assert_eq!(s.completions.len(), set.len());
            // No job starts before its release.
            for job in set.jobs() {
                let first_run = s
                    .slices
                    .iter()
                    .find(|sl| sl.job == job.id)
                    .expect("every job runs");
                prop_assert!(first_run.start >= job.est);
            }
            Ok(())
        },
    );
}

#[test]
fn nonpreemptive_feasible_implies_edf_feasible() {
    prop::check_cases(
        "nonpreemptive_feasible_implies_edf_feasible",
        128,
        |rng, size| arb_job_set(rng, size, 7),
        |set| {
            if let Ok(true) = nonpreemptive::feasible(set) {
                prop_assert!(edf::feasible(set), "{}", set);
            }
            Ok(())
        },
    );
}

#[test]
fn edd_success_implies_search_success() {
    prop::check_cases(
        "edd_success_implies_search_success",
        128,
        |rng, size| arb_job_set(rng, size, 7),
        |set| {
            let (_, edd_ok) = nonpreemptive::edd_schedule(set);
            if edd_ok {
                prop_assert!(nonpreemptive::feasible(set).unwrap(), "{}", set);
            }
            Ok(())
        },
    );
}

#[test]
fn nonpreemptive_witness_is_a_valid_schedule() {
    prop::check_cases(
        "nonpreemptive_witness_is_a_valid_schedule",
        128,
        |rng, size| arb_job_set(rng, size, 6),
        |set| {
            if let Ok(Some(sched)) = nonpreemptive::search(set, 200_000) {
                let mut now = 0;
                prop_assert_eq!(sched.sequence.len(), set.len());
                for &(id, start, end) in &sched.sequence {
                    let job = set.jobs().iter().find(|j| j.id == id).expect("job exists");
                    prop_assert!(start >= job.est);
                    prop_assert!(start >= now);
                    prop_assert_eq!(end, start + job.ct);
                    prop_assert!(end <= job.tcd, "{}", set);
                    now = end;
                }
            }
            Ok(())
        },
    );
}

#[test]
fn demand_bound_is_necessary_for_edf() {
    prop::check_cases(
        "demand_bound_is_necessary_for_edf",
        128,
        |rng, size| arb_job_set(rng, size, 8),
        |set| {
            if edf::schedule(set).is_feasible() {
                prop_assert!(set.demand_bound_ok(), "{}", set);
            }
            Ok(())
        },
    );
}

#[test]
fn removing_a_job_preserves_edf_feasibility() {
    prop::check_cases(
        "removing_a_job_preserves_edf_feasibility",
        128,
        |rng, size| arb_job_set(rng, size, 8),
        |set| {
            if edf::feasible(set) && set.len() > 1 {
                let reduced = JobSet::new(set.jobs()[1..].to_vec()).expect("subset is well-formed");
                prop_assert!(edf::feasible(&reduced), "{}", set);
            }
            Ok(())
        },
    );
}

#[test]
fn loosening_every_deadline_preserves_feasibility() {
    prop::check_cases(
        "loosening_every_deadline_preserves_feasibility",
        128,
        |rng, size| arb_job_set(rng, size, 8),
        |set| {
            if edf::feasible(set) {
                let loosened = JobSet::new(
                    set.jobs()
                        .iter()
                        .map(|j| Job::new(j.id, j.est, j.tcd + 7, j.ct))
                        .collect(),
                )
                .expect("loosened jobs are well-formed");
                prop_assert!(edf::feasible(&loosened));
            }
            Ok(())
        },
    );
}

#[test]
fn rm_response_times_bound_wcet_and_respect_priority() {
    prop::check_cases(
        "rm_response_times_bound_wcet_and_respect_priority",
        128,
        |rng, size| {
            let hi = 5usize.min(1 + size / 20).max(1);
            let count = rng.gen_range(1..=hi);
            (0..count)
                .map(|_| rng.gen_range(2u64..50))
                .collect::<Vec<u64>>()
        },
        |periods| {
            let tasks: Vec<PeriodicTask> = periods
                .iter()
                .map(|&p| PeriodicTask::new(p, 1 + p / 10))
                .collect();
            let set = TaskSet::new(tasks).expect("valid tasks");
            if let Some(responses) = set.rm_response_times() {
                let mut sorted = set.tasks().to_vec();
                sorted.sort_by_key(|t| t.period);
                for (t, &r) in sorted.iter().zip(&responses) {
                    prop_assert!(r >= t.wcet);
                    prop_assert!(r <= t.period);
                }
                // The highest-priority task suffers no interference.
                prop_assert_eq!(responses[0], sorted[0].wcet);
            }
            Ok(())
        },
    );
}

#[test]
fn edf_utilisation_test_matches_rta_on_harmonic_sets() {
    prop::check_cases(
        "edf_utilisation_test_matches_rta_on_harmonic_sets",
        128,
        |rng, _size| rng.gen_range(2u64..8),
        |&base| {
            // Harmonic periods: RM achieves full utilisation, so whenever the
            // EDF bound accepts, exact RTA must also accept.
            let tasks = vec![
                PeriodicTask::new(base, 1),
                PeriodicTask::new(base * 2, base / 2),
                PeriodicTask::new(base * 4, base),
            ];
            let set = TaskSet::new(tasks).expect("valid harmonics");
            if set.edf_feasible() {
                prop_assert!(set.rm_response_time_feasible(), "U = {}", set.utilisation());
            }
            Ok(())
        },
    );
}
