//! Error types for the scheduling substrate.

use std::error::Error;
use std::fmt;

use crate::job::JobId;

/// Errors reported by job-set construction and schedulability analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SchedError {
    /// A job has zero computation time or a window shorter than its work.
    MalformedJob {
        /// The offending job id.
        id: JobId,
    },
    /// Two jobs in one set share an id.
    DuplicateJobId {
        /// The duplicated id.
        id: JobId,
    },
    /// A periodic task has zero period or zero worst-case execution time.
    MalformedTask {
        /// Index of the offending task.
        index: usize,
    },
    /// The non-preemptive search exceeded its node budget (the instance is
    /// too large for exact analysis).
    SearchBudgetExceeded {
        /// Number of branch-and-bound nodes explored before giving up.
        explored: usize,
    },
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::MalformedJob { id } => {
                write!(f, "job {id} cannot meet its deadline even in isolation")
            }
            SchedError::DuplicateJobId { id } => write!(f, "duplicate job id {id}"),
            SchedError::MalformedTask { index } => {
                write!(f, "periodic task {index} has zero period or execution time")
            }
            SchedError::SearchBudgetExceeded { explored } => {
                write!(
                    f,
                    "non-preemptive search budget exceeded after {explored} nodes"
                )
            }
        }
    }
}

impl Error for SchedError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert_eq!(
            SchedError::MalformedJob { id: 7 }.to_string(),
            "job 7 cannot meet its deadline even in isolation"
        );
        assert_eq!(
            SchedError::DuplicateJobId { id: 3 }.to_string(),
            "duplicate job id 3"
        );
        assert!(SchedError::SearchBudgetExceeded { explored: 10 }
            .to_string()
            .contains("10 nodes"));
    }

    #[test]
    fn is_send_sync_error() {
        fn check<E: std::error::Error + Send + Sync + 'static>(_: E) {}
        check(SchedError::DuplicateJobId { id: 0 });
    }
}
