//! The one-shot job model: the paper's ⟨EST, TCD, CT⟩ timing triple.

use std::fmt;

use crate::error::SchedError;

/// Discrete time in ticks. The paper's example uses small integer times;
/// a tick can be interpreted as any convenient unit (ms in the avionics
/// workload).
pub type Time = u64;

/// Identifier a caller attaches to a job (e.g. the FCM or process id).
pub type JobId = u64;

/// A one-shot job: released at `est`, must finish `ct` units of work by the
/// absolute deadline `tcd`.
///
/// This mirrors the paper's per-process timing attributes: earliest start
/// time (EST), task completion deadline (TCD) and computation time (CT).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Job {
    /// Caller-chosen identifier.
    pub id: JobId,
    /// Earliest start time (release).
    pub est: Time,
    /// Absolute completion deadline.
    pub tcd: Time,
    /// Computation time (worst case).
    pub ct: Time,
}

impl Job {
    /// Creates a job from the paper's ⟨EST, TCD, CT⟩ triple.
    ///
    /// Invalid triples (zero computation time, or a window `tcd − est`
    /// shorter than `ct`) are accepted here and rejected by
    /// [`JobSet::new`], so tests can construct trivially infeasible jobs.
    pub fn new(id: JobId, est: Time, tcd: Time, ct: Time) -> Self {
        Job { id, est, tcd, ct }
    }

    /// The slack `tcd − est − ct`; `None` when the window cannot fit the
    /// work at all.
    pub fn slack(&self) -> Option<Time> {
        (self.tcd.saturating_sub(self.est)).checked_sub(self.ct)
    }

    /// Whether the job can meet its deadline when run alone.
    pub fn is_well_formed(&self) -> bool {
        self.ct > 0
            && self
                .est
                .checked_add(self.ct)
                .is_some_and(|end| end <= self.tcd)
    }

    /// Latest time the job may start and still finish by its deadline when
    /// run without preemption.
    pub fn latest_start(&self) -> Time {
        self.tcd.saturating_sub(self.ct)
    }
}

impl fmt::Display for Job {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "j{}⟨{},{},{}⟩", self.id, self.est, self.tcd, self.ct)
    }
}

/// A validated collection of jobs to be scheduled on one processor.
///
/// # Example
///
/// ```
/// use fcm_sched::{Job, JobSet};
///
/// let set = JobSet::new(vec![Job::new(0, 0, 5, 2), Job::new(1, 1, 9, 3)])?;
/// assert_eq!(set.len(), 2);
/// assert_eq!(set.total_work(), 5);
/// # Ok::<(), fcm_sched::SchedError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct JobSet {
    jobs: Vec<Job>,
}

impl JobSet {
    /// Creates a job set, validating each job.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::MalformedJob`] when any job has zero
    /// computation time or a window too short to run even in isolation, and
    /// [`SchedError::DuplicateJobId`] when two jobs share an id.
    pub fn new(jobs: Vec<Job>) -> Result<Self, SchedError> {
        for job in &jobs {
            if !job.is_well_formed() {
                return Err(SchedError::MalformedJob { id: job.id });
            }
        }
        let mut ids: Vec<JobId> = jobs.iter().map(|j| j.id).collect();
        ids.sort_unstable();
        if ids.windows(2).any(|w| w[0] == w[1]) {
            let dup = ids
                .windows(2)
                .find(|w| w[0] == w[1])
                .map(|w| w[0])
                .expect("duplicate exists");
            return Err(SchedError::DuplicateJobId { id: dup });
        }
        Ok(JobSet { jobs })
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The jobs, in insertion order.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Iterates over the jobs.
    pub fn iter(&self) -> std::slice::Iter<'_, Job> {
        self.jobs.iter()
    }

    /// Sum of computation times.
    pub fn total_work(&self) -> Time {
        self.jobs.iter().map(|j| j.ct).sum()
    }

    /// Earliest release among the jobs (`0` for an empty set).
    pub fn earliest_release(&self) -> Time {
        self.jobs.iter().map(|j| j.est).min().unwrap_or(0)
    }

    /// Latest deadline among the jobs (`0` for an empty set).
    pub fn latest_deadline(&self) -> Time {
        self.jobs.iter().map(|j| j.tcd).max().unwrap_or(0)
    }

    /// Demand-based utilisation over the busy window
    /// `total_work / (latest_deadline − earliest_release)`; `f64::INFINITY`
    /// for a zero-length window with work.
    pub fn window_utilisation(&self) -> f64 {
        let span = self
            .latest_deadline()
            .saturating_sub(self.earliest_release());
        if span == 0 {
            if self.total_work() == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.total_work() as f64 / span as f64
        }
    }

    /// Merges two job sets (e.g. when two SW nodes are combined onto one
    /// processor).
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::DuplicateJobId`] when the sets share an id.
    pub fn merged(&self, other: &JobSet) -> Result<JobSet, SchedError> {
        let mut jobs = self.jobs.clone();
        jobs.extend_from_slice(&other.jobs);
        JobSet::new(jobs)
    }

    /// A necessary (not sufficient) feasibility condition: for every
    /// deadline `d`, the work released at or after every `r ≤ d` and due by
    /// `d` fits in `[r, d]`. Cheap pre-filter before exact EDF simulation.
    pub fn demand_bound_ok(&self) -> bool {
        let mut releases: Vec<Time> = self.jobs.iter().map(|j| j.est).collect();
        releases.sort_unstable();
        releases.dedup();
        let mut deadlines: Vec<Time> = self.jobs.iter().map(|j| j.tcd).collect();
        deadlines.sort_unstable();
        deadlines.dedup();
        for &r in &releases {
            for &d in deadlines.iter().filter(|&&d| d > r) {
                let demand: Time = self
                    .jobs
                    .iter()
                    .filter(|j| j.est >= r && j.tcd <= d)
                    .map(|j| j.ct)
                    .sum();
                if demand > d - r {
                    return false;
                }
            }
        }
        true
    }
}

impl<'a> IntoIterator for &'a JobSet {
    type Item = &'a Job;
    type IntoIter = std::slice::Iter<'a, Job>;
    fn into_iter(self) -> Self::IntoIter {
        self.jobs.iter()
    }
}

impl fmt::Display for JobSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, j) in self.jobs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{j}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_formed_job_properties() {
        let j = Job::new(1, 2, 10, 3);
        assert!(j.is_well_formed());
        assert_eq!(j.slack(), Some(5));
        assert_eq!(j.latest_start(), 7);
        assert_eq!(j.to_string(), "j1⟨2,10,3⟩");
    }

    #[test]
    fn zero_ct_is_malformed() {
        let j = Job::new(1, 0, 10, 0);
        assert!(!j.is_well_formed());
        assert!(matches!(
            JobSet::new(vec![j]),
            Err(SchedError::MalformedJob { id: 1 })
        ));
    }

    #[test]
    fn window_shorter_than_work_is_malformed() {
        let j = Job::new(2, 5, 7, 3);
        assert!(!j.is_well_formed());
        assert_eq!(j.slack(), None);
        assert!(JobSet::new(vec![j]).is_err());
    }

    #[test]
    fn duplicate_ids_are_rejected() {
        let err = JobSet::new(vec![Job::new(1, 0, 5, 1), Job::new(1, 0, 9, 1)]).unwrap_err();
        assert!(matches!(err, SchedError::DuplicateJobId { id: 1 }));
    }

    #[test]
    fn aggregates_over_the_set() {
        let set = JobSet::new(vec![Job::new(0, 2, 10, 3), Job::new(1, 0, 20, 5)]).unwrap();
        assert_eq!(set.total_work(), 8);
        assert_eq!(set.earliest_release(), 0);
        assert_eq!(set.latest_deadline(), 20);
        assert!((set.window_utilisation() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_set_aggregates_are_zero() {
        let set = JobSet::default();
        assert!(set.is_empty());
        assert_eq!(set.total_work(), 0);
        assert_eq!(set.window_utilisation(), 0.0);
        assert!(set.demand_bound_ok());
    }

    #[test]
    fn merge_combines_and_checks_ids() {
        let a = JobSet::new(vec![Job::new(0, 0, 5, 1)]).unwrap();
        let b = JobSet::new(vec![Job::new(1, 0, 5, 1)]).unwrap();
        let m = a.merged(&b).unwrap();
        assert_eq!(m.len(), 2);
        assert!(a.merged(&a).is_err());
    }

    #[test]
    fn demand_bound_detects_overload() {
        // Two jobs both confined to [0, 4] needing 3 each: demand 6 > 4.
        let set = JobSet::new(vec![Job::new(0, 0, 4, 3), Job::new(1, 0, 4, 3)]).unwrap();
        assert!(!set.demand_bound_ok());
        // Loosen one deadline: now demand fits.
        let ok = JobSet::new(vec![Job::new(0, 0, 4, 3), Job::new(1, 0, 8, 3)]).unwrap();
        assert!(ok.demand_bound_ok());
    }

    #[test]
    fn display_lists_jobs() {
        let set = JobSet::new(vec![Job::new(0, 0, 5, 1), Job::new(1, 1, 6, 2)]).unwrap();
        assert_eq!(set.to_string(), "{j0⟨0,5,1⟩, j1⟨1,6,2⟩}");
    }

    #[test]
    fn iteration_matches_jobs_slice() {
        let set = JobSet::new(vec![Job::new(0, 0, 5, 1), Job::new(1, 1, 6, 2)]).unwrap();
        let via_iter: Vec<_> = set.iter().copied().collect();
        let via_for: Vec<_> = (&set).into_iter().copied().collect();
        assert_eq!(via_iter, set.jobs().to_vec());
        assert_eq!(via_for, set.jobs().to_vec());
    }
}
