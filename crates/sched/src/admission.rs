//! Incremental admission control for one processor.
//!
//! Failover and degraded-mode operation re-place work at run time, one
//! process at a time; each candidate must be accepted only if the
//! processor's job set stays EDF-feasible with it included. [`Admission`]
//! wraps a growing job set with an exact accept/reject test, so a
//! shedding loop can probe candidates in priority order and keep exactly
//! those that fit.

use crate::edf;
use crate::job::{Job, JobId, JobSet};

/// An admission controller for one processor: a set of already-accepted
/// jobs plus an exact EDF feasibility test for each new candidate.
#[derive(Debug, Clone, Default)]
pub struct Admission {
    jobs: Vec<Job>,
}

impl Admission {
    /// An empty controller (nothing admitted).
    pub fn new() -> Self {
        Admission::default()
    }

    /// Seeds the controller with a baseline load, accepting it only when
    /// the baseline itself is feasible (returns `None` otherwise).
    pub fn with_baseline(jobs: &[Job]) -> Option<Self> {
        let set = JobSet::new(jobs.to_vec()).ok()?;
        edf::feasible(&set).then(|| Admission {
            jobs: jobs.to_vec(),
        })
    }

    /// Whether `job` *would* be admitted, without retaining it — the
    /// probe half of [`Admission::try_admit`] for callers (failover
    /// scoring, the serve layer's `admit` query) that compare candidate
    /// hosts before committing to one.
    pub fn would_admit(&self, job: Job) -> bool {
        let mut candidate = self.jobs.clone();
        candidate.push(job);
        matches!(JobSet::new(candidate), Ok(set) if edf::feasible(&set))
    }

    /// Tries to admit `job`: accepted (and retained) iff the current
    /// load plus `job` is EDF-feasible. Malformed jobs and duplicate ids
    /// are rejected.
    pub fn try_admit(&mut self, job: Job) -> bool {
        let mut candidate = self.jobs.clone();
        candidate.push(job);
        match JobSet::new(candidate) {
            Ok(set) if edf::feasible(&set) => {
                self.jobs.push(job);
                true
            }
            _ => false,
        }
    }

    /// Removes the job with `id`, returning whether it was present.
    pub fn release(&mut self, id: JobId) -> bool {
        match self.jobs.iter().position(|j| j.id == id) {
            Some(pos) => {
                self.jobs.remove(pos);
                true
            }
            None => false,
        }
    }

    /// The admitted jobs, in admission order.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Number of admitted jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether nothing has been admitted.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Sum of admitted computation times.
    pub fn total_work(&self) -> u64 {
        self.jobs.iter().map(|j| j.ct).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_until_the_processor_is_full() {
        let mut adm = Admission::new();
        // Three jobs confined to [0, 9] needing 3 each fill the window.
        assert!(adm.try_admit(Job::new(0, 0, 9, 3)));
        assert!(adm.try_admit(Job::new(1, 0, 9, 3)));
        assert!(adm.try_admit(Job::new(2, 0, 9, 3)));
        // A fourth cannot fit.
        assert!(!adm.try_admit(Job::new(3, 0, 9, 3)));
        assert_eq!(adm.len(), 3);
        assert_eq!(adm.total_work(), 9);
        // A job with a later window still fits.
        assert!(adm.try_admit(Job::new(3, 9, 14, 3)));
    }

    #[test]
    fn rejection_leaves_the_set_unchanged() {
        let mut adm = Admission::new();
        assert!(adm.try_admit(Job::new(0, 0, 4, 4)));
        let before = adm.jobs().to_vec();
        assert!(!adm.try_admit(Job::new(1, 0, 4, 1)));
        assert_eq!(adm.jobs(), &before[..]);
    }

    #[test]
    fn would_admit_probes_without_retaining() {
        let mut adm = Admission::new();
        assert!(adm.try_admit(Job::new(0, 0, 6, 3)));
        // The probe agrees with try_admit but never commits.
        assert!(adm.would_admit(Job::new(1, 0, 6, 3)));
        assert!(adm.would_admit(Job::new(1, 0, 6, 3)));
        assert!(!adm.would_admit(Job::new(1, 0, 6, 4)));
        assert!(!adm.would_admit(Job::new(0, 10, 20, 1))); // duplicate id
        assert_eq!(adm.len(), 1);
    }

    #[test]
    fn malformed_and_duplicate_jobs_are_rejected() {
        let mut adm = Admission::new();
        assert!(!adm.try_admit(Job::new(0, 0, 4, 0))); // zero ct
        assert!(!adm.try_admit(Job::new(0, 5, 6, 3))); // window < ct
        assert!(adm.try_admit(Job::new(0, 0, 4, 1)));
        assert!(!adm.try_admit(Job::new(0, 10, 20, 1))); // duplicate id
        assert_eq!(adm.len(), 1);
    }

    #[test]
    fn release_frees_capacity() {
        let mut adm = Admission::new();
        assert!(adm.try_admit(Job::new(0, 0, 6, 3)));
        assert!(adm.try_admit(Job::new(1, 0, 6, 3)));
        assert!(!adm.try_admit(Job::new(2, 0, 6, 3)));
        assert!(adm.release(1));
        assert!(!adm.release(1));
        assert!(adm.try_admit(Job::new(2, 0, 6, 3)));
    }

    #[test]
    fn baseline_must_be_feasible() {
        let ok = Admission::with_baseline(&[Job::new(0, 0, 8, 4), Job::new(1, 0, 8, 4)]);
        assert_eq!(ok.expect("feasible baseline").len(), 2);
        let over = Admission::with_baseline(&[Job::new(0, 0, 4, 3), Job::new(1, 0, 4, 3)]);
        assert!(over.is_none());
        assert!(Admission::with_baseline(&[]).expect("empty").is_empty());
    }
}
