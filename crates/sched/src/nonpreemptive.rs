//! Exact non-preemptive feasibility (branch-and-bound) with an EDD fast
//! path.
//!
//! The paper notes (§4.2.3) that *non-preemptive* scheduling lets a timing
//! fault in one task propagate to every other task on the processor, and
//! uses the non-preemptive/preemptive choice as an isolation knob. The
//! allocation layer therefore needs both verdicts: preemptive feasibility
//! ([`crate::edf`]) and non-preemptive feasibility (this module).
//!
//! Non-preemptive scheduling with release times is NP-hard, so the exact
//! check is a branch-and-bound over job orders with three prunes:
//!
//! 1. a job whose non-preemptive start `max(now, est)` would already miss
//!    its deadline can never be placed next;
//! 2. the preemptive EDF relaxation from the current state must be
//!    feasible (preemptive feasibility is necessary for non-preemptive);
//! 3. dominance: reaching the same remaining-set with a later time than a
//!    previously explored state cannot help.

use std::collections::HashMap;

use crate::edf;
use crate::error::SchedError;
use crate::job::{Job, JobId, JobSet, Time};

/// Default branch-and-bound node budget; instances the allocation layer
/// produces (≤ ~20 jobs per processor) stay far below it.
pub const DEFAULT_BUDGET: usize = 1_000_000;

/// A feasible non-preemptive order, with per-job start times.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NonPreemptiveSchedule {
    /// `(job, start, end)` in execution order.
    pub sequence: Vec<(JobId, Time, Time)>,
}

impl NonPreemptiveSchedule {
    /// Completion time of the last job (`0` for an empty schedule).
    pub fn makespan(&self) -> Time {
        self.sequence.last().map_or(0, |&(_, _, end)| end)
    }
}

/// Earliest-due-date heuristic: repeatedly run the released job with the
/// earliest deadline to completion (no preemption). Returns the schedule
/// and whether it met every deadline.
///
/// A success is definitive (a witness order exists); a failure is not
/// (EDD is not optimal with release times), so callers fall back to
/// [`feasible`].
pub fn edd_schedule(set: &JobSet) -> (NonPreemptiveSchedule, bool) {
    let mut remaining: Vec<Job> = set.jobs().to_vec();
    let mut now = set.earliest_release();
    let mut seq = Vec::with_capacity(remaining.len());
    let mut ok = true;
    while !remaining.is_empty() {
        let released: Vec<usize> = remaining
            .iter()
            .enumerate()
            .filter(|(_, j)| j.est <= now)
            .map(|(i, _)| i)
            .collect();
        let pick = if released.is_empty() {
            now = remaining.iter().map(|j| j.est).min().expect("non-empty");
            continue;
        } else {
            released
                .into_iter()
                .min_by_key(|&i| (remaining[i].tcd, remaining[i].id))
                .expect("non-empty released set")
        };
        let job = remaining.swap_remove(pick);
        let start = now.max(job.est);
        let end = start + job.ct;
        if end > job.tcd {
            ok = false;
        }
        seq.push((job.id, start, end));
        now = end;
    }
    (NonPreemptiveSchedule { sequence: seq }, ok)
}

/// Exact non-preemptive feasibility with the default node budget.
///
/// # Errors
///
/// Returns [`SchedError::SearchBudgetExceeded`] when the instance is too
/// large to decide within [`DEFAULT_BUDGET`] nodes.
pub fn feasible(set: &JobSet) -> Result<bool, SchedError> {
    feasible_with_budget(set, DEFAULT_BUDGET)
}

/// Exact non-preemptive feasibility with an explicit node budget.
///
/// # Errors
///
/// Returns [`SchedError::SearchBudgetExceeded`] when the search explores
/// more than `budget` nodes without deciding.
///
/// # Example
///
/// ```
/// use fcm_sched::{Job, JobSet, nonpreemptive};
///
/// // Feasible preemptively but NOT non-preemptively: starting the long
/// // job blocks the urgent one, and waiting for the urgent one makes the
/// // long job miss its own deadline.
/// let set = JobSet::new(vec![Job::new(0, 0, 12, 10), Job::new(1, 1, 5, 2)])?;
/// assert!(fcm_sched::edf::feasible(&set));
/// assert!(nonpreemptive::feasible(&set)? == false);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn feasible_with_budget(set: &JobSet, budget: usize) -> Result<bool, SchedError> {
    Ok(search(set, budget)?.is_some())
}

/// Finds a feasible non-preemptive schedule, or `None` when infeasible.
///
/// # Errors
///
/// Returns [`SchedError::SearchBudgetExceeded`] when `budget` is exhausted.
pub fn search(set: &JobSet, budget: usize) -> Result<Option<NonPreemptiveSchedule>, SchedError> {
    let jobs = set.jobs();
    let n = jobs.len();
    if n == 0 {
        return Ok(Some(NonPreemptiveSchedule { sequence: vec![] }));
    }
    assert!(n <= 63, "non-preemptive search supports at most 63 jobs");

    // Fast path: if EDD succeeds we are done.
    let (edd, edd_ok) = edd_schedule(set);
    if edd_ok {
        return Ok(Some(edd));
    }
    // Necessary condition: the preemptive relaxation must be feasible.
    if !edf::feasible(set) {
        return Ok(None);
    }

    let full: u64 = (1u64 << n) - 1;
    let mut best_time: HashMap<u64, Time> = HashMap::new();
    let mut explored = 0usize;

    // Depth-first stack of (remaining mask, time, chosen prefix).
    struct Frame {
        mask: u64,
        now: Time,
        seq: Vec<(JobId, Time, Time)>,
    }
    let mut stack = vec![Frame {
        mask: full,
        now: set.earliest_release(),
        seq: Vec::new(),
    }];

    while let Some(frame) = stack.pop() {
        explored += 1;
        if explored > budget {
            return Err(SchedError::SearchBudgetExceeded { explored });
        }
        if frame.mask == 0 {
            return Ok(Some(NonPreemptiveSchedule {
                sequence: frame.seq,
            }));
        }
        // Dominance prune.
        match best_time.get(&frame.mask) {
            Some(&t) if t <= frame.now => continue,
            _ => {
                best_time.insert(frame.mask, frame.now);
            }
        }
        // Preemptive relaxation prune on the remaining jobs.
        let remaining: Vec<Job> = (0..n)
            .filter(|i| frame.mask & (1 << i) != 0)
            .map(|i| {
                let j = jobs[i];
                Job::new(j.id, j.est.max(frame.now), j.tcd, j.ct)
            })
            .collect();
        if remaining.iter().any(|j| j.est + j.ct > j.tcd) {
            continue;
        }
        let relax = JobSet::new(
            remaining
                .iter()
                .enumerate()
                .map(|(k, j)| Job::new(k as JobId, j.est, j.tcd, j.ct))
                .collect(),
        );
        match relax {
            Ok(r) if edf::feasible(&r) => {}
            _ => continue,
        }

        // Branch: candidates ordered by latest deadline first, so that the
        // most promising (earliest deadline) is popped first from the stack.
        let mut candidates: Vec<usize> = (0..n).filter(|i| frame.mask & (1 << i) != 0).collect();
        candidates.sort_by_key(|&i| std::cmp::Reverse((jobs[i].tcd, jobs[i].id)));
        for i in candidates {
            let j = jobs[i];
            let start = frame.now.max(j.est);
            let end = start + j.ct;
            if end > j.tcd {
                continue;
            }
            let mut seq = frame.seq.clone();
            seq.push((j.id, start, end));
            stack.push(Frame {
                mask: frame.mask & !(1 << i),
                now: end,
                seq,
            });
        }
    }
    Ok(None)
}

/// Whether the union of several job sets is non-preemptively feasible on
/// one processor — the non-preemptive counterpart of
/// [`edf::co_schedulable`](crate::edf::co_schedulable).
///
/// # Errors
///
/// Returns [`SchedError::SearchBudgetExceeded`] when the combined
/// instance is too large for the default budget.
pub fn co_schedulable(sets: &[&JobSet]) -> Result<bool, SchedError> {
    let mut all: Vec<Job> = Vec::new();
    for (i, s) in sets.iter().enumerate() {
        for j in s.jobs() {
            all.push(Job::new((i as JobId) << 32 | j.id, j.est, j.tcd, j.ct));
        }
    }
    match JobSet::new(all) {
        Ok(set) => feasible(&set),
        Err(_) => Ok(false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(jobs: &[(JobId, Time, Time, Time)]) -> JobSet {
        JobSet::new(
            jobs.iter()
                .map(|&(id, est, tcd, ct)| Job::new(id, est, tcd, ct))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn empty_set_is_feasible() {
        assert!(feasible(&JobSet::default()).unwrap());
        let s = search(&JobSet::default(), 10).unwrap().unwrap();
        assert_eq!(s.makespan(), 0);
    }

    #[test]
    fn edd_succeeds_on_easy_instance() {
        let jobs = set(&[(0, 0, 10, 3), (1, 0, 20, 3), (2, 0, 30, 3)]);
        let (sched, ok) = edd_schedule(&jobs);
        assert!(ok);
        assert_eq!(sched.makespan(), 9);
        let order: Vec<JobId> = sched.sequence.iter().map(|&(id, _, _)| id).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn preemptive_feasible_but_nonpreemptive_not() {
        // Long job 0 starts at 0; urgent job 1 released at 1 with deadline 5.
        // Preemptively fine; non-preemptively, running 0 first blocks 1,
        // and waiting for 1 means 0 still fits? 0: est 0, tcd 20, ct 10.
        // Run 1 first: must wait to t=1, 1 done at 3, then 0 runs 3..13 ok!
        // So tighten: 0 tcd 12 -> 0 must start by 2; order (1,0): 0 ends 13 > 12; order (0,1): 1 ends 11 > 5.
        let jobs = set(&[(0, 0, 12, 10), (1, 1, 5, 2)]);
        assert!(edf::feasible(&jobs));
        assert!(!feasible(&jobs).unwrap());
    }

    #[test]
    fn search_finds_non_edd_order() {
        // EDD picks the released earliest-deadline job at t=0, which is 0
        // (deadline 9). But running 0 (ct 5) first makes 1 (released 4,
        // deadline 7, ct 2) miss... 1 ends at 7 exactly — make it tighter:
        // 1 deadline 6. Then correct order is idle-wait? No: inserting 1
        // before 0 at t=4 delays 0 to 4+2+5=11 > 9. Choose: 0 ⟨0,9,3⟩,
        // 1 ⟨1,4,2⟩. EDD at t=0 picks 0 (only released), 0 ends 3, 1 runs
        // 3..5 > 4 — EDD fails. Optimal: wait at 0? 1 released at 1; run 1
        // at 1..3, then 0 at 3..6 ≤ 9. Search must find it.
        let jobs = set(&[(0, 0, 9, 3), (1, 1, 4, 2)]);
        let (_, edd_ok) = edd_schedule(&jobs);
        assert!(!edd_ok);
        let sched = search(&jobs, DEFAULT_BUDGET).unwrap().unwrap();
        let order: Vec<JobId> = sched.sequence.iter().map(|&(id, _, _)| id).collect();
        assert_eq!(order, vec![1, 0]);
        assert!(feasible(&jobs).unwrap());
    }

    #[test]
    fn schedule_respects_release_times() {
        let jobs = set(&[(0, 5, 10, 2)]);
        let sched = search(&jobs, 100).unwrap().unwrap();
        assert_eq!(sched.sequence, vec![(0, 5, 7)]);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        // 12 identical tight jobs force heavy branching under budget 3.
        let jobs = set(&(0..12).map(|i| (i as JobId, 0, 100, 5)).collect::<Vec<_>>());
        // Make EDD fail so the search actually runs: add an urgent late job
        // that EDD mishandles.
        let jobs = jobs
            .merged(&set(&[(100, 1, 7, 2), (101, 2, 11, 2)]).clone())
            .unwrap();
        match feasible_with_budget(&jobs, 1) {
            Err(SchedError::SearchBudgetExceeded { .. }) | Ok(_) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn infeasible_overload_is_detected() {
        let jobs = set(&[(0, 0, 4, 3), (1, 0, 4, 3)]);
        assert!(!feasible(&jobs).unwrap());
    }

    #[test]
    fn makespan_of_sequence() {
        let jobs = set(&[(0, 0, 10, 2), (1, 0, 10, 3)]);
        let sched = search(&jobs, 100).unwrap().unwrap();
        assert_eq!(sched.makespan(), 5);
    }

    #[test]
    fn co_schedulable_mirrors_single_set_feasibility() {
        let a = set(&[(0, 0, 12, 10)]);
        let b = set(&[(0, 1, 5, 2)]);
        // Known infeasible pair (see preemptive_feasible_but_nonpreemptive_not).
        assert!(!co_schedulable(&[&a, &b]).unwrap());
        let c = set(&[(0, 20, 40, 5)]);
        assert!(co_schedulable(&[&a, &c]).unwrap());
        assert!(co_schedulable(&[]).unwrap());
    }

    #[test]
    fn ten_random_like_jobs_decide_quickly() {
        let jobs = set(&[
            (0, 0, 30, 4),
            (1, 2, 18, 3),
            (2, 4, 40, 6),
            (3, 1, 12, 2),
            (4, 8, 26, 5),
            (5, 0, 50, 7),
            (6, 3, 22, 2),
            (7, 10, 44, 4),
            (8, 6, 35, 3),
            (9, 5, 28, 2),
        ]);
        assert!(feasible(&jobs).unwrap());
    }
}
