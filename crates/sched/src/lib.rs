//! Real-time scheduling substrate for the DDSI framework.
//!
//! The ICDCS'98 paper requires a schedulability check at two points:
//!
//! 1. **Node combination** — two SW nodes may be combined only when their
//!    processes remain schedulable on one processor; the worked example
//!    rejects combinations whose ⟨EST, TCD, CT⟩ triples conflict
//!    ("two nodes with timing constraints ⟨…⟩ and ⟨…⟩ cannot be scheduled
//!    on the same processor, and therefore cannot be combined").
//! 2. **Mapping** — "the processes in the cluster must all be schedulable
//!    so that their timing requirements are met. If this is not possible on
//!    any HW resource, the current partition must be rejected."
//!
//! The paper defers to "several well-known scheduling algorithms" [its
//! ref. 10, Stankovic et al.]; this crate implements them:
//!
//! * [`Job`] / [`JobSet`] — one-shot jobs with release time (EST), absolute
//!   deadline (TCD) and computation time (CT), exactly the paper's triple;
//! * [`edf`] — exact preemptive feasibility via EDF simulation (EDF is
//!   optimal on one processor, so its verdict is definitive);
//! * [`nonpreemptive`] — exact non-preemptive feasibility by
//!   branch-and-bound with an EDD fast path;
//! * [`periodic`] — periodic task utilisation tests (EDF bound,
//!   Liu–Layland RM bound, exact response-time analysis);
//! * [`admission`] — incremental accept/reject on one processor, used by
//!   failover re-placement and degraded-mode shedding.
//!
//! # Example
//!
//! ```
//! use fcm_sched::{Job, JobSet, edf};
//!
//! let set = JobSet::new(vec![
//!     Job::new(0, 0, 10, 4),
//!     Job::new(1, 0, 12, 4),
//! ])?;
//! assert!(edf::feasible(&set));
//! # Ok::<(), fcm_sched::SchedError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod edf;
mod error;
mod job;
pub mod nonpreemptive;
pub mod periodic;

pub use admission::Admission;
pub use error::SchedError;
pub use job::{Job, JobId, JobSet, Time};
