//! Periodic task schedulability tests.
//!
//! The avionics workload models recurring control loops as periodic tasks;
//! combining two SW nodes onto one processor requires the union of their
//! periodic task sets to remain schedulable. Three classical tests are
//! provided (all from Liu–Layland and the response-time analysis
//! literature the paper cites through Stankovic et al.):
//!
//! * EDF: feasible iff total utilisation ≤ 1 (implicit deadlines);
//! * Rate-monotonic sufficient bound `U ≤ n(2^{1/n} − 1)`;
//! * Exact fixed-priority response-time analysis.

use crate::error::SchedError;
use crate::job::Time;

/// A periodic task with implicit deadline (deadline = period).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PeriodicTask {
    /// Activation period (also the relative deadline).
    pub period: Time,
    /// Worst-case execution time per activation.
    pub wcet: Time,
}

impl PeriodicTask {
    /// Creates a periodic task.
    pub fn new(period: Time, wcet: Time) -> Self {
        PeriodicTask { period, wcet }
    }

    /// Utilisation `wcet / period`.
    pub fn utilisation(&self) -> f64 {
        self.wcet as f64 / self.period as f64
    }
}

/// A validated set of periodic tasks.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TaskSet {
    tasks: Vec<PeriodicTask>,
}

impl TaskSet {
    /// Creates a task set.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::MalformedTask`] when a task has zero period or
    /// zero execution time, or execution time exceeding its period.
    pub fn new(tasks: Vec<PeriodicTask>) -> Result<Self, SchedError> {
        for (index, t) in tasks.iter().enumerate() {
            if t.period == 0 || t.wcet == 0 || t.wcet > t.period {
                return Err(SchedError::MalformedTask { index });
            }
        }
        Ok(TaskSet { tasks })
    }

    /// The tasks.
    pub fn tasks(&self) -> &[PeriodicTask] {
        &self.tasks
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Total utilisation `Σ wcet/period`.
    pub fn utilisation(&self) -> f64 {
        self.tasks.iter().map(PeriodicTask::utilisation).sum()
    }

    /// EDF exact test for implicit deadlines: feasible iff `U ≤ 1`.
    pub fn edf_feasible(&self) -> bool {
        self.utilisation() <= 1.0 + 1e-12
    }

    /// Liu–Layland sufficient rate-monotonic bound `U ≤ n(2^{1/n} − 1)`.
    ///
    /// A `false` result is inconclusive; use
    /// [`TaskSet::rm_response_time_feasible`] for the exact verdict.
    pub fn rm_utilisation_bound_ok(&self) -> bool {
        let n = self.tasks.len();
        if n == 0 {
            return true;
        }
        self.utilisation() <= liu_layland_bound(n) + 1e-12
    }

    /// Exact fixed-priority (rate-monotonic order) response-time analysis.
    ///
    /// Returns the per-task worst-case response times in RM priority order,
    /// or `None` when some task's response exceeds its period (unschedulable)
    /// or the iteration diverges.
    pub fn rm_response_times(&self) -> Option<Vec<Time>> {
        let mut sorted = self.tasks.clone();
        sorted.sort_by_key(|t| t.period);
        let mut responses = Vec::with_capacity(sorted.len());
        for i in 0..sorted.len() {
            let ti = sorted[i];
            let mut r = ti.wcet;
            loop {
                let interference: Time = sorted[..i]
                    .iter()
                    .map(|h| r.div_ceil(h.period) * h.wcet)
                    .sum();
                let next = ti.wcet + interference;
                if next > ti.period {
                    return None;
                }
                if next == r {
                    break;
                }
                r = next;
            }
            responses.push(r);
        }
        Some(responses)
    }

    /// Exact rate-monotonic feasibility via response-time analysis.
    pub fn rm_response_time_feasible(&self) -> bool {
        self.rm_response_times().is_some()
    }

    /// Union of two task sets (combining SW nodes onto one processor).
    pub fn merged(&self, other: &TaskSet) -> TaskSet {
        let mut tasks = self.tasks.clone();
        tasks.extend_from_slice(&other.tasks);
        TaskSet { tasks }
    }
}

/// The Liu–Layland bound `n(2^{1/n} − 1)`.
pub fn liu_layland_bound(n: usize) -> f64 {
    let nf = n as f64;
    nf * (2f64.powf(1.0 / nf) - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(tasks: &[(Time, Time)]) -> TaskSet {
        TaskSet::new(
            tasks
                .iter()
                .map(|&(p, c)| PeriodicTask::new(p, c))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn utilisation_sums() {
        let set = ts(&[(10, 2), (20, 5)]);
        assert!((set.utilisation() - 0.45).abs() < 1e-12);
    }

    #[test]
    fn malformed_tasks_are_rejected() {
        assert!(matches!(
            TaskSet::new(vec![PeriodicTask::new(0, 1)]),
            Err(SchedError::MalformedTask { index: 0 })
        ));
        assert!(TaskSet::new(vec![PeriodicTask::new(5, 0)]).is_err());
        assert!(TaskSet::new(vec![PeriodicTask::new(5, 6)]).is_err());
    }

    #[test]
    fn edf_accepts_full_utilisation() {
        assert!(ts(&[(2, 1), (4, 2)]).edf_feasible()); // U = 1.0
        assert!(!ts(&[(2, 1), (4, 2), (8, 1)]).edf_feasible()); // U = 1.125
    }

    #[test]
    fn liu_layland_bound_values() {
        assert!((liu_layland_bound(1) - 1.0).abs() < 1e-12);
        assert!((liu_layland_bound(2) - 0.8284271).abs() < 1e-6);
        // Limit is ln 2 ≈ 0.6931.
        assert!((liu_layland_bound(1000) - std::f64::consts::LN_2).abs() < 1e-3);
    }

    #[test]
    fn rm_bound_is_sufficient_not_necessary() {
        // Classic example: harmonic periods schedulable at U = 1 although
        // above the LL bound.
        let set = ts(&[(2, 1), (4, 2)]);
        assert!(!set.rm_utilisation_bound_ok());
        assert!(set.rm_response_time_feasible());
    }

    #[test]
    fn response_times_match_hand_computation() {
        // T1 (4,1), T2 (6,2), T3 (12,3):
        // R1 = 1; R2 = 2 + ceil(2/4)*1 = 3 -> 2+1=3 stable;
        // R3: 3 + ceil(r/4)*1 + ceil(r/6)*2 → r=3: 3+1+2=6; r=6: 3+2+2=7;
        // r=7: 3+2+4=9; r=9: 3+3+4=10; r=10: 3+3+4=10 stable.
        let set = ts(&[(4, 1), (6, 2), (12, 3)]);
        assert_eq!(set.rm_response_times(), Some(vec![1, 3, 10]));
    }

    #[test]
    fn rm_unschedulable_set_returns_none() {
        let set = ts(&[(4, 2), (6, 3)]); // U ≈ 1.0, RM misses T2
        assert_eq!(set.rm_response_times(), None);
        assert!(!set.rm_response_time_feasible());
    }

    #[test]
    fn empty_set_is_trivially_feasible() {
        let set = TaskSet::default();
        assert!(set.is_empty());
        assert!(set.edf_feasible());
        assert!(set.rm_utilisation_bound_ok());
        assert!(set.rm_response_time_feasible());
    }

    #[test]
    fn merge_unions_the_tasks() {
        let a = ts(&[(10, 1)]);
        let b = ts(&[(20, 2)]);
        let m = a.merged(&b);
        assert_eq!(m.len(), 2);
        assert!((m.utilisation() - 0.2).abs() < 1e-12);
    }
}
