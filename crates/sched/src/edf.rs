//! Exact preemptive feasibility via earliest-deadline-first simulation.
//!
//! EDF is optimal for preemptive scheduling of independent jobs on one
//! processor (Dertouzos): a job set is feasible iff the EDF schedule meets
//! every deadline. The paper's §4.2.3 also singles out preemptive
//! scheduling as the isolation technique that limits transmission of timing
//! faults; the simulator crate reuses [`schedule`] for that experiment.

use crate::job::{Job, JobId, JobSet, Time};

/// One contiguous run of a job on the processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slice {
    /// The job that ran.
    pub job: JobId,
    /// Inclusive start tick.
    pub start: Time,
    /// Exclusive end tick.
    pub end: Time,
}

/// The outcome of an EDF simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Executed slices in chronological order.
    pub slices: Vec<Slice>,
    /// `(job, completion time)` for every job, in completion order.
    pub completions: Vec<(JobId, Time)>,
    /// Jobs that missed their deadline, with the time the miss was
    /// detected (their deadline).
    pub misses: Vec<(JobId, Time)>,
}

impl fcm_substrate::ToJson for Slice {
    fn to_json(&self) -> fcm_substrate::Json {
        fcm_substrate::Json::object()
            .set("job", self.job)
            .set("start", self.start)
            .set("end", self.end)
    }
}

impl fcm_substrate::ToJson for Schedule {
    fn to_json(&self) -> fcm_substrate::Json {
        use fcm_substrate::{Json, ToJson};
        Json::object()
            .set(
                "slices",
                Json::Arr(self.slices.iter().map(ToJson::to_json).collect()),
            )
            .set(
                "completions",
                Json::Arr(
                    self.completions
                        .iter()
                        .map(|&(job, at)| Json::object().set("job", job).set("at", at))
                        .collect(),
                ),
            )
    }
}

impl Schedule {
    /// Whether every job met its deadline.
    pub fn is_feasible(&self) -> bool {
        self.misses.is_empty()
    }

    /// Completion time of `job`, if it completed.
    pub fn completion_of(&self, job: JobId) -> Option<Time> {
        self.completions
            .iter()
            .find(|(j, _)| *j == job)
            .map(|&(_, t)| t)
    }

    /// Total processor busy time.
    pub fn busy_time(&self) -> Time {
        self.slices.iter().map(|s| s.end - s.start).sum()
    }

    /// Renders the schedule as an ASCII Gantt chart, one row per job id
    /// in first-run order; `#` marks executed ticks. Intended for
    /// documentation and debugging output; one column per tick, so keep
    /// horizons modest.
    pub fn render_gantt(&self) -> String {
        use std::fmt::Write as _;
        let end = self.slices.iter().map(|s| s.end).max().unwrap_or(0) as usize;
        let mut order: Vec<JobId> = Vec::new();
        for s in &self.slices {
            if !order.contains(&s.job) {
                order.push(s.job);
            }
        }
        let mut out = String::new();
        for job in order {
            let mut row = vec![b'.'; end];
            for s in self.slices.iter().filter(|s| s.job == job) {
                for cell in row.iter_mut().take(s.end as usize).skip(s.start as usize) {
                    *cell = b'#';
                }
            }
            let _ = writeln!(
                out,
                "j{job:<3} |{}|",
                String::from_utf8(row).expect("ascii row")
            );
        }
        out
    }

    /// Number of preemptions (a job resumed after being interrupted).
    pub fn preemptions(&self) -> usize {
        let mut count = 0;
        let mut finished: Vec<JobId> = Vec::new();
        for w in self.slices.windows(2) {
            let (prev, next) = (w[0], w[1]);
            if prev.job != next.job && !finished.contains(&prev.job) {
                // prev was interrupted while unfinished (it appears later or
                // missed); check whether it ever runs again.
                if self
                    .slices
                    .iter()
                    .any(|s| s.start >= next.start && s.job == prev.job)
                {
                    count += 1;
                }
            }
            if let Some(c) = self.completion_of(prev.job) {
                if c <= next.start && !finished.contains(&prev.job) {
                    finished.push(prev.job);
                }
            }
        }
        count
    }
}

/// Simulates preemptive EDF and returns the full schedule.
///
/// Deadline ties break by job id for determinism. The schedule runs until
/// all jobs complete — deadline misses are recorded but work is not
/// abandoned, matching how the discrete-event simulator treats overruns
/// (the timing *fault* is the miss; execution continues).
///
/// # Example
///
/// ```
/// use fcm_sched::{Job, JobSet, edf};
///
/// let set = JobSet::new(vec![Job::new(0, 0, 4, 2), Job::new(1, 1, 3, 1)])?;
/// let s = edf::schedule(&set);
/// assert!(s.is_feasible());
/// // Job 1 preempts job 0 at t=1 (its deadline is earlier).
/// assert_eq!(s.preemptions(), 1);
/// # Ok::<(), fcm_sched::SchedError>(())
/// ```
pub fn schedule(set: &JobSet) -> Schedule {
    #[derive(Clone, Copy)]
    struct Active {
        job: Job,
        remaining: Time,
    }

    let mut pending: Vec<Job> = set.jobs().to_vec();
    pending.sort_by_key(|j| (j.est, j.tcd, j.id));
    let mut pending = pending.into_iter().peekable();

    let mut ready: Vec<Active> = Vec::new();
    let mut slices: Vec<Slice> = Vec::new();
    let mut completions: Vec<(JobId, Time)> = Vec::new();
    let mut misses: Vec<(JobId, Time)> = Vec::new();

    let mut now: Time = set.earliest_release();

    loop {
        // Admit everything released by `now`.
        while pending.peek().is_some_and(|j| j.est <= now) {
            let j = pending.next().expect("peeked");
            ready.push(Active {
                job: j,
                remaining: j.ct,
            });
        }

        if ready.is_empty() {
            match pending.peek() {
                Some(j) => {
                    now = j.est;
                    continue;
                }
                None => break,
            }
        }

        // Earliest deadline first; ties by id.
        let (best_idx, _) = ready
            .iter()
            .enumerate()
            .min_by_key(|(_, a)| (a.job.tcd, a.job.id))
            .expect("ready is non-empty");
        let current = ready[best_idx];

        // Run until the job finishes or the next release arrives.
        let finish_at = now + current.remaining;
        let horizon = pending
            .peek()
            .map_or(finish_at, |j| finish_at.min(j.est.max(now)));
        let run_until = if horizon <= now { finish_at } else { horizon };
        let ran = run_until - now;

        // Coalesce with the previous slice when the same job continues.
        match slices.last_mut() {
            Some(last) if last.job == current.job.id && last.end == now => last.end = run_until,
            _ => slices.push(Slice {
                job: current.job.id,
                start: now,
                end: run_until,
            }),
        }

        if ran >= current.remaining {
            // Completed.
            let done = ready.swap_remove(best_idx);
            completions.push((done.job.id, run_until));
            if run_until > done.job.tcd {
                misses.push((done.job.id, done.job.tcd));
            }
        } else {
            ready[best_idx].remaining -= ran;
        }
        now = run_until;
    }

    Schedule {
        slices,
        completions,
        misses,
    }
}

/// Exact preemptive feasibility: `true` iff EDF meets every deadline.
pub fn feasible(set: &JobSet) -> bool {
    set.demand_bound_ok() && schedule(set).is_feasible()
}

/// Whether the union of several job sets is feasible on one processor —
/// the paper's node-combination check.
pub fn co_schedulable(sets: &[&JobSet]) -> bool {
    let mut all: Vec<Job> = Vec::new();
    for (i, s) in sets.iter().enumerate() {
        for j in s.jobs() {
            // Re-key ids per set to avoid collisions between sets.
            all.push(Job::new((i as JobId) << 32 | j.id, j.est, j.tcd, j.ct));
        }
    }
    match JobSet::new(all) {
        Ok(set) => feasible(&set),
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SchedError;

    fn set(jobs: &[(JobId, Time, Time, Time)]) -> JobSet {
        JobSet::new(
            jobs.iter()
                .map(|&(id, est, tcd, ct)| Job::new(id, est, tcd, ct))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn single_job_runs_at_release() {
        let s = schedule(&set(&[(0, 3, 10, 4)]));
        assert_eq!(
            s.slices,
            vec![Slice {
                job: 0,
                start: 3,
                end: 7
            }]
        );
        assert!(s.is_feasible());
        assert_eq!(s.completion_of(0), Some(7));
        assert_eq!(s.busy_time(), 4);
    }

    #[test]
    fn earlier_deadline_preempts() {
        // Job 0 starts at 0 with deadline 10; job 1 arrives at 2 with
        // deadline 5 and preempts.
        let s = schedule(&set(&[(0, 0, 10, 6), (1, 2, 5, 2)]));
        assert!(s.is_feasible());
        assert_eq!(
            s.slices,
            vec![
                Slice {
                    job: 0,
                    start: 0,
                    end: 2
                },
                Slice {
                    job: 1,
                    start: 2,
                    end: 4
                },
                Slice {
                    job: 0,
                    start: 4,
                    end: 8
                },
            ]
        );
        assert_eq!(s.preemptions(), 1);
    }

    #[test]
    fn idle_gap_is_skipped() {
        let s = schedule(&set(&[(0, 0, 4, 2), (1, 10, 14, 2)]));
        assert_eq!(s.slices.len(), 2);
        assert_eq!(s.slices[1].start, 10);
        assert!(s.is_feasible());
    }

    #[test]
    fn overload_is_reported_not_hidden() {
        // Both jobs confined to [0,4], 3 ticks each: one must miss.
        let s = schedule(&set(&[(0, 0, 4, 3), (1, 0, 4, 3)]));
        assert!(!s.is_feasible());
        assert_eq!(s.misses.len(), 1);
        // Work is still completed (overrun, not abandonment).
        assert_eq!(s.completions.len(), 2);
        assert!(!feasible(&set(&[(0, 0, 4, 3), (1, 0, 4, 3)])));
    }

    #[test]
    fn paper_style_conflicting_triples_are_infeasible_together() {
        // ⟨0,6,4⟩ and ⟨0,6,4⟩: each fine alone, impossible together.
        let a = set(&[(0, 0, 6, 4)]);
        let b = set(&[(0, 0, 6, 4)]);
        assert!(feasible(&a));
        assert!(feasible(&b));
        assert!(!co_schedulable(&[&a, &b]));
    }

    #[test]
    fn co_schedulable_disjoint_windows() {
        let a = set(&[(0, 0, 5, 4)]);
        let b = set(&[(0, 5, 10, 4)]);
        assert!(co_schedulable(&[&a, &b]));
    }

    #[test]
    fn deadline_ties_break_by_id() {
        let s = schedule(&set(&[(1, 0, 10, 2), (0, 0, 10, 2)]));
        assert_eq!(s.slices[0].job, 0);
    }

    #[test]
    fn empty_set_is_feasible() {
        let s = schedule(&JobSet::default());
        assert!(s.is_feasible());
        assert!(s.slices.is_empty());
        assert!(feasible(&JobSet::default()));
    }

    #[test]
    fn edf_meets_deadlines_that_fifo_would_miss() {
        // FIFO order (by release) would run 0 first and make 1 miss; EDF
        // runs 1 first.
        let jobs = set(&[(0, 0, 100, 50), (1, 1, 10, 5)]);
        let s = schedule(&jobs);
        assert!(s.is_feasible());
        assert!(s.completion_of(1).unwrap() <= 10);
    }

    #[test]
    fn gantt_renders_rows_in_first_run_order() {
        let s = schedule(&set(&[(0, 0, 10, 6), (1, 2, 5, 2)]));
        let gantt = s.render_gantt();
        let lines: Vec<&str> = gantt.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("j0"));
        // Job 0 runs 0-2 and 4-8; job 1 runs 2-4.
        assert!(lines[0].contains("|##..####|"));
        assert!(lines[1].contains("|..##....|"));
    }

    #[test]
    fn empty_schedule_gantt_is_empty() {
        assert_eq!(schedule(&JobSet::default()).render_gantt(), "");
    }

    #[test]
    fn slices_are_contiguous_and_coalesced() {
        let s = schedule(&set(&[(0, 0, 20, 5), (1, 2, 30, 5)]));
        // Job 0 never preempted (earlier deadline), so exactly 2 slices.
        assert_eq!(s.slices.len(), 2);
        for w in s.slices.windows(2) {
            assert!(w[0].end <= w[1].start);
        }
    }

    #[test]
    fn malformed_merge_in_co_schedulable_is_infeasible() {
        // Construct a set whose merge produces a malformed id clash — the
        // helper re-keys ids, so this should still schedule fine.
        let a = set(&[(7, 0, 5, 1)]);
        let b = set(&[(7, 0, 5, 1)]);
        assert!(co_schedulable(&[&a, &b]));
        let _ = SchedError::DuplicateJobId { id: 7 }; // silence unused import
    }
}
