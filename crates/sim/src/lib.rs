//! Discrete-event multiprocessor simulator with fault injection.
//!
//! The ICDCS'98 paper's influence metric needs three measured
//! probabilities per fault factor (its Eq. 1): fault **occurrence** in the
//! source FCM, **transmission** across the communication medium, and
//! **manifestation** in the target FCM. The paper states how each should
//! be obtained — occurrence "from previous usage … or derived by extensive
//! testing", transmission from the medium and data volume, manifestation
//! "by injecting faults into the target FCM" — and closes by noting that
//! "developing techniques to determine and measure actual parameters such
//! as influence across FCMs is crucial … the focus of our continuing
//! work". This crate is that measurement apparatus, built synthetically:
//!
//! * [`model`] — a behavioural system model: tasks with the paper's
//!   ⟨EST, TCD, CT⟩ timing (one-shot or periodic), reading and writing
//!   *media* (global variables, shared memory, message channels), pinned
//!   to processors under preemptive-EDF or non-preemptive-FIFO
//!   scheduling;
//! * [`engine`] — the deterministic discrete-event engine: corrupt data
//!   spreads through media with per-medium transmission probability and
//!   latches into tasks with per-task vulnerability; timing overruns delay
//!   co-scheduled tasks (and, non-preemptively, starve them);
//! * [`fault`] — injectable faults: value corruption, timing overrun,
//!   crash;
//! * [`trace`] — per-trial observations (faulty tasks, deadline misses,
//!   medium corruptions);
//! * [`campaign`] — Monte-Carlo injection campaigns that estimate
//!   influence (`P(target faulty | fault injected in source)`), the
//!   per-factor probabilities p₂ and p₃, and full influence matrices, in
//!   parallel across trials.
//!
//! # Example
//!
//! ```
//! use fcm_sim::model::{Activation, SystemSpecBuilder};
//! use fcm_sim::campaign::InfluenceCampaign;
//! use fcm_core::FactorKind;
//!
//! let mut b = SystemSpecBuilder::new(1);
//! let bus = b.add_medium("bus", FactorKind::MessagePassing, 0.8)?;
//! let src = b.task("src", 0).one_shot(0, 10, 2).writes(bus).build()?;
//! let dst = b.task("dst", 0).one_shot(4, 10, 2).reads(bus).vulnerability(0.5).build()?;
//! let spec = b.build()?;
//! let campaign = InfluenceCampaign::new(spec, 20, 2000, 42);
//! let measured = campaign.measure_influence(src, dst)?;
//! // Analytic Eq. 1 with occurrence 1: 0.8 × 0.5 = 0.4.
//! assert!((measured.estimate - 0.4).abs() < 0.05);
//! # Ok::<(), fcm_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod engine;
mod error;
pub mod fault;
pub mod model;
pub mod trace;

pub use campaign::{InfluenceCampaign, MeasuredInfluence};
pub use error::SimError;
pub use fault::{FaultKind, Injection};
pub use model::{
    Activation, MediumId, RetryPolicy, SchedulingPolicy, SystemSpec, SystemSpecBuilder, TaskId,
    WatchdogSpec,
};
pub use trace::Trace;
