//! The simulated system model.
//!
//! A [`SystemSpec`] describes a multiprocessor software system at the
//! granularity the paper's fault model needs: tasks (threads of control
//! with ⟨EST, TCD, CT⟩ or periodic timing) pinned to processors,
//! exchanging data through *media* — the concrete realisations of the
//! paper's fault factors (global variables, shared memory, message
//! channels).

use std::sync::atomic::{AtomicBool, Ordering};

use fcm_core::{FactorKind, IsolationTechnique, Probability};
use fcm_sched::Time;
use fcm_substrate::Mutex;

use crate::error::SimError;

/// A pre-flight hook validating a built [`SystemSpec`] before it is
/// handed to the engine.
///
/// Static-analysis layers above this crate install one (see
/// [`set_preflight`]) — the simulator itself depends on nothing above
/// it, so the hook is how design-time model checking guards
/// [`SystemSpecBuilder::build`] without inverting the crate layering.
/// The `Err` payload is the rendered diagnostic list.
pub type Preflight = fn(&SystemSpec) -> Result<(), String>;

static PREFLIGHT_ON: AtomicBool = AtomicBool::new(false);
static PREFLIGHT: Mutex<Option<Preflight>> = Mutex::new(None);

/// Installs (or removes, with `None`) the process-wide pre-flight hook.
/// While no hook is installed a spec build costs one relaxed atomic
/// load extra.
pub fn set_preflight(hook: Option<Preflight>) {
    *PREFLIGHT.lock() = hook;
    PREFLIGHT_ON.store(hook.is_some(), Ordering::Release);
}

/// Runs the installed pre-flight hook, if any.
fn run_preflight(spec: &SystemSpec) -> Result<(), SimError> {
    if PREFLIGHT_ON.load(Ordering::Acquire) {
        if let Some(hook) = *PREFLIGHT.lock() {
            hook(spec).map_err(|summary| SimError::PreflightFailed { summary })?;
        }
    }
    Ok(())
}

/// Index of a task within a [`SystemSpec`].
pub type TaskId = usize;

/// Index of a medium within a [`SystemSpec`].
pub type MediumId = usize;

/// Per-processor scheduling policy.
///
/// The paper's §4.2.3 uses this exact knob as an isolation technique:
/// under non-preemptive scheduling "a timing fault (e.g., a task in an
/// infinite loop) can cause all other tasks also to fail", whereas
/// preemption "minimizes the probability of transmission of the timing
/// fault".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedulingPolicy {
    /// Preemptive earliest-deadline-first.
    #[default]
    PreemptiveEdf,
    /// Non-preemptive first-in-first-out (release order).
    NonPreemptiveFifo,
}

/// When a task activates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Activation {
    /// A single job: released at `est`, absolute deadline `tcd`.
    OneShot {
        /// Earliest start time.
        est: Time,
        /// Absolute completion deadline.
        tcd: Time,
    },
    /// A periodic job stream: released every `period` from `offset`,
    /// each job due one period after its release.
    Periodic {
        /// Activation period (also the relative deadline).
        period: Time,
        /// First release time.
        offset: Time,
    },
}

/// The node-failure watchdog: each processor is assumed to emit a
/// heartbeat every `heartbeat_period` ticks; a failure at `t` is noticed
/// at the first heartbeat boundary strictly after `t`, plus
/// `detection_latency` processing delay. Without a watchdog node
/// failures pass silently (no detection, no recovery).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WatchdogSpec {
    /// Heartbeat period (> 0).
    pub heartbeat_period: Time,
    /// Delay between the missed heartbeat and the detection event.
    pub detection_latency: Time,
}

impl WatchdogSpec {
    /// The time a failure at `at` is detected.
    pub fn detection_time(&self, at: Time) -> Time {
        (at / self.heartbeat_period + 1) * self.heartbeat_period + self.detection_latency
    }
}

/// Checkpoint/retry policy for jobs killed by a node failure: each
/// detected kill is retried up to `max_retries` times with bounded
/// exponential backoff (`backoff_base << attempt`, plus deterministic
/// seeded jitter in `[0, backoff_base)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RetryPolicy {
    /// Maximum retry attempts per killed job (0 = detect only).
    pub max_retries: u32,
    /// Base backoff delay (> 0); attempt `k` waits `backoff_base << k`.
    pub backoff_base: Time,
}

impl RetryPolicy {
    /// The deterministic portion of the backoff before attempt `attempt`.
    pub fn backoff(&self, attempt: u32) -> Time {
        self.backoff_base << attempt.min(32)
    }
}

/// A communication medium: one concrete fault-transmission path.
#[derive(Debug, Clone, PartialEq)]
pub struct MediumSpec {
    /// Display name.
    pub name: String,
    /// The fault-factor kind this medium realises.
    pub kind: FactorKind,
    /// Transmission probability p₂: the chance a corrupt write leaves the
    /// medium corrupt (after isolation multipliers).
    pub transmission: Probability,
}

/// A task: a thread of control pinned to one processor.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSpec {
    /// Display name.
    pub name: String,
    /// Host processor.
    pub processor: usize,
    /// Activation pattern.
    pub activation: Activation,
    /// Computation time per activation.
    pub ct: Time,
    /// Media read at each completion.
    pub reads: Vec<MediumId>,
    /// Media written at each completion.
    pub writes: Vec<MediumId>,
    /// Manifestation probability p₃: the chance a corrupt input latches a
    /// fault into this task.
    pub vulnerability: Probability,
    /// Spontaneous fault occurrence p₁: the chance each completing job
    /// latches a value fault on its own (field failure rate). Zero by
    /// default; injection campaigns force occurrence instead.
    pub fault_rate: Probability,
    /// Recovery-block acceptance test: the chance a corrupt input is
    /// detected and discarded before it can manifest (the paper's §3.2
    /// "Recovery Blocks to contain faults" at task level). Zero = none.
    pub recovery: Probability,
    /// Majority voter: when `true`, corrupt inputs manifest only if a
    /// strict majority of the task's read media are corrupt — the
    /// downstream half of TMR/N-version redundancy ("replication and
    /// design diversity", paper §1.1).
    pub voter: bool,
    /// Checkpoint interval: progress is durably saved every `interval`
    /// execution ticks, so a job killed by a node failure restarts from
    /// its last checkpoint instead of from scratch. `None` = no
    /// checkpointing (full re-execution on retry).
    pub checkpoint: Option<Time>,
}

/// A complete simulated system.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemSpec {
    /// Number of processors.
    pub processors: usize,
    /// Per-processor scheduling policy (uniform across the platform).
    pub policy: SchedulingPolicy,
    /// The tasks.
    pub tasks: Vec<TaskSpec>,
    /// The media.
    pub media: Vec<MediumSpec>,
    /// Node-failure watchdog (None = failures pass undetected).
    pub watchdog: Option<WatchdogSpec>,
    /// Checkpoint/retry policy for detected kills (None = no retries).
    pub retry: Option<RetryPolicy>,
}

impl SystemSpec {
    /// The tasks hosted on `processor`.
    pub fn tasks_on(&self, processor: usize) -> impl Iterator<Item = (TaskId, &TaskSpec)> + '_ {
        self.tasks
            .iter()
            .enumerate()
            .filter(move |(_, t)| t.processor == processor)
    }

    /// Task count.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Medium count.
    pub fn medium_count(&self) -> usize {
        self.media.len()
    }

    /// Long-run CPU utilisation of `processor` from its periodic tasks
    /// (one-shot tasks contribute nothing asymptotically). Values above
    /// 1.0 mean guaranteed eventual deadline misses under any policy.
    pub fn utilisation(&self, processor: usize) -> f64 {
        self.tasks_on(processor)
            .filter_map(|(_, t)| match t.activation {
                Activation::Periodic { period, .. } => Some(t.ct as f64 / period as f64),
                Activation::OneShot { .. } => None,
            })
            .sum()
    }
}

/// Builder for [`SystemSpec`] with validation at every step.
///
/// # Example
///
/// ```
/// use fcm_sim::model::SystemSpecBuilder;
/// use fcm_core::FactorKind;
///
/// let mut b = SystemSpecBuilder::new(2);
/// let shm = b.add_medium("shm", FactorKind::SharedMemory, 0.9)?;
/// let writer = b.task("writer", 0).periodic(10, 0, 2).writes(shm).build()?;
/// let reader = b.task("reader", 1).periodic(10, 3, 2).reads(shm).vulnerability(0.4).build()?;
/// let spec = b.build()?;
/// assert_eq!(spec.task_count(), 2);
/// # let _ = (writer, reader);
/// # Ok::<(), fcm_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SystemSpecBuilder {
    processors: usize,
    policy: SchedulingPolicy,
    tasks: Vec<TaskSpec>,
    media: Vec<MediumSpec>,
    watchdog: Option<WatchdogSpec>,
    retry: Option<RetryPolicy>,
}

impl SystemSpecBuilder {
    /// Starts a system with `processors` processors and preemptive EDF.
    pub fn new(processors: usize) -> Self {
        SystemSpecBuilder {
            processors,
            policy: SchedulingPolicy::PreemptiveEdf,
            tasks: Vec::new(),
            media: Vec::new(),
            watchdog: None,
            retry: None,
        }
    }

    /// Sets the scheduling policy.
    pub fn policy(&mut self, policy: SchedulingPolicy) -> &mut Self {
        self.policy = policy;
        self
    }

    /// Enables the node-failure watchdog.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidTiming`] for a zero heartbeat period.
    pub fn watchdog(
        &mut self,
        heartbeat_period: Time,
        detection_latency: Time,
    ) -> Result<&mut Self, SimError> {
        if heartbeat_period == 0 {
            return Err(SimError::InvalidTiming {
                task: "watchdog".into(),
            });
        }
        self.watchdog = Some(WatchdogSpec {
            heartbeat_period,
            detection_latency,
        });
        Ok(self)
    }

    /// Enables checkpoint/retry of jobs killed by node failures.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidTiming`] for a zero backoff base.
    pub fn retry(&mut self, max_retries: u32, backoff_base: Time) -> Result<&mut Self, SimError> {
        if backoff_base == 0 {
            return Err(SimError::InvalidTiming {
                task: "retry".into(),
            });
        }
        self.retry = Some(RetryPolicy {
            max_retries,
            backoff_base,
        });
        Ok(self)
    }

    /// Adds a medium with transmission probability `transmission`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidProbability`] for an out-of-range value.
    pub fn add_medium(
        &mut self,
        name: impl Into<String>,
        kind: FactorKind,
        transmission: f64,
    ) -> Result<MediumId, SimError> {
        let transmission =
            Probability::new(transmission).map_err(|_| SimError::InvalidProbability {
                value: transmission,
            })?;
        self.media.push(MediumSpec {
            name: name.into(),
            kind,
            transmission,
        });
        Ok(self.media.len() - 1)
    }

    /// Applies an isolation technique to a medium: its transmission
    /// probability is scaled by the technique's multiplier when the
    /// technique mitigates the medium's factor kind (the paper's model of
    /// isolation, §3–§4.2).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownMedium`] for an invalid medium.
    pub fn isolate_medium(
        &mut self,
        medium: MediumId,
        technique: IsolationTechnique,
    ) -> Result<&mut Self, SimError> {
        let spec = self
            .media
            .get_mut(medium)
            .ok_or(SimError::UnknownMedium { index: medium })?;
        if technique.mitigates(spec.kind) {
            spec.transmission = Probability::clamped(
                spec.transmission.value() * technique.transmission_multiplier(),
            );
        }
        Ok(self)
    }

    /// Starts building a task pinned to `processor`.
    pub fn task(&mut self, name: impl Into<String>, processor: usize) -> TaskBuilder<'_> {
        TaskBuilder {
            owner: self,
            name: name.into(),
            processor,
            activation: None,
            ct: 1,
            reads: Vec::new(),
            writes: Vec::new(),
            vulnerability: Probability::ONE,
            fault_rate: Probability::ZERO,
            recovery: Probability::ZERO,
            voter: false,
            checkpoint: None,
        }
    }

    /// Finishes the system.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownProcessor`] when the platform is empty
    /// but tasks exist, or [`SimError::PreflightFailed`] when an
    /// installed pre-flight hook (see [`set_preflight`]) rejects the
    /// finished spec.
    pub fn build(self) -> Result<SystemSpec, SimError> {
        if self.processors == 0 && !self.tasks.is_empty() {
            return Err(SimError::UnknownProcessor {
                processor: 0,
                count: 0,
            });
        }
        let spec = SystemSpec {
            processors: self.processors,
            policy: self.policy,
            tasks: self.tasks,
            media: self.media,
            watchdog: self.watchdog,
            retry: self.retry,
        };
        run_preflight(&spec)?;
        Ok(spec)
    }
}

/// Builder for one task; finished with [`TaskBuilder::build`].
#[derive(Debug)]
pub struct TaskBuilder<'a> {
    owner: &'a mut SystemSpecBuilder,
    name: String,
    processor: usize,
    activation: Option<Activation>,
    ct: Time,
    reads: Vec<MediumId>,
    writes: Vec<MediumId>,
    vulnerability: Probability,
    fault_rate: Probability,
    recovery: Probability,
    voter: bool,
    checkpoint: Option<Time>,
}

impl TaskBuilder<'_> {
    /// One-shot activation with the paper's ⟨EST, TCD, CT⟩ triple.
    pub fn one_shot(mut self, est: Time, tcd: Time, ct: Time) -> Self {
        self.activation = Some(Activation::OneShot { est, tcd });
        self.ct = ct;
        self
    }

    /// Periodic activation: period, first release offset, computation
    /// time.
    pub fn periodic(mut self, period: Time, offset: Time, ct: Time) -> Self {
        self.activation = Some(Activation::Periodic { period, offset });
        self.ct = ct;
        self
    }

    /// Adds a medium this task reads at completion.
    pub fn reads(mut self, medium: MediumId) -> Self {
        self.reads.push(medium);
        self
    }

    /// Adds a medium this task writes at completion.
    pub fn writes(mut self, medium: MediumId) -> Self {
        self.writes.push(medium);
        self
    }

    /// Sets the manifestation probability p₃ (default 1.0: every corrupt
    /// input latches a fault).
    pub fn vulnerability(mut self, p: f64) -> Self {
        self.vulnerability = Probability::clamped(p);
        self
    }

    /// Sets the spontaneous per-activation fault rate p₁ (default 0).
    pub fn fault_rate(mut self, p: f64) -> Self {
        self.fault_rate = Probability::clamped(p);
        self
    }

    /// Sets the recovery-block detection probability (default 0): a
    /// corrupt input is detected and discarded with this probability
    /// before the vulnerability roll.
    pub fn recovery(mut self, p: f64) -> Self {
        self.recovery = Probability::clamped(p);
        self
    }

    /// Makes the task a majority voter over its read media (default
    /// false): corruption manifests only when a strict majority of its
    /// inputs are corrupt.
    pub fn voter(mut self) -> Self {
        self.voter = true;
        self
    }

    /// Sets the checkpoint interval (default none): a job killed by a
    /// node failure restarts from its last multiple of `interval`
    /// executed ticks rather than from scratch. An interval of 0 is
    /// treated as no checkpointing.
    pub fn checkpoint(mut self, interval: Time) -> Self {
        self.checkpoint = (interval > 0).then_some(interval);
        self
    }

    /// Validates and registers the task, returning its id.
    ///
    /// # Errors
    ///
    /// * [`SimError::UnknownProcessor`] — processor out of range;
    /// * [`SimError::UnknownMedium`] — a read/write medium is missing;
    /// * [`SimError::InvalidTiming`] — zero computation time or period,
    ///   or no activation was specified.
    pub fn build(self) -> Result<TaskId, SimError> {
        if self.processor >= self.owner.processors {
            return Err(SimError::UnknownProcessor {
                processor: self.processor,
                count: self.owner.processors,
            });
        }
        for &m in self.reads.iter().chain(&self.writes) {
            if m >= self.owner.media.len() {
                return Err(SimError::UnknownMedium { index: m });
            }
        }
        let activation = self.activation.ok_or_else(|| SimError::InvalidTiming {
            task: self.name.clone(),
        })?;
        let bad_timing = self.ct == 0
            || matches!(activation, Activation::Periodic { period, .. } if period == 0);
        if bad_timing {
            return Err(SimError::InvalidTiming { task: self.name });
        }
        self.owner.tasks.push(TaskSpec {
            name: self.name,
            processor: self.processor,
            activation,
            ct: self.ct,
            reads: self.reads,
            writes: self.writes,
            vulnerability: self.vulnerability,
            fault_rate: self.fault_rate,
            recovery: self.recovery,
            voter: self.voter,
            checkpoint: self.checkpoint,
        });
        Ok(self.owner.tasks.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_a_valid_spec() {
        let mut b = SystemSpecBuilder::new(2);
        let m = b.add_medium("gv", FactorKind::GlobalVariable, 0.7).unwrap();
        let t0 = b.task("a", 0).one_shot(0, 10, 2).writes(m).build().unwrap();
        let t1 = b
            .task("b", 1)
            .periodic(20, 5, 3)
            .reads(m)
            .vulnerability(0.3)
            .build()
            .unwrap();
        let spec = b.build().unwrap();
        assert_eq!((t0, t1), (0, 1));
        assert_eq!(spec.task_count(), 2);
        assert_eq!(spec.medium_count(), 1);
        assert_eq!(spec.tasks_on(0).count(), 1);
        assert_eq!(spec.tasks[1].vulnerability.value(), 0.3);
    }

    #[test]
    fn invalid_processor_is_rejected() {
        let mut b = SystemSpecBuilder::new(1);
        let err = b.task("x", 3).one_shot(0, 5, 1).build().unwrap_err();
        assert!(matches!(
            err,
            SimError::UnknownProcessor {
                processor: 3,
                count: 1
            }
        ));
    }

    #[test]
    fn invalid_medium_is_rejected() {
        let mut b = SystemSpecBuilder::new(1);
        let err = b
            .task("x", 0)
            .one_shot(0, 5, 1)
            .reads(7)
            .build()
            .unwrap_err();
        assert!(matches!(err, SimError::UnknownMedium { index: 7 }));
    }

    #[test]
    fn timing_must_be_positive_and_present() {
        let mut b = SystemSpecBuilder::new(1);
        assert!(matches!(
            b.task("x", 0).one_shot(0, 5, 0).build(),
            Err(SimError::InvalidTiming { .. })
        ));
        assert!(matches!(
            b.task("y", 0).periodic(0, 0, 1).build(),
            Err(SimError::InvalidTiming { .. })
        ));
        assert!(matches!(
            b.task("z", 0).build(),
            Err(SimError::InvalidTiming { .. })
        ));
    }

    #[test]
    fn medium_probability_is_validated() {
        let mut b = SystemSpecBuilder::new(1);
        assert!(matches!(
            b.add_medium("m", FactorKind::SharedMemory, 1.5),
            Err(SimError::InvalidProbability { .. })
        ));
    }

    #[test]
    fn isolation_scales_transmission_of_matching_media_only() {
        let mut b = SystemSpecBuilder::new(1);
        let gv = b.add_medium("gv", FactorKind::GlobalVariable, 0.8).unwrap();
        let ch = b.add_medium("ch", FactorKind::MessagePassing, 0.8).unwrap();
        b.isolate_medium(gv, IsolationTechnique::InformationHiding)
            .unwrap();
        b.isolate_medium(ch, IsolationTechnique::InformationHiding)
            .unwrap();
        let spec = b.build().unwrap();
        assert!((spec.media[gv].transmission.value() - 0.16).abs() < 1e-12);
        assert_eq!(spec.media[ch].transmission.value(), 0.8);
    }

    #[test]
    fn isolate_unknown_medium_errors() {
        let mut b = SystemSpecBuilder::new(1);
        assert!(matches!(
            b.isolate_medium(0, IsolationTechnique::InformationHiding),
            Err(SimError::UnknownMedium { index: 0 })
        ));
    }

    #[test]
    fn zero_processor_platform_with_tasks_is_invalid() {
        let mut b = SystemSpecBuilder::new(0);
        // Task creation already fails with processor out of range.
        assert!(b.task("x", 0).one_shot(0, 5, 1).build().is_err());
        // An empty platform without tasks is fine.
        assert!(SystemSpecBuilder::new(0).build().is_ok());
    }

    #[test]
    fn utilisation_sums_periodic_load_per_processor() {
        let mut b = SystemSpecBuilder::new(2);
        b.task("a", 0).periodic(10, 0, 2).build().unwrap();
        b.task("b", 0).periodic(20, 0, 5).build().unwrap();
        b.task("one_shot", 0).one_shot(0, 9, 3).build().unwrap();
        b.task("c", 1).periodic(4, 0, 1).build().unwrap();
        let spec = b.build().unwrap();
        assert!((spec.utilisation(0) - 0.45).abs() < 1e-12);
        assert!((spec.utilisation(1) - 0.25).abs() < 1e-12);
        assert_eq!(spec.utilisation(7), 0.0);
    }

    #[test]
    fn watchdog_and_retry_are_validated_and_recorded() {
        let mut b = SystemSpecBuilder::new(1);
        b.watchdog(10, 2).unwrap();
        b.retry(3, 4).unwrap();
        b.task("t", 0)
            .periodic(20, 0, 5)
            .checkpoint(2)
            .build()
            .unwrap();
        let spec = b.build().unwrap();
        let wd = spec.watchdog.unwrap();
        assert_eq!(wd.heartbeat_period, 10);
        assert_eq!(wd.detection_latency, 2);
        assert_eq!(spec.retry.unwrap().max_retries, 3);
        assert_eq!(spec.tasks[0].checkpoint, Some(2));

        assert!(SystemSpecBuilder::new(1).watchdog(0, 1).is_err());
        assert!(SystemSpecBuilder::new(1).retry(1, 0).is_err());
        // Zero checkpoint interval degrades to "no checkpointing".
        let mut b2 = SystemSpecBuilder::new(1);
        b2.task("u", 0).periodic(5, 0, 1).checkpoint(0).build().unwrap();
        assert_eq!(b2.build().unwrap().tasks[0].checkpoint, None);
    }

    #[test]
    fn detection_time_rounds_up_to_the_next_heartbeat() {
        let wd = WatchdogSpec {
            heartbeat_period: 10,
            detection_latency: 3,
        };
        assert_eq!(wd.detection_time(0), 13);
        assert_eq!(wd.detection_time(9), 13);
        // A failure exactly on a heartbeat is caught by the *next* one.
        assert_eq!(wd.detection_time(10), 23);
    }

    #[test]
    fn backoff_doubles_per_attempt() {
        let rp = RetryPolicy {
            max_retries: 3,
            backoff_base: 4,
        };
        assert_eq!(rp.backoff(0), 4);
        assert_eq!(rp.backoff(1), 8);
        assert_eq!(rp.backoff(2), 16);
    }

    #[test]
    fn policy_default_and_override() {
        let mut b = SystemSpecBuilder::new(1);
        b.policy(SchedulingPolicy::NonPreemptiveFifo);
        let spec = b.build().unwrap();
        assert_eq!(spec.policy, SchedulingPolicy::NonPreemptiveFifo);
        assert_eq!(SchedulingPolicy::default(), SchedulingPolicy::PreemptiveEdf);
    }
}
