//! Error type for the simulator.

use std::error::Error;
use std::fmt;

/// Errors reported while building or running a simulated system.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A task referenced a processor outside the platform.
    UnknownProcessor {
        /// The offending processor index.
        processor: usize,
        /// Number of processors in the platform.
        count: usize,
    },
    /// A task referenced a medium that does not exist.
    UnknownMedium {
        /// The offending medium index.
        index: usize,
    },
    /// A task id was out of range.
    UnknownTask {
        /// The offending task index.
        index: usize,
    },
    /// A probability parameter was outside `[0, 1]`.
    InvalidProbability {
        /// The offending value.
        value: f64,
    },
    /// A task has zero computation time or a zero period.
    InvalidTiming {
        /// Name of the offending task.
        task: String,
    },
    /// A campaign was configured with zero trials.
    NoTrials,
    /// An installed pre-flight hook (see [`crate::model::set_preflight`])
    /// rejected the built system spec.
    PreflightFailed {
        /// The rendered diagnostic lines, one per line.
        summary: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownProcessor { processor, count } => {
                write!(
                    f,
                    "processor {processor} out of range for platform of {count}"
                )
            }
            SimError::UnknownMedium { index } => write!(f, "unknown medium {index}"),
            SimError::UnknownTask { index } => write!(f, "unknown task {index}"),
            SimError::InvalidProbability { value } => {
                write!(f, "probability {value} is outside [0, 1]")
            }
            SimError::InvalidTiming { task } => {
                write!(f, "task {task} has zero computation time or period")
            }
            SimError::NoTrials => write!(f, "campaign requires at least one trial"),
            SimError::PreflightFailed { summary } => {
                write!(f, "pre-flight model check failed:\n{summary}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert_eq!(
            SimError::UnknownProcessor {
                processor: 3,
                count: 2
            }
            .to_string(),
            "processor 3 out of range for platform of 2"
        );
        assert!(SimError::InvalidTiming { task: "nav".into() }
            .to_string()
            .contains("nav"));
    }

    #[test]
    fn is_send_sync() {
        fn check<E: std::error::Error + Send + Sync + 'static>(_: E) {}
        check(SimError::NoTrials);
    }
}
