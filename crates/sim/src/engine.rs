//! The discrete-event execution engine.
//!
//! Execution is deterministic given a seed: events are totally ordered by
//! `(time, kind, sequence)` and all probabilistic choices (transmission,
//! manifestation) are drawn from a single seeded RNG in event order.
//!
//! Data semantics: a task reads its input media and writes its output
//! media when a job *completes*. A corrupt write transmits with the
//! medium's probability p₂ — when transmission fails, the freshly written
//! data is usable and the medium becomes clean (rewrites repair). A task
//! reading a corrupt medium latches a value fault with its vulnerability
//! p₃. Timing faults arise from deadline misses, including jobs still
//! unfinished at the horizon (starvation under non-preemptive
//! scheduling).
//!
//! Node-failure recovery: a `NodeCrash`/`NodeTransient` injection halts
//! a processor and kills its running job. With a watchdog configured the
//! failure is detected at the next heartbeat (plus detection latency);
//! with a retry policy the killed job is then re-released from its last
//! checkpoint under bounded exponential backoff — on the home node once
//! it heals, or failed over to the lowest-index surviving processor when
//! the home node is permanently dead. Jobs whose retries exhaust stay
//! outstanding and are counted by the starvation sweep.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use fcm_substrate::Bytes;
use fcm_substrate::rng::Rng;

use fcm_sched::Time;

use crate::fault::{FaultKind, Injection};
use crate::model::{Activation, SchedulingPolicy, SystemSpec, TaskId};
use crate::trace::{Trace, TraceEvent};

/// Marker payload for clean data.
pub const CLEAN: Bytes = Bytes::from_static(b"CLEAN");
/// Marker payload for corrupt data.
pub const CORRUPT: Bytes = Bytes::from_static(b"CORRUPT");

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Job {
    task: TaskId,
    release: Time,
    abs_deadline: Time,
    remaining: Time,
    /// Full computation demand at release (checkpoint arithmetic).
    total: Time,
    /// Time of the node failure that last killed this job, when it is a
    /// checkpoint-restarted job (recovery-time accounting).
    failed_at: Option<Time>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    /// Injections apply before anything else at the same instant.
    Inject(usize),
    /// Node healing next, so same-instant retries see the node up.
    NodeRecover {
        node: usize,
    },
    /// Watchdog detections before completions and retries.
    Detect {
        node: usize,
    },
    /// Completions before releases so a freed processor sees new work.
    Finish {
        processor: usize,
        token: u64,
    },
    /// Checkpoint retries of killed jobs, after completions free CPU.
    Retry(usize),
    Release {
        task: TaskId,
    },
}

/// A job killed by a node failure, awaiting retry.
#[derive(Debug, Clone, Copy)]
struct KilledJob {
    job: Job,
    /// Home processor (failover may re-target the restart).
    node: usize,
    /// Index of the next retry attempt (0-based).
    attempt: u32,
    /// Whether a detection has already scheduled its retry chain.
    scheduled: bool,
}

#[derive(Debug, Default)]
struct ProcessorState {
    running: Option<(Job, Time /* slice start */)>,
    ready: Vec<(Job, u64 /* fifo order */)>,
    token: u64,
}

/// Runs one trial of `spec` with the given injections.
///
/// `horizon` bounds simulated time; jobs released but unfinished whose
/// deadline falls within the horizon are counted as deadline misses
/// (starvation). The run is fully deterministic in `seed`.
pub fn run(spec: &SystemSpec, injections: &[Injection], seed: u64, horizon: Time) -> Trace {
    let mut rng = Rng::seed_from_u64(seed);
    let mut trace = Trace::empty(spec.task_count(), spec.medium_count());

    // Mutable task state.
    let mut crashed = vec![false; spec.task_count()];
    let mut overrun = vec![1u32; spec.task_count()];
    // Medium state.
    let mut corrupt = vec![false; spec.medium_count()];

    let mut processors: Vec<ProcessorState> = (0..spec.processors)
        .map(|_| ProcessorState::default())
        .collect();
    // Node availability: `down` = currently unavailable, `dead` =
    // permanently crashed (a dead node is also down forever).
    let mut down = vec![false; spec.processors];
    let mut dead = vec![false; spec.processors];
    // Jobs killed by node failures, indexed by Retry events.
    let mut killed: Vec<KilledJob> = Vec::new();
    // Most recent failure instant per node (detection-latency histogram).
    let mut last_failure: Vec<Option<Time>> = vec![None; spec.processors];

    let mut seq: u64 = 0;
    let mut heap: BinaryHeap<Reverse<(Time, EventKind, u64)>> = BinaryHeap::new();
    let push = |heap: &mut BinaryHeap<_>, t: Time, kind: EventKind, seq: &mut u64| {
        heap.push(Reverse((t, kind, *seq)));
        *seq += 1;
    };

    for (idx, inj) in injections.iter().enumerate() {
        let target_valid = if inj.kind.is_node_fault() {
            inj.target < spec.processors
        } else {
            inj.target < spec.task_count()
        };
        if inj.at <= horizon && target_valid {
            push(&mut heap, inj.at, EventKind::Inject(idx), &mut seq);
        }
    }
    for (id, task) in spec.tasks.iter().enumerate() {
        let first = match task.activation {
            Activation::OneShot { est, .. } => est,
            Activation::Periodic { offset, .. } => offset,
        };
        if first <= horizon {
            push(&mut heap, first, EventKind::Release { task: id }, &mut seq);
        }
    }

    // Track unfinished released work for the end-of-run starvation sweep.
    let mut outstanding: Vec<(TaskId, Time /* abs deadline */)> = Vec::new();

    while let Some(Reverse((now, kind, _))) = heap.pop() {
        if now > horizon {
            break;
        }
        match kind {
            EventKind::Inject(idx) => {
                let inj = injections[idx];
                match inj.kind {
                    FaultKind::ValueCorruption => {
                        if !trace.value_faulty[inj.target] {
                            trace.value_faulty[inj.target] = true;
                            fcm_obs::hist_record("sim.fault_latch_at", now);
                            trace.events.push(TraceEvent::FaultLatched {
                                task: inj.target,
                                at: now,
                            });
                        }
                    }
                    FaultKind::TimingOverrun { factor } => overrun[inj.target] = factor.max(1),
                    FaultKind::Crash => crashed[inj.target] = true,
                    FaultKind::NodeCrash | FaultKind::NodeTransient { .. } => {
                        let node = inj.target;
                        if down[node] {
                            continue; // already down: no double failure
                        }
                        down[node] = true;
                        last_failure[node] = Some(now);
                        trace.events.push(TraceEvent::NodeFailed { node, at: now });
                        if let FaultKind::NodeTransient { downtime } = inj.kind {
                            push(
                                &mut heap,
                                now + downtime,
                                EventKind::NodeRecover { node },
                                &mut seq,
                            );
                        } else {
                            dead[node] = true;
                        }
                        // Kill the running job; preserve checkpointed
                        // progress for a later retry.
                        if let Some((mut job, slice_start)) = processors[node].running.take() {
                            processors[node].token += 1; // stale any Finish
                            job.remaining -= now - slice_start;
                            let executed = job.total - job.remaining;
                            let saved = spec.tasks[job.task]
                                .checkpoint
                                .map_or(0, |cp| (executed / cp) * cp);
                            job.remaining = job.total - saved;
                            job.failed_at = Some(now);
                            killed.push(KilledJob {
                                job,
                                node,
                                attempt: 0,
                                scheduled: false,
                            });
                        }
                        if let Some(wd) = spec.watchdog {
                            push(
                                &mut heap,
                                wd.detection_time(now),
                                EventKind::Detect { node },
                                &mut seq,
                            );
                        }
                    }
                }
            }
            EventKind::NodeRecover { node } => {
                down[node] = false;
                trace.events.push(TraceEvent::NodeRecovered { node, at: now });
                dispatch(spec, &mut processors[node], node, now, &mut heap, &mut seq);
            }
            EventKind::Detect { node } => {
                trace.detections += 1;
                if let Some(failed_at) = last_failure[node].take() {
                    fcm_obs::hist_record("sim.detect_latency", now - failed_at);
                }
                trace
                    .events
                    .push(TraceEvent::FailureDetected { node, at: now });
                if let Some(rp) = spec.retry {
                    if rp.max_retries > 0 {
                        for (idx, k) in killed.iter_mut().enumerate() {
                            if k.node == node && !k.scheduled {
                                k.scheduled = true;
                                let jitter = rng.gen_range(0..rp.backoff_base);
                                let delay = rp.backoff(0) + jitter;
                                fcm_obs::hist_record("sim.retry_backoff", delay);
                                push(&mut heap, now + delay, EventKind::Retry(idx), &mut seq);
                            }
                        }
                    }
                }
            }
            EventKind::Retry(idx) => {
                trace.retries += 1;
                let entry = killed[idx];
                let home = entry.node;
                // Restart on the home node when it is back up; fail over
                // to the lowest-index survivor when it is dead for good.
                let target = if !down[home] {
                    Some(home)
                } else if dead[home] {
                    (0..spec.processors).find(|&p| !down[p])
                } else {
                    None // transient outage: wait for the node
                };
                match target {
                    Some(proc) => {
                        if proc != home {
                            trace.failovers += 1;
                            if let Some(failed_at) = entry.job.failed_at {
                                fcm_obs::hist_record("sim.failover_latency", now - failed_at);
                            }
                        }
                        trace.restarts += 1;
                        trace.events.push(TraceEvent::JobRestarted {
                            task: entry.job.task,
                            attempt: entry.attempt,
                            at: now,
                        });
                        processors[proc].ready.push((entry.job, seq));
                        seq += 1;
                        dispatch(spec, &mut processors[proc], proc, now, &mut heap, &mut seq);
                    }
                    None => {
                        let rp = spec.retry.expect("retry event without a policy");
                        let next = entry.attempt + 1;
                        if next < rp.max_retries {
                            killed[idx].attempt = next;
                            let jitter = rng.gen_range(0..rp.backoff_base);
                            let delay = rp.backoff(next) + jitter;
                            fcm_obs::hist_record("sim.retry_backoff", delay);
                            push(&mut heap, now + delay, EventKind::Retry(idx), &mut seq);
                        }
                        // Retries exhausted: the job stays outstanding
                        // and the starvation sweep counts the miss.
                    }
                }
            }
            EventKind::Release { task } => {
                let t = &spec.tasks[task];
                let (abs_deadline, next_release) = match t.activation {
                    Activation::OneShot { tcd, .. } => (tcd, None),
                    Activation::Periodic { period, .. } => (now + period, Some(now + period)),
                };
                let demand = t.ct * Time::from(overrun[task]);
                let job = Job {
                    task,
                    release: now,
                    abs_deadline,
                    remaining: demand,
                    total: demand,
                    failed_at: None,
                };
                outstanding.push((task, abs_deadline));
                let proc = t.processor;
                processors[proc].ready.push((job, seq));
                seq += 1;
                if !down[proc] {
                    dispatch(spec, &mut processors[proc], proc, now, &mut heap, &mut seq);
                }
                if let Some(next) = next_release {
                    if next <= horizon {
                        push(&mut heap, next, EventKind::Release { task }, &mut seq);
                    }
                }
            }
            EventKind::Finish { processor, token } => {
                if token != processors[processor].token {
                    continue; // stale: the running job changed since
                }
                let (job, _) = processors[processor]
                    .running
                    .take()
                    .expect("finish event for an idle processor");
                processors[processor].token += 1;
                complete_job(
                    spec,
                    &job,
                    now,
                    &mut trace,
                    &mut corrupt,
                    &crashed,
                    &mut rng,
                );
                // Retire from the outstanding list (first matching entry).
                if let Some(pos) = outstanding
                    .iter()
                    .position(|&(t, d)| t == job.task && d == job.abs_deadline)
                {
                    outstanding.swap_remove(pos);
                }
                dispatch(
                    spec,
                    &mut processors[processor],
                    processor,
                    now,
                    &mut heap,
                    &mut seq,
                );
            }
        }
    }

    // Starvation sweep: released, unfinished, deadline within horizon.
    for (task, deadline) in outstanding {
        if deadline <= horizon {
            trace.deadline_misses[task] += 1;
            trace.events.push(TraceEvent::DeadlineMiss {
                task,
                deadline,
                at: horizon,
            });
        }
    }
    // Record final medium payloads.
    for (m, &c) in corrupt.iter().enumerate() {
        if trace.medium_payloads[m].is_some() {
            trace.medium_payloads[m] = Some(if c { CORRUPT } else { CLEAN });
        }
    }
    trace
}

/// (Re)selects the job to run on `proc` at `now` and schedules its finish.
fn dispatch(
    spec: &SystemSpec,
    state: &mut ProcessorState,
    proc: usize,
    now: Time,
    heap: &mut BinaryHeap<Reverse<(Time, EventKind, u64)>>,
    seq: &mut u64,
) {
    match spec.policy {
        SchedulingPolicy::PreemptiveEdf => {
            // Candidate: earliest deadline among ready ∪ running.
            let best_ready = state
                .ready
                .iter()
                .enumerate()
                .min_by_key(|(_, (j, s))| (j.abs_deadline, j.release, *s))
                .map(|(i, (j, _))| (i, *j));
            match (state.running, best_ready) {
                (None, Some((i, _))) => {
                    let (job, _) = state.ready.swap_remove(i);
                    start(state, proc, job, now, heap, seq);
                }
                (Some((running, slice_start)), Some((i, candidate)))
                    if candidate.abs_deadline < running.abs_deadline =>
                {
                    // Preempt: bank the consumed time, requeue the loser.
                    let mut loser = running;
                    loser.remaining -= now - slice_start;
                    state.ready.push((loser, *seq));
                    *seq += 1;
                    let (job, _) = state.ready.swap_remove(i);
                    state.token += 1; // invalidate the old finish event
                    start(state, proc, job, now, heap, seq);
                }
                _ => {}
            }
        }
        SchedulingPolicy::NonPreemptiveFifo => {
            if state.running.is_none() && !state.ready.is_empty() {
                let (i, _) = state
                    .ready
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, (j, s))| (j.release, *s))
                    .expect("non-empty ready queue");
                let (job, _) = state.ready.swap_remove(i);
                start(state, proc, job, now, heap, seq);
            }
        }
    }
}

fn start(
    state: &mut ProcessorState,
    proc: usize,
    job: Job,
    now: Time,
    heap: &mut BinaryHeap<Reverse<(Time, EventKind, u64)>>,
    seq: &mut u64,
) {
    state.running = Some((job, now));
    heap.push(Reverse((
        now + job.remaining,
        EventKind::Finish {
            processor: proc,
            token: state.token,
        },
        *seq,
    )));
    *seq += 1;
}

fn complete_job(
    spec: &SystemSpec,
    job: &Job,
    now: Time,
    trace: &mut Trace,
    corrupt: &mut [bool],
    crashed: &[bool],
    rng: &mut Rng,
) {
    let task = &spec.tasks[job.task];
    trace.completions[job.task] += 1;
    trace.events.push(TraceEvent::Completion {
        task: job.task,
        at: now,
    });
    if let Some(failed_at) = job.failed_at {
        // A checkpoint-restarted job ran to completion: the recovery
        // interval spans from the killing node failure to now.
        trace.recovery_times.push(now - failed_at);
        fcm_obs::hist_record("sim.recovery_time", now - failed_at);
    }
    if now > job.abs_deadline {
        trace.deadline_misses[job.task] += 1;
        trace.events.push(TraceEvent::DeadlineMiss {
            task: job.task,
            deadline: job.abs_deadline,
            at: now,
        });
    }
    if crashed[job.task] {
        return; // crashed: no data effects
    }
    // Reads. A majority voter sees corruption only when a strict majority
    // of its inputs are corrupt (TMR masking); it then behaves like a task
    // reading one corrupt input. Ordinary tasks process inputs
    // independently: each corrupt input may first be caught by the
    // recovery block, otherwise it manifests with probability p₃.
    if task.voter {
        let corrupt_inputs = task.reads.iter().filter(|&&m| corrupt[m]).count();
        let outvoted = corrupt_inputs * 2 <= task.reads.len();
        if corrupt_inputs > 0 && outvoted {
            trace.recoveries[job.task] += 1; // masked by the vote
        }
        if !outvoted && !trace.value_faulty[job.task] {
            let caught = task.recovery.value() > 0.0 && rng.gen::<f64>() < task.recovery.value();
            if caught {
                trace.recoveries[job.task] += 1;
            } else if rng.gen::<f64>() < task.vulnerability.value() {
                trace.value_faulty[job.task] = true;
                fcm_obs::hist_record("sim.fault_latch_at", now);
                trace.events.push(TraceEvent::FaultLatched {
                    task: job.task,
                    at: now,
                });
            }
        }
    } else {
        for &m in &task.reads {
            if corrupt[m] && !trace.value_faulty[job.task] {
                if task.recovery.value() > 0.0 && rng.gen::<f64>() < task.recovery.value() {
                    trace.recoveries[job.task] += 1;
                    continue;
                }
                let p3 = task.vulnerability.value();
                if rng.gen::<f64>() < p3 {
                    trace.value_faulty[job.task] = true;
                    fcm_obs::hist_record("sim.fault_latch_at", now);
                    trace.events.push(TraceEvent::FaultLatched {
                        task: job.task,
                        at: now,
                    });
                }
            }
        }
    }
    // Spontaneous occurrence p₁: the task may develop a fault on its own.
    if !trace.value_faulty[job.task]
        && task.fault_rate.value() > 0.0
        && rng.gen::<f64>() < task.fault_rate.value()
    {
        trace.value_faulty[job.task] = true;
        fcm_obs::hist_record("sim.fault_latch_at", now);
        trace.events.push(TraceEvent::FaultLatched {
            task: job.task,
            at: now,
        });
    }
    // Writes: corrupt output transmits with probability p₂, otherwise the
    // rewrite repairs the medium.
    for &m in &task.writes {
        if trace.value_faulty[job.task] {
            let p2 = spec.media[m].transmission.value();
            if rng.gen::<f64>() < p2 {
                if !corrupt[m] {
                    trace.medium_corruptions[m] += 1;
                    trace.events.push(TraceEvent::MediumCorrupted {
                        medium: m,
                        writer: job.task,
                        at: now,
                    });
                }
                corrupt[m] = true;
                trace.medium_payloads[m] = Some(CORRUPT);
                continue;
            }
        }
        corrupt[m] = false;
        trace.medium_payloads[m] = Some(CLEAN);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SystemSpecBuilder;
    use fcm_core::FactorKind;

    #[test]
    fn single_one_shot_task_completes_on_time() {
        let mut b = SystemSpecBuilder::new(1);
        b.task("t", 0).one_shot(2, 10, 3).build().unwrap();
        let t = run(&b.build().unwrap(), &[], 0, 100);
        assert_eq!(t.completions[0], 1);
        assert_eq!(t.deadline_misses[0], 0);
        assert!(t
            .events
            .contains(&TraceEvent::Completion { task: 0, at: 5 }));
    }

    #[test]
    fn periodic_task_activates_per_period() {
        let mut b = SystemSpecBuilder::new(1);
        b.task("t", 0).periodic(10, 0, 2).build().unwrap();
        let t = run(&b.build().unwrap(), &[], 0, 49);
        // Releases at 0, 10, 20, 30, 40: 5 completions.
        assert_eq!(t.completions[0], 5);
    }

    #[test]
    fn edf_preempts_for_earlier_deadline() {
        let mut b = SystemSpecBuilder::new(1);
        // Long low-urgency job from t=0; urgent job released at t=1.
        b.task("long", 0).one_shot(0, 50, 10).build().unwrap();
        b.task("urgent", 0).one_shot(1, 5, 2).build().unwrap();
        let t = run(&b.build().unwrap(), &[], 0, 100);
        assert_eq!(t.deadline_misses, vec![0, 0]);
        // Urgent completes at 3, long at 12 (preempted for 2 ticks).
        assert!(t
            .events
            .contains(&TraceEvent::Completion { task: 1, at: 3 }));
        assert!(t
            .events
            .contains(&TraceEvent::Completion { task: 0, at: 12 }));
    }

    #[test]
    fn fifo_does_not_preempt() {
        let mut b = SystemSpecBuilder::new(1);
        b.policy(SchedulingPolicy::NonPreemptiveFifo);
        b.task("long", 0).one_shot(0, 50, 10).build().unwrap();
        b.task("urgent", 0).one_shot(1, 5, 2).build().unwrap();
        let t = run(&b.build().unwrap(), &[], 0, 100);
        // Urgent waits for long: completes at 12, missing its deadline.
        assert_eq!(t.deadline_misses[1], 1);
        assert!(t
            .events
            .contains(&TraceEvent::Completion { task: 1, at: 12 }));
    }

    #[test]
    fn value_fault_propagates_through_reliable_medium() {
        let mut b = SystemSpecBuilder::new(1);
        let m = b.add_medium("gv", FactorKind::GlobalVariable, 1.0).unwrap();
        b.task("w", 0).one_shot(0, 10, 1).writes(m).build().unwrap();
        b.task("r", 0).one_shot(5, 10, 1).reads(m).build().unwrap();
        let spec = b.build().unwrap();
        let t = run(&spec, &[Injection::value(0, 0)], 7, 100);
        assert!(t.value_faulty(0));
        assert!(t.value_faulty(1));
        assert_eq!(t.medium_corruptions[0], 1);
        assert_eq!(t.medium_payloads[0], Some(CORRUPT));
    }

    #[test]
    fn zero_transmission_blocks_propagation() {
        let mut b = SystemSpecBuilder::new(1);
        let m = b.add_medium("gv", FactorKind::GlobalVariable, 0.0).unwrap();
        b.task("w", 0).one_shot(0, 10, 1).writes(m).build().unwrap();
        b.task("r", 0).one_shot(5, 10, 1).reads(m).build().unwrap();
        let t = run(&b.build().unwrap(), &[Injection::value(0, 0)], 7, 100);
        assert!(t.value_faulty(0));
        assert!(!t.value_faulty(1));
        // The failed transmission rewrote the medium clean.
        assert_eq!(t.medium_payloads[0], Some(CLEAN));
    }

    #[test]
    fn zero_vulnerability_blocks_manifestation() {
        let mut b = SystemSpecBuilder::new(1);
        let m = b.add_medium("gv", FactorKind::GlobalVariable, 1.0).unwrap();
        b.task("w", 0).one_shot(0, 10, 1).writes(m).build().unwrap();
        b.task("r", 0)
            .one_shot(5, 10, 1)
            .reads(m)
            .vulnerability(0.0)
            .build()
            .unwrap();
        let t = run(&b.build().unwrap(), &[Injection::value(0, 0)], 7, 100);
        assert!(!t.value_faulty(1));
        // Medium stays corrupt (the reader does not write it).
        assert_eq!(t.medium_payloads[0], Some(CORRUPT));
    }

    #[test]
    fn clean_rewrite_repairs_a_corrupt_medium() {
        let mut b = SystemSpecBuilder::new(1);
        let m = b.add_medium("gv", FactorKind::GlobalVariable, 1.0).unwrap();
        b.task("bad", 0)
            .one_shot(0, 10, 1)
            .writes(m)
            .build()
            .unwrap();
        b.task("good", 0)
            .one_shot(3, 10, 1)
            .writes(m)
            .build()
            .unwrap();
        b.task("late_reader", 0)
            .one_shot(6, 10, 1)
            .reads(m)
            .build()
            .unwrap();
        let t = run(&b.build().unwrap(), &[Injection::value(0, 0)], 7, 100);
        // The good writer overwrote the corruption before the read.
        assert!(!t.value_faulty(2));
        assert_eq!(t.medium_payloads[0], Some(CLEAN));
    }

    #[test]
    fn overrun_starves_fifo_peer_but_not_edf_peer() {
        for (policy, expect_miss) in [
            (SchedulingPolicy::NonPreemptiveFifo, true),
            (SchedulingPolicy::PreemptiveEdf, false),
        ] {
            let mut b = SystemSpecBuilder::new(1);
            b.policy(policy);
            b.task("hog", 0).one_shot(0, 100, 4).build().unwrap();
            b.task("victim", 0).one_shot(1, 30, 2).build().unwrap();
            let spec = b.build().unwrap();
            // Overrun factor 10: the hog runs 40 ticks.
            let t = run(&spec, &[Injection::overrun(0, 0, 10)], 1, 200);
            assert_eq!(t.missed_deadline(1), expect_miss, "policy {policy:?}");
            // The hog itself is not value-faulty.
            assert!(!t.value_faulty(0));
        }
    }

    #[test]
    fn crash_omits_all_writes() {
        let mut b = SystemSpecBuilder::new(1);
        let m = b.add_medium("ch", FactorKind::MessagePassing, 1.0).unwrap();
        b.task("w", 0).periodic(10, 0, 1).writes(m).build().unwrap();
        let spec = b.build().unwrap();
        let t = run(&spec, &[Injection::crash(0, 0)], 0, 50);
        // Jobs still complete (consume CPU) but never write.
        assert!(t.completions[0] >= 4);
        assert_eq!(t.medium_payloads[0], None);
    }

    #[test]
    fn starvation_sweep_counts_unfinished_jobs() {
        let mut b = SystemSpecBuilder::new(1);
        b.policy(SchedulingPolicy::NonPreemptiveFifo);
        b.task("hog", 0).one_shot(0, 1000, 5).build().unwrap();
        b.task("victim", 0).one_shot(1, 20, 2).build().unwrap();
        let spec = b.build().unwrap();
        // Overrun 100×: the hog holds the CPU past the horizon.
        let t = run(&spec, &[Injection::overrun(0, 0, 100)], 0, 50);
        assert_eq!(t.completions[1], 0);
        assert!(t.missed_deadline(1));
    }

    #[test]
    fn runs_are_deterministic_in_the_seed() {
        let mut b = SystemSpecBuilder::new(2);
        let m = b.add_medium("gv", FactorKind::GlobalVariable, 0.5).unwrap();
        b.task("w", 0).periodic(7, 0, 2).writes(m).build().unwrap();
        b.task("r", 1)
            .periodic(5, 1, 1)
            .reads(m)
            .vulnerability(0.5)
            .build()
            .unwrap();
        let spec = b.build().unwrap();
        let inj = [Injection::value(3, 0)];
        let a = run(&spec, &inj, 1234, 500);
        let b2 = run(&spec, &inj, 1234, 500);
        assert_eq!(a, b2);
        // A different seed eventually differs in sampled outcomes.
        let c = run(&spec, &inj, 99, 500);
        assert_eq!(a.completions, c.completions); // schedule is seed-free
    }

    #[test]
    fn injection_beyond_horizon_is_ignored() {
        let mut b = SystemSpecBuilder::new(1);
        b.task("t", 0).periodic(5, 0, 1).build().unwrap();
        let spec = b.build().unwrap();
        let t = run(&spec, &[Injection::value(1000, 0)], 0, 50);
        assert!(!t.value_faulty(0));
    }

    #[test]
    fn undetected_node_crash_silently_starves_the_job() {
        let mut b = SystemSpecBuilder::new(1);
        b.task("t", 0).one_shot(0, 50, 10).build().unwrap();
        let t = run(&b.build().unwrap(), &[Injection::node_crash(3, 0)], 0, 100);
        // No watchdog: the failure passes silently.
        assert_eq!(t.completions[0], 0);
        assert_eq!(t.detections, 0);
        assert_eq!(t.restarts, 0);
        assert!(t.missed_deadline(0));
        assert!(t
            .events
            .contains(&TraceEvent::NodeFailed { node: 0, at: 3 }));
    }

    #[test]
    fn transient_outage_resumes_queued_work() {
        let mut b = SystemSpecBuilder::new(1);
        b.task("t", 0).periodic(10, 0, 2).build().unwrap();
        let spec = b.build().unwrap();
        // Down from 5 to 25 (the node is idle at 5, so nothing is
        // killed): the releases at 10 and 20 queue up and run after
        // recovery; the one released at 10 misses its deadline.
        let t = run(&spec, &[Injection::node_transient(5, 0, 20)], 0, 59);
        assert!(t
            .events
            .contains(&TraceEvent::NodeRecovered { node: 0, at: 25 }));
        assert!(t.completions[0] >= 4);
        assert!(t.deadline_misses[0] >= 1);
    }

    #[test]
    fn watchdog_detects_and_checkpoint_retry_recovers() {
        let mut b = SystemSpecBuilder::new(1);
        b.watchdog(1, 0).unwrap();
        b.retry(3, 2).unwrap();
        b.task("t", 0).one_shot(0, 100, 10).checkpoint(2).build().unwrap();
        let spec = b.build().unwrap();
        // Killed at 5 with 5 ticks executed: checkpoint saves 4, so the
        // restart owes 6. Node heals at 6, detection at 6, first retry
        // lands in [8, 10).
        let t = run(&spec, &[Injection::node_transient(5, 0, 1)], 7, 200);
        assert_eq!(t.detections, 1);
        assert_eq!(t.restarts, 1);
        assert_eq!(t.failovers, 0);
        assert_eq!(t.completions[0], 1);
        assert_eq!(t.deadline_misses[0], 0);
        assert_eq!(t.recovery_times.len(), 1);
        // Recovery spans failure (5) → restart (within [8,10)) → +6 run.
        let ttr = t.recovery_times[0];
        assert!((9..=11).contains(&ttr), "time to recover {ttr}");

        // Without a checkpoint the restart re-executes all 10 ticks.
        let mut b2 = SystemSpecBuilder::new(1);
        b2.watchdog(1, 0).unwrap();
        b2.retry(3, 2).unwrap();
        b2.task("t", 0).one_shot(0, 100, 10).build().unwrap();
        let t2 = run(
            &b2.build().unwrap(),
            &[Injection::node_transient(5, 0, 1)],
            7,
            200,
        );
        assert_eq!(t2.restarts, 1);
        assert_eq!(t2.recovery_times[0], ttr + 4);
    }

    #[test]
    fn dead_node_fails_over_to_a_survivor() {
        let mut b = SystemSpecBuilder::new(2);
        b.watchdog(5, 0).unwrap();
        b.retry(2, 4).unwrap();
        b.task("t", 0).one_shot(0, 100, 10).checkpoint(1).build().unwrap();
        let spec = b.build().unwrap();
        let t = run(&spec, &[Injection::node_crash(3, 0)], 11, 200);
        // Detection at 5; retry in [9, 13); home node dead, so the job
        // restarts on processor 1 with 3 ticks checkpointed.
        assert_eq!(t.detections, 1);
        assert_eq!(t.restarts, 1);
        assert_eq!(t.failovers, 1);
        assert_eq!(t.completions[0], 1);
        assert_eq!(t.deadline_misses[0], 0);
        assert!(t.events.iter().any(|e| matches!(
            e,
            TraceEvent::JobRestarted {
                task: 0,
                attempt: 0,
                ..
            }
        )));
    }

    #[test]
    fn retries_back_off_and_exhaust_while_the_node_is_down() {
        let mut b = SystemSpecBuilder::new(1);
        b.watchdog(1, 0).unwrap();
        b.retry(2, 2).unwrap();
        b.task("t", 0).one_shot(0, 50, 10).build().unwrap();
        let spec = b.build().unwrap();
        // Down from 2 for 1000 ticks: every retry finds the node down
        // (transient, so no failover) and the chain exhausts.
        let t = run(&spec, &[Injection::node_transient(2, 0, 1000)], 0, 400);
        assert_eq!(t.detections, 1);
        assert_eq!(t.retries, 2);
        assert_eq!(t.restarts, 0);
        assert_eq!(t.completions[0], 0);
        assert!(t.missed_deadline(0));
    }

    #[test]
    fn observability_records_recovery_histograms_without_perturbing_the_run() {
        let mut b = SystemSpecBuilder::new(2);
        b.watchdog(5, 0).unwrap();
        b.retry(2, 4).unwrap();
        b.task("t", 0).one_shot(0, 100, 10).checkpoint(1).build().unwrap();
        let spec = b.build().unwrap();
        let inj = [Injection::node_crash(3, 0)];
        let off = run(&spec, &inj, 11, 200);
        fcm_obs::init(fcm_obs::ObsConfig::default());
        let on = run(&spec, &inj, 11, 200);
        fcm_obs::set_enabled(false);
        assert_eq!(off, on, "recording must not perturb the simulation");
        let snap = fcm_obs::metrics::drain();
        for name in [
            "sim.detect_latency",
            "sim.retry_backoff",
            "sim.failover_latency",
            "sim.recovery_time",
        ] {
            let h = snap.hists.get(name).unwrap_or_else(|| panic!("{name} missing"));
            assert!(h.count() >= 1, "{name} recorded");
        }
    }

    #[test]
    fn node_fault_runs_are_deterministic_in_the_seed() {
        let mut b = SystemSpecBuilder::new(2);
        b.watchdog(3, 1).unwrap();
        b.retry(4, 2).unwrap();
        b.task("a", 0).periodic(10, 0, 3).checkpoint(1).build().unwrap();
        b.task("b", 1).periodic(7, 1, 2).build().unwrap();
        let spec = b.build().unwrap();
        let inj = [
            Injection::node_transient(4, 0, 9),
            Injection::node_crash(20, 1),
        ];
        let x = run(&spec, &inj, 42, 300);
        let y = run(&spec, &inj, 42, 300);
        assert_eq!(x, y);
        assert!(x.detections >= 2);
    }

    #[test]
    fn two_processors_run_independently() {
        let mut b = SystemSpecBuilder::new(2);
        b.task("a", 0).one_shot(0, 4, 4).build().unwrap();
        b.task("b", 1).one_shot(0, 4, 4).build().unwrap();
        let t = run(&b.build().unwrap(), &[], 0, 10);
        // Both meet deadlines: no shared CPU.
        assert_eq!(t.deadline_misses, vec![0, 0]);
        assert!(t
            .events
            .contains(&TraceEvent::Completion { task: 0, at: 4 }));
        assert!(t
            .events
            .contains(&TraceEvent::Completion { task: 1, at: 4 }));
    }
}
