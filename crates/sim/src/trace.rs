//! Per-trial observations.

use fcm_sched::Time;
use fcm_substrate::{Bytes, Json, ToJson};

use crate::model::{MediumId, TaskId};

/// A notable event recorded during a trial.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A job of `task` completed at `at`.
    Completion {
        /// The completing task.
        task: TaskId,
        /// Completion time.
        at: Time,
    },
    /// A job of `task` missed its absolute deadline `deadline` (completed
    /// at `at`).
    DeadlineMiss {
        /// The missing task.
        task: TaskId,
        /// The absolute deadline missed.
        deadline: Time,
        /// Actual completion time.
        at: Time,
    },
    /// `medium` became corrupt at `at` due to a write by `writer`.
    MediumCorrupted {
        /// The corrupted medium.
        medium: MediumId,
        /// The corrupting task.
        writer: TaskId,
        /// Corruption time.
        at: Time,
    },
    /// A fault latched into `task` at `at` (manifestation of a corrupt
    /// input, or a direct injection).
    FaultLatched {
        /// The newly faulty task.
        task: TaskId,
        /// Latch time.
        at: Time,
    },
    /// Processor `node` failed at `at` (node crash or transient outage).
    NodeFailed {
        /// The failed processor.
        node: usize,
        /// Failure time.
        at: Time,
    },
    /// Processor `node` healed from a transient outage at `at`.
    NodeRecovered {
        /// The healed processor.
        node: usize,
        /// Recovery time.
        at: Time,
    },
    /// The watchdog noticed the failure of `node` at `at`.
    FailureDetected {
        /// The failed processor.
        node: usize,
        /// Detection time.
        at: Time,
    },
    /// A job of `task` killed by a node failure was re-released at `at`
    /// from its last checkpoint (retry attempt `attempt`, 0-based).
    JobRestarted {
        /// The restarted task.
        task: TaskId,
        /// Retry attempt index.
        attempt: u32,
        /// Restart time.
        at: Time,
    },
}

impl ToJson for TraceEvent {
    fn to_json(&self) -> Json {
        match *self {
            TraceEvent::Completion { task, at } => Json::object()
                .set("event", "completion")
                .set("task", task)
                .set("at", at),
            TraceEvent::DeadlineMiss { task, deadline, at } => Json::object()
                .set("event", "deadline_miss")
                .set("task", task)
                .set("deadline", deadline)
                .set("at", at),
            TraceEvent::MediumCorrupted { medium, writer, at } => Json::object()
                .set("event", "medium_corrupted")
                .set("medium", medium)
                .set("writer", writer)
                .set("at", at),
            TraceEvent::FaultLatched { task, at } => Json::object()
                .set("event", "fault_latched")
                .set("task", task)
                .set("at", at),
            TraceEvent::NodeFailed { node, at } => Json::object()
                .set("event", "node_failed")
                .set("node", node)
                .set("at", at),
            TraceEvent::NodeRecovered { node, at } => Json::object()
                .set("event", "node_recovered")
                .set("node", node)
                .set("at", at),
            TraceEvent::FailureDetected { node, at } => Json::object()
                .set("event", "failure_detected")
                .set("node", node)
                .set("at", at),
            TraceEvent::JobRestarted { task, attempt, at } => Json::object()
                .set("event", "job_restarted")
                .set("task", task)
                .set("attempt", attempt)
                .set("at", at),
        }
    }
}

impl ToJson for Trace {
    fn to_json(&self) -> Json {
        let payloads: Vec<Option<String>> = self
            .medium_payloads
            .iter()
            .map(|p| {
                p.as_ref()
                    .map(|b| String::from_utf8_lossy(b.as_slice()).into_owned())
            })
            .collect();
        Json::object()
            .set("value_faulty", self.value_faulty.clone())
            .set("deadline_misses", self.deadline_misses.clone())
            .set("completions", self.completions.clone())
            .set("medium_corruptions", self.medium_corruptions.clone())
            .set("recoveries", self.recoveries.clone())
            .set("medium_payloads", payloads)
            .set("detections", self.detections)
            .set("retries", self.retries)
            .set("restarts", self.restarts)
            .set("failovers", self.failovers)
            .set("recovery_times", self.recovery_times.clone())
            .set(
                "events",
                Json::Arr(self.events.iter().map(ToJson::to_json).collect()),
            )
    }
}

/// The observable outcome of one simulated trial.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    /// Latched value-fault flag per task.
    pub value_faulty: Vec<bool>,
    /// Deadline misses per task.
    pub deadline_misses: Vec<u32>,
    /// Completed jobs per task.
    pub completions: Vec<u32>,
    /// Times each medium transitioned clean → corrupt.
    pub medium_corruptions: Vec<u32>,
    /// Corrupt inputs detected and discarded by each task's recovery
    /// blocks.
    pub recoveries: Vec<u32>,
    /// Final payload of each medium (`None` until first written). Corrupt
    /// payloads carry the `CORRUPT` marker bytes.
    pub medium_payloads: Vec<Option<Bytes>>,
    /// Watchdog detections of node failures.
    pub detections: u32,
    /// Retry attempts fired (including re-backoffs onto a still-down
    /// node).
    pub retries: u32,
    /// Jobs actually re-released from a checkpoint.
    pub restarts: u32,
    /// Restarts re-targeted to a surviving processor because the home
    /// node was permanently dead.
    pub failovers: u32,
    /// Per recovered job: time from the node failure that killed it to
    /// its eventual successful completion.
    pub recovery_times: Vec<Time>,
    /// Chronological event log.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an all-clean trace for the given system dimensions.
    pub fn empty(tasks: usize, media: usize) -> Self {
        Trace {
            value_faulty: vec![false; tasks],
            deadline_misses: vec![0; tasks],
            completions: vec![0; tasks],
            medium_corruptions: vec![0; media],
            recoveries: vec![0; tasks],
            medium_payloads: vec![None; media],
            detections: 0,
            retries: 0,
            restarts: 0,
            failovers: 0,
            recovery_times: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Mean time from node failure to successful re-completion over the
    /// jobs that recovered (`None` when nothing recovered).
    pub fn mean_time_to_recover(&self) -> Option<f64> {
        if self.recovery_times.is_empty() {
            return None;
        }
        let sum: Time = self.recovery_times.iter().sum();
        Some(sum as f64 / self.recovery_times.len() as f64)
    }

    /// Whether `task` exhibited any fault (latched value fault or at least
    /// one deadline miss) — the paper's "fault in the FCM" predicate used
    /// by influence measurement.
    pub fn faulty(&self, task: TaskId) -> bool {
        self.value_faulty.get(task).copied().unwrap_or(false)
            || self.deadline_misses.get(task).copied().unwrap_or(0) > 0
    }

    /// Whether `task` exhibited a latched *value* fault specifically.
    pub fn value_faulty(&self, task: TaskId) -> bool {
        self.value_faulty.get(task).copied().unwrap_or(false)
    }

    /// Whether `task` missed at least one deadline.
    pub fn missed_deadline(&self, task: TaskId) -> bool {
        self.deadline_misses.get(task).copied().unwrap_or(0) > 0
    }

    /// Total faults observed across the system.
    pub fn total_faults(&self) -> u32 {
        let value: u32 = self.value_faulty.iter().map(|&b| u32::from(b)).sum();
        let timing: u32 = self.deadline_misses.iter().sum();
        value + timing
    }

    /// One-line human-readable summary of the trial.
    pub fn summary(&self) -> String {
        format!(
            "completions={} value_faults={} deadline_misses={} corruptions={} recoveries={}",
            self.completions.iter().sum::<u32>(),
            self.value_faulty.iter().filter(|&&b| b).count(),
            self.deadline_misses.iter().sum::<u32>(),
            self.medium_corruptions.iter().sum::<u32>(),
            self.recoveries.iter().sum::<u32>(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_trace_is_clean() {
        let t = Trace::empty(3, 2);
        assert!(!t.faulty(0));
        assert!(!t.faulty(99));
        assert_eq!(t.total_faults(), 0);
        assert_eq!(t.medium_payloads.len(), 2);
    }

    #[test]
    fn summary_is_one_line() {
        let mut t = Trace::empty(2, 1);
        t.completions[0] = 3;
        t.value_faulty[1] = true;
        let s = t.summary();
        assert!(s.contains("completions=3"));
        assert!(s.contains("value_faults=1"));
        assert!(!s.contains('\n'));
    }

    #[test]
    fn mean_time_to_recover_averages_recoveries() {
        let mut t = Trace::empty(1, 0);
        assert_eq!(t.mean_time_to_recover(), None);
        t.recovery_times = vec![10, 20];
        assert_eq!(t.mean_time_to_recover(), Some(15.0));
    }

    #[test]
    fn faulty_covers_both_fault_kinds() {
        let mut t = Trace::empty(2, 0);
        t.value_faulty[0] = true;
        t.deadline_misses[1] = 2;
        assert!(t.faulty(0));
        assert!(t.value_faulty(0));
        assert!(!t.missed_deadline(0));
        assert!(t.faulty(1));
        assert!(t.missed_deadline(1));
        assert!(!t.value_faulty(1));
        assert_eq!(t.total_faults(), 3);
    }
}
