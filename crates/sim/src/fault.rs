//! Injectable faults.
//!
//! The task-level kinds cover the paper's per-level fault classes:
//! value corruption (erroneous parameters / globals / messages), timing
//! overrun (the task-level "one task's delay … may cause another to miss
//! its deadline"), and crash (omission of all further outputs). The
//! node-level kinds model hardware failures: a permanent node crash and
//! a transient outage that heals after a fixed downtime. Node faults are
//! the inputs to the recovery subsystem (watchdog detection,
//! checkpoint/retry, failover).

use fcm_sched::Time;

use crate::model::TaskId;

/// The kind of fault to inject.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The task's outputs become corrupt from the injection time onward.
    ValueCorruption,
    /// Every subsequent job of the task runs `factor` times its nominal
    /// computation time.
    TimingOverrun {
        /// Multiplier on the computation time (≥ 1 meaningful).
        factor: u32,
    },
    /// The task stops producing outputs (its jobs still consume CPU until
    /// the current one finishes, then the task never writes again).
    Crash,
    /// The target *processor* halts permanently: the running job is
    /// killed, queued jobs starve, and nothing executes there again. For
    /// node kinds [`Injection::target`] names a processor, not a task.
    NodeCrash,
    /// The target *processor* halts and heals after `downtime` ticks:
    /// the running job is killed, queued jobs resume on recovery.
    NodeTransient {
        /// Outage duration: the node accepts work again at
        /// `at + downtime`.
        downtime: Time,
    },
}

impl FaultKind {
    /// Whether this kind strikes a processor (so [`Injection::target`] is
    /// a processor index) rather than a task.
    pub fn is_node_fault(&self) -> bool {
        matches!(
            self,
            FaultKind::NodeCrash | FaultKind::NodeTransient { .. }
        )
    }
}

/// One fault injection: `kind` strikes `target` at time `at`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Injection {
    /// Injection time.
    pub at: Time,
    /// The task struck.
    pub target: TaskId,
    /// What happens.
    pub kind: FaultKind,
}

impl Injection {
    /// Corrupts `target`'s outputs from `at` onward.
    pub fn value(at: Time, target: TaskId) -> Self {
        Injection {
            at,
            target,
            kind: FaultKind::ValueCorruption,
        }
    }

    /// Makes `target` overrun by `factor` from `at` onward.
    pub fn overrun(at: Time, target: TaskId, factor: u32) -> Self {
        Injection {
            at,
            target,
            kind: FaultKind::TimingOverrun { factor },
        }
    }

    /// Crashes `target` at `at`.
    pub fn crash(at: Time, target: TaskId) -> Self {
        Injection {
            at,
            target,
            kind: FaultKind::Crash,
        }
    }

    /// Permanently halts processor `node` at `at`.
    pub fn node_crash(at: Time, node: usize) -> Self {
        Injection {
            at,
            target: node,
            kind: FaultKind::NodeCrash,
        }
    }

    /// Halts processor `node` at `at` for `downtime` ticks.
    pub fn node_transient(at: Time, node: usize, downtime: Time) -> Self {
        Injection {
            at,
            target: node,
            kind: FaultKind::NodeTransient { downtime },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_fields() {
        let v = Injection::value(5, 2);
        assert_eq!(v.at, 5);
        assert_eq!(v.target, 2);
        assert!(matches!(v.kind, FaultKind::ValueCorruption));
        let o = Injection::overrun(1, 0, 3);
        assert!(matches!(o.kind, FaultKind::TimingOverrun { factor: 3 }));
        let c = Injection::crash(9, 1);
        assert!(matches!(c.kind, FaultKind::Crash));
        let n = Injection::node_crash(4, 1);
        assert_eq!(n.target, 1);
        assert!(matches!(n.kind, FaultKind::NodeCrash));
        let t = Injection::node_transient(4, 0, 25);
        assert!(matches!(t.kind, FaultKind::NodeTransient { downtime: 25 }));
    }

    #[test]
    fn node_kinds_are_flagged() {
        assert!(FaultKind::NodeCrash.is_node_fault());
        assert!(FaultKind::NodeTransient { downtime: 1 }.is_node_fault());
        assert!(!FaultKind::Crash.is_node_fault());
        assert!(!FaultKind::ValueCorruption.is_node_fault());
        assert!(!FaultKind::TimingOverrun { factor: 2 }.is_node_fault());
    }
}
