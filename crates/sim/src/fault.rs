//! Injectable faults.
//!
//! The three injectable kinds cover the paper's per-level fault classes:
//! value corruption (erroneous parameters / globals / messages), timing
//! overrun (the task-level "one task's delay … may cause another to miss
//! its deadline"), and crash (omission of all further outputs).

use fcm_sched::Time;

use crate::model::TaskId;

/// The kind of fault to inject.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The task's outputs become corrupt from the injection time onward.
    ValueCorruption,
    /// Every subsequent job of the task runs `factor` times its nominal
    /// computation time.
    TimingOverrun {
        /// Multiplier on the computation time (≥ 1 meaningful).
        factor: u32,
    },
    /// The task stops producing outputs (its jobs still consume CPU until
    /// the current one finishes, then the task never writes again).
    Crash,
}

/// One fault injection: `kind` strikes `target` at time `at`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Injection {
    /// Injection time.
    pub at: Time,
    /// The task struck.
    pub target: TaskId,
    /// What happens.
    pub kind: FaultKind,
}

impl Injection {
    /// Corrupts `target`'s outputs from `at` onward.
    pub fn value(at: Time, target: TaskId) -> Self {
        Injection {
            at,
            target,
            kind: FaultKind::ValueCorruption,
        }
    }

    /// Makes `target` overrun by `factor` from `at` onward.
    pub fn overrun(at: Time, target: TaskId, factor: u32) -> Self {
        Injection {
            at,
            target,
            kind: FaultKind::TimingOverrun { factor },
        }
    }

    /// Crashes `target` at `at`.
    pub fn crash(at: Time, target: TaskId) -> Self {
        Injection {
            at,
            target,
            kind: FaultKind::Crash,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_fields() {
        let v = Injection::value(5, 2);
        assert_eq!(v.at, 5);
        assert_eq!(v.target, 2);
        assert!(matches!(v.kind, FaultKind::ValueCorruption));
        let o = Injection::overrun(1, 0, 3);
        assert!(matches!(o.kind, FaultKind::TimingOverrun { factor: 3 }));
        let c = Injection::crash(9, 1);
        assert!(matches!(c.kind, FaultKind::Crash));
    }
}
