//! Monte-Carlo fault-injection campaigns.
//!
//! A campaign estimates the paper's influence value empirically:
//! `infl(i→j) ≈ P(fault appears in FCM j | fault injected in FCM i)`,
//! the definition of §4.2 with the occurrence probability p₁ factored out
//! (set p₁ = 1 by injecting, then multiply externally if needed). The
//! component probabilities p₂ (transmission) and p₃ (manifestation) can
//! be estimated the same way, which is exactly how the paper says they
//! should be obtained. Trials run in parallel across threads; results
//! are deterministic in the base seed regardless of thread count.

use fcm_graph::Matrix;
use fcm_sched::Time;

use crate::engine;
use crate::error::SimError;
use crate::fault::{FaultKind, Injection};
use crate::model::{MediumId, SystemSpec, TaskId};
use crate::trace::Trace;

/// An influence estimate with its sampling error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredInfluence {
    /// Point estimate `successes / trials`.
    pub estimate: f64,
    /// Number of trials run.
    pub trials: u64,
    /// Trials in which the target FCM became faulty.
    pub successes: u64,
    /// Normal-approximation 95% confidence half-width.
    pub ci_halfwidth: f64,
}

impl MeasuredInfluence {
    fn from_counts(successes: u64, trials: u64) -> Self {
        let p = if trials == 0 {
            0.0
        } else {
            successes as f64 / trials as f64
        };
        let ci = if trials == 0 {
            0.0
        } else {
            1.96 * (p * (1.0 - p) / trials as f64).sqrt()
        };
        MeasuredInfluence {
            estimate: p,
            trials,
            successes,
            ci_halfwidth: ci,
        }
    }
}

/// A reusable injection-campaign configuration over one system.
#[derive(Debug, Clone)]
pub struct InfluenceCampaign {
    spec: SystemSpec,
    horizon: Time,
    trials: u64,
    base_seed: u64,
}

impl InfluenceCampaign {
    /// Creates a campaign running `trials` trials of `horizon` ticks each.
    pub fn new(spec: SystemSpec, horizon: Time, trials: u64, base_seed: u64) -> Self {
        InfluenceCampaign {
            spec,
            horizon,
            trials,
            base_seed,
        }
    }

    /// The system under test.
    pub fn spec(&self) -> &SystemSpec {
        &self.spec
    }

    /// Estimates `infl(source → target)` by injecting a value fault into
    /// `source` at time 0 in every trial and counting trials where
    /// `target` exhibits a fault.
    ///
    /// # Errors
    ///
    /// * [`SimError::UnknownTask`] — either task is out of range;
    /// * [`SimError::NoTrials`] — the campaign has zero trials.
    pub fn measure_influence(
        &self,
        source: TaskId,
        target: TaskId,
    ) -> Result<MeasuredInfluence, SimError> {
        self.measure_influence_with(source, target, FaultKind::ValueCorruption)
    }

    /// As [`InfluenceCampaign::measure_influence`] but with an arbitrary
    /// injected fault kind (e.g. a timing overrun for the paper's
    /// task-level timing factor f₃).
    ///
    /// # Errors
    ///
    /// As for [`InfluenceCampaign::measure_influence`].
    pub fn measure_influence_with(
        &self,
        source: TaskId,
        target: TaskId,
        kind: FaultKind,
    ) -> Result<MeasuredInfluence, SimError> {
        self.check_task(source)?;
        self.check_task(target)?;
        if self.trials == 0 {
            return Err(SimError::NoTrials);
        }
        let injection = Injection {
            at: 0,
            target: source,
            kind,
        };
        let successes = self.count_parallel(|trace| trace.faulty(target), &[injection]);
        Ok(MeasuredInfluence::from_counts(successes, self.trials))
    }

    /// Estimates the transmission probability p₂ of `medium`: the fraction
    /// of trials in which the medium becomes corrupt after `writer` (made
    /// faulty at time 0) writes it. Accurate when `writer` writes the
    /// medium exactly once within the horizon.
    ///
    /// # Errors
    ///
    /// * [`SimError::UnknownTask`] / [`SimError::UnknownMedium`] — bad
    ///   indices;
    /// * [`SimError::NoTrials`] — zero trials.
    pub fn measure_transmission(
        &self,
        writer: TaskId,
        medium: MediumId,
    ) -> Result<MeasuredInfluence, SimError> {
        self.check_task(writer)?;
        if medium >= self.spec.medium_count() {
            return Err(SimError::UnknownMedium { index: medium });
        }
        if self.trials == 0 {
            return Err(SimError::NoTrials);
        }
        let injection = Injection::value(0, writer);
        let successes =
            self.count_parallel(|trace| trace.medium_corruptions[medium] > 0, &[injection]);
        Ok(MeasuredInfluence::from_counts(successes, self.trials))
    }

    /// Estimates the manifestation probability p₃ of `target` ("injecting
    /// faults into the target FCM, to estimate the probability that a
    /// faulty input will cause a target fault"): transmission along
    /// `source`'s path is forced to 1 so the only stochastic step left is
    /// the target's vulnerability. Accurate when `target` reads a corrupt
    /// input exactly once within the horizon.
    ///
    /// # Errors
    ///
    /// As for [`InfluenceCampaign::measure_influence`].
    pub fn measure_manifestation(
        &self,
        source: TaskId,
        target: TaskId,
    ) -> Result<MeasuredInfluence, SimError> {
        self.check_task(source)?;
        self.check_task(target)?;
        if self.trials == 0 {
            return Err(SimError::NoTrials);
        }
        let mut spec = self.spec.clone();
        for m in &mut spec.media {
            m.transmission = fcm_core::Probability::ONE;
        }
        let forced = InfluenceCampaign {
            spec,
            horizon: self.horizon,
            trials: self.trials,
            base_seed: self.base_seed,
        };
        let injection = Injection::value(0, source);
        let successes = forced.count_parallel(|trace| trace.value_faulty(target), &[injection]);
        Ok(MeasuredInfluence::from_counts(successes, self.trials))
    }

    /// The full measured influence matrix: entry `(i, j)` is
    /// `infl(i → j)` (diagonal zero). Runs `tasks² × trials` simulations;
    /// pairs are processed in parallel.
    pub fn influence_matrix(&self) -> Matrix {
        let n = self.spec.task_count();
        let mut out = Matrix::zeros(n, n);
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| (0..n).filter(move |&j| j != i).map(move |j| (i, j)))
            .collect();
        let results = fcm_substrate::par_map(&pairs, |&(i, j)| {
            self.measure_influence(i, j)
                .expect("indices from task range")
                .estimate
        });
        for (&(i, j), v) in pairs.iter().zip(results) {
            out[(i, j)] = v;
        }
        out
    }

    /// Estimates the spontaneous occurrence probability p₁ of `target`:
    /// the fraction of trials in which the task develops a value fault
    /// with no injection at all ("it can be measured from previous usage
    /// of that FCM … derived by extensive testing"). Accurate per
    /// activation when the task activates exactly once within the
    /// horizon; for periodic tasks it estimates the per-mission rate.
    ///
    /// # Errors
    ///
    /// * [`SimError::UnknownTask`] — bad index;
    /// * [`SimError::NoTrials`] — zero trials.
    pub fn measure_occurrence(&self, target: TaskId) -> Result<MeasuredInfluence, SimError> {
        self.check_task(target)?;
        if self.trials == 0 {
            return Err(SimError::NoTrials);
        }
        let successes = self.count_parallel(|trace| trace.value_faulty(target), &[]);
        Ok(MeasuredInfluence::from_counts(successes, self.trials))
    }

    /// Baseline fault probability of `target` with no injection at all
    /// (zero unless the system spontaneously misses deadlines).
    ///
    /// # Errors
    ///
    /// * [`SimError::UnknownTask`] — bad index;
    /// * [`SimError::NoTrials`] — zero trials.
    pub fn baseline(&self, target: TaskId) -> Result<MeasuredInfluence, SimError> {
        self.check_task(target)?;
        if self.trials == 0 {
            return Err(SimError::NoTrials);
        }
        let successes = self.count_parallel(|trace| trace.faulty(target), &[]);
        Ok(MeasuredInfluence::from_counts(successes, self.trials))
    }

    /// Runs all trials (in parallel) and counts those where `hit` holds.
    ///
    /// Trial `i` is seeded `base_seed + i`, so the count is independent
    /// of how [`fcm_substrate::par_reduce`] divides trials among threads.
    fn count_parallel(&self, hit: impl Fn(&Trace) -> bool + Sync, injections: &[Injection]) -> u64 {
        let trials: Vec<u64> = (0..self.trials).collect();
        fcm_substrate::par_reduce(
            &trials,
            |&trial| {
                let trace = engine::run(
                    &self.spec,
                    injections,
                    self.base_seed.wrapping_add(trial),
                    self.horizon,
                );
                u64::from(hit(&trace))
            },
            0,
            |a, b| a + b,
        )
    }

    fn check_task(&self, task: TaskId) -> Result<(), SimError> {
        if task >= self.spec.task_count() {
            return Err(SimError::UnknownTask { index: task });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SystemSpecBuilder;
    use fcm_core::{FactorKind, FaultFactor, Influence};

    /// writer --(gv, p2)--> reader with vulnerability p3.
    fn chain(p2: f64, p3: f64) -> SystemSpec {
        let mut b = SystemSpecBuilder::new(1);
        let m = b.add_medium("gv", FactorKind::GlobalVariable, p2).unwrap();
        b.task("w", 0).one_shot(0, 10, 1).writes(m).build().unwrap();
        b.task("r", 0)
            .one_shot(5, 10, 1)
            .reads(m)
            .vulnerability(p3)
            .build()
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn measured_influence_matches_eq1_product() {
        let campaign = InfluenceCampaign::new(chain(0.6, 0.5), 20, 4000, 7);
        let m = campaign.measure_influence(0, 1).unwrap();
        // Analytic: p₂·p₃ = 0.3 (occurrence forced to 1 by injection).
        assert!((m.estimate - 0.3).abs() < 0.03, "estimate {}", m.estimate);
        assert!(m.ci_halfwidth < 0.02);
        assert_eq!(m.trials, 4000);
    }

    #[test]
    fn transmission_estimator_isolates_p2() {
        let campaign = InfluenceCampaign::new(chain(0.25, 1.0), 20, 4000, 11);
        let p2 = campaign.measure_transmission(0, 0).unwrap();
        assert!(
            (p2.estimate - 0.25).abs() < 0.03,
            "estimate {}",
            p2.estimate
        );
    }

    #[test]
    fn manifestation_estimator_isolates_p3() {
        // Even with lossy transmission, manifestation measurement forces
        // p₂ = 1 so only p₃ remains.
        let campaign = InfluenceCampaign::new(chain(0.1, 0.4), 20, 4000, 13);
        let p3 = campaign.measure_manifestation(0, 1).unwrap();
        assert!((p3.estimate - 0.4).abs() < 0.03, "estimate {}", p3.estimate);
    }

    #[test]
    fn baseline_is_zero_for_a_healthy_system() {
        let campaign = InfluenceCampaign::new(chain(0.5, 0.5), 20, 200, 17);
        assert_eq!(campaign.baseline(1).unwrap().estimate, 0.0);
    }

    #[test]
    fn measured_matches_analytic_eq2_for_two_factors() {
        // Two parallel media with different transmission; Eq. 2 combines.
        let mut b = SystemSpecBuilder::new(1);
        let m1 = b.add_medium("gv", FactorKind::GlobalVariable, 0.5).unwrap();
        let m2 = b.add_medium("ch", FactorKind::MessagePassing, 0.3).unwrap();
        b.task("w", 0)
            .one_shot(0, 10, 1)
            .writes(m1)
            .writes(m2)
            .build()
            .unwrap();
        b.task("r", 0)
            .one_shot(5, 10, 1)
            .reads(m1)
            .reads(m2)
            .vulnerability(1.0)
            .build()
            .unwrap();
        let campaign = InfluenceCampaign::new(b.build().unwrap(), 20, 4000, 23);
        let measured = campaign.measure_influence(0, 1).unwrap();
        let analytic = Influence::from_factors(&[
            FaultFactor::new(FactorKind::GlobalVariable, 1.0, 0.5, 1.0).unwrap(),
            FaultFactor::new(FactorKind::MessagePassing, 1.0, 0.3, 1.0).unwrap(),
        ]);
        assert!(
            (measured.estimate - analytic.value()).abs() < 0.03,
            "measured {} analytic {}",
            measured.estimate,
            analytic.value()
        );
    }

    #[test]
    fn timing_influence_via_overrun_injection() {
        let mut b = SystemSpecBuilder::new(1);
        b.policy(crate::model::SchedulingPolicy::NonPreemptiveFifo);
        b.task("hog", 0).one_shot(0, 100, 4).build().unwrap();
        b.task("victim", 0).one_shot(1, 10, 2).build().unwrap();
        let campaign = InfluenceCampaign::new(b.build().unwrap(), 100, 50, 29);
        let m = campaign
            .measure_influence_with(0, 1, FaultKind::TimingOverrun { factor: 10 })
            .unwrap();
        // Deterministic starvation: influence 1.
        assert_eq!(m.estimate, 1.0);
    }

    #[test]
    fn influence_matrix_is_directional() {
        let campaign = InfluenceCampaign::new(chain(1.0, 1.0), 20, 50, 31);
        let m = campaign.influence_matrix();
        assert_eq!(m[(0, 1)], 1.0);
        assert_eq!(m[(1, 0)], 0.0);
        assert_eq!(m[(0, 0)], 0.0);
    }

    #[test]
    fn bad_indices_and_zero_trials_error() {
        let campaign = InfluenceCampaign::new(chain(0.5, 0.5), 20, 10, 1);
        assert!(matches!(
            campaign.measure_influence(0, 9),
            Err(SimError::UnknownTask { index: 9 })
        ));
        assert!(matches!(
            campaign.measure_transmission(0, 5),
            Err(SimError::UnknownMedium { index: 5 })
        ));
        let empty = InfluenceCampaign::new(chain(0.5, 0.5), 20, 0, 1);
        assert!(matches!(
            empty.measure_influence(0, 1),
            Err(SimError::NoTrials)
        ));
        assert!(matches!(empty.baseline(0), Err(SimError::NoTrials)));
    }

    #[test]
    fn results_are_deterministic_in_the_base_seed() {
        let c1 = InfluenceCampaign::new(chain(0.5, 0.5), 20, 500, 42);
        let c2 = InfluenceCampaign::new(chain(0.5, 0.5), 20, 500, 42);
        assert_eq!(
            c1.measure_influence(0, 1).unwrap(),
            c2.measure_influence(0, 1).unwrap()
        );
    }
}
