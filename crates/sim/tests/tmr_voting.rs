//! TMR masking through the majority voter: the downstream half of the
//! paper's replication story, executed in the simulator.

use fcm_core::FactorKind;
use fcm_sim::model::{SystemSpec, SystemSpecBuilder};
use fcm_sim::{engine, InfluenceCampaign, Injection, TaskId};

/// Three replica writers feeding one voter through separate channels.
fn tmr_system() -> (SystemSpec, [TaskId; 3], TaskId) {
    let mut b = SystemSpecBuilder::new(4);
    let channels: Vec<_> = (0..3)
        .map(|i| {
            b.add_medium(format!("ch{i}"), FactorKind::MessagePassing, 1.0)
                .expect("valid probability")
        })
        .collect();
    let replicas: Vec<TaskId> = channels
        .iter()
        .enumerate()
        .map(|(i, &ch)| {
            b.task(format!("rep{i}"), i)
                .one_shot(0, 10, 1)
                .writes(ch)
                .build()
                .expect("valid task")
        })
        .collect();
    let mut voter = b.task("voter", 3).one_shot(5, 10, 1).voter();
    for &ch in &channels {
        voter = voter.reads(ch);
    }
    let voter = voter.build().expect("valid task");
    (
        b.build().expect("valid system"),
        [replicas[0], replicas[1], replicas[2]],
        voter,
    )
}

#[test]
fn single_replica_fault_is_masked() {
    let (spec, reps, voter) = tmr_system();
    let trace = engine::run(&spec, &[Injection::value(0, reps[0])], 1, 20);
    assert!(trace.value_faulty(reps[0]));
    assert!(!trace.value_faulty(voter));
    // The mask is recorded as a recovery.
    assert_eq!(trace.recoveries[voter], 1);
}

#[test]
fn two_replica_faults_defeat_the_vote() {
    let (spec, reps, voter) = tmr_system();
    let trace = engine::run(
        &spec,
        &[Injection::value(0, reps[0]), Injection::value(0, reps[1])],
        1,
        20,
    );
    assert!(trace.value_faulty(voter));
    assert_eq!(trace.recoveries[voter], 0);
}

#[test]
fn all_three_faults_also_defeat_the_vote() {
    let (spec, reps, voter) = tmr_system();
    let injections: Vec<Injection> = reps.iter().map(|&r| Injection::value(0, r)).collect();
    let trace = engine::run(&spec, &injections, 1, 20);
    assert!(trace.value_faulty(voter));
}

#[test]
fn voter_influence_from_one_replica_is_zero() {
    let (spec, reps, voter) = tmr_system();
    let campaign = InfluenceCampaign::new(spec, 20, 300, 9);
    let single = campaign.measure_influence(reps[0], voter).unwrap();
    assert_eq!(single.estimate, 0.0);
}

#[test]
fn without_voting_a_single_fault_propagates() {
    // The same shape but with an ordinary (non-voter) consumer.
    let mut b = SystemSpecBuilder::new(4);
    let channels: Vec<_> = (0..3)
        .map(|i| {
            b.add_medium(format!("ch{i}"), FactorKind::MessagePassing, 1.0)
                .unwrap()
        })
        .collect();
    for (i, &ch) in channels.iter().enumerate() {
        b.task(format!("rep{i}"), i)
            .one_shot(0, 10, 1)
            .writes(ch)
            .build()
            .unwrap();
    }
    let mut consumer = b.task("consumer", 3).one_shot(5, 10, 1);
    for &ch in &channels {
        consumer = consumer.reads(ch);
    }
    let consumer = consumer.build().unwrap();
    let spec = b.build().unwrap();
    let trace = engine::run(&spec, &[Injection::value(0, 0)], 1, 20);
    assert!(trace.value_faulty(consumer));
}

#[test]
fn lossy_channels_make_masking_probabilistic() {
    // With transmission 0.5 on each channel, two injected replicas reach
    // the voter both-corrupt only ~25% of the time.
    let mut b = SystemSpecBuilder::new(4);
    let channels: Vec<_> = (0..3)
        .map(|i| {
            b.add_medium(format!("ch{i}"), FactorKind::MessagePassing, 0.5)
                .unwrap()
        })
        .collect();
    let reps: Vec<TaskId> = channels
        .iter()
        .enumerate()
        .map(|(i, &ch)| {
            b.task(format!("rep{i}"), i)
                .one_shot(0, 10, 1)
                .writes(ch)
                .build()
                .unwrap()
        })
        .collect();
    let mut voter = b.task("voter", 3).one_shot(5, 10, 1).voter();
    for &ch in &channels {
        voter = voter.reads(ch);
    }
    let voter = voter.build().unwrap();
    let spec = b.build().unwrap();
    let mut faulty = 0u32;
    let trials: u64 = 2000;
    for seed in 0..trials {
        let trace = engine::run(
            &spec,
            &[Injection::value(0, reps[0]), Injection::value(0, reps[1])],
            seed,
            20,
        );
        if trace.value_faulty(voter) {
            faulty += 1;
        }
    }
    let rate = f64::from(faulty) / trials as f64;
    assert!((rate - 0.25).abs() < 0.04, "rate {rate}");
}
