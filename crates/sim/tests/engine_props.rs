//! Property-based tests of the discrete-event engine.

use fcm_core::FactorKind;
use fcm_sim::model::{SchedulingPolicy, SystemSpec, SystemSpecBuilder};
use fcm_sim::{engine, Injection};
use fcm_substrate::prop;
use fcm_substrate::rng::Rng;
use fcm_substrate::{prop_assert, prop_assert_eq};

/// A random one-shot system on one processor: every task individually
/// feasible, optionally chained through a shared medium.
#[derive(Debug, Clone)]
struct OneShotSystem {
    spec: SystemSpec,
    horizon: u64,
}

fn arb_system(rng: &mut Rng, size: usize, policy: SchedulingPolicy) -> OneShotSystem {
    let hi = 5usize.min(1 + size / 20).max(1);
    let count = rng.gen_range(1..=hi);
    let tasks: Vec<(u64, u64, u64)> = (0..count)
        .map(|_| {
            (
                rng.gen_range(0u64..30),
                rng.gen_range(1u64..6),
                rng.gen_range(5u64..40),
            )
        })
        .collect();
    let with_medium = rng.gen_bool(0.5);

    let mut b = SystemSpecBuilder::new(1);
    b.policy(policy);
    let medium = if with_medium {
        Some(
            b.add_medium("m", FactorKind::SharedMemory, 1.0)
                .expect("valid"),
        )
    } else {
        None
    };
    let mut horizon = 0;
    for (i, &(est, ct, window)) in tasks.iter().enumerate() {
        let tcd = est + ct + window;
        horizon = horizon.max(tcd);
        let mut t = b.task(format!("t{i}"), 0).one_shot(est, tcd, ct);
        if let Some(m) = medium {
            t = if i % 2 == 0 { t.writes(m) } else { t.reads(m) };
        }
        t.build().expect("valid task");
    }
    OneShotSystem {
        spec: b.build().expect("valid system"),
        // Generous horizon: all work fits even serialised.
        horizon: horizon + tasks.iter().map(|&(_, ct, _)| ct).sum::<u64>() + 10,
    }
}

#[test]
fn every_one_shot_job_completes_exactly_once() {
    prop::check_cases(
        "every_one_shot_job_completes_exactly_once",
        96,
        |rng, size| arb_system(rng, size, SchedulingPolicy::PreemptiveEdf),
        |sys| {
            let trace = engine::run(&sys.spec, &[], 0, sys.horizon);
            for (t, &c) in trace.completions.iter().enumerate() {
                prop_assert_eq!(c, 1, "task {} completed {} times", t, c);
            }
            prop_assert!(trace.value_faulty.iter().all(|&f| !f));
            Ok(())
        },
    );
}

#[test]
fn fifo_also_completes_all_work() {
    prop::check_cases(
        "fifo_also_completes_all_work",
        96,
        |rng, size| arb_system(rng, size, SchedulingPolicy::NonPreemptiveFifo),
        |sys| {
            let trace = engine::run(&sys.spec, &[], 0, sys.horizon);
            prop_assert!(trace.completions.iter().all(|&c| c == 1));
            Ok(())
        },
    );
}

#[test]
fn edf_never_misses_more_than_fifo() {
    prop::check_cases(
        "edf_never_misses_more_than_fifo",
        96,
        |rng, size| arb_system(rng, size, SchedulingPolicy::PreemptiveEdf),
        |sys| {
            let edf_trace = engine::run(&sys.spec, &[], 0, sys.horizon);
            let mut fifo_spec = sys.spec.clone();
            fifo_spec.policy = SchedulingPolicy::NonPreemptiveFifo;
            let fifo_trace = engine::run(&fifo_spec, &[], 0, sys.horizon);
            let edf_misses: u32 = edf_trace.deadline_misses.iter().sum();
            let fifo_misses: u32 = fifo_trace.deadline_misses.iter().sum();
            // EDF is optimal: if EDF misses anything, the set is infeasible;
            // a feasible set must have zero EDF misses while FIFO may miss.
            if fifo_misses == 0 {
                prop_assert_eq!(edf_misses, 0, "{:?}", sys.spec);
            }
            Ok(())
        },
    );
}

#[test]
fn runs_are_bitwise_deterministic() {
    prop::check_cases(
        "runs_are_bitwise_deterministic",
        96,
        |rng, size| {
            let sys = arb_system(rng, size, SchedulingPolicy::PreemptiveEdf);
            let seed: u64 = rng.gen();
            (sys, seed)
        },
        |(sys, seed)| {
            let inj = [Injection::value(0, 0)];
            let a = engine::run(&sys.spec, &inj, *seed, sys.horizon);
            let b = engine::run(&sys.spec, &inj, *seed, sys.horizon);
            prop_assert_eq!(a, b);
            Ok(())
        },
    );
}

#[test]
fn injection_only_ever_adds_faults() {
    prop::check_cases(
        "injection_only_ever_adds_faults",
        96,
        |rng, size| arb_system(rng, size, SchedulingPolicy::PreemptiveEdf),
        |sys| {
            let clean = engine::run(&sys.spec, &[], 7, sys.horizon);
            let dirty = engine::run(&sys.spec, &[Injection::value(0, 0)], 7, sys.horizon);
            // The injected task is faulty; nobody that was faulty before
            // became clean.
            prop_assert!(dirty.value_faulty[0]);
            for (c, d) in clean.value_faulty.iter().zip(&dirty.value_faulty) {
                prop_assert!(*d || !*c);
            }
            // Completions are schedule-determined and unchanged by value
            // faults.
            prop_assert_eq!(&clean.completions, &dirty.completions);
            Ok(())
        },
    );
}

#[test]
fn crash_never_corrupts_media() {
    prop::check_cases(
        "crash_never_corrupts_media",
        96,
        |rng, size| arb_system(rng, size, SchedulingPolicy::PreemptiveEdf),
        |sys| {
            let trace = engine::run(&sys.spec, &[Injection::crash(0, 0)], 7, sys.horizon);
            // A crashed task 0 performs no writes, so if it was the only
            // writer, the medium stays unwritten.
            let writers: Vec<usize> = sys
                .spec
                .tasks
                .iter()
                .enumerate()
                .filter(|(_, t)| !t.writes.is_empty())
                .map(|(i, _)| i)
                .collect();
            if writers == vec![0] {
                for payload in &trace.medium_payloads {
                    prop_assert!(payload.is_none());
                }
            }
            prop_assert_eq!(trace.medium_corruptions.iter().sum::<u32>(), 0);
            Ok(())
        },
    );
}
