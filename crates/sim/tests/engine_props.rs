//! Property-based tests of the discrete-event engine.

use fcm_core::FactorKind;
use fcm_sim::model::{SchedulingPolicy, SystemSpec, SystemSpecBuilder};
use fcm_sim::{engine, Injection};
use proptest::prelude::*;

/// A random one-shot system on one processor: every task individually
/// feasible, optionally chained through a shared medium.
#[derive(Debug, Clone)]
struct OneShotSystem {
    spec: SystemSpec,
    horizon: u64,
}

fn arb_system(policy: SchedulingPolicy) -> impl Strategy<Value = OneShotSystem> {
    (
        proptest::collection::vec((0u64..30, 1u64..6, 5u64..40), 1..6),
        any::<bool>(),
    )
        .prop_map(move |(tasks, with_medium)| {
            let mut b = SystemSpecBuilder::new(1);
            b.policy(policy);
            let medium = if with_medium {
                Some(
                    b.add_medium("m", FactorKind::SharedMemory, 1.0)
                        .expect("valid"),
                )
            } else {
                None
            };
            let mut horizon = 0;
            for (i, &(est, ct, window)) in tasks.iter().enumerate() {
                let tcd = est + ct + window;
                horizon = horizon.max(tcd);
                let mut t = b.task(format!("t{i}"), 0).one_shot(est, tcd, ct);
                if let Some(m) = medium {
                    t = if i % 2 == 0 { t.writes(m) } else { t.reads(m) };
                }
                t.build().expect("valid task");
            }
            OneShotSystem {
                spec: b.build().expect("valid system"),
                // Generous horizon: all work fits even serialised.
                horizon: horizon + tasks.iter().map(|&(_, ct, _)| ct).sum::<u64>() + 10,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn every_one_shot_job_completes_exactly_once(sys in arb_system(SchedulingPolicy::PreemptiveEdf)) {
        let trace = engine::run(&sys.spec, &[], 0, sys.horizon);
        for (t, &c) in trace.completions.iter().enumerate() {
            prop_assert_eq!(c, 1, "task {} completed {} times", t, c);
        }
        prop_assert!(trace.value_faulty.iter().all(|&f| !f));
    }

    #[test]
    fn fifo_also_completes_all_work(sys in arb_system(SchedulingPolicy::NonPreemptiveFifo)) {
        let trace = engine::run(&sys.spec, &[], 0, sys.horizon);
        prop_assert!(trace.completions.iter().all(|&c| c == 1));
    }

    #[test]
    fn edf_never_misses_more_than_fifo(sys in arb_system(SchedulingPolicy::PreemptiveEdf)) {
        let edf_trace = engine::run(&sys.spec, &[], 0, sys.horizon);
        let mut fifo_spec = sys.spec.clone();
        fifo_spec.policy = SchedulingPolicy::NonPreemptiveFifo;
        let fifo_trace = engine::run(&fifo_spec, &[], 0, sys.horizon);
        let edf_misses: u32 = edf_trace.deadline_misses.iter().sum();
        let fifo_misses: u32 = fifo_trace.deadline_misses.iter().sum();
        // EDF is optimal: if EDF misses anything, the set is infeasible;
        // a feasible set must have zero EDF misses while FIFO may miss.
        if fifo_misses == 0 {
            prop_assert_eq!(edf_misses, 0, "{:?}", sys.spec);
        }
    }

    #[test]
    fn runs_are_bitwise_deterministic(sys in arb_system(SchedulingPolicy::PreemptiveEdf), seed in any::<u64>()) {
        let inj = [Injection::value(0, 0)];
        let a = engine::run(&sys.spec, &inj, seed, sys.horizon);
        let b = engine::run(&sys.spec, &inj, seed, sys.horizon);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn injection_only_ever_adds_faults(sys in arb_system(SchedulingPolicy::PreemptiveEdf)) {
        let clean = engine::run(&sys.spec, &[], 7, sys.horizon);
        let dirty = engine::run(&sys.spec, &[Injection::value(0, 0)], 7, sys.horizon);
        // The injected task is faulty; nobody that was faulty before
        // became clean.
        prop_assert!(dirty.value_faulty[0]);
        for (c, d) in clean.value_faulty.iter().zip(&dirty.value_faulty) {
            prop_assert!(*d || !*c);
        }
        // Completions are schedule-determined and unchanged by value
        // faults.
        prop_assert_eq!(clean.completions, dirty.completions);
    }

    #[test]
    fn crash_never_corrupts_media(sys in arb_system(SchedulingPolicy::PreemptiveEdf)) {
        let trace = engine::run(&sys.spec, &[Injection::crash(0, 0)], 7, sys.horizon);
        // A crashed task 0 performs no writes, so if it was the only
        // writer, the medium stays unwritten.
        let writers: Vec<usize> = sys
            .spec
            .tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.writes.is_empty())
            .map(|(i, _)| i)
            .collect();
        if writers == vec![0] {
            for payload in &trace.medium_payloads {
                prop_assert!(payload.is_none());
            }
        }
        prop_assert_eq!(trace.medium_corruptions.iter().sum::<u32>(), 0);
    }
}
