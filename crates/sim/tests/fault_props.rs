//! Property-based tests of the fault and recovery semantics.
//!
//! Three invariants pinned here:
//!
//! 1. a `NodeCrash` on a processor (with no recovery machinery) halts
//!    it: no task hosted there completes after the crash instant;
//! 2. recovery blocks only ever fire on corrupt reads: a task that never
//!    read a corrupt medium reports zero recoveries, and recoveries are
//!    bounded by the corrupt-read opportunities;
//! 3. with a watchdog and retries, restarts never outpace detections —
//!    in the chronological event log every `JobRestarted` is preceded by
//!    at least as many `FailureDetected` events.

use fcm_core::FactorKind;
use fcm_sim::model::{SchedulingPolicy, SystemSpec, SystemSpecBuilder};
use fcm_sim::trace::TraceEvent;
use fcm_sim::{engine, Injection};
use fcm_substrate::prop;
use fcm_substrate::rng::Rng;
use fcm_substrate::{prop_assert, prop_assert_eq};

/// A random periodic system over `processors` processors. Tasks may be
/// individually infeasible together — the properties hold regardless.
fn arb_periodic(rng: &mut Rng, size: usize, processors: usize, checkpoint: bool) -> SystemSpec {
    let hi = 4usize.min(1 + size / 24).max(1);
    let count = rng.gen_range(1..=hi) + 1;
    let mut b = SystemSpecBuilder::new(processors);
    b.policy(SchedulingPolicy::PreemptiveEdf);
    for i in 0..count {
        let period = rng.gen_range(6u64..16);
        let ct = rng.gen_range(1u64..4);
        let offset = rng.gen_range(0u64..period - ct);
        let mut t = b
            .task(format!("t{i}"), i % processors)
            .periodic(period, offset, ct);
        if checkpoint {
            t = t.checkpoint(rng.gen_range(1u64..3));
        }
        t.build().expect("valid task");
    }
    b.build().expect("valid system")
}

#[test]
fn node_crash_halts_all_completions_on_the_node() {
    prop::check_cases(
        "node_crash_halts_all_completions_on_the_node",
        96,
        |rng, size| {
            let spec = arb_periodic(rng, size, 2, false);
            let at = rng.gen_range(10u64..50);
            let seed: u64 = rng.gen();
            (spec, at, seed)
        },
        |(spec, at, seed)| {
            // No watchdog, no retry: the crash must silently kill the
            // node for the rest of the run.
            let trace = engine::run(spec, &[Injection::node_crash(*at, 0)], *seed, 100);
            for ev in &trace.events {
                if let TraceEvent::Completion { task, at: done } = ev {
                    if spec.tasks[*task].processor == 0 {
                        prop_assert!(
                            done < at,
                            "task {} on the crashed node completed at {} (crash at {})",
                            task,
                            done,
                            at
                        );
                    }
                }
            }
            // The other processor is unaffected: it completes something.
            let other_done = trace.events.iter().any(|ev| {
                matches!(ev, TraceEvent::Completion { task, .. }
                    if spec.tasks[*task].processor == 1)
            });
            prop_assert!(other_done || spec.tasks.iter().all(|t| t.processor == 0));
            Ok(())
        },
    );
}

/// Writer → reader chain: the writer corrupts its medium with a random
/// fault rate, the reader carries a recovery block.
fn arb_chain(rng: &mut Rng) -> SystemSpec {
    let mut b = SystemSpecBuilder::new(1);
    let m = b
        .add_medium("gv", FactorKind::GlobalVariable, 1.0)
        .expect("valid");
    b.task("w", 0)
        .periodic(10, 0, 1)
        .writes(m)
        .fault_rate(rng.gen_range(0..2) as f64 * rng.gen::<f64>())
        .build()
        .expect("valid");
    b.task("r", 0)
        .periodic(10, 5, 1)
        .reads(m)
        .recovery(rng.gen::<f64>())
        .build()
        .expect("valid");
    b.build().expect("valid system")
}

#[test]
fn recoveries_require_corrupt_reads() {
    prop::check_cases(
        "recoveries_require_corrupt_reads",
        128,
        |rng, _size| {
            let spec = arb_chain(rng);
            let seed: u64 = rng.gen();
            (spec, seed)
        },
        |(spec, seed)| {
            let trace = engine::run(spec, &[], *seed, 200);
            // A recovery is a caught corrupt read: with a clean medium
            // there is nothing to catch.
            if trace.medium_corruptions.iter().all(|&c| c == 0) {
                prop_assert_eq!(trace.recoveries.iter().sum::<u32>(), 0);
            }
            // Each completed reader job reads one medium at most once.
            for (i, &rec) in trace.recoveries.iter().enumerate() {
                let reads = spec.tasks[i].reads.len() as u32;
                prop_assert!(
                    rec <= trace.completions[i] * reads,
                    "task {} recovered {} times over {} completions x {} reads",
                    i,
                    rec,
                    trace.completions[i],
                    reads
                );
            }
            Ok(())
        },
    );
}

#[test]
fn restarts_never_outpace_detections() {
    prop::check_cases(
        "restarts_never_outpace_detections",
        96,
        |rng, size| {
            let mut spec = arb_periodic(rng, size, 2, true);
            // arb_periodic cannot set system-level knobs; rebuild-free
            // wiring through the public fields keeps the generator small.
            spec.watchdog = Some(fcm_sim::WatchdogSpec {
                heartbeat_period: rng.gen_range(3u64..9),
                detection_latency: rng.gen_range(0u64..3),
            });
            spec.retry = Some(fcm_sim::RetryPolicy {
                max_retries: rng.gen_range(1u32..4),
                backoff_base: rng.gen_range(1u64..5),
            });
            let faults = rng.gen_range(1usize..4);
            let inj: Vec<Injection> = (0..faults)
                .map(|_| {
                    let at = rng.gen_range(5u64..60);
                    let node = rng.gen_range(0usize..2);
                    if rng.gen_bool(0.5) {
                        Injection::node_crash(at, node)
                    } else {
                        Injection::node_transient(at, node, rng.gen_range(2u64..10))
                    }
                })
                .collect();
            let seed: u64 = rng.gen();
            (spec, inj, seed)
        },
        |(spec, inj, seed)| {
            let trace = engine::run(spec, inj, *seed, 150);
            prop_assert!(
                trace.detections >= trace.restarts,
                "detections {} < restarts {}",
                trace.detections,
                trace.restarts
            );
            prop_assert!(trace.retries >= trace.restarts);
            // Prefix invariant over the chronological log: a restart can
            // only follow the detection that triggered its retry chain.
            let (mut seen_detections, mut seen_restarts) = (0u32, 0u32);
            for ev in &trace.events {
                match ev {
                    TraceEvent::FailureDetected { .. } => seen_detections += 1,
                    TraceEvent::JobRestarted { .. } => {
                        seen_restarts += 1;
                        prop_assert!(
                            seen_restarts <= seen_detections,
                            "restart #{} before detection #{}",
                            seen_restarts,
                            seen_detections
                        );
                    }
                    _ => {}
                }
            }
            // Same-seed runs of the fault schedule are bit-identical.
            prop_assert_eq!(&trace, &engine::run(spec, inj, *seed, 150));
            Ok(())
        },
    );
}
