//! Integration tests for the Eq. 1 occurrence estimator (p₁) and the
//! recovery-block model.

use fcm_core::FactorKind;
use fcm_sim::model::{SystemSpec, SystemSpecBuilder};
use fcm_sim::{engine, InfluenceCampaign, Injection};

fn chain_with(fault_rate: f64, recovery: f64) -> SystemSpec {
    let mut b = SystemSpecBuilder::new(1);
    let m = b.add_medium("gv", FactorKind::GlobalVariable, 1.0).unwrap();
    b.task("w", 0)
        .one_shot(0, 10, 1)
        .writes(m)
        .fault_rate(fault_rate)
        .build()
        .unwrap();
    b.task("r", 0)
        .one_shot(5, 10, 1)
        .reads(m)
        .recovery(recovery)
        .build()
        .unwrap();
    b.build().unwrap()
}

#[test]
fn occurrence_estimator_recovers_the_fault_rate() {
    let campaign = InfluenceCampaign::new(chain_with(0.35, 0.0), 20, 4000, 3);
    let p1 = campaign.measure_occurrence(0).unwrap();
    assert!(
        (p1.estimate - 0.35).abs() < 0.03,
        "estimate {}",
        p1.estimate
    );
    // The reader has no spontaneous faults of its own, but it *can* catch
    // the writer's spontaneous corruption (vulnerability 1, p2 = 1), so
    // measure only the writer here.
}

#[test]
fn zero_fault_rate_means_zero_occurrence() {
    let campaign = InfluenceCampaign::new(chain_with(0.0, 0.0), 20, 500, 5);
    assert_eq!(campaign.measure_occurrence(0).unwrap().estimate, 0.0);
    assert_eq!(campaign.baseline(1).unwrap().estimate, 0.0);
}

#[test]
fn full_eq1_chain_occurrence_times_transmission_times_manifestation() {
    // p1 = 0.5 at the writer, p2 = 1, p3 = 1: the reader fails in the
    // trials where the writer spontaneously faulted before its write.
    let campaign = InfluenceCampaign::new(chain_with(0.5, 0.0), 20, 4000, 7);
    let reader_faults = campaign.baseline(1).unwrap();
    assert!(
        (reader_faults.estimate - 0.5).abs() < 0.03,
        "estimate {}",
        reader_faults.estimate
    );
}

#[test]
fn perfect_recovery_blocks_all_manifestation() {
    let spec = chain_with(0.0, 1.0);
    let trace = engine::run(&spec, &[Injection::value(0, 0)], 11, 50);
    assert!(trace.value_faulty(0));
    assert!(!trace.value_faulty(1));
    assert_eq!(trace.recoveries[1], 1);
}

#[test]
fn partial_recovery_scales_measured_influence() {
    // influence = (1 − recovery) × p3 with p2 = 1.
    let no_recovery = InfluenceCampaign::new(chain_with(0.0, 0.0), 20, 4000, 13);
    let with_recovery = InfluenceCampaign::new(chain_with(0.0, 0.6), 20, 4000, 13);
    let raw = no_recovery.measure_influence(0, 1).unwrap().estimate;
    let guarded = with_recovery.measure_influence(0, 1).unwrap().estimate;
    assert!((raw - 1.0).abs() < 0.01, "raw {raw}");
    assert!((guarded - 0.4).abs() < 0.03, "guarded {guarded}");
}

#[test]
fn recovery_does_not_clean_the_medium() {
    // The recovery block protects the reader but leaves the corrupt
    // medium in place for later readers without protection.
    let mut b = SystemSpecBuilder::new(1);
    let m = b.add_medium("gv", FactorKind::GlobalVariable, 1.0).unwrap();
    b.task("w", 0).one_shot(0, 30, 1).writes(m).build().unwrap();
    b.task("guarded", 0)
        .one_shot(5, 30, 1)
        .reads(m)
        .recovery(1.0)
        .build()
        .unwrap();
    b.task("naive", 0)
        .one_shot(10, 30, 1)
        .reads(m)
        .build()
        .unwrap();
    let spec = b.build().unwrap();
    let trace = engine::run(&spec, &[Injection::value(0, 0)], 17, 50);
    assert!(!trace.value_faulty(1));
    assert!(trace.value_faulty(2));
}
