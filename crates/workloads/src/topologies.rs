//! Structured influence-topology generators.
//!
//! The E10 experiment asks *which heuristic wins on which interaction
//! structure* — a question the paper's single random example cannot
//! answer. These generators produce the canonical shapes real systems
//! exhibit: pipelines (sensor → filter → actuator chains), hubs (a
//! blackboard or bus process), clustered subsystems bridged by thin
//! interfaces, and layered architectures.

use fcm_alloc::sw::{SwGraph, SwGraphBuilder};
use fcm_core::AttributeSet;
use fcm_graph::NodeIdx;

fn attrs(i: usize) -> AttributeSet {
    AttributeSet::default().with_criticality(1 + (i % 10) as u32)
}

/// A pipeline `p0 → p1 → … → p(n−1)` with forward influence `w` and a
/// weak feedback edge `w/4` every fourth stage.
pub fn chain(n: usize, w: f64) -> SwGraph {
    let mut b = SwGraphBuilder::new();
    let nodes: Vec<NodeIdx> = (0..n)
        .map(|i| b.add_process(format!("p{i}"), attrs(i)))
        .collect();
    for win in nodes.windows(2) {
        b.add_influence(win[0], win[1], w)
            .expect("static weight valid");
    }
    for i in (4..n).step_by(4) {
        b.add_influence(nodes[i], nodes[i - 4], (w / 4.0).max(1e-3))
            .expect("static weight valid");
    }
    b.build()
}

/// A hub-and-spokes structure: node 0 is the hub (a bus or blackboard
/// process); every spoke exchanges influence `w` with it both ways.
pub fn star(n: usize, w: f64) -> SwGraph {
    let mut b = SwGraphBuilder::new();
    let hub = b.add_process("hub", attrs(0).with_criticality(10));
    for i in 1..n {
        let spoke = b.add_process(format!("s{i}"), attrs(i));
        b.add_influence(hub, spoke, w).expect("static weight valid");
        b.add_influence(spoke, hub, w / 2.0)
            .expect("static weight valid");
    }
    b.build()
}

/// `k` cliques of `m` nodes each, dense inside (`inner`), bridged in a
/// ring by one thin edge (`bridge`) per adjacent pair — the shape H2's
/// min-cut is built for.
pub fn ring_of_cliques(k: usize, m: usize, inner: f64, bridge: f64) -> SwGraph {
    let mut b = SwGraphBuilder::new();
    let mut cliques: Vec<Vec<NodeIdx>> = Vec::with_capacity(k);
    for c in 0..k {
        let members: Vec<NodeIdx> = (0..m)
            .map(|i| b.add_process(format!("c{c}_{i}"), attrs(c * m + i)))
            .collect();
        for (i, &a) in members.iter().enumerate() {
            for &z in &members[i + 1..] {
                b.add_influence(a, z, inner).expect("static weight valid");
                b.add_influence(z, a, inner).expect("static weight valid");
            }
        }
        cliques.push(members);
    }
    for c in 0..k {
        let next = (c + 1) % k;
        if next != c {
            b.add_influence(cliques[c][m - 1], cliques[next][0], bridge)
                .expect("static weight valid");
        }
    }
    b.build()
}

/// A layered architecture: `layers × width` nodes, each node influencing
/// every node of the next layer with `w` (think sensor layer → fusion
/// layer → control layer → actuation layer).
pub fn layered(layers: usize, width: usize, w: f64) -> SwGraph {
    let mut b = SwGraphBuilder::new();
    let mut grid: Vec<Vec<NodeIdx>> = Vec::with_capacity(layers);
    for l in 0..layers {
        grid.push(
            (0..width)
                .map(|i| b.add_process(format!("l{l}_{i}"), attrs(l * width + i)))
                .collect(),
        );
    }
    for l in 1..layers {
        for &from in &grid[l - 1] {
            for &to in &grid[l] {
                b.add_influence(from, to, w).expect("static weight valid");
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcm_alloc::heuristics::h1;

    #[test]
    fn chain_shape() {
        let g = chain(9, 0.5);
        assert_eq!(g.node_count(), 9);
        // 8 forward + feedback at 4 and 8.
        assert_eq!(g.edge_count(), 10);
        assert_eq!(
            g.edge_weight_between(NodeIdx(0), NodeIdx(1))
                .unwrap()
                .influence(),
            0.5
        );
        assert!(g.has_edge(NodeIdx(4), NodeIdx(0)));
    }

    #[test]
    fn star_shape() {
        let g = star(6, 0.4);
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 10);
        assert_eq!(g.out_degree(NodeIdx(0)), 5);
        assert_eq!(g.in_degree(NodeIdx(0)), 5);
        assert_eq!(g.node(NodeIdx(0)).unwrap().attributes.criticality.0, 10);
    }

    #[test]
    fn ring_of_cliques_shape() {
        let g = ring_of_cliques(3, 4, 0.6, 0.05);
        assert_eq!(g.node_count(), 12);
        // Per clique: C(4,2)×2 = 12 edges; 3 cliques + 3 bridges.
        assert_eq!(g.edge_count(), 3 * 12 + 3);
        // The natural 3-clustering severs only the bridges.
        let c = h1(&g, 3).unwrap();
        assert!(
            (c.cross_influence(&g) - 0.15).abs() < 1e-9,
            "{}",
            c.cross_influence(&g)
        );
    }

    #[test]
    fn single_clique_has_no_bridge() {
        let g = ring_of_cliques(1, 3, 0.5, 0.1);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 6);
    }

    #[test]
    fn layered_shape() {
        let g = layered(3, 2, 0.3);
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 2 * 2 * 2);
        // Sources have no in-edges, sinks no out-edges.
        assert_eq!(g.in_degree(NodeIdx(0)), 0);
        assert_eq!(g.out_degree(NodeIdx(5)), 0);
    }

    #[test]
    fn all_topologies_cluster_feasibly() {
        for g in [
            chain(12, 0.5),
            star(12, 0.4),
            ring_of_cliques(3, 4, 0.6, 0.05),
            layered(3, 4, 0.3),
        ] {
            let c = h1(&g, 4).unwrap();
            assert_eq!(c.len(), 4);
        }
    }
}
