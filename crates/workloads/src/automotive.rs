//! A synthetic automotive ADAS suite — a second domain instance.
//!
//! The paper's framework claims generality beyond avionics ("the design
//! of a customized dependable system for each specific operational
//! requirement is usually neither viable nor economically feasible");
//! this module instantiates the same integration problem for a driver-
//! assistance platform: perception feeding a TMR trajectory planner,
//! duplex brake control, a domain-controller platform with located
//! sensors, and low-criticality infotainment sharing the hardware. The
//! attribute ranges assume a 100 ms planning frame (1 tick = 1 ms) and
//! are synthetic.

use fcm_alloc::replication::{expand_replicas, Expansion};
use fcm_alloc::sw::{SwGraph, SwGraphBuilder};
use fcm_alloc::{HwGraph, HwNode};
use fcm_core::{AttributeSet, FaultTolerance};
use fcm_graph::NodeIdx;

/// Index of each function in the suite graph (pre-expansion).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdasNodes {
    /// Camera perception (needs the `camera` resource).
    pub camera: NodeIdx,
    /// Radar perception (needs the `radar` resource).
    pub radar: NodeIdx,
    /// Duplex sensor fusion.
    pub fusion: NodeIdx,
    /// TMR trajectory planner.
    pub planner: NodeIdx,
    /// Duplex brake-by-wire controller.
    pub brakes: NodeIdx,
    /// Steering controller.
    pub steering: NodeIdx,
    /// Driver-monitoring system.
    pub dms: NodeIdx,
    /// Infotainment head unit.
    pub infotainment: NodeIdx,
    /// Telematics / OTA agent (needs the `cellular` resource).
    pub telematics: NodeIdx,
    /// Diagnostic logger.
    pub diagnostics: NodeIdx,
}

/// Builds the ten-function ADAS suite graph.
pub fn suite() -> (SwGraph, AdasNodes) {
    let mut b = SwGraphBuilder::new();
    let camera = b.add_process(
        "camera",
        AttributeSet::default()
            .with_criticality(8)
            .with_timing(0, 33, 8)
            .with_throughput(2.5),
    );
    let radar = b.add_process(
        "radar",
        AttributeSet::default()
            .with_criticality(8)
            .with_timing(0, 25, 5)
            .with_throughput(1.5),
    );
    let fusion = b.add_process(
        "fusion",
        AttributeSet::default()
            .with_criticality(9)
            .with_fault_tolerance(FaultTolerance::DUPLEX)
            .with_timing(5, 40, 6)
            .with_throughput(1.2),
    );
    let planner = b.add_process(
        "planner",
        AttributeSet::default()
            .with_criticality(10)
            .with_fault_tolerance(FaultTolerance::TMR)
            .with_timing(10, 60, 10)
            .with_throughput(1.0),
    );
    let brakes = b.add_process(
        "brakes",
        AttributeSet::default()
            .with_criticality(10)
            .with_fault_tolerance(FaultTolerance::DUPLEX)
            .with_timing(0, 20, 3)
            .with_throughput(0.6),
    );
    let steering = b.add_process(
        "steering",
        AttributeSet::default()
            .with_criticality(9)
            .with_timing(0, 20, 3)
            .with_throughput(0.6),
    );
    let dms = b.add_process(
        "dms",
        AttributeSet::default()
            .with_criticality(5)
            .with_timing(0, 100, 10)
            .with_throughput(0.8),
    );
    let infotainment = b.add_process(
        "infotainment",
        AttributeSet::default()
            .with_criticality(1)
            .with_timing(0, 200, 20)
            .with_throughput(1.5),
    );
    let telematics = b.add_process(
        "telematics",
        AttributeSet::default()
            .with_criticality(3)
            .with_timing(0, 250, 15)
            .with_security(4)
            .with_throughput(0.5),
    );
    let diagnostics = b.add_process(
        "diagnostics",
        AttributeSet::default()
            .with_criticality(2)
            .with_timing(50, 500, 20)
            .with_throughput(0.3),
    );
    for (from, to, w) in [
        (camera, fusion, 0.5),
        (radar, fusion, 0.5),
        (fusion, planner, 0.6),
        (planner, brakes, 0.4),
        (planner, steering, 0.4),
        (dms, planner, 0.2),
        (camera, dms, 0.3),
        (planner, infotainment, 0.1),
        (infotainment, telematics, 0.15),
        (telematics, diagnostics, 0.1),
        (brakes, diagnostics, 0.05),
        (steering, diagnostics, 0.05),
    ] {
        b.add_influence(from, to, w)
            .expect("static influences valid");
    }
    // Safety case: the two perception pipelines must not share a failure
    // domain with each other (common-cause sensor loss).
    b.forbid_colocation(&[camera, radar]).expect("nodes exist");
    let mut g = b.build();
    for (node, tag) in [
        (camera, "camera"),
        (radar, "radar"),
        (telematics, "cellular"),
    ] {
        g.node_mut(node)
            .expect("node exists")
            .required_resources
            .insert(tag.into());
    }
    (
        g,
        AdasNodes {
            camera,
            radar,
            fusion,
            planner,
            brakes,
            steering,
            dms,
            infotainment,
            telematics,
            diagnostics,
        },
    )
}

/// The replica-expanded suite (14 nodes: 3 + 2 + 2 + 7).
pub fn expanded_suite() -> (Expansion, AdasNodes) {
    let (g, nodes) = suite();
    (expand_replicas(&g), nodes)
}

/// An eight-ECU vehicle platform: two high-performance perception ECUs
/// with the camera/radar heads, one connectivity ECU with the cellular
/// modem, and five general domain controllers; zonal ring topology with
/// a cross-car link.
pub fn platform() -> HwGraph {
    let nodes = vec![
        HwNode::new("ecu_cam")
            .with_resource("camera")
            .with_capacity(8.0),
        HwNode::new("ecu_radar")
            .with_resource("radar")
            .with_capacity(8.0),
        HwNode::new("ecu_conn")
            .with_resource("cellular")
            .with_capacity(6.0),
        HwNode::new("dc0").with_capacity(6.0),
        HwNode::new("dc1").with_capacity(6.0),
        HwNode::new("dc2").with_capacity(6.0),
        HwNode::new("dc3").with_capacity(6.0),
        HwNode::new("dc4").with_capacity(6.0),
    ];
    let mut links: Vec<(usize, usize, f64)> = (0..8).map(|i| (i, (i + 1) % 8, 1.0)).collect();
    links.push((0, 4, 1.0)); // cross-car backbone
    HwGraph::new(nodes, &links)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcm_alloc::heuristics::h1;
    use fcm_alloc::mapping::{approach_a, approach_b};
    use fcm_core::ImportanceWeights;
    use fcm_eval::{MappingQuality, ReliabilityModel};

    #[test]
    fn suite_shape() {
        let (g, nodes) = suite();
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.edge_count(), 12);
        assert_eq!(
            g.node(nodes.planner).unwrap().attributes.fault_tolerance,
            FaultTolerance::TMR
        );
        assert!(g
            .node(nodes.camera)
            .unwrap()
            .must_separate_from(g.node(nodes.radar).unwrap()));
        assert!(g
            .node(nodes.telematics)
            .unwrap()
            .required_resources
            .contains("cellular"));
    }

    #[test]
    fn expansion_yields_fourteen_nodes() {
        let (ex, _) = expanded_suite();
        assert_eq!(ex.graph.node_count(), 14);
    }

    #[test]
    fn suite_integrates_onto_the_vehicle_platform() {
        let (ex, _) = expanded_suite();
        let hw = platform();
        let c = h1(&ex.graph, hw.len()).unwrap();
        let m = approach_a(&ex.graph, &c, &hw, &ImportanceWeights::default()).unwrap();
        m.validate(&ex.graph, &c, &hw).unwrap();
        // The perception pipelines stayed apart.
        let host_of = |name: &str| {
            let (ci, _) = c
                .clusters()
                .iter()
                .enumerate()
                .find_map(|(ci, grp)| {
                    grp.iter()
                        .find(|&&n| ex.graph.node(n).unwrap().name == name)
                        .map(|&n| (ci, n))
                })
                .expect("node clustered");
            m.hw_of(ci).unwrap()
        };
        assert_ne!(host_of("camera"), host_of("radar"));
    }

    #[test]
    fn approach_b_spreads_the_safety_functions() {
        let (ex, _) = expanded_suite();
        let hw = platform();
        let (c, m) = approach_b(&ex.graph, &hw, &ImportanceWeights::default()).unwrap();
        let q = MappingQuality::evaluate(&ex.graph, &c, &m, &hw, 9);
        // The ASIL-D functions (criticality >= 9) barely co-locate.
        assert!(q.critical_colocations <= 2, "{q}");
    }

    #[test]
    fn reliability_is_finite_and_replication_sensitive() {
        let (ex, _) = expanded_suite();
        let hw = platform();
        let c = h1(&ex.graph, hw.len()).unwrap();
        let m = approach_a(&ex.graph, &c, &hw, &ImportanceWeights::default()).unwrap();
        let model = ReliabilityModel {
            p_hw: 0.05,
            p_sw: 0.02,
            critical_at: 9,
            trials: 10_000,
            ..ReliabilityModel::default()
        };
        let est = model.evaluate(&ex.graph, &c, &m);
        // TMR planner + duplex brakes: far better than single-node loss.
        assert!(est.mission_failure < 0.35, "{}", est.mission_failure);
        assert!(est.mission_failure > 0.0);
    }

    #[test]
    fn ring_topology_distances_are_respected() {
        let hw = platform();
        assert!(hw.is_connected());
        // Adjacent zonal ECUs are one hop; the backbone shortcuts the ring.
        assert_eq!(hw.distance(NodeIdx(0), NodeIdx(1)), 1.0);
        assert_eq!(hw.distance(NodeIdx(0), NodeIdx(4)), 1.0);
        assert_eq!(hw.distance(NodeIdx(2), NodeIdx(6)), 4.0);
    }
}
